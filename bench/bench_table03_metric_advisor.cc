/// Reproduces Table 3 (the when-to-use guidelines) and demonstrates the
/// metric advisor on the paper's own three case studies plus two surveyed
/// systems.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "guidelines/advisor.h"

namespace ideval {
namespace {

void PrintRecommendations(const SystemProfile& profile) {
  std::printf("system: %s\n", profile.name.c_str());
  TextTable table({"recommended metric", "why"});
  for (const auto& rec : RecommendMetrics(profile)) {
    table.AddRow({MetricToString(rec.metric), rec.reason});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "T3", "Table 3 — guidelines for selecting metrics",
      "metric selection is application-dependent; user feedback and "
      "latency always apply; the novel frontend metrics apply to bursty, "
      "high-frame-rate interfaces");

  std::printf("Table 3 (full when-to-use catalog):\n");
  TextTable catalog({"type", "metric", "when to use"});
  for (const auto& info : AllMetricInfo()) {
    catalog.AddRow({MetricCategoryToString(info.category),
                    MetricToString(info.metric), info.when_to_use});
  }
  std::printf("%s\n", catalog.ToString().c_str());

  SystemProfile scrolling;
  scrolling.name = "case study 1: inertial scrolling browser";
  scrolling.task_based = true;
  scrolling.speculative_prefetching = true;
  scrolling.consecutive_query_bursts = true;
  scrolling.high_frame_rate_device = true;
  PrintRecommendations(scrolling);

  SystemProfile crossfilter;
  crossfilter.name = "case study 2: crossfilter over 434k tuples";
  crossfilter.exploratory = true;
  crossfilter.large_data = true;
  crossfilter.high_frame_rate_device = true;
  crossfilter.consecutive_query_bursts = true;
  PrintRecommendations(crossfilter);

  SystemProfile dice;
  dice.name = "DICE-like distributed cube explorer";
  dice.distributed = true;
  dice.large_data = true;
  dice.approximate = true;
  dice.speculative_prefetching = true;
  PrintRecommendations(dice);

  SystemProfile icarus;
  icarus.name = "Icarus-like expert data-completion tool";
  icarus.domain_specific = true;
  icarus.task_based = true;
  icarus.reduces_user_effort = true;
  icarus.targets_experts = true;
  PrintRecommendations(icarus);

  std::printf("best practices (§3.3):\n");
  for (const auto& p : MetricSelectionBestPractices()) {
    std::printf("  %s\n", p.c_str());
  }
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
