/// Ablation A2: sweep of the KL suppression threshold. The paper evaluates
/// KL>0 and KL>0.2; this sweep fills in the trade-off curve between
/// queries issued, latency, LCV, and the information the user loses
/// (divergence of the skipped updates), on the disk backend.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"
#include "opt/kl_filter.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "A2", "Ablation — KL threshold sweep on the disk backend",
      "raising the threshold sheds more queries and restores interactive "
      "latency, at the cost of suppressing result updates of growing "
      "divergence (the §10 information-loss concern)");

  TablePtr road = bench::Road();
  const auto groups = bench::CrossfilterGroups(
      road, DeviceType::kTouchTablet, bench::kCrossfilterSeed + 1);

  TextTable table({"threshold", "groups issued", "suppressed",
                   "median latency (ms)", "p90 (ms)", "LCV %",
                   "max suppressed KL"});
  for (double threshold : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    auto filter = KlQueryFilter::Make(road, threshold);
    if (!filter.ok()) std::abort();
    std::vector<QueryGroup> kept;
    double max_suppressed_kl = 0.0;
    for (const auto& g : groups) {
      auto issue = filter->ShouldIssue(g);
      if (!issue.ok()) std::abort();
      if (*issue) {
        kept.push_back(g);
      } else {
        max_suppressed_kl =
            std::max(max_suppressed_kl, filter->last_divergence());
      }
    }
    EngineOptions eopts;
    eopts.profile = EngineProfile::kDiskRowStore;
    Engine engine(eopts);
    if (!engine.RegisterTable(road).ok()) std::abort();
    SchedulerOptions sopts;
    sopts.num_connections = 2;
    QueryScheduler scheduler(&engine, sopts);
    auto run = scheduler.Run(kept);
    if (!run.ok()) std::abort();
    const Summary lat = PerceivedLatencySummary(run->timelines);
    const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
    table.AddRow({FormatDouble(threshold, 2), StrFormat("%zu", kept.size()),
                  StrFormat("%zu", groups.size() - kept.size()),
                  FormatDouble(lat.median(), 1),
                  FormatDouble(lat.Quantile(0.9), 1),
                  FormatDouble(lcv.ViolationFraction() * 100.0, 1),
                  FormatDouble(max_suppressed_kl, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: issued-count and latency fall monotonically with the "
              "threshold while the max suppressed divergence (information "
              "potentially lost) rises\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
