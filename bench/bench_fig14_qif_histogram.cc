/// Reproduces Fig. 14: frequency histograms of query-issuing intervals per
/// device, raw and after the KL optimizations. No backend is needed —
/// QIF is a pure frontend metric.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"
#include "opt/kl_filter.h"

namespace ideval {
namespace {

void PrintHistogram(const char* label, const std::vector<QueryGroup>& groups) {
  std::vector<SimTime> times;
  for (const auto& g : groups) times.push_back(g.issue_time);
  auto qif = ComputeQif(times);
  if (!qif.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", qif.status().ToString().c_str());
    std::abort();
  }
  auto hist = FixedHistogram::Make(0.0, 60.0, 12);  // 5 ms bins, 0–60 ms.
  for (double ms : qif->intervals_ms) hist->Add(ms);

  std::printf("%s  (total queries: %lld, QIF: %.1f/s)\n", label,
              static_cast<long long>(qif->queries), qif->qif);
  TextTable table({"interval (ms)", "count", ""});
  double max_count = 0.0;
  for (size_t b = 0; b < hist->num_bins(); ++b) {
    max_count = std::max(max_count, hist->count(b));
  }
  for (size_t b = 0; b < hist->num_bins(); ++b) {
    table.AddRow({StrFormat("%2.0f-%2.0f", hist->BinLowerEdge(b),
                            hist->BinLowerEdge(b) + hist->bin_width()),
                  FormatDouble(hist->count(b), 0),
                  AsciiBar(hist->count(b), max_count, 30)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "F14", "Fig. 14 — histograms of query-issuing intervals",
      "Leap Motion issues far more queries than mouse/touch (count scale "
      "~2500 vs ~120) with intervals concentrated at 20–25 ms; KL>0 "
      "collapses the counts drastically");

  TablePtr road = bench::Road();
  const struct {
    DeviceType device;
    uint64_t seed;
  } kDevices[] = {{DeviceType::kMouse, bench::kCrossfilterSeed},
                  {DeviceType::kTouchTablet, bench::kCrossfilterSeed + 1},
                  {DeviceType::kLeapMotion, bench::kCrossfilterSeed + 2}};

  for (const auto& dev : kDevices) {
    const auto raw = bench::CrossfilterGroups(road, dev.device, dev.seed);
    PrintHistogram(StrFormat("%s : raw", DeviceTypeToString(dev.device))
                       .c_str(),
                   raw);
    for (double threshold : {0.0, 0.2}) {
      auto filter = KlQueryFilter::Make(road, threshold);
      auto filtered = FilterQueryGroups(&*filter, raw);
      PrintHistogram(StrFormat("%s : KL>%.1f",
                               DeviceTypeToString(dev.device), threshold)
                         .c_str(),
                     *filtered);
    }
  }
  std::printf(
      "check: leap raw counts dwarf mouse/touch; KL columns shrink the "
      "totals by large factors, most aggressively at KL>0.2\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
