/// Ablation A9: content-aware prefetching and its sensitivity analysis
/// (Scout, §3.1.1: "they report results of sensitivity analysis of
/// different parameters on the cache hit rate"). We replay the §8
/// composite sessions' tile requests and sweep the prefetcher's fan-out
/// and content weight, comparing direction-only, content-only, and
/// combined rankings.

#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "prefetch/content_prefetcher.h"

namespace ideval {
namespace {

struct RequestLog {
  std::vector<std::vector<TileId>> tiles;
  std::vector<GeoBounds> bounds;
  std::vector<int> zooms;
};

RequestLog CollectRequests() {
  RequestLog log;
  for (const auto& trace : bench::ExploreTraces(10)) {
    for (const auto& phase : trace.phases) {
      MapWidget map(phase.request.bounds.CenterLat(),
                    phase.request.bounds.CenterLng(),
                    phase.request.zoom_level);
      log.tiles.push_back(map.VisibleTiles());
      log.bounds.push_back(phase.request.bounds);
      log.zooms.push_back(phase.request.zoom_level);
    }
  }
  return log;
}

struct ReplayResult {
  double hit_rate = 0.0;
  /// Of the distinct tiles the prefetcher fetched speculatively, the
  /// fraction the user ever actually requested — Scout's bandwidth-waste
  /// angle: fetching empty ocean tiles costs I/O for nothing.
  double prefetch_precision = 0.0;
};

ReplayResult Replay(const RequestLog& log, const TablePtr& listings,
                    double direction_weight, double content_weight,
                    int fan_out) {
  ContentAwarePrefetcher::Options opts;
  opts.fan_out = fan_out;
  opts.direction_weight = direction_weight;
  opts.content_weight = content_weight;
  auto prefetcher =
      ContentAwarePrefetcher::Make(listings, "lat", "lng", opts);
  if (!prefetcher.ok()) std::abort();
  TileCache cache(64, EvictionPolicy::kLru);
  std::unordered_set<TileId, TileIdHash> prefetched, requested;
  for (size_t i = 0; i < log.tiles.size(); ++i) {
    for (const auto& tile : log.tiles[i]) {
      cache.Request(tile);
      requested.insert(tile);
    }
    if (i > 0) {
      auto move = ClassifyMove(log.bounds[i - 1], log.zooms[i - 1],
                               log.bounds[i], log.zooms[i]);
      if (move.ok()) prefetcher->Observe(*move);
    }
    for (const auto& tile :
         prefetcher->PrefetchCandidates(log.bounds[i], log.zooms[i])) {
      cache.Prefetch(tile);
      prefetched.insert(tile);
    }
  }
  ReplayResult out;
  out.hit_rate = cache.HitRate();
  if (!prefetched.empty()) {
    int64_t useful = 0;
    for (const auto& tile : prefetched) useful += requested.count(tile);
    out.prefetch_precision =
        static_cast<double>(useful) / static_cast<double>(prefetched.size());
  }
  return out;
}

void Run() {
  bench::PrintHeader(
      "A9", "Ablation — content-aware prefetching sensitivity (Scout-style)",
      "users navigate toward content, so weighting candidate tiles by the "
      "data beneath them wastes fewer speculative fetches than direction "
      "alone; the sweep shows how fan-out and the content weight trade "
      "off");

  TablePtr listings = bench::Listings();
  const RequestLog log = CollectRequests();
  std::printf("replaying %zu viewport requests (cache: 64 tiles, LRU)\n\n",
              log.tiles.size());

  TextTable table({"ranking", "fan-out 2", "fan-out 4", "fan-out 6",
                   "fan-out 10"});
  const struct {
    const char* label;
    double dir_w, content_w;
  } kRankings[] = {{"direction only", 1.0, 0.0},
                   {"content only", 0.0, 1.0},
                   {"combined (1:1)", 1.0, 1.0},
                   {"combined (1:2)", 1.0, 2.0}};
  for (const auto& ranking : kRankings) {
    std::vector<std::string> row = {ranking.label};
    for (int fan_out : {2, 4, 6, 10}) {
      const ReplayResult r =
          Replay(log, listings, ranking.dir_w, ranking.content_w, fan_out);
      row.push_back(StrFormat("%.3f / %.2f", r.hit_rate,
                              r.prefetch_precision));
    }
    table.AddRow(row);
  }
  std::printf("cell format: cache hit rate / prefetch precision\n%s\n",
              table.ToString().c_str());
  std::printf(
      "check: hit rates converge as fan-out exhausts the candidate "
      "geometry, but the *precision* column separates the rankings — "
      "content-aware prefetching wastes fewer fetches on tiles the user "
      "never visits (Scout's bandwidth argument), and the sweep shows the "
      "sensitivity of both to fan-out\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
