/// P1: google-benchmark microbenchmarks of the execution engine's real
/// (wall-clock) operator throughput — scans, filtered histograms, paged
/// joins — under both engine profiles. These measure the substrate itself,
/// complementing the modelled-time experiment benches.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "engine/engine.h"

namespace ideval {
namespace {

Engine* SharedEngine(EngineProfile profile) {
  static Engine* disk = [] {
    EngineOptions opts;
    opts.profile = EngineProfile::kDiskRowStore;
    auto* e = new Engine(opts);
    RoadNetworkOptions r;
    r.num_rows = 434874;
    (void)e->RegisterTable(MakeRoadNetworkTable(r).ValueOrDie());
    MoviesOptions m;
    auto movies = MakeMoviesTable(m).ValueOrDie();
    (void)e->RegisterTable(movies);
    auto split = SplitMoviesForJoin(movies).ValueOrDie();
    (void)e->RegisterTable(split.ratings);
    (void)e->RegisterTable(split.movies);
    return e;
  }();
  static Engine* mem = [] {
    EngineOptions opts;
    opts.profile = EngineProfile::kInMemoryColumnStore;
    auto* e = new Engine(opts);
    RoadNetworkOptions r;
    r.num_rows = 434874;
    (void)e->RegisterTable(MakeRoadNetworkTable(r).ValueOrDie());
    MoviesOptions m;
    auto movies = MakeMoviesTable(m).ValueOrDie();
    (void)e->RegisterTable(movies);
    auto split = SplitMoviesForJoin(movies).ValueOrDie();
    (void)e->RegisterTable(split.ratings);
    (void)e->RegisterTable(split.movies);
    return e;
  }();
  return profile == EngineProfile::kDiskRowStore ? disk : mem;
}

EngineProfile ProfileOf(const benchmark::State& state) {
  return state.range(0) == 0 ? EngineProfile::kDiskRowStore
                             : EngineProfile::kInMemoryColumnStore;
}

void BM_CrossfilterHistogram(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  HistogramQuery q;
  q.table = "dataroad";
  q.bin_column = "y";
  q.bin_lo = 56.582;
  q.bin_hi = 57.774;
  q.bins = 20;
  q.predicates = {RangePredicate{"x", 8.146, 10.0},
                  RangePredicate{"z", -8.608, 100.0}};
  int64_t tuples = 0;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    tuples += r->stats.tuples_scanned;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(tuples);
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_CrossfilterHistogram)->Arg(0)->Arg(1);

void BM_SelectPage(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  SelectQuery q;
  q.table = "imdb";
  q.limit = 100;
  q.offset = 2000;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_SelectPage)->Arg(0)->Arg(1);

void BM_JoinPage(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  JoinPageQuery q;
  q.left_table = "imdbrating";
  q.right_table = "movie";
  q.join_column = "id";
  q.limit = 100;
  q.offset = 2000;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_JoinPage)->Arg(0)->Arg(1);

void BM_SelectivitySweep(benchmark::State& state) {
  // Narrower x ranges -> fewer matches; scan cost stays (full scan), so
  // throughput should be flat while matched counts fall.
  Engine* engine = SharedEngine(EngineProfile::kInMemoryColumnStore);
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  HistogramQuery q;
  q.table = "dataroad";
  q.bin_column = "y";
  q.bin_lo = 56.582;
  q.bin_hi = 57.774;
  q.bins = 20;
  q.predicates = {
      RangePredicate{"x", 8.146, 8.146 + (11.2616367163 - 8.146) * frac}};
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectivitySweep)->Arg(10)->Arg(50)->Arg(100);

}  // namespace
}  // namespace ideval

BENCHMARK_MAIN();
