/// P1: google-benchmark microbenchmarks of the execution engine's real
/// (wall-clock) operator throughput — scans, filtered histograms, paged
/// joins — under both engine profiles. These measure the substrate itself,
/// complementing the modelled-time experiment benches.
///
/// `--zone_maps` (stripped before google-benchmark sees the argv) turns
/// on per-block min/max pruning in both shared engines; pruning-sensitive
/// benchmarks report a `pruned%` counter (blocks skipped / total). The
/// road table is registered twice — in generation order and re-sorted by
/// `x` — because zone maps only pay when the filter column is clustered:
/// compare BM_ZoneMapHistogram/0 (unclustered, pruned% near zero) against
/// /1 (clustered, pruned% tracking 1 - selectivity).
///
/// `--json_out=FILE` (also stripped) writes a schema-stable
/// `ideval.bench.engine.v1` JSON after the benchmarks run: per-shape
/// headline throughput over `--json_reps=N` repetitions plus the full
/// metrics-registry exposition. This is the engine half of the perf
/// trajectory; `bench_serve_saturation --json_out` is the serve half.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>

#include "bench/bench_util.h"
#include "common/json_writer.h"
#include "common/text_table.h"
#include "data/datasets.h"
#include "engine/engine.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace ideval {
namespace {

bool g_zone_maps = false;
std::string g_trace_out;
std::string g_json_out;
int g_json_reps = 25;

/// The road table re-sorted by `x`: the clustered layout on which a range
/// predicate on `x` makes most blocks prunable.
TablePtr RoadSortedByX(const TablePtr& road) {
  const std::vector<double>& x = road->column(0).double_data();
  std::vector<size_t> order(road->num_rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&x](size_t a, size_t b) { return x[a] < x[b]; });
  TableBuilder builder("dataroad_byx", road->schema());
  for (size_t c = 0; c < road->num_columns(); ++c) {
    const std::vector<double>& src = road->column(c).double_data();
    Column* dst = builder.mutable_column(c);
    for (size_t row : order) dst->AppendDouble(src[row]);
  }
  return std::move(builder).Finish().ValueOrDie();
}

Engine* MakeSharedEngine(EngineProfile profile) {
  EngineOptions opts;
  opts.profile = profile;
  opts.enable_zone_maps = g_zone_maps;
  auto* e = new Engine(opts);
  RoadNetworkOptions r;
  r.num_rows = 434874;
  TablePtr road = MakeRoadNetworkTable(r).ValueOrDie();
  (void)e->RegisterTable(road);
  (void)e->RegisterTable(RoadSortedByX(road));
  MoviesOptions m;
  auto movies = MakeMoviesTable(m).ValueOrDie();
  (void)e->RegisterTable(movies);
  auto split = SplitMoviesForJoin(movies).ValueOrDie();
  (void)e->RegisterTable(split.ratings);
  (void)e->RegisterTable(split.movies);
  return e;
}

Engine* SharedEngine(EngineProfile profile) {
  static Engine* disk = MakeSharedEngine(EngineProfile::kDiskRowStore);
  static Engine* mem = MakeSharedEngine(EngineProfile::kInMemoryColumnStore);
  return profile == EngineProfile::kDiskRowStore ? disk : mem;
}

/// Folds a response's block counters into the benchmark's `pruned%`.
void AddPruneCounters(benchmark::State& state, int64_t scanned,
                      int64_t pruned) {
  const int64_t total = scanned + pruned;
  state.counters["pruned%"] = benchmark::Counter(
      total > 0 ? 100.0 * static_cast<double>(pruned) /
                      static_cast<double>(total)
                : 0.0);
}

EngineProfile ProfileOf(const benchmark::State& state) {
  return state.range(0) == 0 ? EngineProfile::kDiskRowStore
                             : EngineProfile::kInMemoryColumnStore;
}

void BM_CrossfilterHistogram(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  HistogramQuery q;
  q.table = "dataroad";
  q.bin_column = "y";
  q.bin_lo = 56.582;
  q.bin_hi = 57.774;
  q.bins = 20;
  q.predicates = {RangePredicate{"x", 8.146, 10.0},
                  RangePredicate{"z", -8.608, 100.0}};
  int64_t tuples = 0;
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    tuples += r->stats.tuples_scanned;
    blocks_scanned += r->stats.blocks_scanned;
    blocks_pruned += r->stats.blocks_pruned;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(tuples);
  AddPruneCounters(state, blocks_scanned, blocks_pruned);
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_CrossfilterHistogram)->Arg(0)->Arg(1);

void BM_SelectPage(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  SelectQuery q;
  q.table = "imdb";
  q.limit = 100;
  q.offset = 2000;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_SelectPage)->Arg(0)->Arg(1);

void BM_JoinPage(benchmark::State& state) {
  Engine* engine = SharedEngine(ProfileOf(state));
  JoinPageQuery q;
  q.left_table = "imdbrating";
  q.right_table = "movie";
  q.join_column = "id";
  q.limit = 100;
  q.offset = 2000;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EngineProfileToString(ProfileOf(state)));
}
BENCHMARK(BM_JoinPage)->Arg(0)->Arg(1);

void BM_SelectivitySweep(benchmark::State& state) {
  // Narrower x ranges -> fewer matches; scan cost stays (full scan), so
  // throughput should be flat while matched counts fall.
  Engine* engine = SharedEngine(EngineProfile::kInMemoryColumnStore);
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  HistogramQuery q;
  q.table = "dataroad";
  q.bin_column = "y";
  q.bin_lo = 56.582;
  q.bin_hi = 57.774;
  q.bins = 20;
  q.predicates = {
      RangePredicate{"x", 8.146, 8.146 + (11.2616367163 - 8.146) * frac}};
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectivitySweep)->Arg(10)->Arg(50)->Arg(100);

void BM_ZoneMapHistogram(benchmark::State& state) {
  // A ~10%-selective x range on the road table in two layouts: arg 0 =
  // generation order (segments scattered, blocks span the full x range,
  // nothing prunes), arg 1 = sorted by x (clustered; with --zone_maps
  // ~90% of blocks prune and scan throughput rises accordingly). Results
  // are bitwise identical across all four combinations.
  Engine* engine = SharedEngine(EngineProfile::kInMemoryColumnStore);
  HistogramQuery q;
  q.table = state.range(0) == 0 ? "dataroad" : "dataroad_byx";
  q.bin_column = "y";
  q.bin_lo = 56.582;
  q.bin_hi = 57.774;
  q.bins = 20;
  q.predicates = {RangePredicate{"x", 8.146, 8.458}};
  int64_t tuples = 0;
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  for (auto _ : state) {
    auto r = engine->Execute(Query(q));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    tuples += r->stats.tuples_scanned;
    blocks_scanned += r->stats.blocks_scanned;
    blocks_pruned += r->stats.blocks_pruned;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(tuples);
  AddPruneCounters(state, blocks_scanned, blocks_pruned);
  state.SetLabel(state.range(0) == 0 ? "unclustered" : "clustered");
}
BENCHMARK(BM_ZoneMapHistogram)->Arg(0)->Arg(1);

/// Runs the three representative operator queries a few times each under a
/// standalone `TraceBuffer`, one trace per query with a `kExecute` span
/// carrying the engine's work stats, and exports the timeline. The same
/// file format the serve bench emits, so engine-only spans can be eyeballed
/// in ui.perfetto.dev without standing up a server.
int ExportEngineTrace(const std::string& path) {
  Engine* engine = SharedEngine(EngineProfile::kInMemoryColumnStore);
  TraceOptions topts;
  TraceBuffer buffer(topts);

  HistogramQuery hist;
  hist.table = "dataroad";
  hist.bin_column = "y";
  hist.bin_lo = 56.582;
  hist.bin_hi = 57.774;
  hist.bins = 20;
  hist.predicates = {RangePredicate{"x", 8.146, 10.0},
                     RangePredicate{"z", -8.608, 100.0}};
  SelectQuery page;
  page.table = "imdb";
  page.limit = 100;
  page.offset = 2000;
  JoinPageQuery join;
  join.left_table = "imdbrating";
  join.right_table = "movie";
  join.join_column = "id";
  join.limit = 100;
  join.offset = 2000;

  const Query queries[] = {Query(hist), Query(page), Query(join)};
  constexpr int kReps = 7;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const Query& q : queries) {
      const TraceContext ctx = MakeTraceContext(&buffer, /*session_id=*/1);
      Span exec(ctx, SpanKind::kExecute, /*parent_span_id=*/0);
      auto r = engine->Execute(q);
      if (!r.ok()) {
        std::fprintf(stderr, "trace query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      exec.SetAttrs(r->stats.tuples_scanned, r->stats.blocks_scanned,
                    r->stats.blocks_pruned);
    }
  }
  const Status exported = buffer.ExportChromeTrace(path);
  if (!exported.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  const TraceBufferStats stats = buffer.Stats();
  std::printf("engine trace: %lld spans -> %s\n",
              static_cast<long long>(stats.recorded), path.c_str());
  return 0;
}

/// The engine half of the perf trajectory (`ideval.bench.engine.v1`):
/// runs the three representative operator queries `g_json_reps` times
/// each on the in-memory profile, recording per-query wall time into a
/// registry histogram per shape, and writes headline throughput + the
/// exposition to `path`. Own measurement loop rather than
/// google-benchmark state so the export's schema (and runtime) is ours.
int ExportEngineJson(const std::string& path) {
  Engine* engine = SharedEngine(EngineProfile::kInMemoryColumnStore);
  MetricsRegistry registry;

  HistogramQuery hist;
  hist.table = "dataroad";
  hist.bin_column = "y";
  hist.bin_lo = 56.582;
  hist.bin_hi = 57.774;
  hist.bins = 20;
  hist.predicates = {RangePredicate{"x", 8.146, 10.0},
                     RangePredicate{"z", -8.608, 100.0}};
  SelectQuery page;
  page.table = "imdb";
  page.limit = 100;
  page.offset = 2000;
  JoinPageQuery join;
  join.left_table = "imdbrating";
  join.right_table = "movie";
  join.join_column = "id";
  join.limit = 100;
  join.offset = 2000;

  struct Shape {
    const char* name;
    Query query;
  };
  const Shape shapes[] = {{"crossfilter_histogram", Query(hist)},
                          {"select_page", Query(page)},
                          {"join_page", Query(join)}};

  // Sub-ms shapes need finer-than-default buckets.
  HistogramOptions hopts;
  hopts.first_bound = 0.01;
  hopts.growth = 2.0;
  hopts.num_bounds = 20;

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("ideval.bench.engine.v1");
  w.Key("bench").String("bench_perf_engine");
  w.Key("config").BeginObject();
  w.Key("profile").String("in_memory_column_store");
  w.Key("zone_maps").Bool(g_zone_maps);
  w.Key("reps").Int(g_json_reps);
  w.EndObject();
  w.Key("headline").BeginObject();
  for (const Shape& shape : shapes) {
    Histogram* h = registry.RegisterHistogram(
        StrFormat("ideval_engine_%s_ms", shape.name),
        StrFormat("Wall time per %s query (ms)", shape.name), hopts);
    double total_ms = 0.0;
    int64_t tuples = 0;
    int64_t blocks_scanned = 0;
    int64_t blocks_pruned = 0;
    for (int rep = 0; rep < g_json_reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto r = engine->Execute(shape.query);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "json query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      const double ms =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count() /
          1e6;
      h->Record(ms);
      total_ms += ms;
      tuples += r->stats.tuples_scanned;
      blocks_scanned += r->stats.blocks_scanned;
      blocks_pruned += r->stats.blocks_pruned;
    }
    const int64_t total_blocks = blocks_scanned + blocks_pruned;
    w.Key(shape.name).BeginObject();
    w.Key("mean_ms").Double(total_ms / g_json_reps);
    w.Key("qps").Double(total_ms > 0.0 ? g_json_reps / (total_ms / 1e3)
                                       : 0.0);
    w.Key("tuples_per_query").Int(tuples / g_json_reps);
    w.Key("pruned_pct")
        .Double(total_blocks > 0
                    ? 100.0 * static_cast<double>(blocks_pruned) /
                          static_cast<double>(total_blocks)
                    : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.Key("metrics").Raw(registry.ExpositionJson());
  w.EndObject();
  const std::string json = std::move(w).Finish();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("engine json: %d reps x %zu shapes, %zu bytes -> %s\n",
              g_json_reps, sizeof(shapes) / sizeof(shapes[0]), json.size(),
              path.c_str());
  return 0;
}

}  // namespace
}  // namespace ideval

int main(int argc, char** argv) {
  // Strip the flags google-benchmark would reject as unknown.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zone_maps") == 0 ||
        std::strcmp(argv[i], "--zone_maps=1") == 0) {
      ideval::g_zone_maps = true;
    } else if (std::strcmp(argv[i], "--zone_maps=0") == 0) {
      ideval::g_zone_maps = false;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      ideval::g_trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      ideval::g_json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--json_reps=", 12) == 0) {
      ideval::g_json_reps = std::atoi(argv[i] + 12);
      if (ideval::g_json_reps < 1) ideval::g_json_reps = 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!ideval::g_trace_out.empty()) {
    const int rc = ideval::ExportEngineTrace(ideval::g_trace_out);
    if (rc != 0) return rc;
  }
  if (!ideval::g_json_out.empty()) {
    return ideval::ExportEngineJson(ideval::g_json_out);
  }
  return 0;
}
