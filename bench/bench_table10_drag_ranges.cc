/// Reproduces Fig. 19 / Table 10: the ranges of latitude and longitude
/// change of the viewport's bound center between consecutive map requests,
/// faceted by zoom level 11–14. Deeper zooms move smaller distances,
/// which sizes the tiles worth prefetching.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "T10", "Table 10 / Fig. 19 — drag ranges of the bound center per zoom",
      "lat/lng deltas shrink with depth: zoom 11 ~[-0.10, 0.07] lat and "
      "[-0.2, 0.2] lng down to zoom 14 ~[-0.015, 0.013] lat");

  std::map<int, std::vector<double>> dlat, dlng;
  for (const auto& trace : bench::ExploreTraces()) {
    for (size_t i = 1; i < trace.phases.size(); ++i) {
      const auto& prev = trace.phases[i - 1].request;
      const auto& cur = trace.phases[i].request;
      // Only same-zoom map-to-map transitions are drags.
      if (cur.widget != WidgetKind::kMap) continue;
      if (prev.zoom_level != cur.zoom_level) continue;
      const int zoom = cur.zoom_level;
      if (zoom < 11 || zoom > 14) continue;
      const double lat_change =
          cur.bounds.CenterLat() - prev.bounds.CenterLat();
      const double lng_change =
          cur.bounds.CenterLng() - prev.bounds.CenterLng();
      if (lat_change == 0.0 && lng_change == 0.0) continue;
      dlat[zoom].push_back(lat_change);
      dlng[zoom].push_back(lng_change);
    }
  }

  TextTable table({"zoom", "latitude range", "longitude range", "# drags"});
  for (int zoom = 11; zoom <= 14; ++zoom) {
    Summary lat(dlat[zoom]);
    Summary lng(dlng[zoom]);
    table.AddRow({StrFormat("%d", zoom),
                  StrFormat("[%.3f, %.3f]", lat.min(), lat.max()),
                  StrFormat("[%.3f, %.3f]", lng.min(), lng.max()),
                  StrFormat("%zu", lat.count())});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper Table 10 for reference:\n");
  std::printf("  11: [-0.10, 0.07]   [-0.2, 0.2]\n");
  std::printf("  12: [-0.15, 0.07]   [-0.2, 0.2]\n");
  std::printf("  13: [-0.05, 0.03]   [-0.08, 0.05]\n");
  std::printf("  14: [-0.015, 0.013] [-0.02, 0.02]\n\n");
  const double z11 = Summary(dlat[11]).max();
  const double z14 = Summary(dlat[14]).max();
  std::printf("check: zoom-14 drags are ~%.0fx smaller than zoom-11 drags "
              "(paper: ~6x) -> prefetch fewer, finer tiles at depth\n",
              z11 / std::max(z14, 1e-9));
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
