/// Reproduces Fig. 8: maximum and average scrolling speed per user, in
/// tuples/second and pixels/second, users sorted by their maximum.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F8", "Fig. 8 — scrolling speed per user (max / average)",
      "per-user max speeds reach ~200 tuples/s (~31k px/s); averages sit "
      "far below the maxima");

  struct UserSpeeds {
    int user;
    double max_tuples, avg_tuples, max_px, avg_px;
  };
  std::vector<UserSpeeds> rows;
  const auto traces = bench::ScrollTraces();
  for (const auto& trace : traces) {
    const ScrollSpeeds speeds = ComputeScrollSpeeds(trace, 157.0);
    Summary px(speeds.px_per_s);
    Summary tuples(speeds.tuples_per_s);
    rows.push_back(UserSpeeds{trace.user_id, tuples.max(), tuples.mean(),
                              px.max(), px.mean()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const UserSpeeds& a, const UserSpeeds& b) {
              return a.max_tuples < b.max_tuples;
            });

  TextTable a({"user (sorted)", "max tuples/s", "avg tuples/s", "bar (max)"});
  double overall_max = rows.back().max_tuples;
  for (const auto& r : rows) {
    a.AddRow({StrFormat("%d", r.user), FormatDouble(r.max_tuples, 1),
              FormatDouble(r.avg_tuples, 1),
              AsciiBar(r.max_tuples, overall_max, 28)});
  }
  std::printf("(a) scrolling speed in # tuples\n%s\n", a.ToString().c_str());

  TextTable b({"user (sorted)", "max px/s", "avg px/s"});
  for (const auto& r : rows) {
    b.AddRow({StrFormat("%d", r.user), FormatDouble(r.max_px, 0),
              FormatDouble(r.avg_px, 0)});
  }
  std::printf("(b) scrolling speed in # pixels\n%s\n", b.ToString().c_str());

  std::printf("check: fastest user %.0f tuples/s (paper max 200); averages "
              "%.0f–%.0f tuples/s sit well below maxima\n",
              rows.back().max_tuples, rows.front().avg_tuples,
              rows.back().avg_tuples);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
