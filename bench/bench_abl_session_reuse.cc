/// Ablation A4: session-aware result reuse (§2.4). Consecutive queries in
/// interactive sessions are related — crossfilter users wiggle sliders
/// back and forth — so a Sesame-style session cache answers a share of the
/// workload without touching the backend. We replay real crossfilter
/// sessions through a session cache on both backends and report hit rate
/// and the backend time saved.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "opt/session_cache.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "A4", "Ablation — session-aware result reuse (Sesame-style, §2.4)",
      "consecutive interactive queries are related; reusing previous "
      "results yields large gains (the paper cites up to 25x) that no "
      "session-oblivious backend can see");

  TablePtr road = bench::Road();
  TextTable table({"device", "engine", "queries", "session-cache hits",
                   "hit rate", "backend time saved"});
  for (DeviceType device : {DeviceType::kMouse, DeviceType::kTouchTablet,
                            DeviceType::kLeapMotion}) {
    const auto groups = bench::CrossfilterGroups(
        road, device,
        bench::kCrossfilterSeed + static_cast<uint64_t>(device), 12);
    for (EngineProfile profile : {EngineProfile::kDiskRowStore,
                                  EngineProfile::kInMemoryColumnStore}) {
      EngineOptions eopts;
      eopts.profile = profile;
      Engine engine(eopts);
      if (!engine.RegisterTable(road).ok()) std::abort();
      SessionCache cache(&engine);
      int64_t queries = 0;
      for (const auto& g : groups) {
        for (const auto& q : g.queries) {
          auto r = cache.Execute(q);
          if (!r.ok()) std::abort();
          ++queries;
        }
      }
      table.AddRow(
          {DeviceTypeToString(device),
           profile == EngineProfile::kDiskRowStore ? "postgre-like"
                                                   : "mem-like",
           StrFormat("%lld", static_cast<long long>(queries)),
           StrFormat("%lld", static_cast<long long>(cache.hits())),
           FormatDouble(cache.HitRate(), 3),
           cache.TimeSaved().ToString()});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: reuse grows with device jitter — the unintended repeated "
      "queries of §2.3 (leap motion) are exactly what exact-match session "
      "reuse absorbs for free — and each disk-backend hit saves ~300 ms "
      "vs ~13 ms on the in-memory backend\n\n");

  // Second scenario: the user revisits their earlier analysis (replays
  // the same brushes). This is where session reuse shines even on smooth
  // devices.
  const auto groups = bench::CrossfilterGroups(
      road, DeviceType::kMouse, bench::kCrossfilterSeed, 12);
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(road).ok()) std::abort();
  SessionCache::Options copts;
  copts.capacity = 8192;  // Hold the whole session's result set.
  SessionCache cache(&engine, copts);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& g : groups) {
      for (const auto& q : g.queries) {
        if (!cache.Execute(q).ok()) std::abort();
      }
    }
  }
  std::printf("revisit scenario (same mouse session replayed twice on "
              "disk): hit rate %.3f, backend time saved %s\n",
              cache.HitRate(), cache.TimeSaved().ToString().c_str());
  std::printf("check: the second pass is answered almost entirely from "
              "the session cache (hit rate ~0.5 overall)\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
