/// Ablation A1: cache replacement policies for map tiles. §3.1.1 claims
/// eviction-only policies (LRU, FIFO) lose to predictive caching; we
/// replay the §8 composite sessions' tile requests against LRU, FIFO and
/// LRU + Markov prefetching at several cache capacities.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "prefetch/tile_cache.h"

namespace ideval {
namespace {

struct TileRequestLog {
  std::vector<std::vector<TileId>> per_request_tiles;
  std::vector<GeoBounds> bounds;
  std::vector<int> zooms;
};

TileRequestLog CollectTileRequests() {
  TileRequestLog log;
  for (const auto& trace : bench::ExploreTraces()) {
    for (const auto& phase : trace.phases) {
      const auto& r = phase.request;
      MapWidget map(r.bounds.CenterLat(), r.bounds.CenterLng(),
                    r.zoom_level);
      log.per_request_tiles.push_back(map.VisibleTiles());
      log.bounds.push_back(r.bounds);
      log.zooms.push_back(r.zoom_level);
    }
  }
  return log;
}

double Replay(const TileRequestLog& log, int64_t capacity,
              EvictionPolicy policy, bool predictive) {
  TileCache cache(capacity, policy);
  MarkovTilePrefetcher predictor;
  for (size_t i = 0; i < log.per_request_tiles.size(); ++i) {
    for (const auto& tile : log.per_request_tiles[i]) cache.Request(tile);
    if (!predictive) continue;
    if (i > 0) {
      auto move = ClassifyMove(log.bounds[i - 1], log.zooms[i - 1],
                               log.bounds[i], log.zooms[i]);
      if (move.ok()) predictor.Observe(*move);
    }
    for (const auto& tile :
         predictor.PrefetchCandidates(log.bounds[i], log.zooms[i])) {
      cache.Prefetch(tile);
    }
  }
  return cache.HitRate();
}

void Run() {
  bench::PrintHeader(
      "A1", "Ablation — tile-cache policies: LRU / FIFO / LRU+Markov",
      "eviction-based policies are not as effective as predictive "
      "caching (§3.1.1), because prefetching covers the next viewport "
      "before it is requested");

  const TileRequestLog log = CollectTileRequests();
  int64_t total_requests = 0;
  for (const auto& tiles : log.per_request_tiles) {
    total_requests += static_cast<int64_t>(tiles.size());
  }
  std::printf("replaying %lld tile requests from %zu viewport queries\n\n",
              static_cast<long long>(total_requests),
              log.per_request_tiles.size());

  TextTable table({"cache capacity", "FIFO hit rate", "LRU hit rate",
                   "LRU + Markov prefetch"});
  for (int64_t capacity : {16, 64, 256, 1024}) {
    table.AddRow(
        {StrFormat("%lld tiles", static_cast<long long>(capacity)),
         FormatDouble(Replay(log, capacity, EvictionPolicy::kFifo, false), 3),
         FormatDouble(Replay(log, capacity, EvictionPolicy::kLru, false), 3),
         FormatDouble(Replay(log, capacity, EvictionPolicy::kLru, true),
                      3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: the predictive column dominates both eviction-only "
              "columns at every capacity\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
