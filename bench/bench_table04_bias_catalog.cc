/// Reproduces Table 4: cognitive biases during user studies with their
/// mitigation measures, plus the Figs. 4–5 study-design decision trees
/// exercised over representative study goals.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "guidelines/advisor.h"
#include "guidelines/bias_catalog.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "T4", "Table 4 — cognitive biases during user studies",
      "participant-side: social desirability, anchoring, halo, attraction; "
      "experimenter-side: framing, selection, confirmation — each with a "
      "concrete mitigation");

  TextTable table({"side", "bias", "mitigation"});
  for (const auto& b : AllBiases()) {
    table.AddRow({BiasSideToString(b.side), CognitiveBiasToString(b.bias),
                  b.mitigation});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("threats to external validity (§4.2.2):\n");
  TextTable threats({"threat", "mitigation"});
  for (const auto& t : ExternalValidityThreats()) {
    threats.AddRow({t.name, t.mitigation});
  }
  std::printf("%s\n", threats.ToString().c_str());

  std::printf("study-design decisions (Figs. 4-5) for this paper's case "
              "studies:\n");
  TextTable design({"study", "setting (Fig. 4)", "structure (Fig. 5)"});
  {
    // Case study 2 compares devices -> device-dependent, in-person; the
    // backend results depend only on interaction sequences -> simulation
    // is valid for the replay experiments.
    StudySettingInputs setting;
    setting.device_dependent = true;
    StudyStructureInputs structure;
    structure.interactions_definitive = true;
    structure.all_navigation_patterns_testable = true;
    design.AddRow({"crossfilter device study",
                   StudySettingToString(RecommendStudySetting(setting)
                                            .setting),
                   StudyStructureToString(
                       RecommendStudyStructure(structure).structure)});
  }
  {
    // An exploratory-insight comparison depends on user ability ->
    // within-subject with counterbalancing.
    StudySettingInputs setting;
    setting.comparison_against_control = true;
    StudyStructureInputs structure;
    structure.task_depends_on_inherent_ability = true;
    design.AddRow({"insight-based system comparison",
                   StudySettingToString(RecommendStudySetting(setting)
                                            .setting),
                   StudyStructureToString(
                       RecommendStudyStructure(structure).structure)});
  }
  {
    // A population-phenomenon graphical-perception study -> remote.
    StudySettingInputs setting;
    StudyStructureInputs structure;
    design.AddRow({"graphical-perception crowd study",
                   StudySettingToString(RecommendStudySetting(setting)
                                            .setting),
                   StudyStructureToString(
                       RecommendStudyStructure(structure).structure)});
  }
  std::printf("%s\n", design.ToString().c_str());

  std::printf("pre-study checklist:\n");
  for (const auto& line : StudyProcedureChecklist()) {
    std::printf("  - %s\n", line.c_str());
  }
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
