/// Reproduces Tables 1 and 2: the survey of which metrics each interactive
/// data system's published evaluation reported (1997–2012 and
/// 2012–present), plus per-metric usage totals.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "guidelines/metric_catalog.h"

namespace ideval {
namespace {

void PrintSurvey(const char* title, const std::vector<SurveyedSystem>& rows) {
  std::printf("%s\n", title);
  TextTable table({"system", "year", "metrics reported"});
  for (const auto& sys : rows) {
    std::string metrics;
    for (size_t i = 0; i < sys.metrics.size(); ++i) {
      if (i) metrics += ", ";
      metrics += MetricToString(sys.metrics[i]);
    }
    table.AddRow({sys.name, StrFormat("%d", sys.year), metrics});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "T1/T2", "Tables 1–2 — metrics for data interaction, 1997–present",
      "user feedback and latency dominate; accuracy always co-occurs with "
      "latency; nothing in the surveyed literature measures LCV or QIF");

  PrintSurvey("Table 1: 1997-2012", SurveyTable1());
  PrintSurvey("Table 2: 2012-present", SurveyTable2());

  TextTable usage({"metric", "category", "# systems", ""});
  int64_t max_count = 0;
  for (const auto& info : AllMetricInfo()) {
    max_count = std::max(max_count, SurveyUsageCount(info.metric));
  }
  for (const auto& info : AllMetricInfo()) {
    const int64_t count = SurveyUsageCount(info.metric);
    usage.AddRow({MetricToString(info.metric),
                  MetricCategoryToString(info.category),
                  StrFormat("%lld", static_cast<long long>(count)),
                  AsciiBar(static_cast<double>(count),
                           static_cast<double>(max_count), 24)});
  }
  std::printf("usage across both tables:\n%s\n", usage.ToString().c_str());

  // The §3.4 observation: in Table 2's multi-metric evaluations, accuracy
  // tends to be reported together with latency (the accuracy/latency
  // trade-off of approximate systems).
  int accuracy_total = 0, accuracy_with_latency = 0;
  for (const auto& sys : SurveyTable2()) {
    bool has_acc = false, has_lat = false;
    for (Metric m : sys.metrics) {
      has_acc |= (m == Metric::kAccuracy);
      has_lat |= (m == Metric::kLatency);
    }
    accuracy_total += has_acc;
    accuracy_with_latency += (has_acc && has_lat);
  }
  std::printf("accuracy/latency co-occurrence (Table 2): %d of %d systems "
              "reporting accuracy also report latency\n",
              accuracy_with_latency, accuracy_total);
  std::printf("check: LCV usage count = %lld, QIF usage count = %lld "
              "(the gap that motivates the paper's new metrics)\n",
              static_cast<long long>(
                  SurveyUsageCount(Metric::kLatencyConstraintViolation)),
              static_cast<long long>(
                  SurveyUsageCount(Metric::kQueryIssuingFrequency)));
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
