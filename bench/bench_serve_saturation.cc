/// Live-server saturation sweep: the simulated Fig. 3 study rerun under
/// genuine concurrency. A `QueryServer` worker pool executes real
/// crossfilter query groups replayed by concurrent client threads; we
/// sweep workers × clients × admission policy and read off (1) the
/// throughput knee as workers are added, and (2) how much of the latency
/// -constraint violation (§7.2) skip-stale and throttling shave off at
/// saturation versus FIFO (the live analogue of Fig. 15).
///
/// A third sweep shards the backend: the same offered load against a
/// `ShardedEngine` of 1/2/4 `Engine` instances, reading off throughput,
/// the scatter/execute/merge phase split, and the shard-pool capacity
/// bound. On a multi-core host `--shards 4` should beat `--shards 1`
/// until the merge stage (serial per group) becomes the bound.
///
/// A fourth sweep measures the shared result cache: the same offered load
/// with sessions submitting overlapping query streams, cache off vs. on,
/// reading off the hit rate and where the throughput knee / p90 move.
///
/// A fifth sweep (`--net 1`) runs the saturation point twice — clients
/// submitting in-process vs. over loopback TCP through the `src/net/`
/// socket front-end — and prints the over-the-wire overhead (throughput,
/// QIF, p90, LCV) plus the byte counters from both ends of the socket,
/// which must reconcile exactly after the drain.
///
/// Wall-clock and machine-dependent by design; trace generation stays
/// seeded. Flags: `--threads N` caps the worker sweep (default: all
/// hardware threads); `--shards K` pins the shard sweep to a single K;
/// `--cache 1` turns the shared result cache on for every sweep;
/// `--zone_maps 1` turns engine zone-map pruning on for every sweep;
/// `--net 1` adds the loopback-vs-in-process comparison sweep;
/// `--smoke 1` runs one tiny configuration of each sweep (the ctest
/// `perf_smoke` mode); `--trace_out=FILE` additionally runs one traced
/// configuration (2 shards + shared cache + per-query tracing + slow-query
/// log), writes its span timeline to FILE as Chrome trace-event JSON
/// (open in ui.perfetto.dev), and prints the tracing on/off throughput
/// delta; `--json_out=FILE` runs one saturation configuration with the
/// metrics registry + stats poller off then on, prints that overhead
/// delta, and writes the schema-stable machine-readable result
/// (`ideval.bench.serve.v1`: config, headline metrics, per-period time
/// series, metric exposition) to FILE — the repo's `BENCH_serve.json`
/// perf trajectory.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json_writer.h"
#include "common/text_table.h"
#include "engine/sharded_engine.h"
#include "net/net_load_driver.h"
#include "net/net_server.h"
#include "obs/metrics_registry.h"
#include "serve/load_driver.h"
#include "serve/server.h"

namespace ideval {
namespace {

constexpr double kCompression = 120.0;  // ~100 s of trace -> ~1 s wall.

/// Flag-driven toggles applied to every sweep.
struct BenchConfig {
  int max_workers = 1;
  int pinned_shards = 0;
  bool cache = false;
  bool zone_maps = false;
  bool net = false;
  bool smoke = false;
  std::string trace_out;  ///< Empty = skip the traced run.
  std::string json_out;   ///< Empty = skip the BENCH_serve.json export.

  int64_t rows() const { return smoke ? 20000 : 120000; }
  int moves() const { return smoke ? 4 : 10; }
};

/// One sweep point's results: the load report plus the backend's pruning
/// totals (the cache counters ride inside the report's snapshot).
struct RunResult {
  LoadReport load;
  ScanPruneTotals prune;
};

std::string PrunedCell(const ScanPruneTotals& prune) {
  if (prune.blocks_scanned + prune.blocks_pruned == 0) return "-";
  return FormatDouble(prune.PrunedFraction() * 100.0, 1);
}

std::string HitRateCell(const ServerStatsSnapshot& s) {
  if (!s.result_cache_enabled) return "-";
  return FormatDouble(s.result_cache.HitRate() * 100.0, 1);
}

RunResult MustRun(const BenchConfig& cfg, const TablePtr& road, int workers,
                  int clients, AdmissionPolicy policy, int shards = 1,
                  bool shared_trace = false) {
  EngineOptions eopts;
  eopts.profile = EngineProfile::kInMemoryColumnStore;
  eopts.enable_zone_maps = cfg.zone_maps;
  Engine engine(eopts);
  std::unique_ptr<ShardedEngine> sharded;
  if (shards > 1) {
    ShardedEngineOptions shopts;
    shopts.num_shards = shards;
    shopts.engine_options = eopts;
    auto made = ShardedEngine::Create(shopts);
    if (!made.ok() || !(*made)->PartitionTable(road).ok()) std::abort();
    sharded = std::move(*made);
  } else {
    if (!engine.RegisterTable(road).ok()) std::abort();
  }

  ServerOptions sopts;
  sopts.num_workers = workers;
  sopts.max_queue_per_session = 4;
  sopts.policy = policy;
  sopts.enable_shared_cache = cfg.cache;
  // Scale the §3.1.2 shaper to compressed time so it bites the same
  // fraction of interactions it would live.
  sopts.throttle_min_interval = Duration::Seconds(1.0 / kCompression);
  sopts.debounce_quiet = Duration::Seconds(0.3 / kCompression);
  auto server = sharded != nullptr
                    ? QueryServer::Create(sharded.get(), sopts)
                    : QueryServer::Create(&engine, sopts);
  if (!server.ok()) std::abort();

  std::vector<std::vector<QueryGroup>> sessions;
  sessions.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    // shared_trace: every client replays the same seeded session, the
    // repeated-query regime where cross-session reuse can pay.
    const uint64_t seed = bench::kCrossfilterSeed + 300 +
                          (shared_trace ? 0 : static_cast<uint64_t>(c));
    sessions.push_back(bench::CrossfilterGroups(road, DeviceType::kMouse,
                                                seed, cfg.moves()));
  }
  LoadDriverOptions lopts;
  lopts.time_compression = kCompression;
  auto report = RunLoadDriver(server->get(), sessions, lopts);
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
    std::abort();
  }
  RunResult out;
  out.load = std::move(report).ValueOrDie();
  out.prune =
      sharded != nullptr ? sharded->PruneTotals() : engine.PruneTotals();
  return out;
}

/// One over-the-wire sweep point: the same offered load as `MustRun`, but
/// every client is a real `NetClient` on its own loopback TCP connection
/// through a `NetServer` front-end on an ephemeral port.
struct NetRunResult {
  ServerStatsSnapshot snapshot;  ///< Drained, with the net block filled.
  NetLoadReport net;
};

NetRunResult MustRunNet(const BenchConfig& cfg, const TablePtr& road,
                        int workers, int clients, AdmissionPolicy policy) {
  EngineOptions eopts;
  eopts.profile = EngineProfile::kInMemoryColumnStore;
  eopts.enable_zone_maps = cfg.zone_maps;
  Engine engine(eopts);
  if (!engine.RegisterTable(road).ok()) std::abort();

  ServerOptions sopts;
  sopts.num_workers = workers;
  sopts.max_queue_per_session = 4;
  sopts.policy = policy;
  sopts.enable_shared_cache = cfg.cache;
  sopts.throttle_min_interval = Duration::Seconds(1.0 / kCompression);
  sopts.debounce_quiet = Duration::Seconds(0.3 / kCompression);
  auto server = QueryServer::Create(&engine, sopts);
  if (!server.ok()) std::abort();

  auto net = NetServer::Start(server->get(), NetServerOptions{});
  if (!net.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", net.status().ToString().c_str());
    std::abort();
  }

  std::vector<std::vector<QueryGroup>> sessions;
  sessions.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    sessions.push_back(bench::CrossfilterGroups(
        road, DeviceType::kMouse,
        bench::kCrossfilterSeed + 300 + static_cast<uint64_t>(c),
        cfg.moves()));
  }
  NetLoadDriverOptions nlopts;
  nlopts.port = (*net)->port();
  nlopts.time_compression = kCompression;
  auto report = RunNetLoadDriver(sessions, nlopts);
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
    std::abort();
  }
  (*server)->Drain();
  // Stop the front-end before reading its counters: the join gives the
  // reads a happens-after edge past the loop thread's final flush/reap.
  (*net)->Stop();
  NetRunResult out;
  out.snapshot = (*server)->Snapshot();
  (*net)->FillSnapshot(&out.snapshot);
  (*server)->Stop();
  out.net = std::move(*report);
  return out;
}

void RunNetSweep(const BenchConfig& cfg, const TablePtr& road) {
  const int clients = cfg.smoke ? 4 : 12;
  std::printf(
      "net front-end, 2 workers, %d clients, fifo — in-process submission "
      "vs loopback TCP (src/net/):\n", clients);
  TextTable table({"mode", "throughput (q/s)", "QIF (q/s)",
                   "p90 latency (ms)", "LCV %", "executed", "shed"});
  const auto in_proc = MustRun(cfg, road, 2, clients, AdmissionPolicy::kFifo);
  const auto& si = in_proc.load.snapshot;
  table.AddRow({"in-process", FormatDouble(si.throughput_qps, 1),
                FormatDouble(si.qif_qps, 1),
                FormatDouble(si.latency_p90_ms, 1),
                FormatDouble(si.lcv_fraction * 100.0, 1),
                StrFormat("%lld",
                          static_cast<long long>(si.totals.groups_executed)),
                StrFormat("%lld",
                          static_cast<long long>(si.totals.GroupsShed()))});
  const auto over = MustRunNet(cfg, road, 2, clients, AdmissionPolicy::kFifo);
  const auto& sn = over.snapshot;
  table.AddRow({"loopback", FormatDouble(sn.throughput_qps, 1),
                FormatDouble(sn.qif_qps, 1),
                FormatDouble(sn.latency_p90_ms, 1),
                FormatDouble(sn.lcv_fraction * 100.0, 1),
                StrFormat("%lld",
                          static_cast<long long>(sn.totals.groups_executed)),
                StrFormat("%lld",
                          static_cast<long long>(sn.totals.GroupsShed()))});
  std::printf("%s\n", table.ToString().c_str());

  const NetClientStats& cw = over.net.wire_totals;
  const NetStatsSnapshot& sw = sn.net;
  const bool reconciled = cw.bytes_sent == sw.bytes_received &&
                          cw.bytes_received == sw.bytes_sent &&
                          cw.frames_sent == sw.frames_received &&
                          cw.frames_received == sw.frames_sent;
  int64_t interactions = 0;
  for (const auto& c : over.net.clients) interactions += c.submitted;
  const double bytes_per_interaction =
      interactions > 0
          ? static_cast<double>(sw.bytes_sent + sw.bytes_received) /
                static_cast<double>(interactions)
          : 0.0;
  std::printf(
      "  wire: client sent %lld B / recv %lld B; server sent %lld B / "
      "recv %lld B — byte+frame counters %s\n",
      static_cast<long long>(cw.bytes_sent),
      static_cast<long long>(cw.bytes_received),
      static_cast<long long>(sw.bytes_sent),
      static_cast<long long>(sw.bytes_received),
      reconciled ? "reconcile" : "DO NOT RECONCILE");
  std::printf(
      "  wire: %lld interactions, %.1f B/interaction; completions "
      "executed %lld / shed %lld / dropped %lld; write-queue shed %lld, "
      "protocol errors %lld\n",
      static_cast<long long>(interactions), bytes_per_interaction,
      static_cast<long long>(cw.completions_executed),
      static_cast<long long>(cw.completions_shed),
      static_cast<long long>(cw.completions_dropped),
      static_cast<long long>(sw.write_queue_shed),
      static_cast<long long>(sw.protocol_errors));
  if (!reconciled) std::abort();
  std::printf(
      "check: the loopback row pays encode+syscall+decode per interaction "
      "— throughput and p90 shift by the wire overhead while LCV stays in "
      "the same regime; the byte counters from the two ends of the socket "
      "agree exactly after the drain\n\n");
}

void RunWorkerSweep(const BenchConfig& cfg, const TablePtr& road) {
  std::printf("worker scaling, 12 clients, fifo (throughput knee):\n");
  TextTable table({"workers", "throughput (q/s)", "p90 latency (ms)",
                   "rejected", "LCV %", "hit %", "pruned %"});
  for (int workers = 1; workers <= cfg.max_workers; workers *= 2) {
    const auto r = MustRun(cfg, road, workers, 12, AdmissionPolicy::kFifo);
    const auto& s = r.load.snapshot;
    table.AddRow({StrFormat("%d", workers),
                  FormatDouble(s.throughput_qps, 1),
                  FormatDouble(s.latency_p90_ms, 1),
                  StrFormat("%lld", static_cast<long long>(
                                        s.totals.groups_rejected)),
                  FormatDouble(s.lcv_fraction * 100.0, 1), HitRateCell(s),
                  PrunedCell(r.prune)});
    if (cfg.smoke) break;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: throughput climbs with workers, then flattens at the knee "
      "where the offered load (not the pool) is the limit\n\n");
}

void RunPolicySweep(const BenchConfig& cfg, const TablePtr& road) {
  std::printf("admission policy at saturation (2 workers):\n");
  TextTable table({"clients", "policy", "executed", "shed", "rejected",
                   "p90 latency (ms)", "LCV %"});
  const AdmissionPolicy kPolicies[] = {
      AdmissionPolicy::kFifo, AdmissionPolicy::kSkipStale,
      AdmissionPolicy::kThrottle, AdmissionPolicy::kDebounce};
  for (int clients : {4, 12}) {
    for (AdmissionPolicy policy : kPolicies) {
      const auto r = MustRun(cfg, road, 2, clients, policy);
      const auto& s = r.load.snapshot;
      table.AddRow(
          {StrFormat("%d", clients), AdmissionPolicyToString(policy),
           StrFormat("%lld",
                     static_cast<long long>(s.totals.groups_executed)),
           StrFormat("%lld", static_cast<long long>(s.totals.GroupsShed())),
           StrFormat("%lld",
                     static_cast<long long>(s.totals.groups_rejected)),
           FormatDouble(s.latency_p90_ms, 1),
           FormatDouble(s.lcv_fraction * 100.0, 1)});
      if (cfg.smoke) break;
    }
    table.AddSeparator();
    if (cfg.smoke) break;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: at 12 clients, skip/throttle/debounce keep LCV%% below "
      "fifo — shedding stale work beats queueing it (Fig. 15's ordering, "
      "live)\n");
}

void RunShardSweep(const BenchConfig& cfg, const TablePtr& road) {
  std::printf("shard scaling, 2 workers, 12 clients, fifo "
              "(scatter/execute/merge split):\n");
  TextTable table({"shards", "throughput (q/s)", "p90 latency (ms)",
                   "scatter (ms)", "execute (ms)", "merge (ms)",
                   "shard-pool cap (g/s)"});
  std::vector<int> ks = cfg.pinned_shards > 0
                            ? std::vector<int>{cfg.pinned_shards}
                        : cfg.smoke ? std::vector<int>{2}
                                    : std::vector<int>{1, 2, 4};
  for (int k : ks) {
    const auto r = MustRun(cfg, road, 2, 12, AdmissionPolicy::kFifo, k);
    const auto& s = r.load.snapshot;
    table.AddRow({StrFormat("%d", k), FormatDouble(s.throughput_qps, 1),
                  FormatDouble(s.latency_p90_ms, 1),
                  FormatDouble(s.scatter_mean_ms, 3),
                  FormatDouble(s.execute_mean_ms, 3),
                  FormatDouble(s.merge_mean_ms, 3),
                  s.load.shard_exec_capacity_qps > 0.0
                      ? FormatDouble(s.load.shard_exec_capacity_qps, 1)
                      : std::string("-")});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: on a multi-core host the knee moves right as shards are "
      "added (execute shrinks ~1/K) until the serial merge stage or the "
      "core count caps it; on one core sharding only adds scatter/merge "
      "overhead\n\n");
}

void RunCacheSweep(const BenchConfig& cfg, const TablePtr& road) {
  std::printf(
      "shared result cache, 2 workers, fifo, clients replay the same "
      "session (repeated-query regime):\n");
  TextTable table({"clients", "cache", "throughput (q/s)",
                   "p90 latency (ms)", "hit %", "coalesced",
                   "capacity (g/s)"});
  const std::vector<int> client_counts =
      cfg.smoke ? std::vector<int>{2} : std::vector<int>{4, 12};
  for (int clients : client_counts) {
    for (bool cache : {false, true}) {
      BenchConfig point = cfg;
      point.cache = cache;
      const auto r = MustRun(point, road, 2, clients, AdmissionPolicy::kFifo,
                             /*shards=*/1, /*shared_trace=*/true);
      const auto& s = r.load.snapshot;
      table.AddRow({StrFormat("%d", clients), cache ? "on" : "off",
                    FormatDouble(s.throughput_qps, 1),
                    FormatDouble(s.latency_p90_ms, 1), HitRateCell(s),
                    s.result_cache_enabled
                        ? StrFormat("%lld", static_cast<long long>(
                                                s.result_cache.coalesced))
                        : std::string("-"),
                    s.load.capacity_qps > 0.0
                        ? FormatDouble(s.load.capacity_qps, 1)
                        : std::string("-")});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: with the cache on, repeated interactions hit instead of "
      "rescanning — hit%% climbs, p90 drops, and the capacity estimate "
      "(the knee) rises because the service-time EWMA shrinks on hits\n\n");
}

/// One traced configuration, run twice — tracing off then on — so the
/// overhead of the instrumentation itself is a printed number, not a
/// claim. The traced pass exports its ring buffer to `path` and prints
/// the slow-query log. 2 shards + shared cache puts every span kind on
/// the timeline: admission and queue-wait from the server, cache lookups
/// (hit/miss/coalesced), and scatter/shard/merge under each miss.
void RunTraced(const BenchConfig& cfg, const TablePtr& road,
               const std::string& path) {
  const int clients = cfg.smoke ? 4 : 12;
  std::printf(
      "traced run: 2 workers, 2 shards, shared cache on, %d clients "
      "replaying the same session:\n", clients);

  double qps_off = 0.0;
  double qps_on = 0.0;
  for (const bool tracing : {false, true}) {
    EngineOptions eopts;
    eopts.profile = EngineProfile::kInMemoryColumnStore;
    eopts.enable_zone_maps = cfg.zone_maps;
    ShardedEngineOptions shopts;
    shopts.num_shards = 2;
    shopts.engine_options = eopts;
    auto made = ShardedEngine::Create(shopts);
    if (!made.ok() || !(*made)->PartitionTable(road).ok()) std::abort();
    std::unique_ptr<ShardedEngine> sharded = std::move(*made);

    ServerOptions sopts;
    sopts.num_workers = 2;
    sopts.max_queue_per_session = 4;
    sopts.policy = AdmissionPolicy::kFifo;
    sopts.enable_shared_cache = true;
    sopts.enable_tracing = tracing;
    // Low threshold on purpose: a bench exists to produce log entries.
    // Enabled in both passes so the printed delta isolates tracing.
    sopts.slow_query_ms = 5.0;
    auto server = QueryServer::Create(sharded.get(), sopts);
    if (!server.ok()) std::abort();

    std::vector<std::vector<QueryGroup>> sessions;
    sessions.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      sessions.push_back(bench::CrossfilterGroups(
          road, DeviceType::kMouse, bench::kCrossfilterSeed + 300,
          cfg.moves()));
    }
    LoadDriverOptions lopts;
    lopts.time_compression = kCompression;
    auto report = RunLoadDriver(server->get(), sessions, lopts);
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    (tracing ? qps_on : qps_off) = report->snapshot.throughput_qps;

    if (tracing) {
      TraceBuffer* buffer = (*server)->trace_buffer();
      const TraceBufferStats tstats = buffer->Stats();
      const Status exported = buffer->ExportChromeTrace(path);
      if (!exported.ok()) {
        std::fprintf(stderr, "FATAL: trace export: %s\n",
                     exported.ToString().c_str());
        std::abort();
      }
      std::printf(
          "  spans recorded %lld (dropped %lld, buffer %lld/%lld) -> %s\n",
          static_cast<long long>(tstats.recorded),
          static_cast<long long>(tstats.dropped),
          static_cast<long long>(tstats.live),
          static_cast<long long>(tstats.capacity), path.c_str());
      const SlowQueryLog* slow = (*server)->slow_query_log();
      if (slow != nullptr && slow->logged() > 0) {
        std::printf("  slow-query log (threshold %.1f ms, %lld logged; "
                    "first entries):\n",
                    slow->options().threshold.millis(),
                    static_cast<long long>(slow->logged()));
        // Saturated runs log hundreds of LCV entries; print the head.
        const std::string text = slow->ToText();
        int lines = 0;
        size_t pos = 0;
        constexpr int kMaxLines = 14;
        while (pos < text.size() && lines < kMaxLines) {
          size_t nl = text.find('\n', pos);
          if (nl == std::string::npos) nl = text.size();
          std::printf("%.*s\n", static_cast<int>(nl - pos), &text[pos]);
          pos = nl + 1;
          ++lines;
        }
        if (pos < text.size()) std::printf("  ...\n");
      }
    }
    (*server)->Stop();
  }
  const double delta =
      qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  std::printf(
      "  throughput: tracing off %.1f q/s, on %.1f q/s (delta %+.1f%%)\n",
      qps_off, qps_on, delta);
  std::printf(
      "check: the delta stays within run-to-run noise (a span is two "
      "clock reads and one ring slot); open the JSON in ui.perfetto.dev "
      "and follow one trace_id from admission to merge\n\n");
}

/// The machine-readable export behind the repo's perf trajectory: one
/// saturation configuration run twice — metrics+poller off, then on —
/// so the telemetry overhead is itself a recorded number, then the on
/// pass's registry, per-period time series, and headline metrics written
/// to `path` as schema-stable JSON (`ideval.bench.serve.v1`), validated
/// by the `perf_smoke_json` ctest against the committed baseline.
void RunJsonExport(const BenchConfig& cfg, const TablePtr& road,
                   const std::string& path) {
  const int clients = cfg.smoke ? 4 : 12;
  const int workers = 2;
  const int reps = cfg.smoke ? 1 : 5;  // Off/on pairs; medians reported.
  const double poll_ms = 50.0;  // Compressed time: ~dozens of samples.
  std::printf(
      "json export: %d workers, %d clients, fifo, shared cache %s — "
      "metrics+poller off vs on (%d pairs, medians):\n",
      workers, clients, cfg.cache ? "on" : "off", reps);

  std::vector<double> qps_off_runs;
  std::vector<double> qps_on_runs;
  // The last on pass's state outlives the loop for the export below.
  // Each on pass gets a fresh registry so the exported exposition is
  // exactly one run's counters (a shared instance would aggregate reps,
  // and the global one any other server in the process).
  std::unique_ptr<MetricsRegistry> registry;
  LoadReport on_report;
  std::string series_json;
  std::string exposition_json;
  int64_t series_samples = 0;
  double wall_seconds = 0.0;

  for (int rep = 0; rep < reps; ++rep) {
    for (const bool metrics : {false, true}) {
      EngineOptions eopts;
      eopts.profile = EngineProfile::kInMemoryColumnStore;
      eopts.enable_zone_maps = cfg.zone_maps;
      Engine engine(eopts);
      if (!engine.RegisterTable(road).ok()) std::abort();

      ServerOptions sopts;
      sopts.num_workers = workers;
      sopts.max_queue_per_session = 4;
      sopts.policy = AdmissionPolicy::kFifo;
      sopts.enable_shared_cache = cfg.cache;
      sopts.throttle_min_interval = Duration::Seconds(1.0 / kCompression);
      sopts.debounce_quiet = Duration::Seconds(0.3 / kCompression);
      if (metrics) {
        registry = std::make_unique<MetricsRegistry>();
        sopts.enable_metrics = true;
        sopts.metrics_registry = registry.get();
        sopts.stats_poll_ms = poll_ms;
      }
      auto server = QueryServer::Create(&engine, sopts);
      if (!server.ok()) std::abort();

      std::vector<std::vector<QueryGroup>> sessions;
      sessions.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        sessions.push_back(bench::CrossfilterGroups(
            road, DeviceType::kMouse,
            bench::kCrossfilterSeed + 300 + static_cast<uint64_t>(c),
            cfg.moves()));
      }
      LoadDriverOptions lopts;
      lopts.time_compression = kCompression;
      auto report = RunLoadDriver(server->get(), sessions, lopts);
      if (!report.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     report.status().ToString().c_str());
        std::abort();
      }
      (metrics ? qps_on_runs : qps_off_runs)
          .push_back(report->snapshot.throughput_qps);
      std::printf("  pair %d %s: %.1f q/s\n", rep,
                  metrics ? "on " : "off", report->snapshot.throughput_qps);
      (*server)->Stop();
      if (metrics && rep == reps - 1) {
        // The poller stopped with the workers, so the series is now
        // quiescent and ends on the drained state. The snapshot in the
        // report is pre-stop and fully drained; headline metrics come
        // from there.
        const TimeSeriesRing* ring = (*server)->timeseries();
        series_samples = ring->pushed();
        series_json = ring->ToJson();
        exposition_json = registry->ExpositionJson();
        on_report = std::move(*report);
        wall_seconds = on_report.wall_seconds;
      }
    }
  }

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double qps_off = median(qps_off_runs);
  const double qps_on = median(qps_on_runs);
  const double delta =
      qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  std::printf(
      "  throughput: metrics off %.1f q/s, on %.1f q/s (delta %+.1f%%)\n",
      qps_off, qps_on, delta);

  // The same configuration once more, over loopback TCP, so the export
  // carries the wire overhead and the (exactly reconciled) byte counters
  // alongside the in-process numbers. Metrics stay off here: the
  // exposition block above must describe exactly the last in-process run.
  const NetRunResult net_run =
      MustRunNet(cfg, road, workers, clients, AdmissionPolicy::kFifo);
  const ServerStatsSnapshot& ns = net_run.snapshot;
  const NetClientStats& cw = net_run.net.wire_totals;
  const NetStatsSnapshot& sw = ns.net;
  if (cw.bytes_sent != sw.bytes_received ||
      cw.bytes_received != sw.bytes_sent) {
    std::fprintf(stderr, "FATAL: net byte counters do not reconcile\n");
    std::abort();
  }
  int64_t net_interactions = 0;
  for (const auto& c : net_run.net.clients) net_interactions += c.submitted;
  const double net_delta =
      qps_on > 0.0
          ? (qps_on - ns.throughput_qps) / qps_on * 100.0
          : 0.0;
  std::printf(
      "  net: loopback %.1f q/s vs in-process %.1f q/s (delta %+.1f%%), "
      "%lld B sent / %lld B recv server-side\n",
      ns.throughput_qps, qps_on, net_delta,
      static_cast<long long>(sw.bytes_sent),
      static_cast<long long>(sw.bytes_received));

  const ServerStatsSnapshot& s = on_report.snapshot;
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("ideval.bench.serve.v1");
  w.Key("bench").String("bench_serve_saturation");
  w.Key("config").BeginObject();
  w.Key("workers").Int(workers);
  w.Key("clients").Int(clients);
  w.Key("shards").Int(1);
  w.Key("policy").String("fifo");
  w.Key("shared_cache").Bool(cfg.cache);
  w.Key("zone_maps").Bool(cfg.zone_maps);
  w.Key("smoke").Bool(cfg.smoke);
  w.Key("rows").Int(cfg.rows());
  w.Key("moves").Int(cfg.moves());
  w.Key("time_compression").Double(kCompression);
  w.Key("stats_poll_ms").Double(poll_ms);
  w.EndObject();
  w.Key("overhead").BeginObject();
  w.Key("qps_metrics_off").Double(qps_off);
  w.Key("qps_metrics_on").Double(qps_on);
  w.Key("delta_pct").Double(delta);
  w.EndObject();
  w.Key("net").BeginObject();
  w.Key("qps_in_process").Double(qps_on);
  w.Key("qps_net").Double(ns.throughput_qps);
  w.Key("delta_pct").Double(net_delta);
  w.Key("qif_net_qps").Double(ns.qif_qps);
  w.Key("latency_p90_net_ms").Double(ns.latency_p90_ms);
  w.Key("lcv_fraction_net").Double(ns.lcv_fraction);
  w.Key("groups_executed_net").Int(ns.totals.groups_executed);
  w.Key("server_bytes_sent").Int(sw.bytes_sent);
  w.Key("server_bytes_received").Int(sw.bytes_received);
  w.Key("client_bytes_sent").Int(cw.bytes_sent);
  w.Key("client_bytes_received").Int(cw.bytes_received);
  w.Key("frames_sent").Int(sw.frames_sent);
  w.Key("frames_received").Int(sw.frames_received);
  w.Key("connections_accepted").Int(sw.connections_accepted);
  w.Key("write_queue_shed").Int(sw.write_queue_shed);
  w.Key("protocol_errors").Int(sw.protocol_errors);
  w.Key("interactions").Int(net_interactions);
  w.Key("bytes_per_interaction")
      .Double(net_interactions > 0
                  ? static_cast<double>(sw.bytes_sent + sw.bytes_received) /
                        static_cast<double>(net_interactions)
                  : 0.0);
  w.EndObject();
  w.Key("headline").BeginObject();
  w.Key("throughput_qps").Double(s.throughput_qps);
  w.Key("throughput_window_qps").Double(s.throughput_window_qps);
  w.Key("qif_qps").Double(s.qif_qps);
  w.Key("latency_mean_ms").Double(s.latency_mean_ms);
  w.Key("latency_p50_ms").Double(s.latency_p50_ms);
  w.Key("latency_p90_ms").Double(s.latency_p90_ms);
  w.Key("latency_max_ms").Double(s.latency_max_ms);
  w.Key("service_mean_ms").Double(s.service_mean_ms);
  w.Key("lcv_fraction").Double(s.lcv_fraction);
  w.Key("groups_submitted").Int(s.totals.groups_submitted);
  w.Key("groups_executed").Int(s.totals.groups_executed);
  w.Key("groups_shed").Int(s.totals.GroupsShed());
  w.Key("groups_rejected").Int(s.totals.groups_rejected);
  w.Key("queries_executed").Int(s.totals.queries_executed);
  w.Key("cache_hit_rate")
      .Double(s.result_cache_enabled ? s.result_cache.HitRate() : -1.0);
  w.Key("wall_seconds").Double(wall_seconds);
  w.EndObject();
  w.Key("series").BeginObject();
  w.Key("period_ms").Double(poll_ms);
  w.Key("pushed").Int(series_samples);
  w.Key("samples").Raw(series_json);
  w.EndObject();
  w.Key("metrics").Raw(exposition_json);
  w.EndObject();
  const std::string json = std::move(w).Finish();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", path.c_str());
    std::abort();
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  %lld time-series samples, %zu bytes -> %s\n\n",
              static_cast<long long>(series_samples), json.size(),
              path.c_str());
}

void Run(const BenchConfig& cfg) {
  bench::PrintHeader(
      "SRV", "Live query server — saturation sweep over workers x clients "
             "x admission policy",
      "a worker pool saturates at a throughput knee; past it, FIFO "
      "queueing inflates latency-constraint violations while skip-stale "
      "and throttling shed load and keep responses fresh (Fig. 3 run as "
      "a control loop)");
  std::printf("hardware threads: %u (worker scaling cannot exceed them)\n",
              std::thread::hardware_concurrency());
  std::printf("shared result cache: %s; zone-map pruning: %s%s\n\n",
              cfg.cache ? "on" : "off", cfg.zone_maps ? "on" : "off",
              cfg.smoke ? "; smoke mode (tiny sweep)" : "");
  TablePtr road = bench::RoadScaled(cfg.rows());
  RunWorkerSweep(cfg, road);
  RunShardSweep(cfg, road);
  RunCacheSweep(cfg, road);
  RunPolicySweep(cfg, road);
  if (cfg.net) RunNetSweep(cfg, road);
  if (!cfg.trace_out.empty()) RunTraced(cfg, road, cfg.trace_out);
  if (!cfg.json_out.empty()) RunJsonExport(cfg, road, cfg.json_out);
}

}  // namespace
}  // namespace ideval

int main(int argc, char** argv) {
  ideval::BenchConfig cfg;
  cfg.max_workers = ideval::bench::WorkerThreads(argc, argv);
  cfg.pinned_shards = ideval::bench::IntFlag(argc, argv, "shards", 0);
  cfg.cache = ideval::bench::BoolFlag(argc, argv, "cache");
  cfg.zone_maps = ideval::bench::BoolFlag(argc, argv, "zone_maps");
  cfg.net = ideval::bench::BoolFlag(argc, argv, "net");
  cfg.smoke = ideval::bench::BoolFlag(argc, argv, "smoke");
  cfg.trace_out = ideval::bench::StrFlag(argc, argv, "trace_out");
  cfg.json_out = ideval::bench::StrFlag(argc, argv, "json_out");
  ideval::Run(cfg);
  return 0;
}
