/// Live-server saturation sweep: the simulated Fig. 3 study rerun under
/// genuine concurrency. A `QueryServer` worker pool executes real
/// crossfilter query groups replayed by concurrent client threads; we
/// sweep workers × clients × admission policy and read off (1) the
/// throughput knee as workers are added, and (2) how much of the latency
/// -constraint violation (§7.2) skip-stale and throttling shave off at
/// saturation versus FIFO (the live analogue of Fig. 15).
///
/// A third sweep shards the backend: the same offered load against a
/// `ShardedEngine` of 1/2/4 `Engine` instances, reading off throughput,
/// the scatter/execute/merge phase split, and the shard-pool capacity
/// bound. On a multi-core host `--shards 4` should beat `--shards 1`
/// until the merge stage (serial per group) becomes the bound.
///
/// Wall-clock and machine-dependent by design; trace generation stays
/// seeded. `--threads N` caps the worker sweep (default: all hardware
/// threads); `--shards K` pins the shard sweep to a single K.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "engine/sharded_engine.h"
#include "serve/load_driver.h"
#include "serve/server.h"

namespace ideval {
namespace {

constexpr int64_t kRows = 120000;
constexpr double kCompression = 120.0;  // ~100 s of trace -> ~1 s wall.

LoadReport MustRun(const TablePtr& road, int workers, int clients,
                   AdmissionPolicy policy, int shards = 1) {
  EngineOptions eopts;
  eopts.profile = EngineProfile::kInMemoryColumnStore;
  Engine engine(eopts);
  std::unique_ptr<ShardedEngine> sharded;
  if (shards > 1) {
    ShardedEngineOptions shopts;
    shopts.num_shards = shards;
    shopts.engine_options = eopts;
    auto made = ShardedEngine::Create(shopts);
    if (!made.ok() || !(*made)->PartitionTable(road).ok()) std::abort();
    sharded = std::move(*made);
  } else {
    if (!engine.RegisterTable(road).ok()) std::abort();
  }

  ServerOptions sopts;
  sopts.num_workers = workers;
  sopts.max_queue_per_session = 4;
  sopts.policy = policy;
  // Scale the §3.1.2 shaper to compressed time so it bites the same
  // fraction of interactions it would live.
  sopts.throttle_min_interval = Duration::Seconds(1.0 / kCompression);
  sopts.debounce_quiet = Duration::Seconds(0.3 / kCompression);
  auto server = sharded != nullptr
                    ? QueryServer::Create(sharded.get(), sopts)
                    : QueryServer::Create(&engine, sopts);
  if (!server.ok()) std::abort();

  std::vector<std::vector<QueryGroup>> sessions;
  sessions.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    sessions.push_back(bench::CrossfilterGroups(
        road, DeviceType::kMouse,
        bench::kCrossfilterSeed + 300 + static_cast<uint64_t>(c), 10));
  }
  LoadDriverOptions lopts;
  lopts.time_compression = kCompression;
  auto report = RunLoadDriver(server->get(), sessions, lopts);
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).ValueOrDie();
}

void RunWorkerSweep(const TablePtr& road, int max_workers) {
  std::printf("worker scaling, 12 clients, fifo (throughput knee):\n");
  TextTable table({"workers", "throughput (q/s)", "p90 latency (ms)",
                   "rejected", "LCV %"});
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    const auto r = MustRun(road, workers, 12, AdmissionPolicy::kFifo);
    const auto& s = r.snapshot;
    table.AddRow({StrFormat("%d", workers),
                  FormatDouble(s.throughput_qps, 1),
                  FormatDouble(s.latency_p90_ms, 1),
                  StrFormat("%lld", static_cast<long long>(
                                        s.totals.groups_rejected)),
                  FormatDouble(s.lcv_fraction * 100.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: throughput climbs with workers, then flattens at the knee "
      "where the offered load (not the pool) is the limit\n\n");
}

void RunPolicySweep(const TablePtr& road) {
  std::printf("admission policy at saturation (2 workers):\n");
  TextTable table({"clients", "policy", "executed", "shed", "rejected",
                   "p90 latency (ms)", "LCV %"});
  const AdmissionPolicy kPolicies[] = {
      AdmissionPolicy::kFifo, AdmissionPolicy::kSkipStale,
      AdmissionPolicy::kThrottle, AdmissionPolicy::kDebounce};
  for (int clients : {4, 12}) {
    for (AdmissionPolicy policy : kPolicies) {
      const auto r = MustRun(road, 2, clients, policy);
      const auto& s = r.snapshot;
      table.AddRow(
          {StrFormat("%d", clients), AdmissionPolicyToString(policy),
           StrFormat("%lld",
                     static_cast<long long>(s.totals.groups_executed)),
           StrFormat("%lld", static_cast<long long>(s.totals.GroupsShed())),
           StrFormat("%lld",
                     static_cast<long long>(s.totals.groups_rejected)),
           FormatDouble(s.latency_p90_ms, 1),
           FormatDouble(s.lcv_fraction * 100.0, 1)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: at 12 clients, skip/throttle/debounce keep LCV%% below "
      "fifo — shedding stale work beats queueing it (Fig. 15's ordering, "
      "live)\n");
}

void RunShardSweep(const TablePtr& road, int pinned_shards) {
  std::printf("shard scaling, 2 workers, 12 clients, fifo "
              "(scatter/execute/merge split):\n");
  TextTable table({"shards", "throughput (q/s)", "p90 latency (ms)",
                   "scatter (ms)", "execute (ms)", "merge (ms)",
                   "shard-pool cap (g/s)"});
  std::vector<int> ks = pinned_shards > 0 ? std::vector<int>{pinned_shards}
                                          : std::vector<int>{1, 2, 4};
  for (int k : ks) {
    const auto r = MustRun(road, 2, 12, AdmissionPolicy::kFifo, k);
    const auto& s = r.snapshot;
    table.AddRow({StrFormat("%d", k), FormatDouble(s.throughput_qps, 1),
                  FormatDouble(s.latency_p90_ms, 1),
                  FormatDouble(s.scatter_mean_ms, 3),
                  FormatDouble(s.execute_mean_ms, 3),
                  FormatDouble(s.merge_mean_ms, 3),
                  s.load.shard_exec_capacity_qps > 0.0
                      ? FormatDouble(s.load.shard_exec_capacity_qps, 1)
                      : std::string("-")});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: on a multi-core host the knee moves right as shards are "
      "added (execute shrinks ~1/K) until the serial merge stage or the "
      "core count caps it; on one core sharding only adds scatter/merge "
      "overhead\n\n");
}

void Run(int max_workers, int pinned_shards) {
  bench::PrintHeader(
      "SRV", "Live query server — saturation sweep over workers x clients "
             "x admission policy",
      "a worker pool saturates at a throughput knee; past it, FIFO "
      "queueing inflates latency-constraint violations while skip-stale "
      "and throttling shed load and keep responses fresh (Fig. 3 run as "
      "a control loop)");
  std::printf("hardware threads: %u (worker scaling cannot exceed them)\n\n",
              std::thread::hardware_concurrency());
  TablePtr road = bench::RoadScaled(kRows);
  RunWorkerSweep(road, max_workers);
  RunShardSweep(road, pinned_shards);
  RunPolicySweep(road);
}

}  // namespace
}  // namespace ideval

int main(int argc, char** argv) {
  ideval::Run(ideval::bench::WorkerThreads(argc, argv),
              ideval::bench::IntFlag(argc, argv, "shards", 0));
  return 0;
}
