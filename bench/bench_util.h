#ifndef IDEVAL_BENCH_BENCH_UTIL_H_
#define IDEVAL_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/datasets.h"
#include "device/device_model.h"
#include "engine/engine.h"
#include "sim/query_scheduler.h"
#include "workload/crossfilter_task.h"
#include "workload/explore_task.h"
#include "workload/scroll_task.h"

namespace ideval {
namespace bench {

/// Prints the standard experiment banner: which paper artifact this binary
/// regenerates and the qualitative claim being checked.
void PrintHeader(const std::string& experiment_id, const std::string& title,
                 const std::string& paper_claim);

/// Worker-thread count for wall-clock benches: `--threads N` (or
/// `--threads=N`) on the command line, else the machine's
/// `std::thread::hardware_concurrency()` (at least 1). Exits with a usage
/// message on a malformed value.
int WorkerThreads(int argc, char** argv);

/// Generic integer flag: `--<name> N` or `--<name>=N`, else `def`.
/// Exits with a usage message on a malformed or out-of-range value.
int IntFlag(int argc, char** argv, const char* name, int def);

/// Generic string flag: `--<name> VALUE` or `--<name>=VALUE`, else `def`
/// (which may be empty). An empty explicit value is a usage error.
std::string StrFlag(int argc, char** argv, const char* name,
                    const std::string& def = "");

/// Generic boolean flag: bare `--<name>` means true; `--<name> 0|1` and
/// `--<name>=0|1|true|false` are explicit. Anything else following the
/// bare form is treated as the next flag, not this one's value.
bool BoolFlag(int argc, char** argv, const char* name, bool def = false);

/// Seeds shared by all benches so figures/tables are cross-consistent.
/// The scroll seed is chosen so the 15 sampled users' peak speeds land on
/// Table 7's published population (min 12, median ~58, max 200 tuples/s).
inline constexpr uint64_t kScrollSeed = 617;
inline constexpr uint64_t kCrossfilterSeed = 701;
inline constexpr uint64_t kExploreSeed = 801;

/// Full-scale §6 movie table (4,000 tuples).
TablePtr Movies();

/// Full-scale §7 road network (434,874 tuples).
TablePtr Road();

/// Reduced road network for benches that sweep many conditions.
TablePtr RoadScaled(int64_t rows);

/// Full-scale §8 listings table.
TablePtr Listings();

/// The 15 §6 study users.
std::vector<ScrollUserParams> ScrollUsers();

/// Their generated traces (memoization-free; call once per binary).
std::vector<ScrollTrace> ScrollTraces();

/// The §8 composite interface with the standard destination presets.
CompositeInterface MakeCompositeUi();

/// The 15 §8 explore users and their traces.
std::vector<ExploreTrace> ExploreTraces(int num_users = 15);

/// Backend optimization conditions of §7.2.
enum class CrossfilterOpt { kRaw, kKl0, kKl02, kSkip };
const char* CrossfilterOptToString(CrossfilterOpt opt);

/// One representative crossfilter session's query groups for `device`.
std::vector<QueryGroup> CrossfilterGroups(const TablePtr& road,
                                          DeviceType device, uint64_t seed,
                                          int num_moves = 20);

/// Applies the client-side part of a condition (KL filtering) and runs the
/// session against an engine of `profile` with the scheduler policy the
/// condition implies. Returns the executed timelines.
Result<SessionExecution> RunCrossfilterCondition(
    const TablePtr& road, const std::vector<QueryGroup>& groups,
    EngineProfile profile, CrossfilterOpt opt);

}  // namespace bench
}  // namespace ideval

#endif  // IDEVAL_BENCH_BENCH_UTIL_H_
