/// Reproduces Fig. 2: the latency-constraint-violation cascade. Four
/// queries issued 20 ms apart against a backend needing ~100 ms each:
/// execution delay accumulates, so Q4 waits on the backlog of Q1–Q3.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "sim/query_scheduler.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F2", "Fig. 2 — the execution-delay cascade behind LCV",
      "before Q1 finishes, Q2–Q4 are already issued; each later query "
      "inherits the accumulated execution delay of its predecessors");

  TablePtr road = bench::RoadScaled(150000);
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(road).ok()) std::abort();

  HistogramQuery hq;
  hq.table = "dataroad";
  hq.bin_column = "y";
  hq.bin_lo = 56.582;
  hq.bin_hi = 57.774;
  hq.bins = 20;
  hq.predicates = {RangePredicate{"x", 8.146, 11.2616367163}};

  std::vector<QueryGroup> groups;
  for (int i = 0; i < 4; ++i) {
    QueryGroup g;
    g.issue_time = SimTime::FromMillis(i * 20.0);
    g.queries.push_back(hq);
    groups.push_back(g);
  }
  QueryScheduler scheduler(&engine, SchedulerOptions{});
  auto run = scheduler.Run(groups);
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", run.status().ToString().c_str());
    std::abort();
  }

  TextTable table({"query", "issued (ms)", "exec start (ms)",
                   "exec delay (ms)", "done (ms)", "perceived (ms)"});
  for (size_t i = 0; i < run->timelines.size(); ++i) {
    const auto& t = run->timelines[i];
    table.AddRow({StrFormat("Q%zu", i + 1),
                  FormatDouble(t.issue_time.millis(), 0),
                  FormatDouble(t.exec_start.millis(), 1),
                  FormatDouble(t.scheduling_latency.millis(), 1),
                  FormatDouble(t.exec_end.millis(), 1),
                  FormatDouble(t.PerceivedLatency().millis(), 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: the 'exec delay' column grows strictly down the "
              "table — Q4 pays for Q1-Q3's backlog even though each query "
              "alone meets the same execution cost\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
