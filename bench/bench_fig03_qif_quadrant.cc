/// Reproduces Fig. 3: the QIF × backend-speed trade-off quadrant. A
/// synthetic slider stream at low and high issue rates is run against the
/// fast (in-memory) and slow (disk) backend; the resulting violation
/// fraction maps each combination onto the paper's four quadrants.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"
#include "opt/throttle.h"

namespace ideval {
namespace {

std::vector<QueryGroup> UniformStream(double qif_hz, double seconds,
                                      const TablePtr& road) {
  HistogramQuery hq;
  hq.table = road->name();
  hq.bin_column = "y";
  hq.bin_lo = 56.582;
  hq.bin_hi = 57.774;
  hq.bins = 20;
  std::vector<QueryGroup> groups;
  const double period_ms = 1000.0 / qif_hz;
  for (double t = 0.0; t < seconds * 1000.0; t += period_ms) {
    QueryGroup g;
    g.issue_time = SimTime::FromMillis(t);
    g.queries.push_back(hq);
    groups.push_back(g);
  }
  return groups;
}

void Run() {
  bench::PrintHeader(
      "F3", "Fig. 3 — trade-offs between QIF and backend performance",
      "fast backend + any QIF is good; slow backend + low QIF is merely "
      "perceived-slow; slow backend + high QIF becomes unresponsive and "
      "must be throttled");

  TablePtr road = bench::RoadScaled(200000);
  TextTable table({"QIF", "backend", "LCV fraction", "median latency (ms)",
                   "quadrant"});
  struct Cell {
    double qif;
    EngineProfile profile;
  };
  const Cell kCells[] = {
      {5.0, EngineProfile::kInMemoryColumnStore},
      {50.0, EngineProfile::kInMemoryColumnStore},
      {5.0, EngineProfile::kDiskRowStore},
      {50.0, EngineProfile::kDiskRowStore},
  };
  for (const Cell& cell : kCells) {
    auto groups = UniformStream(cell.qif, 20.0, road);
    EngineOptions eopts;
    eopts.profile = cell.profile;
    Engine engine(eopts);
    if (!engine.RegisterTable(road).ok()) std::abort();
    QueryScheduler scheduler(&engine, SchedulerOptions{});
    auto run = scheduler.Run(groups);
    if (!run.ok()) std::abort();
    const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
    const Summary lat = PerceivedLatencySummary(run->timelines);
    const bool fast = cell.profile == EngineProfile::kInMemoryColumnStore;
    const bool high_qif = cell.qif > 20.0;
    const char* quadrant =
        fast ? "GOOD"
             : (high_qif ? "UNRESPONSIVE - throttle QIF" : "PERCEIVED SLOW");
    table.AddRow({StrFormat("%.0f/s %s", cell.qif,
                            high_qif ? "(high)" : "(low)"),
                  fast ? "fast (mem)" : "slow (disk)",
                  FormatDouble(lcv.ViolationFraction(), 2),
                  FormatDouble(lat.median(), 1), quadrant});
  }
  std::printf("%s\n", table.ToString().c_str());

  // The prescription: throttling the high-QIF stream to backend capacity
  // restores responsiveness on the slow backend.
  auto groups = UniformStream(50.0, 20.0, road);
  QifThrottler throttler(Duration::Millis(250));
  auto throttled = ThrottleQueryGroups(&throttler, groups);
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(road).ok()) std::abort();
  QueryScheduler scheduler(&engine, SchedulerOptions{});
  auto run = scheduler.Run(throttled);
  if (!run.ok()) std::abort();
  const Summary lat = PerceivedLatencySummary(run->timelines);
  std::printf("after throttling 50/s -> 4/s on the slow backend: median "
              "latency %.1f ms, %zu of %zu queries kept\n",
              lat.median(), throttled.size(), groups.size());
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
