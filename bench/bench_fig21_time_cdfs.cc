/// Reproduces Fig. 21: CDFs of request time (T0) and exploration time (T2)
/// across all users, plus the derived prefetch-capacity estimate: the
/// average exploration window fits ~18 adjacent speculative queries.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F21", "Fig. 21 — CDFs of request and exploration time",
      "~80% of requests complete under 1 s while ~80% of exploration "
      "pauses exceed 1 s (means ~1.1 s vs ~18.3 s) -> about 18 adjacent "
      "queries can be prefetched per pause");

  std::vector<double> request_s, explore_s, render_s;
  for (const auto& trace : bench::ExploreTraces()) {
    for (const auto& phase : trace.phases) {
      request_s.push_back(phase.request_time.seconds());
      explore_s.push_back(phase.exploration_time.seconds());
      render_s.push_back(phase.rendering_time.seconds());
    }
  }
  Summary request(request_s), explore(explore_s), render(render_s);

  TextTable table({"time (ms)", "request CDF", "exploration CDF"});
  for (double ms : {100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0,
                    16000.0, 32000.0, 64000.0}) {
    table.AddRow({FormatDouble(ms, 0),
                  FormatDouble(request.CdfAt(ms / 1000.0), 3),
                  FormatDouble(explore.CdfAt(ms / 1000.0), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const double prefetchable = explore.mean() / request.mean();
  std::printf("request  : mean %.2f s (paper ~1.1 s), CDF(1s) = %.2f "
              "(paper ~0.80)\n",
              request.mean(), request.CdfAt(1.0));
  std::printf("explore  : mean %.1f s (paper 18.3 s), CDF(1s) = %.2f "
              "(paper ~0.20)\n",
              explore.mean(), explore.CdfAt(1.0));
  std::printf("rendering: mean %.0f ms\n", render.mean() * 1000.0);
  std::printf("check: ~%.0f adjacent queries prefetchable per exploration "
              "pause (paper: ~18)\n", prefetchable);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
