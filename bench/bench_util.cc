#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/text_table.h"
#include "opt/kl_filter.h"
#include "widget/crossfilter.h"

namespace ideval {
namespace bench {

void PrintHeader(const std::string& experiment_id, const std::string& title,
                 const std::string& paper_claim) {
  std::printf("=====================================================\n");
  std::printf("[%s] %s\n", experiment_id.c_str(), title.c_str());
  std::printf("paper claim: %s\n", paper_claim.c_str());
  std::printf("=====================================================\n\n");
}

namespace {

/// Aborts loudly if a generator fails — bench inputs are static and a
/// failure means the build is broken, not a runtime condition.
template <typename T>
T MustOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int WorkerThreads(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
  }
  if (value == nullptr) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) {
    std::fprintf(stderr, "usage: --threads N (N >= 1), got '%s'\n", value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

int IntFlag(int argc, char** argv, const char* name, int def) {
  const std::string prefix = std::string("--") + name;
  const std::string prefix_eq = prefix + "=";
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (prefix == argv[i] && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], prefix_eq.c_str(),
                            prefix_eq.size()) == 0) {
      value = argv[i] + prefix_eq.size();
    }
  }
  if (value == nullptr) return def;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) {
    std::fprintf(stderr, "usage: %s N (N >= 1), got '%s'\n", prefix.c_str(),
                 value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

bool BoolFlag(int argc, char** argv, const char* name, bool def) {
  const std::string prefix = std::string("--") + name;
  const std::string prefix_eq = prefix + "=";
  bool result = def;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (prefix == argv[i]) {
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "0") == 0 ||
                           std::strcmp(argv[i + 1], "1") == 0)) {
        value = argv[i + 1];
      } else {
        result = true;  // Bare `--name`.
        continue;
      }
    } else if (std::strncmp(argv[i], prefix_eq.c_str(),
                            prefix_eq.size()) == 0) {
      value = argv[i] + prefix_eq.size();
    } else {
      continue;
    }
    if (std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0) {
      result = true;
    } else if (std::strcmp(value, "0") == 0 ||
               std::strcmp(value, "false") == 0) {
      result = false;
    } else {
      std::fprintf(stderr, "usage: %s [0|1|true|false], got '%s'\n",
                   prefix.c_str(), value);
      std::exit(2);
    }
  }
  return result;
}

std::string StrFlag(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name;
  const std::string prefix_eq = prefix + "=";
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (prefix == argv[i] && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], prefix_eq.c_str(),
                            prefix_eq.size()) == 0) {
      value = argv[i] + prefix_eq.size();
    }
  }
  if (value == nullptr) return def;
  if (*value == '\0') {
    std::fprintf(stderr, "usage: %s VALUE (non-empty)\n", prefix.c_str());
    std::exit(2);
  }
  return value;
}

TablePtr Movies() {
  MoviesOptions opts;
  return MustOk(MakeMoviesTable(opts), "MakeMoviesTable");
}

TablePtr Road() {
  RoadNetworkOptions opts;
  return MustOk(MakeRoadNetworkTable(opts), "MakeRoadNetworkTable");
}

TablePtr RoadScaled(int64_t rows) {
  RoadNetworkOptions opts;
  opts.num_rows = rows;
  return MustOk(MakeRoadNetworkTable(opts), "MakeRoadNetworkTable(scaled)");
}

TablePtr Listings() {
  ListingsOptions opts;
  return MustOk(MakeListingsTable(opts), "MakeListingsTable");
}

std::vector<ScrollUserParams> ScrollUsers() {
  Rng rng(kScrollSeed);
  return SampleScrollUsers(15, &rng);
}

std::vector<ScrollTrace> ScrollTraces() {
  std::vector<ScrollTrace> traces;
  ScrollTaskOptions task;
  for (const auto& user : ScrollUsers()) {
    traces.push_back(
        MustOk(GenerateScrollTrace(user, task), "GenerateScrollTrace"));
  }
  return traces;
}

CompositeInterface MakeCompositeUi() {
  // Destination presets are the densest listing clusters: vacation
  // searches start where the inventory is, which is what makes §8's
  // navigation (and content-aware prefetching) realistic.
  static const auto* kDestinations = [] {
    auto clusters =
        MustOk(FindListingClusters(Listings(), 5), "FindListingClusters");
    auto* out = new std::vector<CompositeInterface::Options::Destination>();
    int i = 0;
    for (const auto& c : clusters) {
      out->push_back({StrFormat("city-%d", ++i), c.lat, c.lng, 12});
    }
    return out;
  }();
  CompositeInterface::Options opts;
  opts.destinations = *kDestinations;
  return CompositeInterface(MapWidget(32.0, -86.0, 11), std::move(opts));
}

std::vector<ExploreTrace> ExploreTraces(int num_users) {
  Rng rng(kExploreSeed);
  auto users = SampleExploreUsers(num_users, &rng);
  std::vector<ExploreTrace> traces;
  for (const auto& user : users) {
    CompositeInterface ui = MakeCompositeUi();
    traces.push_back(
        MustOk(GenerateExploreTrace(user, &ui), "GenerateExploreTrace"));
  }
  return traces;
}

const char* CrossfilterOptToString(CrossfilterOpt opt) {
  switch (opt) {
    case CrossfilterOpt::kRaw:
      return "raw";
    case CrossfilterOpt::kKl0:
      return "KL>0";
    case CrossfilterOpt::kKl02:
      return "KL>0.2";
    case CrossfilterOpt::kSkip:
      return "skip";
  }
  return "unknown";
}

std::vector<QueryGroup> CrossfilterGroups(const TablePtr& road,
                                          DeviceType device, uint64_t seed,
                                          int num_moves) {
  auto view = MustOk(CrossfilterView::Make(road, {"x", "y", "z"}),
                     "CrossfilterView::Make");
  CrossfilterUserParams params;
  params.device = device;
  params.num_moves = num_moves;
  params.seed = seed;
  auto trace = MustOk(GenerateCrossfilterTrace(params, &view),
                      "GenerateCrossfilterTrace");
  auto replay = MustOk(CrossfilterView::Make(road, {"x", "y", "z"}),
                       "CrossfilterView::Make(replay)");
  return MustOk(BuildQueryGroups(&replay, trace.events), "BuildQueryGroups");
}

Result<SessionExecution> RunCrossfilterCondition(
    const TablePtr& road, const std::vector<QueryGroup>& groups,
    EngineProfile profile, CrossfilterOpt opt) {
  std::vector<QueryGroup> to_run = groups;
  if (opt == CrossfilterOpt::kKl0 || opt == CrossfilterOpt::kKl02) {
    const double threshold = opt == CrossfilterOpt::kKl0 ? 0.0 : 0.2;
    IDEVAL_ASSIGN_OR_RETURN(KlQueryFilter filter,
                            KlQueryFilter::Make(road, threshold));
    IDEVAL_ASSIGN_OR_RETURN(to_run, FilterQueryGroups(&filter, groups));
  }
  EngineOptions eopts;
  eopts.profile = profile;
  Engine engine(eopts);
  IDEVAL_RETURN_NOT_OK(engine.RegisterTable(road));
  SchedulerOptions sopts;
  sopts.policy = opt == CrossfilterOpt::kSkip ? SchedulingPolicy::kSkipStale
                                              : SchedulingPolicy::kFifo;
  sopts.num_connections = 2;
  QueryScheduler scheduler(&engine, sopts);
  return scheduler.Run(to_run);
}

}  // namespace bench
}  // namespace ideval
