/// Reproduces Fig. 20: the cumulative distribution of the number of filter
/// conditions per query. ~70% of queries carry four or fewer attribute
/// filters, so caching results for up to four predicates covers most of
/// the workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F20", "Fig. 20 — CDF of number of filter conditions",
      "~70% of queries have four or fewer filters -> cache results with up "
      "to 4 filter predicates and refine from there");

  std::vector<double> filters;
  for (const auto& trace : bench::ExploreTraces()) {
    for (const auto& phase : trace.phases) {
      filters.push_back(
          static_cast<double>(phase.request.num_filter_conditions));
    }
  }
  Summary s(filters);
  TextTable table({"# filter conditions", "CDF", ""});
  for (int n = 0; n <= 8; ++n) {
    const double frac = s.CdfAt(static_cast<double>(n));
    table.AddRow({StrFormat("%d", n), FormatDouble(frac, 3),
                  AsciiBar(frac, 1.0, 30)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: CDF at 4 filters = %.2f (paper: ~0.70)\n",
              s.CdfAt(4.0));
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
