/// Ablation A3: QIF throttling interval sweep on the Leap Motion workload
/// against the disk backend — the Fig. 3 prescription quantified. Also
/// compares debouncing, which waits for the gesture to pause instead of
/// rate-limiting.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"
#include "opt/throttle.h"

namespace ideval {
namespace {

Summary RunGroups(const TablePtr& road, const std::vector<QueryGroup>& groups,
                  LcvStats* lcv) {
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(road).ok()) std::abort();
  SchedulerOptions sopts;
  sopts.num_connections = 2;
  QueryScheduler scheduler(&engine, sopts);
  auto run = scheduler.Run(groups);
  if (!run.ok()) std::abort();
  *lcv = ComputeCrossfilterLcv(run->timelines);
  return PerceivedLatencySummary(run->timelines);
}

void Run() {
  bench::PrintHeader(
      "A3", "Ablation — throttling the Leap Motion stream on disk",
      "matching QIF to backend capacity (~3-5 queries/s for the disk "
      "engine) restores sub-second latency; over-throttling adds nothing "
      "further");

  TablePtr road = bench::Road();
  const auto groups = bench::CrossfilterGroups(
      road, DeviceType::kLeapMotion, bench::kCrossfilterSeed + 2, 12);

  TextTable table({"min interval (ms)", "groups kept", "median (ms)",
                   "p90 (ms)", "LCV %"});
  for (int64_t interval_ms : {0, 50, 100, 200, 400, 800}) {
    std::vector<QueryGroup> kept = groups;
    if (interval_ms > 0) {
      QifThrottler throttler(Duration::Millis(interval_ms));
      kept = ThrottleQueryGroups(&throttler, groups);
    }
    LcvStats lcv;
    const Summary lat = RunGroups(road, kept, &lcv);
    table.AddRow({StrFormat("%lld", static_cast<long long>(interval_ms)),
                  StrFormat("%zu", kept.size()),
                  FormatDouble(lat.median(), 1),
                  FormatDouble(lat.Quantile(0.9), 1),
                  FormatDouble(lcv.ViolationFraction() * 100.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Debouncing alternative: only the resting position of each gesture.
  std::vector<SimTime> times;
  for (const auto& g : groups) times.push_back(g.issue_time);
  auto fired = DebounceEventTimes(times, Duration::Millis(300));
  std::vector<QueryGroup> debounced;
  for (const auto& d : fired) {
    QueryGroup g = groups[d.source_index];
    g.issue_time = d.fire_time;
    debounced.push_back(g);
  }
  LcvStats lcv;
  const Summary lat = RunGroups(road, debounced, &lcv);
  std::printf("debounce(300 ms): %zu of %zu groups, median %.1f ms, "
              "LCV %.1f%% — trades one quiet period of added delay for a "
              "noise-free stream (suits jittery gestural devices)\n",
              debounced.size(), groups.size(), lat.median(),
              lcv.ViolationFraction() * 100.0);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
