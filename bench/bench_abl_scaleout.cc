/// Ablation A6: scale-out behaviour (§3.1.1's scalability discussion).
/// The paper recounts DICE's finding: distributing an interactive cube
/// query helps up to ~8 nodes, after which combining/summarizing the
/// partial results dominates and returns diminish. We model a partitioned
/// histogram query: each of k nodes scans n/k tuples in parallel, then the
/// coordinator merges k partial histograms and ships one response.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "engine/cost_model.h"

namespace ideval {
namespace {

Duration ScaleOutTime(const CostModel& cost, int64_t rows, int64_t bins,
                      int nodes, int predicates) {
  // Per-node scan of its partition (perfectly balanced).
  QueryWorkStats node_stats;
  node_stats.tuples_scanned = rows / nodes;
  node_stats.predicates_evaluated = node_stats.tuples_scanned * predicates;
  node_stats.tuples_matched = node_stats.tuples_scanned / 2;
  node_stats.groups_built = bins;
  const Duration node_time = cost.ExecutionTime(node_stats) +
                             cost.PostAggregationTime(node_stats);
  // Coordinator: receive k partials over the network, merge, finalize.
  QueryWorkStats merge_stats;
  merge_stats.groups_built = bins * nodes;  // Merge cost grows with k.
  merge_stats.rows_output = bins;
  merge_stats.bytes_output = static_cast<double>(bins) * 16.0;
  Duration coordinator = cost.PostAggregationTime(merge_stats);
  for (int i = 0; i < nodes; ++i) {
    QueryWorkStats partial;
    partial.bytes_output = static_cast<double>(bins) * 16.0;
    coordinator += cost.NetworkTime(partial);
    // Per-node coordination: task dispatch, admission, straggler slack.
    // This is the term that makes wide fan-outs pay (DICE's thrashing
    // observation).
    coordinator += Duration::Micros(2500);
  }
  return node_time + coordinator;
}

void Run() {
  bench::PrintHeader(
      "A6", "Ablation — scale-out of the crossfilter histogram",
      "distributing helps up to ~8 nodes; past that, merging and shipping "
      "the partial aggregates dominates and returns diminish (the DICE "
      "observation §3.1.1 recounts)");

  const int64_t rows = 434874;
  const int64_t bins = 20;
  const CostModel cost = CostModel::DiskRowStore();

  TextTable table({"nodes", "modelled latency (ms)", "speedup vs 1 node",
                   ""});
  const Duration single = ScaleOutTime(cost, rows, bins, 1, 3);
  double best_speedup = 0.0;
  int best_nodes = 1;
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    const Duration t = ScaleOutTime(cost, rows, bins, nodes, 3);
    const double speedup = single.seconds() / t.seconds();
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_nodes = nodes;
    }
    table.AddRow({StrFormat("%d", nodes), FormatDouble(t.millis(), 1),
                  FormatDouble(speedup, 2),
                  AsciiBar(speedup, 16.0, 32)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: speedup saturates (best %.1fx at %d nodes) and then "
              "degrades as the merge/network term scales with node count; "
              "also note the user can only consume a screenful — §3.1.1's "
              "summarization bottleneck\n",
              best_speedup, best_nodes);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
