/// Reproduces Fig. 10: average loading latency of 15 users for event fetch
/// vs timer fetch over fetch sizes {12, 30, 58, 80} (lower bound of max,
/// upper bound of avg, median of max, mean of max scroll speed).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "prefetch/scroll_loader.h"

namespace ideval {
namespace {

constexpr int64_t kFetchSizes[] = {12, 30, 58, 80};

double AvgLatencyMs(const std::vector<ScrollTrace>& traces, Engine* engine,
                    ScrollLoadStrategy strategy, int64_t tuples) {
  double total_ms = 0.0;
  int users = 0;
  for (const auto& trace : traces) {
    ScrollLoadOptions opts;
    opts.strategy = strategy;
    opts.tuples_per_fetch = tuples;
    engine->ClearCaches();
    auto report = SimulateScrollLoading(trace, engine, opts);
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
      std::abort();
    }
    total_ms += report->MeanWait().millis();
    ++users;
  }
  return total_ms / users;
}

void Run() {
  bench::PrintHeader(
      "F10", "Fig. 10 — average load latency vs number of tuples fetched",
      "event fetch is insensitive to fetch size (~80 ms); timer fetch "
      "falls roughly linearly and reaches ~zero latency at the median of "
      "max scroll speed (58 tuples)");

  const auto traces = bench::ScrollTraces();
  TablePtr movies = bench::Movies();
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(movies).ok()) std::abort();

  TextTable table({"no. of tuples", "event (ms)", "timer (ms)"});
  for (int64_t n : kFetchSizes) {
    const double event_ms =
        AvgLatencyMs(traces, &engine, ScrollLoadStrategy::kEventFetch, n);
    const double timer_ms =
        AvgLatencyMs(traces, &engine, ScrollLoadStrategy::kTimerFetch, n);
    table.AddRow({StrFormat("%lld", static_cast<long long>(n)),
                  FormatDouble(event_ms, 1), FormatDouble(timer_ms, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: event column stays in one band across sizes; timer column "
      "decreases monotonically toward ~0 by 58–80 tuples\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
