/// Ablation A5: progressive (online-aggregation style) execution, §3.1.1 /
/// §3.2.2. Interactive systems invert the old database contract: strict
/// latency, approximate answers that refine over time. This bench runs the
/// crossfilter histogram progressively on both cost profiles and reports
/// the accuracy-latency trade-off per refinement step, including the
/// Incvisage-style time-weighted scored accuracy.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "engine/progressive.h"

namespace ideval {
namespace {

void RunProfile(const TablePtr& road, const char* label,
                const CostModel& cost_model) {
  HistogramQuery query;
  query.table = "dataroad";
  query.bin_column = "y";
  query.bin_lo = 56.582;
  query.bin_hi = 57.774;
  query.bins = 20;
  query.predicates = {RangePredicate{"x", 8.146, 10.2},
                      RangePredicate{"z", -8.608, 110.0}};

  ProgressiveOptions opts;
  opts.cost_model = cost_model;
  auto steps = RunProgressiveHistogram(road, query, opts);
  if (!steps.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", steps.status().ToString().c_str());
    std::abort();
  }

  std::printf("%s\n", label);
  TextTable table({"sample fraction", "available at", "MSE vs exact",
                   "scored accuracy"});
  const Duration half_life = Duration::Seconds(1.0);
  for (const auto& step : *steps) {
    table.AddRow({FormatDouble(step.fraction, 2),
                  step.available_at.ToString(),
                  StrFormat("%.2e", step.mse_vs_exact),
                  FormatDouble(ScoredAccuracy(step.mse_vs_exact,
                                              step.available_at, half_life),
                               3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "A5", "Ablation — progressive execution: accuracy vs latency",
      "a 1-2% sample answers in a fraction of the exact query's time with "
      "tiny error; on the disk profile the early estimates are the only "
      "way to stay under the 500 ms perceptibility threshold");

  TablePtr road = bench::Road();
  RunProfile(road, "disk row store profile:", CostModel::DiskRowStore());
  RunProfile(road, "in-memory column store profile:",
             CostModel::InMemoryColumnStore());
  std::printf(
      "check: MSE decreases monotonically to 0 while available-at grows; "
      "the scored-accuracy column peaks at an intermediate fraction — the "
      "sweet spot progressive systems aim for\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
