/// Reproduces Fig. 13: perceived latency over the session for each device
/// (mouse, touch, Leap Motion) under each backend (disk row store ~
/// PostgreSQL, in-memory column store ~ MemSQL) and each optimization
/// (raw, KL>0, KL>0.2, skip), over the full 434,874-tuple road network.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"

namespace ideval {
namespace {

using bench::CrossfilterOpt;

void Run() {
  bench::PrintHeader(
      "F13", "Fig. 13 — crossfilter latency under different factors",
      "the in-memory engine holds 10–50 ms even raw; the disk engine "
      "cascades beyond 10 s raw/KL>0 and recovers to 0.1–1 s with skip or "
      "KL>0.2; the Leap Motion workload is densest");

  TablePtr road = bench::Road();
  const struct {
    DeviceType device;
    uint64_t seed;
  } kDevices[] = {{DeviceType::kMouse, bench::kCrossfilterSeed},
                  {DeviceType::kTouchTablet, bench::kCrossfilterSeed + 1},
                  {DeviceType::kLeapMotion, bench::kCrossfilterSeed + 2}};
  const CrossfilterOpt kOpts[] = {CrossfilterOpt::kRaw, CrossfilterOpt::kKl0,
                                  CrossfilterOpt::kKl02,
                                  CrossfilterOpt::kSkip};

  TextTable table({"device", "engine", "condition", "queries run",
                   "median (ms)", "p90 (ms)", "max (ms)"});
  for (const auto& dev : kDevices) {
    const auto groups =
        bench::CrossfilterGroups(road, dev.device, dev.seed);
    for (EngineProfile profile : {EngineProfile::kDiskRowStore,
                                  EngineProfile::kInMemoryColumnStore}) {
      for (CrossfilterOpt opt : kOpts) {
        auto run = bench::RunCrossfilterCondition(road, groups, profile, opt);
        if (!run.ok()) {
          std::fprintf(stderr, "FATAL: %s\n",
                       run.status().ToString().c_str());
          std::abort();
        }
        Summary lat = PerceivedLatencySummary(run->timelines);
        table.AddRow(
            {DeviceTypeToString(dev.device),
             profile == EngineProfile::kDiskRowStore ? "postgre-like"
                                                     : "mem-like",
             bench::CrossfilterOptToString(opt),
             StrFormat("%zu", lat.count()), FormatDouble(lat.median(), 1),
             FormatDouble(lat.Quantile(0.9), 1), FormatDouble(lat.max(), 1)});
      }
      table.AddSeparator();
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: mem rows stay ~10-60 ms in all conditions; postgre-like "
      "raw/KL>0 max columns blow past 10,000 ms while skip and KL>0.2 hold "
      "them near or below ~1,000 ms\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
