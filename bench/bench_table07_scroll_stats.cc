/// Reproduces Table 7: range, mean and median of the per-user maximum and
/// average scrolling speed, in pixels/s and tuples/s.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "T7", "Table 7 — statistics for scrolling behaviour",
      "px/s: max in [1824, 31517] (mean 12556, median 8741), avg in "
      "[369, 4717]; tuples/s: max in [12, 200] (median 58), avg in [2, 30]");

  std::vector<double> max_px, avg_px, max_tuples, avg_tuples;
  for (const auto& trace : bench::ScrollTraces()) {
    const ScrollSpeeds speeds = ComputeScrollSpeeds(trace, 157.0);
    Summary px(speeds.px_per_s);
    Summary tuples(speeds.tuples_per_s);
    max_px.push_back(px.max());
    avg_px.push_back(px.mean());
    max_tuples.push_back(tuples.max());
    avg_tuples.push_back(tuples.mean());
  }
  Summary mpx(max_px), apx(avg_px), mt(max_tuples), at(avg_tuples);

  TextTable table({"", "range, mean, median of max scroll speed",
                   "range, mean, median of avg scroll speed"});
  table.AddRow({"# pixels / sec", mpx.RangeMeanMedianString(0),
                apx.RangeMeanMedianString(0)});
  table.AddRow({"# tuples / sec", mt.RangeMeanMedianString(0),
                at.RangeMeanMedianString(0)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper Table 7 for reference:\n");
  std::printf("  # pixels / sec : [1824, 31517], 12556, 8741 | [369, 4717], "
              "1580, 848\n");
  std::printf("  # tuples / sec : [12, 200], 80, 58 | [2, 30], 10, 5\n\n");
  std::printf("check: median of max tuples/s = %.0f (paper 58) -> the value "
              "used as the zero-latency timer-fetch size in Fig. 10\n",
              mt.median());
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
