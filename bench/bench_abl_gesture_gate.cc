/// Ablation A7: gesture-intent gating (§2.3). GestureDB handles ambiguous
/// gestural input by classifying intent; here a hysteresis gate watches
/// the raw pointer stream and only lets query-triggering slider events
/// through while motion looks deliberate. Because the behaviour model
/// tags ground truth, we can report the gate's precision/recall alongside
/// its backend effect — an optimization evaluated on BOTH the paper's
/// axes (system factors and information loss).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"
#include "opt/gesture_gate.h"
#include "widget/crossfilter.h"
#include "workload/crossfilter_task.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "A7", "Ablation — gesture-intent gating of the query stream",
      "classifying gesture intent suppresses the jitter-born unintended "
      "queries of §2.3 at the source, keeping the disk backend responsive "
      "while passing nearly all deliberate motion");

  TablePtr road = bench::Road();
  TextTable table({"device", "events", "gated events", "recall",
                   "noise suppressed", "disk median (ms) raw -> gated"});
  for (DeviceType device : {DeviceType::kMouse, DeviceType::kTouchTablet,
                            DeviceType::kLeapMotion}) {
    auto view = CrossfilterView::Make(road, {"x", "y", "z"}).ValueOrDie();
    CrossfilterUserParams params;
    params.device = device;
    params.num_moves = 12;
    params.seed = bench::kCrossfilterSeed + static_cast<uint64_t>(device);
    auto trace = GenerateCrossfilterTrace(params, &view).ValueOrDie();

    // Score the gate against ground truth on the raw pointer stream.
    GestureGate gate;
    const GestureGateReport score =
        EvaluateGestureGate(&gate, trace.pointer_trace);

    // Gate the slider events: drop those issued while the gate reads
    // dwell. (Labels are per pointer sample; an event passes if the label
    // active at its timestamp is a move.)
    const auto labels = gate.Classify(trace.pointer_trace);
    std::vector<SliderEvent> gated;
    size_t label_cursor = 0;
    GestureIntent current = GestureIntent::kDwell;
    for (const SliderEvent& e : trace.events) {
      while (label_cursor < labels.size() &&
             labels[label_cursor].time <= e.time) {
        current = labels[label_cursor].intent;
        ++label_cursor;
      }
      if (current == GestureIntent::kIntentionalMove) gated.push_back(e);
    }

    // Replay raw vs gated against the disk backend.
    auto run_events = [&](const std::vector<SliderEvent>& events) {
      auto replay = CrossfilterView::Make(road, {"x", "y", "z"}).ValueOrDie();
      auto groups = BuildQueryGroups(&replay, events).ValueOrDie();
      auto result = bench::RunCrossfilterCondition(
          road, groups, EngineProfile::kDiskRowStore,
          bench::CrossfilterOpt::kRaw);
      return PerceivedLatencySummary(result->timelines).median();
    };
    const double raw_median = run_events(trace.events);
    const double gated_median = run_events(gated);

    table.AddRow({DeviceTypeToString(device),
                  StrFormat("%zu", trace.events.size()),
                  StrFormat("%zu", gated.size()),
                  FormatDouble(score.Recall(), 2),
                  FormatDouble(score.NoiseSuppression(), 2),
                  StrFormat("%.0f -> %.0f", raw_median, gated_median)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: the gate suppresses most dwell-jitter events (leap: ~3/4 of "
      "noise) while keeping recall high, cutting the gestural disk "
      "backlog ~3x. The survivors still exceed the disk backend's "
      "capacity, so intent gating composes with — rather than replaces — "
      "the backend-side skip/KL policies of §7\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
