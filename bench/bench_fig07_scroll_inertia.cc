/// Reproduces Fig. 7: wheel delta over time for scrolling with and without
/// inertia. The inertial trace's deltas are two orders of magnitude larger
/// (paper y-axis scales: 400 px vs 4 px), which is what defeats lazy
/// loading.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "widget/inertial_scroller.h"

namespace ideval {
namespace {

void PrintTrace(const char* label, const std::vector<ScrollEvent>& events,
                double bar_max) {
  std::printf("%s (first %zu events)\n", label,
              std::min<size_t>(events.size(), 24));
  TextTable table({"t (ms)", "wheel delta (px)", ""});
  for (size_t i = 0; i < events.size() && i < 24; ++i) {
    table.AddRow({FormatDouble(events[i].time.millis(), 0),
                  FormatDouble(events[i].wheel_delta_px, 2),
                  AsciiBar(events[i].wheel_delta_px, bar_max, 32)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "F7", "Fig. 7 — scrolling with / without inertia",
      "inertial wheel deltas dwarf plain scrolling (y-axis ~400 vs ~4), so "
      "the user reaches the end of the page before lazy loading keeps up");

  ScrollerOptions inertial_opts;
  InertialScroller inertial(inertial_opts);
  const auto with_inertia = inertial.Flick(SimTime::Origin(), 25000.0);

  ScrollerOptions plain_opts;
  plain_opts.inertial = false;
  InertialScroller plain(plain_opts);
  const auto without = plain.Flick(SimTime::Origin(), 25000.0);

  double max_inertial = 0.0, max_plain = 0.0;
  for (const auto& e : with_inertia) {
    max_inertial = std::max(max_inertial, e.wheel_delta_px);
  }
  for (const auto& e : without) {
    max_plain = std::max(max_plain, e.wheel_delta_px);
  }

  PrintTrace("(a) with inertia", with_inertia, max_inertial);
  PrintTrace("(b) without inertia", without, max_inertial);

  TextTable summary({"condition", "events", "max delta (px)",
                     "total distance (px)"});
  double total_i = 0.0, total_p = 0.0;
  for (const auto& e : with_inertia) total_i += e.wheel_delta_px;
  for (const auto& e : without) total_p += e.wheel_delta_px;
  summary.AddRow({"with inertia", StrFormat("%zu", with_inertia.size()),
                  FormatDouble(max_inertial, 1), FormatDouble(total_i, 0)});
  summary.AddRow({"without inertia", StrFormat("%zu", without.size()),
                  FormatDouble(max_plain, 1), FormatDouble(total_p, 0)});
  std::printf("%s\n", summary.ToString().c_str());
  std::printf("check: max delta ratio (inertial/plain) = %.0fx "
              "(paper: ~100x from axis scales 400 vs 4)\n",
              max_inertial / max_plain);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
