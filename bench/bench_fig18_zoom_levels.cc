/// Reproduces Fig. 18: map zoom levels over time for each user. Zooms
/// concentrate on levels 11–14 and users rarely navigate more than three
/// levels from their starting point — which bounds useful prefetch depth.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F18", "Fig. 18 — change of zoom levels over time",
      "zoom levels concentrate between 11 and 14; all but one user stay "
      "within three levels of their starting point, so prefetching deeper "
      "than three levels is wasted");

  const auto traces = bench::ExploreTraces();
  std::map<int, int64_t> occupancy;
  int64_t total = 0;
  int users_beyond_three = 0;
  TextTable per_user({"user", "start zoom", "min", "max", "max depth",
                      "map actions"});
  for (const auto& trace : traces) {
    int start = -1, lo = 99, hi = 0;
    int64_t map_actions = 0;
    for (const auto& phase : trace.phases) {
      const int z = phase.request.zoom_level;
      if (start < 0) start = z;
      lo = std::min(lo, z);
      hi = std::max(hi, z);
      ++occupancy[z];
      ++total;
      map_actions += (phase.request.widget == WidgetKind::kMap);
    }
    const int depth = hi - start;
    if (depth > 3) ++users_beyond_three;
    per_user.AddRow({StrFormat("%d", trace.user_id), StrFormat("%d", start),
                     StrFormat("%d", lo), StrFormat("%d", hi),
                     StrFormat("%d", depth),
                     StrFormat("%lld", static_cast<long long>(map_actions))});
  }
  std::printf("%s\n", per_user.ToString().c_str());

  TextTable occ({"zoom level", "share of requests", ""});
  double band_share = 0.0;
  for (const auto& [zoom, count] : occupancy) {
    const double share =
        100.0 * static_cast<double>(count) / static_cast<double>(total);
    if (zoom >= 11 && zoom <= 14) band_share += share;
    occ.AddRow({StrFormat("%d", zoom), FormatDouble(share, 1) + "%",
                AsciiBar(share, 50.0, 30)});
  }
  std::printf("%s\n", occ.ToString().c_str());
  std::printf("check: %.1f%% of requests in the 11-14 band (paper: 'the "
              "majority'); %d/15 users exceed 3 levels from start (paper: "
              "'except for one')\n",
              band_share, users_beyond_three);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
