/// Reproduces Fig. 11: pointer traces of a user specifying a range query
/// on mouse, touch and Leap Motion. The Leap trace shows far more jitter
/// and drift, which translates into unintended, noisy, repeated queries.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

namespace ideval {
namespace {

struct TraceStats {
  double residual_std;     ///< Spread around the intended path.
  double path_length;      ///< Total pointer travel.
  int64_t motion_events;   ///< Toolkit events above threshold.
  size_t samples;
};

TraceStats Analyze(DeviceType type) {
  DeviceModel device(type, Rng(411));
  // The §7 task: drag a slider handle 300 px, then hold it on target for
  // 3 s while reading the coordinated histograms.
  const SimTime move_end = SimTime::FromSeconds(1.0);
  const SimTime hold_end = SimTime::FromSeconds(4.0);
  auto path = [&](SimTime t) -> std::pair<double, double> {
    const double s = std::min(1.0, t.seconds() / move_end.seconds());
    return {300.0 * s, 100.0};
  };
  auto moving = [&](SimTime t) { return t < move_end; };
  const PointerTrace trace =
      device.SamplePath(path, SimTime::Origin(), hold_end, moving);

  TraceStats out;
  out.samples = trace.size();
  std::vector<double> residuals;
  double length = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto [ix, iy] = path(trace[i].time);
    residuals.push_back(std::hypot(trace[i].x - ix, trace[i].y - iy));
    if (i > 0) {
      length += std::hypot(trace[i].x - trace[i - 1].x,
                           trace[i].y - trace[i - 1].y);
    }
  }
  out.residual_std = Summary(residuals).stddev();
  out.path_length = length;
  out.motion_events =
      CountMotionEvents(trace, device.spec().motion_threshold);
  return out;
}

void Run() {
  bench::PrintHeader(
      "F11", "Fig. 11 — range-query pointer traces per device",
      "the Leap Motion presents far more jitter than mouse and touch; its "
      "frictionless dwell keeps emitting events (unintended queries)");

  TextTable table({"device", "samples", "residual jitter (std)",
                   "pointer travel (px)", "motion events"});
  double mouse_events = 0.0, leap_events = 0.0;
  double mouse_jitter = 0.0, leap_jitter = 0.0;
  for (DeviceType type : {DeviceType::kMouse, DeviceType::kTouchTablet,
                          DeviceType::kLeapMotion}) {
    const TraceStats s = Analyze(type);
    table.AddRow({DeviceTypeToString(type), StrFormat("%zu", s.samples),
                  FormatDouble(s.residual_std, 2),
                  FormatDouble(s.path_length, 0),
                  StrFormat("%lld", static_cast<long long>(s.motion_events))});
    if (type == DeviceType::kMouse) {
      mouse_events = static_cast<double>(s.motion_events);
      mouse_jitter = s.residual_std;
    }
    if (type == DeviceType::kLeapMotion) {
      leap_events = static_cast<double>(s.motion_events);
      leap_jitter = s.residual_std;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: leap jitter %.1fx mouse; leap emits %.1fx the motion "
              "events for the same intended gesture\n",
              leap_jitter / mouse_jitter, leap_events / mouse_events);
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
