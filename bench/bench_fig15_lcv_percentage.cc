/// Reproduces Fig. 15: the percentage of queries violating the latency
/// constraint for each device and KL condition, on both backends.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"

namespace ideval {
namespace {

using bench::CrossfilterOpt;

void Run() {
  bench::PrintHeader(
      "F15", "Fig. 15 — percentage of queries violating latency constraint",
      "the in-memory engine violates far less than the disk engine; KL>0 "
      "roughly halves the in-memory violations, while the disk engine "
      "needs KL>0.2 for an observable drop");

  TablePtr road = bench::Road();
  const struct {
    DeviceType device;
    uint64_t seed;
  } kDevices[] = {{DeviceType::kMouse, bench::kCrossfilterSeed},
                  {DeviceType::kTouchTablet, bench::kCrossfilterSeed + 1},
                  {DeviceType::kLeapMotion, bench::kCrossfilterSeed + 2}};
  const CrossfilterOpt kOpts[] = {CrossfilterOpt::kRaw, CrossfilterOpt::kKl0,
                                  CrossfilterOpt::kKl02};

  TextTable table({"condition", "postgre-like (%)", "mem-like (%)"});
  for (CrossfilterOpt opt : kOpts) {
    for (const auto& dev : kDevices) {
      const auto groups =
          bench::CrossfilterGroups(road, dev.device, dev.seed);
      std::vector<std::string> row = {
          StrFormat("%s:%s", bench::CrossfilterOptToString(opt),
                    DeviceTypeToString(dev.device))};
      for (EngineProfile profile : {EngineProfile::kDiskRowStore,
                                    EngineProfile::kInMemoryColumnStore}) {
        auto run =
            bench::RunCrossfilterCondition(road, groups, profile, opt);
        if (!run.ok()) {
          std::fprintf(stderr, "FATAL: %s\n",
                       run.status().ToString().c_str());
          std::abort();
        }
        const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
        row.push_back(FormatDouble(lcv.ViolationFraction() * 100.0, 1));
      }
      table.AddRow(row);
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: mem column far below postgre column everywhere; the postgre "
      "column only drops materially in the KL>0.2 block (paper: ~30%% "
      "decrease for mouse/touch, ~17%% for leap motion)\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
