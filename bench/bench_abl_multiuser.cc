/// Ablation A8: backend saturation under concurrent users — the
/// throughput metric of §3.1.1 exercised properly. Several simulated
/// users share one backend; as users are added, aggregate throughput
/// climbs until the backend saturates, after which per-user latency (and
/// LCV) degrades instead. A capacity planner reads the knee off this
/// curve.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "metrics/frontend_metrics.h"

namespace ideval {
namespace {

void RunProfile(const TablePtr& road, EngineProfile profile,
                const char* label) {
  std::printf("%s\n", label);
  TextTable table({"users", "queries", "throughput (q/s)",
                   "median latency (ms)", "p90 (ms)", "LCV %"});
  for (int users : {1, 2, 4, 8}) {
    std::vector<std::vector<QueryGroup>> sessions;
    for (int u = 0; u < users; ++u) {
      sessions.push_back(bench::CrossfilterGroups(
          road, DeviceType::kMouse,
          bench::kCrossfilterSeed + 100 + static_cast<uint64_t>(u), 8));
    }
    const auto merged = MergeSessions(sessions);

    EngineOptions eopts;
    eopts.profile = profile;
    Engine engine(eopts);
    if (!engine.RegisterTable(road).ok()) std::abort();
    SchedulerOptions sopts;
    sopts.num_connections = 2;
    QueryScheduler scheduler(&engine, sopts);
    auto run = scheduler.Run(merged);
    if (!run.ok()) std::abort();

    const Summary latency = PerceivedLatencySummary(run->timelines);
    const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
    table.AddRow({StrFormat("%d", users), StrFormat("%zu", latency.count()),
                  FormatDouble(ComputeThroughput(run->timelines), 1),
                  FormatDouble(latency.median(), 1),
                  FormatDouble(latency.Quantile(0.9), 1),
                  FormatDouble(lcv.ViolationFraction() * 100.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "A8", "Ablation — shared-backend saturation under concurrent users",
      "throughput climbs with users until the backend saturates; past the "
      "knee, added users only inflate everyone's perceived latency — the "
      "regime where Fig. 3 demands throttling or a faster substrate");

  TablePtr road = bench::RoadScaled(100000);
  RunProfile(road, EngineProfile::kInMemoryColumnStore,
             "in-memory backend:");
  RunProfile(road, EngineProfile::kDiskRowStore, "disk backend:");
  std::printf(
      "check: the in-memory backend's throughput scales with users while "
      "latency stays flat; the disk backend saturates almost immediately "
      "and its latency column explodes with each added user\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
