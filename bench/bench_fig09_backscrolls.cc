/// Reproduces Fig. 9: number of selected movies vs number of backscrolls
/// per user. Momentum makes users overshoot interesting movies; for some
/// users the corrective backscrolls outnumber the selections themselves.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "F9", "Fig. 9 — selections vs backscrolled selections per user",
      "users scroll past movies they want and must scroll back; in some "
      "cases backscrolls outnumber selected movies");

  const auto traces = bench::ScrollTraces();
  TextTable table({"user", "movies selected", "selections w/ backscroll",
                   "total backscrolls"});
  int users_with_more_backscrolls = 0;
  int64_t total_selected = 0;
  for (const auto& trace : traces) {
    int64_t with_back = 0;
    for (const auto& s : trace.selections) with_back += (s.backscrolls > 0);
    table.AddRow({StrFormat("%d", trace.user_id),
                  StrFormat("%zu", trace.selections.size()),
                  StrFormat("%lld", static_cast<long long>(with_back)),
                  StrFormat("%lld",
                            static_cast<long long>(trace.total_backscrolls))});
    total_selected += static_cast<int64_t>(trace.selections.size());
    if (trace.total_backscrolls >
        static_cast<int64_t>(trace.selections.size())) {
      ++users_with_more_backscrolls;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("check: %d/15 users have more backscrolls than selections "
              "(paper: 'in some cases'); %lld selections total\n",
              users_with_more_backscrolls,
              static_cast<long long>(total_selected));
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
