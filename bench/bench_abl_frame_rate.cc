/// Ablation A10: frame-locked result delivery (§3.1.2). The iPad's panel
/// went from 30 Hz to 120 Hz; this sweep shows what the display's frame
/// rate does to a fast backend's result stream — how many results coalesce
/// into shared repaints, the added display delay, and the render work a
/// frame-locked frontend saves over naive per-result repainting.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "metrics/frame_model.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "A10", "Ablation — display frame rate vs result delivery",
      "a frame-locked frontend coalesces bursty results into shared "
      "repaints: higher fps shows results sooner but repaints more; the "
      "backend's useful output rate is bounded by the panel either way");

  TablePtr road = bench::RoadScaled(100000);
  const auto groups = bench::CrossfilterGroups(
      road, DeviceType::kLeapMotion, bench::kCrossfilterSeed + 2, 10);
  auto run = bench::RunCrossfilterCondition(
      road, groups, EngineProfile::kInMemoryColumnStore,
      bench::CrossfilterOpt::kRaw);
  if (!run.ok()) std::abort();

  TextTable table({"panel", "results", "repaints", "coalesced",
                   "render savings", "mean display delay",
                   "effective update rate"});
  for (double fps : {30.0, 60.0, 120.0}) {
    FrameModelOptions opts;
    opts.fps = fps;
    auto report = AnalyzeFrames(run->timelines, opts);
    if (!report.ok()) std::abort();
    table.AddRow(
        {StrFormat("%.0f Hz", fps),
         StrFormat("%lld", static_cast<long long>(report->results_arrived)),
         StrFormat("%lld",
                   static_cast<long long>(report->frames_with_updates)),
         StrFormat("%lld",
                   static_cast<long long>(report->coalesced_results)),
         FormatDouble(report->RenderSavings() * 100.0, 1) + "%",
         report->mean_display_delay.ToString(),
         StrFormat("%.1f Hz", report->effective_update_hz)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "check: at 30 Hz a large share of results coalesce (render savings "
      "high, display delay ~17 ms); at 120 Hz almost every result gets its "
      "own frame — the §3.1.2 trade-off between smoothness and backend-"
      "matched delivery\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
