/// Reproduces Table 8: latency constraint violations for event and timer
/// fetch — the number of users (of 15) who observed a violation and the
/// total violation counts, for fetch sizes {12, 30, 58, 80}.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "prefetch/scroll_loader.h"

namespace ideval {
namespace {

constexpr int64_t kFetchSizes[] = {12, 30, 58, 80};

struct CellStats {
  int users_with_violation = 0;
  int64_t total_violations = 0;
};

CellStats RunCondition(const std::vector<ScrollTrace>& traces, Engine* engine,
                       ScrollLoadStrategy strategy, int64_t tuples) {
  CellStats out;
  for (const auto& trace : traces) {
    ScrollLoadOptions opts;
    opts.strategy = strategy;
    opts.tuples_per_fetch = tuples;
    engine->ClearCaches();
    auto report = SimulateScrollLoading(trace, engine, opts);
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
      std::abort();
    }
    out.users_with_violation += report->HadViolation();
    out.total_violations += report->violations;
  }
  return out;
}

void Run() {
  bench::PrintHeader(
      "T8", "Table 8 — latency constraint violations, event vs timer fetch",
      "event fetch violates for ~all 15 users at every cache size; timer "
      "fetch's violations collapse as fetch size grows and vanish by 80");

  const auto traces = bench::ScrollTraces();
  TablePtr movies = bench::Movies();
  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;
  Engine engine(eopts);
  if (!engine.RegisterTable(movies).ok()) std::abort();

  std::vector<CellStats> event_cells, timer_cells;
  for (int64_t n : kFetchSizes) {
    event_cells.push_back(
        RunCondition(traces, &engine, ScrollLoadStrategy::kEventFetch, n));
    timer_cells.push_back(
        RunCondition(traces, &engine, ScrollLoadStrategy::kTimerFetch, n));
  }

  TextTable table({"# tuples fetched", "12", "30", "58", "80"});
  auto row = [&](const char* label, const std::vector<CellStats>& cells,
                 bool users) {
    std::vector<std::string> r = {label};
    for (const auto& c : cells) {
      r.push_back(users ? StrFormat("%d", c.users_with_violation)
                        : StrFormat("%lld", static_cast<long long>(
                                                c.total_violations)));
    }
    table.AddRow(r);
  };
  row("# users (event)", event_cells, true);
  row("# users (timer)", timer_cells, true);
  row("# violations (event)", event_cells, false);
  row("# violations (timer)", timer_cells, false);
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper Table 8 for reference:\n");
  std::printf("  # users (event):      15   15  15  14\n");
  std::printf("  # users (timer):       3    1   1   0\n");
  std::printf("  # violations (event): 2203 840 457 167\n");
  std::printf("  # violations (timer):  767   2   1   0\n");
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
