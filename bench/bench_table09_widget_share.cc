/// Reproduces Table 9: the percentage of queries issued through each
/// interface widget across the 15 composite-interface sessions.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/text_table.h"

namespace ideval {
namespace {

void Run() {
  bench::PrintHeader(
      "T9", "Table 9 — percentage of queries per interface widget",
      "map 62.8%, slider+checkbox 29.9%, button 3.6%, text box 3.6%: the "
      "map dominates, so prefetching should favour map tiles");

  std::map<WidgetKind, int64_t> counts;
  int64_t total = 0;
  for (const auto& trace : bench::ExploreTraces()) {
    for (const auto& phase : trace.phases) {
      ++counts[phase.request.widget];
      ++total;
    }
  }

  auto pct = [&](WidgetKind k) {
    return 100.0 * static_cast<double>(counts[k]) /
           static_cast<double>(total);
  };
  TextTable table({"interface", "map", "slider, checkbox", "button",
                   "text box"});
  table.AddRow({"percent", FormatDouble(pct(WidgetKind::kMap), 1) + "%",
                FormatDouble(pct(WidgetKind::kSlider) +
                                 pct(WidgetKind::kCheckbox),
                             1) +
                    "%",
                FormatDouble(pct(WidgetKind::kButton), 1) + "%",
                FormatDouble(pct(WidgetKind::kTextBox), 1) + "%"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper Table 9: map 62.8%% | slider,checkbox 29.9%% | "
              "button 3.6%% | text box 3.6%%  (n=%lld queries here)\n",
              static_cast<long long>(total));
}

}  // namespace
}  // namespace ideval

int main() {
  ideval::Run();
  return 0;
}
