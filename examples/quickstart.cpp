/// Quickstart: evaluate an interactive crossfilter session end to end.
///
/// This walks the whole ideval pipeline in ~80 lines:
///   1. build a dataset and register it with a backend engine,
///   2. simulate a user brushing a coordinated-histogram view on a touch
///      device,
///   3. replay the generated query workload through the discrete-event
///      scheduler,
///   4. report the paper's metrics: latency breakdown, QIF, and LCV.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/datasets.h"
#include "engine/engine.h"
#include "metrics/frontend_metrics.h"
#include "sim/query_scheduler.h"
#include "widget/crossfilter.h"
#include "workload/crossfilter_task.h"

using namespace ideval;

int main() {
  // 1. A synthetic stand-in for the UCI 3-D road network (§7 of the
  //    paper): 100k points with road-like spatial correlation.
  RoadNetworkOptions data_opts;
  data_opts.num_rows = 100000;
  Result<TablePtr> road = MakeRoadNetworkTable(data_opts);
  if (!road.ok()) {
    std::fprintf(stderr, "dataset: %s\n", road.status().ToString().c_str());
    return 1;
  }

  // 2. An in-memory backend (swap in kDiskRowStore to feel the difference).
  EngineOptions engine_opts;
  engine_opts.profile = EngineProfile::kInMemoryColumnStore;
  Engine engine(engine_opts);
  if (Status s = engine.RegisterTable(*road); !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. A crossfilter view over x/y/z and a simulated touch user making 15
  //    slider adjustments. Every pointer move that clears the toolkit
  //    threshold becomes a coordinated query group (n-1 histograms).
  auto view = CrossfilterView::Make(*road, {"x", "y", "z"});
  CrossfilterUserParams user;
  user.device = DeviceType::kTouchTablet;
  user.num_moves = 15;
  user.seed = 42;
  auto trace = GenerateCrossfilterTrace(user, &*view);
  auto replay_view = CrossfilterView::Make(*road, {"x", "y", "z"});
  auto groups = BuildQueryGroups(&*replay_view, trace->events);
  std::printf("simulated %zu slider events -> %zu query groups over %.1f s\n",
              trace->events.size(), groups->size(),
              trace->session_duration.seconds());

  // 4. Replay against the backend and measure.
  QueryScheduler scheduler(&engine, SchedulerOptions{});
  auto run = scheduler.Run(*groups);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  auto qif = ComputeQif(IssueTimes(run->timelines));
  const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
  const LatencyBreakdownMeans means = MeanLatencyBreakdown(run->timelines);

  std::printf("\n--- evaluation (the paper's metric taxonomy) ---\n");
  std::printf("query issuing frequency : %.1f queries/s\n", qif->qif);
  std::printf("latency breakdown (mean): network %s | scheduling %s | "
              "execution %s | post-agg %s | rendering %s\n",
              means.network.ToString().c_str(),
              means.scheduling.ToString().c_str(),
              means.execution.ToString().c_str(),
              means.post_aggregation.ToString().c_str(),
              means.rendering.ToString().c_str());
  std::printf("perceived latency (mean): %s\n",
              means.perceived.ToString().c_str());
  std::printf("latency constraint violations: %lld of %lld queries "
              "(%.1f%%)\n",
              static_cast<long long>(lcv.violations),
              static_cast<long long>(lcv.queries_considered),
              lcv.ViolationFraction() * 100.0);
  std::printf("\nTip: rerun with EngineProfile::kDiskRowStore and watch the "
              "LCV fraction explode — then fix it with opt/KlQueryFilter "
              "or SchedulingPolicy::kSkipStale.\n");
  return 0;
}
