/// Example: designing a sound user study with the guidelines module.
///
/// A team wants to compare their new crossfilter UI against a baseline.
/// This example walks the paper's §3–§5 machinery end to end: pick
/// metrics with the advisor, choose the study setting/structure with the
/// decision trees, generate a counterbalanced condition schedule, budget
/// the session with KLM, and finally run the plan through the §5
/// validator — first a flawed draft, then the corrected plan.
///
/// Build & run:  ./build/examples/study_designer

#include <cstdio>

#include "common/text_table.h"
#include "device/klm.h"
#include "guidelines/bias_catalog.h"
#include "guidelines/plan_validator.h"

using namespace ideval;

namespace {

void PrintIssues(const char* label, const std::vector<PlanIssue>& issues) {
  std::printf("%s\n", label);
  if (issues.empty()) {
    std::printf("  plan complies with every applicable guideline.\n\n");
    return;
  }
  for (const auto& issue : issues) {
    std::printf("  %-7s [%s] %s\n", SeverityToString(issue.severity),
                issue.guideline.c_str(), issue.message.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The system under evaluation.
  SystemProfile profile;
  profile.name = "crossfilter UI v2 vs v1";
  profile.exploratory = true;
  profile.large_data = true;
  profile.high_frame_rate_device = true;
  profile.consecutive_query_bursts = true;

  // 1. Ask the advisor which metrics to report.
  std::printf("1. metric selection (Table 3):\n");
  EvaluationPlan plan;
  plan.profile = profile;
  for (const auto& rec : RecommendMetrics(profile)) {
    plan.metrics.push_back(rec.metric);
    std::printf("   - %s\n", MetricToString(rec.metric));
  }

  // 2. Study setting & structure (Figs. 4-5): insight-based comparison.
  StudySettingInputs setting;
  setting.comparison_against_control = true;
  StudyStructureInputs structure;
  structure.task_depends_on_inherent_ability = true;  // Insights.
  const auto setting_decision = RecommendStudySetting(setting);
  const auto structure_decision = RecommendStudyStructure(structure);
  plan.setting = setting_decision.setting;
  plan.structure = structure_decision.structure;
  std::printf("\n2. study design: %s, %s\n   %s\n   %s\n",
              StudySettingToString(plan.setting),
              StudyStructureToString(plan.structure),
              setting_decision.rationale.c_str(),
              structure_decision.rationale.c_str());

  // 3. A first (careless) draft of the logistics.
  plan.participants = 6;
  plan.randomized_or_counterbalanced = false;
  plan.tasks_externally_reviewed = false;
  plan.uses_real_datasets = false;
  plan.hypothesis_disclosed_to_participants = true;  // Oops: recruiting
                                                     // email said it all.
  std::printf("\n3. validate the draft plan (§5 checks):\n");
  PrintIssues("   findings:", ValidateEvaluationPlan(plan));

  // 4. Fix everything the validator flagged.
  plan.participants = 12;
  plan.randomized_or_counterbalanced = true;
  plan.breaks_between_tasks = true;
  plan.tasks_externally_reviewed = true;
  plan.uses_real_datasets = true;
  plan.hypothesis_disclosed_to_participants = false;
  std::printf("4. validate the corrected plan:\n");
  PrintIssues("   findings:", ValidateEvaluationPlan(plan));

  // 5. Counterbalanced schedule for the two conditions x 12 participants.
  auto orders = CounterbalancedOrders(2, plan.participants);
  if (!orders.ok()) return 1;
  std::printf("5. counterbalanced condition order (0 = v1 baseline, "
              "1 = v2):\n");
  TextTable schedule({"participant", "first", "second"});
  for (size_t p = 0; p < orders->size(); ++p) {
    schedule.AddRow({StrFormat("P%zu", p + 1),
                     StrFormat("v%d", (*orders)[p][0] + 1),
                     StrFormat("v%d", (*orders)[p][1] + 1)});
  }
  std::printf("%s\n", schedule.ToString().c_str());

  // 6. Budget the session with KLM so tasks fit before fatigue (§4.2.2).
  const int kTasksPerCondition = 8;
  auto slider = KlmEstimate(KlmSequenceForSliderAdjust(),
                            DeviceType::kTouchTablet);
  auto search = KlmEstimate(KlmSequenceForTextSearch(12),
                            DeviceType::kTouchTablet);
  if (!slider.ok() || !search.ok()) return 1;
  const Duration per_task = *slider * 6.0 + *search;  // ~6 brushes + 1 query.
  const Duration per_condition = per_task * static_cast<double>(
                                     kTasksPerCondition);
  std::printf("6. KLM session budget: %s per task, %s per condition "
              "(x2 conditions + breaks ~= a %d-minute session)\n",
              per_task.ToString().c_str(), per_condition.ToString().c_str(),
              static_cast<int>(per_condition.seconds() * 2.0 / 60.0) + 10);

  // 7. The procedural checklist to file with the IRB packet.
  std::printf("\n7. study procedure checklist (Table 4 + §4.2.2):\n");
  for (const auto& line : StudyProcedureChecklist()) {
    std::printf("   [ ] %s\n", line.c_str());
  }
  return 0;
}
