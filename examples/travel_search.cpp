/// Example: sizing a speculative tile prefetcher for a travel-search site
/// (the paper's case study 3 as a design exercise).
///
/// We simulate vacation-booking sessions on a composite map+filters
/// interface, mine the traces for the behavioural regularities §8 reports
/// (widget shares, zoom band, filter counts, exploration pauses), and then
/// verify that a Markov tile prefetcher tuned to those regularities beats
/// plain caching.
///
/// Build & run:  ./build/examples/travel_search

#include <cstdio>
#include <map>

#include "common/stats.h"
#include "common/text_table.h"
#include "data/datasets.h"
#include "prefetch/tile_cache.h"
#include "workload/explore_task.h"
#include "workload/trace_io.h"

using namespace ideval;

int main() {
  // Simulate 10 booking sessions of >= 20 minutes each.
  Rng rng(7);
  auto users = SampleExploreUsers(10, &rng);
  std::vector<ExploreTrace> traces;
  for (const auto& user : users) {
    CompositeInterface::Options ui_opts;
    ui_opts.destinations = {{"Birmingham", 33.52, -86.80, 12},
                            {"Atlanta", 33.75, -84.39, 12},
                            {"Nashville", 36.16, -86.78, 11},
                            {"Memphis", 35.15, -90.05, 12}};
    CompositeInterface ui(MapWidget(32.0, -86.0, 11), std::move(ui_opts));
    auto trace = GenerateExploreTrace(user, &ui);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    traces.push_back(std::move(*trace));
  }

  // --- Mine the behavioural regularities. ---
  std::map<WidgetKind, int> widget_counts;
  std::vector<double> explore_s, request_s, filters;
  std::map<int, int> zoom_counts;
  int total = 0;
  for (const auto& trace : traces) {
    for (const auto& phase : trace.phases) {
      ++widget_counts[phase.request.widget];
      ++total;
      explore_s.push_back(phase.exploration_time.seconds());
      request_s.push_back(phase.request_time.seconds());
      filters.push_back(
          static_cast<double>(phase.request.num_filter_conditions));
      ++zoom_counts[phase.request.zoom_level];
    }
  }
  Summary explore(explore_s), request(request_s), filter_counts(filters);

  std::printf("behavioural findings over %d queries:\n", total);
  std::printf("  - map actions: %.0f%% -> prefetch tiles, not filter "
              "results\n",
              100.0 * widget_counts[WidgetKind::kMap] / total);
  int band = 0;
  for (const auto& [zoom, count] : zoom_counts) {
    if (zoom >= 11 && zoom <= 14) band += count;
  }
  std::printf("  - %.0f%% of viewports at zoom 11-14 -> precompute those "
              "levels only\n",
              100.0 * band / total);
  std::printf("  - %.0f%% of queries carry <= 4 filter conditions -> cache "
              "results up to 4 predicates\n",
              100.0 * filter_counts.CdfAt(4.0));
  std::printf("  - mean exploration pause %.1f s vs mean request %.2f s -> "
              "~%.0f speculative queries fit per pause\n\n",
              explore.mean(), request.mean(),
              explore.mean() / request.mean());

  // --- Verify the prefetcher the findings suggest. ---
  auto replay = [&](bool predictive) {
    TileCache cache(256, EvictionPolicy::kLru);
    MarkovTilePrefetcher::Options popts;
    popts.min_useful_zoom = 11;  // From the zoom-band finding.
    popts.max_useful_zoom = 14;
    MarkovTilePrefetcher predictor(popts);
    for (const auto& trace : traces) {
      const ExplorePhase* prev = nullptr;
      for (const auto& phase : trace.phases) {
        MapWidget map(phase.request.bounds.CenterLat(),
                      phase.request.bounds.CenterLng(),
                      phase.request.zoom_level);
        for (const auto& tile : map.VisibleTiles()) cache.Request(tile);
        if (predictive) {
          if (prev != nullptr) {
            auto move = ClassifyMove(prev->request.bounds,
                                     prev->request.zoom_level,
                                     phase.request.bounds,
                                     phase.request.zoom_level);
            if (move.ok()) predictor.Observe(*move);
          }
          for (const auto& tile : predictor.PrefetchCandidates(
                   phase.request.bounds, phase.request.zoom_level)) {
            cache.Prefetch(tile);
          }
        }
        prev = &phase;
      }
    }
    return cache.HitRate();
  };

  const double plain = replay(false);
  const double predictive = replay(true);
  std::printf("tile cache hit rate: plain LRU %.1f%% -> with "
              "behaviour-driven Markov prefetch %.1f%%\n",
              plain * 100.0, predictive * 100.0);
  std::printf("(prefetcher fan-out x mean pause %.1f s easily fits in the "
              "%.2f s request budget measured above)\n",
              explore.mean(), request.mean());

  (void)WriteFile("/tmp/ideval_explore_trace_user0.csv",
                  ExploreTraceToCsv(traces[0]));
  std::printf("\nwrote example session to "
              "/tmp/ideval_explore_trace_user0.csv\n");
  return 0;
}
