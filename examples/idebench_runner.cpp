/// Example: the declarative benchmark runner — an IDEBench-style harness
/// (§4.1.3, §9) where an interactive workload is fully described as data.
///
/// Usage:
///   ./build/examples/idebench_runner                 # run built-in presets
///   ./build/examples/idebench_runner spec.workload   # run a spec file
///   ./build/examples/idebench_runner --emit > my.workload   # starter spec
///
/// A spec file is `key = value` lines, e.g.:
///
///   name = leap-on-disk
///   interface = crossfilter        # scroll | crossfilter | explore
///   device = leap                  # mouse | trackpad | touch | leap
///   engine = disk                  # disk | memory
///   users = 3
///   kl_threshold = 0.2             # negative = off
///   policy = skip                  # fifo | skip

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/benchmark_runner.h"

using namespace ideval;

namespace {

int RunSpec(const WorkloadSpec& spec) {
  std::printf("running '%s'...\n", spec.name.c_str());
  auto report = RunWorkload(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToText().c_str());
  return 0;
}

WorkloadSpec Preset(const char* name, InterfaceKind kind, DeviceType device,
                    EngineProfile engine) {
  WorkloadSpec spec;
  spec.name = name;
  spec.interface_kind = kind;
  spec.device = device;
  spec.engine = engine;
  spec.num_users = 2;
  spec.seed = 11;
  // Scaled-down datasets keep the demo quick; set rows = 0 in a spec file
  // for the case studies' published sizes.
  spec.rows = kind == InterfaceKind::kCrossfilter ? 60000 : 4000;
  if (kind == InterfaceKind::kCompositeExplore) {
    spec.rows = 20000;
    spec.explore_session_minutes = 5.0;
  }
  spec.crossfilter_moves = 10;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--emit") == 0) {
    std::printf("%s", WorkloadSpecToText(WorkloadSpec{}).c_str());
    return 0;
  }
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto spec = ParseWorkloadSpec(buffer.str());
    if (!spec.ok()) {
      std::fprintf(stderr, "bad spec: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    return RunSpec(*spec);
  }

  // Built-in presets: the same crossfilter workload across the factor
  // grid, showing how the harness makes conditions comparable.
  int rc = 0;
  rc |= RunSpec(Preset("mouse-memory", InterfaceKind::kCrossfilter,
                       DeviceType::kMouse,
                       EngineProfile::kInMemoryColumnStore));
  rc |= RunSpec(Preset("leap-disk-raw", InterfaceKind::kCrossfilter,
                       DeviceType::kLeapMotion,
                       EngineProfile::kDiskRowStore));
  WorkloadSpec fixed = Preset("leap-disk-kl0.2+skip",
                              InterfaceKind::kCrossfilter,
                              DeviceType::kLeapMotion,
                              EngineProfile::kDiskRowStore);
  fixed.kl_threshold = 0.2;
  fixed.policy = SchedulingPolicy::kSkipStale;
  rc |= RunSpec(fixed);
  rc |= RunSpec(Preset("trackpad-scroll", InterfaceKind::kInertialScroll,
                       DeviceType::kTouchTrackpad,
                       EngineProfile::kDiskRowStore));
  return rc;
}
