/// Example: taking a gestural data-exploration prototype from
/// "unresponsive" to "interactive" (the paper's case study 2 as a design
/// exercise), plus the guidelines side of the framework: which metrics to
/// report and how to design the user study.
///
/// Build & run:  ./build/examples/gesture_lab

#include <cstdio>

#include "common/text_table.h"
#include "data/datasets.h"
#include "guidelines/advisor.h"
#include "metrics/frontend_metrics.h"
#include "metrics/thresholds.h"
#include "opt/kl_filter.h"
#include "sim/query_scheduler.h"
#include "widget/crossfilter.h"
#include "workload/crossfilter_task.h"

using namespace ideval;

namespace {

std::vector<QueryGroup> SimulateSession(const TablePtr& road,
                                        DeviceType device) {
  auto view = CrossfilterView::Make(road, {"x", "y", "z"}).ValueOrDie();
  CrossfilterUserParams user;
  user.device = device;
  user.num_moves = 15;
  user.seed = 99;
  auto trace = GenerateCrossfilterTrace(user, &view).ValueOrDie();
  auto replay = CrossfilterView::Make(road, {"x", "y", "z"}).ValueOrDie();
  return BuildQueryGroups(&replay, trace.events).ValueOrDie();
}

void Evaluate(const char* label, Engine* engine,
              const std::vector<QueryGroup>& groups,
              SchedulingPolicy policy = SchedulingPolicy::kFifo) {
  SchedulerOptions sopts;
  sopts.policy = policy;
  sopts.num_connections = 2;
  QueryScheduler scheduler(engine, sopts);
  auto run = scheduler.Run(groups);
  if (!run.ok()) return;
  const Summary lat = PerceivedLatencySummary(run->timelines);
  const LcvStats lcv = ComputeCrossfilterLcv(run->timelines);
  const char* verdict =
      lat.Quantile(0.9) <= kInteractiveLatencyBudget.millis()
          ? "interactive"
          : "NOT interactive";
  std::printf("  %-28s median %8.1f ms  p90 %9.1f ms  LCV %5.1f%%  -> %s\n",
              label, lat.median(), lat.Quantile(0.9),
              lcv.ViolationFraction() * 100.0, verdict);
}

}  // namespace

int main() {
  RoadNetworkOptions ropts;
  ropts.num_rows = 200000;
  TablePtr road = MakeRoadNetworkTable(ropts).ValueOrDie();

  // 1. The problem: the Leap Motion floods the disk backend.
  std::printf("step 1 — measure the device workloads (QIF):\n");
  for (DeviceType device : {DeviceType::kMouse, DeviceType::kTouchTablet,
                            DeviceType::kLeapMotion}) {
    auto groups = SimulateSession(road, device);
    std::vector<SimTime> times;
    for (const auto& g : groups) times.push_back(g.issue_time);
    auto qif = ComputeQif(times);
    std::printf("  %-12s %5zu queries at %5.1f queries/s\n",
                DeviceTypeToString(device), groups.size(), qif->qif);
  }

  auto leap_groups = SimulateSession(road, DeviceType::kLeapMotion);
  EngineOptions disk_opts;
  disk_opts.profile = EngineProfile::kDiskRowStore;
  Engine disk(disk_opts);
  (void)disk.RegisterTable(road);

  std::printf("\nstep 2 — the raw gestural workload on the disk backend:\n");
  Evaluate("raw", &disk, leap_groups);

  // 2. Behaviour-driven fixes.
  std::printf("\nstep 3 — behaviour-driven optimizations:\n");
  Evaluate("skip stale groups", &disk, leap_groups,
           SchedulingPolicy::kSkipStale);
  auto kl = KlQueryFilter::Make(road, 0.2).ValueOrDie();
  auto filtered = FilterQueryGroups(&kl, leap_groups).ValueOrDie();
  Evaluate(StrFormat("KL>0.2 (%zu groups)", filtered.size()).c_str(), &disk,
           filtered);

  EngineOptions mem_opts;
  mem_opts.profile = EngineProfile::kInMemoryColumnStore;
  Engine mem(mem_opts);
  (void)mem.RegisterTable(road);
  std::printf("\nstep 4 — or change the substrate:\n");
  Evaluate("in-memory engine, raw", &mem, leap_groups);

  // 3. What to report, and how to study it with humans.
  std::printf("\nstep 5 — how to evaluate the system (guidelines):\n");
  SystemProfile profile;
  profile.name = "gesture crossfilter";
  profile.exploratory = true;
  profile.large_data = true;
  profile.high_frame_rate_device = true;
  profile.consecutive_query_bursts = true;
  profile.targets_novices = true;
  for (const auto& rec : RecommendMetrics(profile)) {
    std::printf("  report %-28s (%s)\n", MetricToString(rec.metric),
                rec.reason.c_str());
  }

  StudySettingInputs setting;
  setting.device_dependent = true;  // Comparing gesture vs mouse hardware.
  StudyStructureInputs structure;
  structure.task_depends_on_inherent_ability = false;
  const auto setting_decision = RecommendStudySetting(setting);
  const auto structure_decision = RecommendStudyStructure(structure);
  std::printf("\n  user study: %s / %s\n",
              StudySettingToString(setting_decision.setting),
              StudyStructureToString(structure_decision.structure));
  std::printf("    because: %s\n", setting_decision.rationale.c_str());
  std::printf("    because: %s\n", structure_decision.rationale.c_str());
  std::printf("    recruit at least %d participants.\n",
              kRecommendedMinParticipants);
  return 0;
}
