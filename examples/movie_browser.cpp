/// Example: choosing a result-loading strategy for an inertial-scrolling
/// movie browser (the paper's case study 1 as a design exercise).
///
/// A product team wants a movie list that never shows the user a loading
/// spinner. This example simulates their user population, sweeps the
/// candidate loading strategies, and prints a recommendation with the
/// evidence — exactly the behaviour-driven design loop §5 advocates.
///
/// Build & run:  ./build/examples/movie_browser

#include <cstdio>

#include "common/text_table.h"
#include "data/datasets.h"
#include "prefetch/scroll_loader.h"
#include "workload/scroll_task.h"
#include "workload/trace_io.h"

using namespace ideval;

namespace {

struct StrategyOutcome {
  std::string label;
  int users_stalled = 0;
  int64_t stalls = 0;
  double mean_wait_ms = 0.0;
  int64_t fetches = 0;
};

}  // namespace

int main() {
  // The catalog: 4,000 top-rated movies, as in §6.
  auto movies = MakeMoviesTable(MoviesOptions{});
  if (!movies.ok()) return 1;
  auto split = SplitMoviesForJoin(*movies);

  EngineOptions eopts;
  eopts.profile = EngineProfile::kDiskRowStore;  // Movies live in Postgres.
  Engine engine(eopts);
  (void)engine.RegisterTable(*movies);
  (void)engine.RegisterTable(split->ratings);
  (void)engine.RegisterTable(split->movies);

  // Simulate the user population (15 skim-and-select sessions).
  Rng rng(2024);
  std::vector<ScrollTrace> traces;
  for (const auto& user : SampleScrollUsers(15, &rng)) {
    auto trace = GenerateScrollTrace(user, ScrollTaskOptions{});
    if (!trace.ok()) return 1;
    traces.push_back(std::move(*trace));
  }
  // Persist one trace as a shareable workload artifact (§4.1.3).
  (void)WriteFile("/tmp/ideval_scroll_trace_user0.csv",
                  ScrollTraceToCsv(traces[0]));
  std::printf("wrote example trace to /tmp/ideval_scroll_trace_user0.csv\n\n");

  // Sweep strategies x fetch sizes.
  std::vector<StrategyOutcome> outcomes;
  const struct {
    ScrollLoadStrategy strategy;
    int64_t tuples;
  } kCandidates[] = {
      {ScrollLoadStrategy::kLazyLoad, 58},
      {ScrollLoadStrategy::kEventFetch, 58},
      {ScrollLoadStrategy::kTimerFetch, 30},
      {ScrollLoadStrategy::kTimerFetch, 58},
      {ScrollLoadStrategy::kTimerFetch, 80},
  };
  for (const auto& candidate : kCandidates) {
    StrategyOutcome outcome;
    outcome.label = StrFormat("%s @ %lld tuples",
                              ScrollLoadStrategyToString(candidate.strategy),
                              static_cast<long long>(candidate.tuples));
    double wait_ms_total = 0.0;
    for (const auto& trace : traces) {
      ScrollLoadOptions opts;
      opts.strategy = candidate.strategy;
      opts.tuples_per_fetch = candidate.tuples;
      opts.query_shape = ScrollQueryShape::kJoinPage;  // §6's Q2 shape.
      engine.ClearCaches();
      auto report = SimulateScrollLoading(trace, &engine, opts);
      if (!report.ok()) return 1;
      outcome.users_stalled += report->HadViolation();
      outcome.stalls += report->violations;
      outcome.fetches += report->fetches_issued;
      wait_ms_total += report->MeanWait().millis();
    }
    outcome.mean_wait_ms = wait_ms_total / static_cast<double>(traces.size());
    outcomes.push_back(outcome);
  }

  TextTable table({"strategy", "users who stalled (of 15)", "total stalls",
                   "mean wait (ms)", "fetches issued"});
  for (const auto& o : outcomes) {
    table.AddRow({o.label, StrFormat("%d", o.users_stalled),
                  StrFormat("%lld", static_cast<long long>(o.stalls)),
                  FormatDouble(o.mean_wait_ms, 1),
                  StrFormat("%lld", static_cast<long long>(o.fetches))});
  }
  std::printf("%s\n", table.ToString().c_str());

  // The behaviour-driven recommendation: timer fetch sized to the median
  // of the users' maximum scroll speed (Table 7's takeaway).
  std::vector<double> max_speeds;
  for (const auto& trace : traces) {
    Summary s(ComputeScrollSpeeds(trace, 157.0).tuples_per_s);
    max_speeds.push_back(s.max());
  }
  std::printf("recommendation: timer fetch at >= %.0f tuples/s (median of "
              "the population's max scroll speed) gives zero perceived "
              "latency for this workload.\n",
              Summary(max_speeds).median());
  return 0;
}
