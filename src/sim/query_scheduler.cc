#include "sim/query_scheduler.h"

#include <algorithm>

#include "common/text_table.h"

namespace ideval {

std::vector<QueryGroup> MergeSessions(
    const std::vector<std::vector<QueryGroup>>& sessions) {
  std::vector<QueryGroup> merged;
  size_t total = 0;
  for (const auto& s : sessions) total += s.size();
  merged.reserve(total);
  for (const auto& s : sessions) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const QueryGroup& a, const QueryGroup& b) {
                     return a.issue_time < b.issue_time;
                   });
  return merged;
}

const char* SchedulingPolicyToString(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kSkipStale:
      return "skip";
  }
  return "unknown";
}

QueryScheduler::QueryScheduler(Engine* engine, SchedulerOptions options)
    : engine_(engine), options_(options) {}

Result<SessionExecution> QueryScheduler::Run(
    const std::vector<QueryGroup>& groups) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("QueryScheduler has no engine");
  }
  if (options_.num_connections < 1) {
    return Status::InvalidArgument(
        StrFormat("num_connections must be >= 1, got %d",
                  options_.num_connections));
  }
  for (size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].issue_time < groups[i - 1].issue_time) {
      return Status::InvalidArgument(
          "query groups must be sorted by issue time");
    }
  }

  SessionExecution out;
  out.groups_submitted = static_cast<int64_t>(groups.size());
  const CostModel& cost = engine_->cost_model();
  const Duration request_net = cost.network_request;

  // The backend serves groups one at a time; `backend_free` is when it can
  // take the next one.
  SimTime backend_free = SimTime::Origin();

  size_t next = 0;  // Next unprocessed group.
  while (next < groups.size()) {
    // Under kSkipStale, once the backend frees up it jumps to the newest
    // group that has already arrived, shedding everything older.
    size_t chosen = next;
    if (options_.policy == SchedulingPolicy::kSkipStale) {
      while (chosen + 1 < groups.size() &&
             groups[chosen + 1].issue_time + request_net <= backend_free) {
        // The group at `chosen` is stale: a newer one is already waiting.
        const QueryGroup& stale = groups[chosen];
        for (size_t qi = 0; qi < stale.queries.size(); ++qi) {
          QueryTimeline t;
          t.group_id = static_cast<int64_t>(chosen);
          t.query_index = static_cast<int64_t>(qi);
          t.skipped = true;
          t.issue_time = stale.issue_time;
          t.backend_arrival = stale.issue_time + request_net;
          out.timelines.push_back(std::move(t));
        }
        ++out.groups_skipped;
        ++chosen;
      }
    }

    const QueryGroup& group = groups[chosen];
    const SimTime arrival = group.issue_time + request_net;
    const SimTime group_start = std::max(arrival, backend_free);

    // Queries of the group run concurrently across connections; extras
    // serialize round-robin.
    std::vector<SimTime> conn_free(
        static_cast<size_t>(options_.num_connections), group_start);
    SimTime group_end = group_start;
    for (size_t qi = 0; qi < group.queries.size(); ++qi) {
      IDEVAL_ASSIGN_OR_RETURN(QueryResponse response,
                              engine_->Execute(group.queries[qi]));
      const size_t conn = qi % conn_free.size();

      QueryTimeline t;
      t.group_id = static_cast<int64_t>(chosen);
      t.query_index = static_cast<int64_t>(qi);
      t.issue_time = group.issue_time;
      t.backend_arrival = arrival;
      t.exec_start = conn_free[conn];
      t.exec_end = t.exec_start + response.ServerTime();
      conn_free[conn] = t.exec_end;
      group_end = std::max(group_end, t.exec_end);

      const Duration response_net = cost.NetworkTime(response.stats);
      t.client_receive = t.exec_end + response_net;
      const Duration render = cost.RenderTime(response.stats);
      t.render_end = t.client_receive + render;

      t.network_latency = request_net + response_net;
      t.scheduling_latency = t.exec_start - t.backend_arrival;
      t.execution_latency = response.execution_time;
      t.post_aggregation_latency = response.post_aggregation_time;
      t.rendering_latency = render;
      t.stats = response.stats;
      t.data = std::move(response.data);

      out.last_completion = std::max(out.last_completion, t.render_end);
      out.timelines.push_back(std::move(t));
    }
    backend_free = group_end;
    ++out.groups_executed;
    next = chosen + 1;
  }
  return out;
}

}  // namespace ideval
