#ifndef IDEVAL_SIM_SIM_CLOCK_H_
#define IDEVAL_SIM_SIM_CLOCK_H_

#include "common/result.h"
#include "common/sim_time.h"

namespace ideval {

/// Monotonic virtual clock that all simulated components share.
///
/// ideval never reads wall-clock time in experiment paths; sessions advance
/// this clock as interaction events and query completions occur, which
/// makes every latency, interval and LCV count deterministic.
class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  /// Advances to `t`. Errors if `t` is in the past (monotonicity).
  Status AdvanceTo(SimTime t) {
    if (t < now_) {
      return Status::InvalidArgument("SimClock cannot move backwards (" +
                                     t.ToString() + " < " + now_.ToString() +
                                     ")");
    }
    now_ = t;
    return Status::OK();
  }

  /// Advances by a nonnegative duration.
  Status Advance(Duration d) { return AdvanceTo(now_ + d); }

  /// Resets to the origin (new session).
  void Reset() { now_ = SimTime::Origin(); }

 private:
  SimTime now_;
};

}  // namespace ideval

#endif  // IDEVAL_SIM_SIM_CLOCK_H_
