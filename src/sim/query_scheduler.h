#ifndef IDEVAL_SIM_QUERY_SCHEDULER_H_
#define IDEVAL_SIM_QUERY_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/engine.h"
#include "engine/query.h"

namespace ideval {

/// How the backend drains its queue when interaction outpaces execution.
enum class SchedulingPolicy {
  /// Run every issued query in arrival order — the "raw" condition of §7.2,
  /// where delays cascade exactly as in Fig. 2.
  kFifo,
  /// When the backend frees up, jump to the *newest* pending query group
  /// and mark the stale ones skipped — Algorithm 1 ("Skip") of §7.1.
  kSkipStale,
};

const char* SchedulingPolicyToString(SchedulingPolicy policy);

/// Scheduler configuration.
struct SchedulerOptions {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  /// Parallel backend connections; queries inside one group run
  /// concurrently across connections (the paper forks one process per
  /// query of a coordinated-view group). `Run` rejects values < 1.
  int num_connections = 2;
};

/// Full simulated timeline of one query, from user issue to rendered
/// result. All latency components of Fig. 1's latency subtree are explicit.
struct QueryTimeline {
  int64_t group_id = 0;
  int64_t query_index = 0;  ///< Position within its group.
  bool skipped = false;     ///< True if the Skip policy dropped it.

  SimTime issue_time;       ///< User action in the frontend.
  SimTime backend_arrival;  ///< After request-side network.
  SimTime exec_start;       ///< After queueing (scheduling latency).
  SimTime exec_end;         ///< Execution + post-aggregation done.
  SimTime client_receive;   ///< After response-side network.
  SimTime render_end;       ///< Result on screen.

  Duration network_latency;
  Duration scheduling_latency;
  Duration execution_latency;
  Duration post_aggregation_latency;
  Duration rendering_latency;

  QueryWorkStats stats;
  std::optional<QueryResultData> data;  ///< Absent for skipped queries.

  /// End-to-end latency the user perceives ("from the moment the user hits
  /// submit till they get back results", §3.1.1). Zero for skipped queries.
  Duration PerceivedLatency() const {
    return skipped ? Duration::Zero() : render_end - issue_time;
  }
};

/// One frontend interaction step: a timestamp plus the coordinated-view
/// query group it triggers (crossfiltering issues n-1 histogram queries per
/// slider event).
struct QueryGroup {
  SimTime issue_time;
  std::vector<Query> queries;
};

/// Result of replaying a session against a backend.
struct SessionExecution {
  std::vector<QueryTimeline> timelines;  ///< Issue order, groups contiguous.
  int64_t groups_submitted = 0;
  int64_t groups_executed = 0;
  int64_t groups_skipped = 0;
  SimTime last_completion;
};

/// Discrete-event backend simulator.
///
/// Replays a sequence of query groups against an `Engine`, modelling the
/// execution-delay cascade of Fig. 2: the backend serves one group at a
/// time (its queries in parallel over `num_connections`), so when the user
/// issues faster than the backend drains, queueing delay accumulates and
/// perceived latency grows without bound under `kFifo`. Under `kSkipStale`
/// the backend sheds stale groups instead.
class QueryScheduler {
 public:
  /// `engine` must outlive the scheduler.
  QueryScheduler(Engine* engine, SchedulerOptions options);

  /// Replays `groups` (must be sorted by nondecreasing issue time) and
  /// returns per-query timelines.
  Result<SessionExecution> Run(const std::vector<QueryGroup>& groups);

 private:
  Engine* engine_;
  SchedulerOptions options_;
};

/// Merges several users' sessions into one arrival-ordered stream for a
/// *shared* backend — the setup for throughput/saturation studies (§3.1.1:
/// throughput is the metric for backends serving many clients). Each
/// user's internal order is preserved (stable merge by issue time).
std::vector<QueryGroup> MergeSessions(
    const std::vector<std::vector<QueryGroup>>& sessions);

}  // namespace ideval

#endif  // IDEVAL_SIM_QUERY_SCHEDULER_H_
