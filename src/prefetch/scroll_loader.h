#ifndef IDEVAL_PREFETCH_SCROLL_LOADER_H_
#define IDEVAL_PREFETCH_SCROLL_LOADER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/engine.h"
#include "workload/scroll_task.h"

namespace ideval {

/// Result-loading strategies compared in §6.2.
enum class ScrollLoadStrategy {
  /// Fetch the next page only when the user reaches the bottom of the
  /// loaded results (LIMIT/OFFSET lazy loading) — shown ineffective under
  /// inertia.
  kLazyLoad,
  /// On every scroll event, top up the cache whenever fewer than a margin
  /// of prefetched tuples remain ahead of the viewport.
  kEventFetch,
  /// Fetch a fixed number of tuples at a regular interval regardless of
  /// scroll activity.
  kTimerFetch,
};

const char* ScrollLoadStrategyToString(ScrollLoadStrategy strategy);

/// Which §6 query shape the loader issues per fetch.
enum class ScrollQueryShape {
  kSelect,    ///< Q1: simple LIMIT/OFFSET select.
  kJoinPage,  ///< Q2: paged streaming join (ratings ⋈ movie).
};

struct ScrollLoadOptions {
  ScrollLoadStrategy strategy = ScrollLoadStrategy::kTimerFetch;
  ScrollQueryShape query_shape = ScrollQueryShape::kSelect;
  /// Tuples per fetch; §6.2 sweeps {12, 30, 58, 80}.
  int64_t tuples_per_fetch = 58;
  /// Timer period for kTimerFetch.
  Duration timer_interval = Duration::Seconds(1.0);
  /// Event-fetch margin: a fetch is triggered when fewer than this many
  /// cached tuples remain ahead of the viewport. The paper sets this cache
  /// limit to "the product of tuples to fetch and query execution time",
  /// i.e. only ~1–6 tuples — which is exactly why event fetch violates at
  /// every fetch size: any glide eats the margin before the in-flight
  /// fetch lands. Default (-1) reproduces the paper's formula:
  /// max(1, tuples_per_fetch * fetch_overhead_seconds).
  int64_t event_margin_tuples = -1;
  /// Rows visible at once (a violation occurs when the viewport passes the
  /// cached frontier).
  int64_t visible_tuples = 6;
  /// Tuples already loaded when the session starts (the initial page
  /// render). -1 = max(visible_tuples, tuples_per_fetch).
  int64_t initial_cached_tuples = -1;
  /// Fixed browser-stack cost per fetch (HTTP round trip, JSON decode,
  /// DOM append). This, not query execution, dominates the ~80 ms
  /// event-fetch latency of Fig. 10.
  Duration fetch_overhead = Duration::Micros(70000);
  /// Table the select query pages through / join page tables.
  std::string table = "imdb";
  std::string join_left = "imdbrating";
  std::string join_right = "movie";
};

/// Outcome of replaying one scroll trace against a loading strategy.
struct ScrollLoadReport {
  int64_t fetches_issued = 0;
  int64_t scroll_events = 0;
  /// Latency-constraint violations (§6.2 definition): stall episodes where
  /// the viewport passed the cached frontier and the user had to wait for
  /// tuples to load. The user freezes at the frontier until the needed
  /// tuples arrive, then resumes scrolling.
  int64_t violations = 0;
  /// Wait experienced at each stall (availability time minus the moment
  /// the user hit the frontier).
  std::vector<Duration> waits;

  bool HadViolation() const { return violations > 0; }
  /// Mean wait over *all* violations; zero if none.
  Duration MeanWait() const;
  Duration MaxWait() const;
};

/// Replays `trace` against `engine` under `options`, issuing real paging
/// queries and accounting fetch completion on the simulated timeline.
Result<ScrollLoadReport> SimulateScrollLoading(const ScrollTrace& trace,
                                               Engine* engine,
                                               const ScrollLoadOptions& options);

}  // namespace ideval

#endif  // IDEVAL_PREFETCH_SCROLL_LOADER_H_
