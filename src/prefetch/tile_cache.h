#ifndef IDEVAL_PREFETCH_TILE_CACHE_H_
#define IDEVAL_PREFETCH_TILE_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "widget/map_widget.h"

namespace ideval {

/// Cache replacement policies compared by the A1 ablation (§3.1.1 claims
/// eviction-based policies lose to predictive caching).
enum class EvictionPolicy {
  kLru,
  kFifo,
};

const char* EvictionPolicyToString(EvictionPolicy policy);

/// Fixed-capacity cache of map tiles with pluggable eviction and hit-rate
/// accounting (the cache-hit-rate metric of §3.1.1).
class TileCache {
 public:
  TileCache(int64_t capacity, EvictionPolicy policy);

  /// Demand access: returns true on hit; on miss the tile is admitted.
  bool Request(const TileId& tile);

  /// Speculative insert (prefetch): admits without touching hit counters.
  void Prefetch(const TileId& tile);

  bool Contains(const TileId& tile) const;

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return static_cast<int64_t>(map_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRate() const;

  void Clear();

 private:
  void Admit(const TileId& tile);
  void Touch(std::list<TileId>::iterator it);

  int64_t capacity_;
  EvictionPolicy policy_;
  std::list<TileId> order_;  // Front = most recent (LRU) / newest (FIFO).
  std::unordered_map<TileId, std::list<TileId>::iterator, TileIdHash> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Map navigation moves the predictor learns over.
enum class MapMove {
  kNorth,
  kSouth,
  kEast,
  kWest,
  kZoomIn,
  kZoomOut,
};

constexpr size_t kNumMapMoves = 6;

const char* MapMoveToString(MapMove move);

/// Classifies the viewport transition between two consecutive map
/// requests.
Result<MapMove> ClassifyMove(const GeoBounds& before, int zoom_before,
                             const GeoBounds& after, int zoom_after);

/// First-order Markov predictor over map moves with §8-informed priors:
/// prefetch effort is weighted toward the zoom levels users actually visit
/// (11–14) and the drag directions the chain predicts.
///
/// This is the "behavior-driven prefetching" §8 motivates: Table 9 says
/// map actions dominate, Fig. 18 bounds useful zoom depth, and Table 10
/// bounds how far a drag can move the viewport — so prefetching the
/// predicted-direction neighbors plus the zoom-in tile covers most next
/// requests.
class MarkovTilePrefetcher {
 public:
  struct Options {
    /// Tiles prefetched per observed move.
    int fan_out = 6;
    /// Laplace smoothing for the transition matrix.
    double smoothing = 0.5;
    /// Zoom levels worth prefetching into (Fig. 18).
    int min_useful_zoom = 11;
    int max_useful_zoom = 14;
  };

  explicit MarkovTilePrefetcher(Options options);
  MarkovTilePrefetcher() : MarkovTilePrefetcher(Options()) {}

  /// Observes a move and updates the transition matrix.
  void Observe(MapMove move);

  /// Predicted probability of `next` given the last observed move.
  double TransitionProb(MapMove next) const;

  /// Tiles to prefetch for the viewport at (`bounds`, `zoom`), ranked by
  /// predicted next-move probability and zoom usefulness.
  std::vector<TileId> PrefetchCandidates(const GeoBounds& bounds,
                                         int zoom) const;

 private:
  Options options_;
  std::array<std::array<double, kNumMapMoves>, kNumMapMoves> counts_{};
  MapMove last_move_ = MapMove::kNorth;
  bool has_last_ = false;
};

}  // namespace ideval

#endif  // IDEVAL_PREFETCH_TILE_CACHE_H_
