#include "prefetch/scroll_loader.h"

#include <algorithm>
#include <optional>

namespace ideval {

const char* ScrollLoadStrategyToString(ScrollLoadStrategy strategy) {
  switch (strategy) {
    case ScrollLoadStrategy::kLazyLoad:
      return "lazy";
    case ScrollLoadStrategy::kEventFetch:
      return "event";
    case ScrollLoadStrategy::kTimerFetch:
      return "timer";
  }
  return "unknown";
}

Duration ScrollLoadReport::MeanWait() const {
  if (waits.empty()) return Duration::Zero();
  Duration total;
  for (Duration w : waits) total += w;
  return total / static_cast<int64_t>(waits.size());
}

Duration ScrollLoadReport::MaxWait() const {
  Duration mx;
  for (Duration w : waits) mx = std::max(mx, w);
  return mx;
}

namespace {

struct InflightFetch {
  SimTime done;
  int64_t new_cached_end = 0;
};

/// An active stall: the user hit the cached frontier at `start` and is
/// frozen waiting for tuples up to `need_end`.
struct Stall {
  int64_t need_end = 0;
  SimTime start;
};

}  // namespace

Result<ScrollLoadReport> SimulateScrollLoading(
    const ScrollTrace& trace, Engine* engine,
    const ScrollLoadOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("SimulateScrollLoading: null engine");
  }
  if (options.tuples_per_fetch <= 0) {
    return Status::InvalidArgument("tuples_per_fetch must be positive");
  }
  const std::string& base_table =
      options.query_shape == ScrollQueryShape::kSelect ? options.table
                                                       : options.join_left;
  IDEVAL_ASSIGN_OR_RETURN(TablePtr table, engine->GetTable(base_table));
  const int64_t total = static_cast<int64_t>(table->num_rows());
  // The paper's event-fetch cache limit is "the product of tuples to fetch
  // and query execution time"; with millisecond-scale paging queries that
  // is at most a tuple or two at every fetch size — which is why event
  // fetch stalls whenever a glide reaches the frontier, regardless of n.
  constexpr double kPageQueryExecSeconds = 0.005;
  const int64_t margin =
      options.event_margin_tuples >= 0
          ? options.event_margin_tuples
          : std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(options.tuples_per_fetch) *
                       kPageQueryExecSeconds));

  ScrollLoadReport report;
  int64_t cached_end =
      options.initial_cached_tuples >= 0
          ? std::min(options.initial_cached_tuples, total)
          : std::min(std::max(options.visible_tuples,
                              options.tuples_per_fetch),
                     total);
  std::optional<InflightFetch> inflight;
  std::optional<Stall> stall;
  // Stall time extends the session: every later trace event happens that
  // much later on the simulated timeline.
  Duration shift;
  int64_t last_need_end = 0;

  auto issue_fetch = [&](SimTime now) -> Status {
    if (inflight.has_value() || cached_end >= total) return Status::OK();
    const int64_t count =
        std::min(options.tuples_per_fetch, total - cached_end);
    Query q;
    if (options.query_shape == ScrollQueryShape::kSelect) {
      SelectQuery s;
      s.table = options.table;
      s.limit = count;
      s.offset = cached_end;
      q = s;
    } else {
      JoinPageQuery j;
      j.left_table = options.join_left;
      j.right_table = options.join_right;
      j.join_column = "id";
      j.limit = count;
      j.offset = cached_end;
      q = j;
    }
    auto response = engine->Execute(q);
    if (!response.ok()) return response.status();
    const Duration dur = options.fetch_overhead + response->ServerTime() +
                         engine->cost_model().NetworkTime(response->stats);
    inflight = InflightFetch{now + dur, cached_end + count};
    ++report.fetches_issued;
    return Status::OK();
  };

  auto complete_fetch = [&]() -> Status {
    const SimTime done = inflight->done;
    cached_end = inflight->new_cached_end;
    inflight.reset();
    // Resolve the active stall if this fetch satisfied it: the user was
    // frozen for the whole wait, so the rest of the session shifts.
    if (stall.has_value() && stall->need_end <= cached_end) {
      const Duration wait = done - stall->start;
      report.waits.push_back(wait);
      shift += wait;
      stall.reset();
    }
    // Keep fetching while the user is blocked, or (event fetch) while the
    // viewport margin is still unmet.
    if (options.strategy != ScrollLoadStrategy::kTimerFetch) {
      const bool margin_unmet =
          options.strategy == ScrollLoadStrategy::kEventFetch &&
          cached_end - last_need_end < margin;
      if (stall.has_value() || margin_unmet) {
        IDEVAL_RETURN_NOT_OK(issue_fetch(done));
      }
    }
    return Status::OK();
  };

  // Merge scroll events, timer ticks and fetch completions in time order.
  size_t next_event = 0;
  SimTime next_tick = SimTime::Origin() + options.timer_interval;
  const bool use_timer =
      options.strategy == ScrollLoadStrategy::kTimerFetch;

  while (true) {
    const bool events_left = next_event < trace.events.size();
    if (!events_left && !stall.has_value()) break;

    // While stalled, the user does not produce events; only completions
    // (and timer ticks) advance the world.
    SimTime t_event = (events_left && !stall.has_value())
                          ? trace.events[next_event].time + shift
                          : SimTime::Max();
    SimTime t_done = inflight.has_value() ? inflight->done : SimTime::Max();
    SimTime t_tick = use_timer ? next_tick : SimTime::Max();

    if (t_done <= t_event && t_done <= t_tick) {
      IDEVAL_RETURN_NOT_OK(complete_fetch());
      continue;
    }
    if (use_timer && t_tick <= t_event) {
      IDEVAL_RETURN_NOT_OK(issue_fetch(t_tick));
      next_tick += options.timer_interval;
      continue;
    }
    // Scroll event.
    const ScrollEvent& e = trace.events[next_event++];
    const SimTime now = e.time + shift;
    ++report.scroll_events;
    const int64_t need_end =
        std::min(total, e.top_tuple + options.visible_tuples);
    last_need_end = std::max(last_need_end, need_end);
    if (need_end > cached_end) {
      // The viewport passed the cached frontier: one perceived stall. The
      // user was mid-glide toward a target; the stall resolves when the
      // whole remaining glide's content is loaded. Absorb the rest of the
      // glide (events separated by at most ~0.1 s belong to it).
      ++report.violations;
      int64_t target = need_end;
      SimTime prev = e.time;
      while (next_event < trace.events.size() &&
             trace.events[next_event].time - prev <= Duration::Millis(100)) {
        prev = trace.events[next_event].time;
        target = std::max(
            target, std::min(total, trace.events[next_event].top_tuple +
                                        options.visible_tuples));
        ++next_event;
        ++report.scroll_events;
      }
      last_need_end = std::max(last_need_end, target);
      stall = Stall{target, now};
    }
    switch (options.strategy) {
      case ScrollLoadStrategy::kLazyLoad:
        if (need_end >= cached_end) {
          IDEVAL_RETURN_NOT_OK(issue_fetch(now));
        }
        break;
      case ScrollLoadStrategy::kEventFetch:
        if (cached_end - need_end < margin) {
          IDEVAL_RETURN_NOT_OK(issue_fetch(now));
        }
        break;
      case ScrollLoadStrategy::kTimerFetch:
        break;
    }
  }
  return report;
}

}  // namespace ideval
