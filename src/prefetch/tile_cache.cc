#include "prefetch/tile_cache.h"

#include <algorithm>
#include <cmath>

namespace ideval {

const char* EvictionPolicyToString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kFifo:
      return "fifo";
  }
  return "unknown";
}

TileCache::TileCache(int64_t capacity, EvictionPolicy policy)
    : capacity_(capacity < 1 ? 1 : capacity), policy_(policy) {}

void TileCache::Touch(std::list<TileId>::iterator it) {
  if (policy_ == EvictionPolicy::kLru) {
    order_.splice(order_.begin(), order_, it);
  }
  // FIFO never reorders on access.
}

void TileCache::Admit(const TileId& tile) {
  if (static_cast<int64_t>(map_.size()) >= capacity_) {
    const TileId& victim = order_.back();
    map_.erase(victim);
    order_.pop_back();
  }
  order_.push_front(tile);
  map_[tile] = order_.begin();
}

bool TileCache::Request(const TileId& tile) {
  auto it = map_.find(tile);
  if (it != map_.end()) {
    Touch(it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  Admit(tile);
  return false;
}

void TileCache::Prefetch(const TileId& tile) {
  if (map_.find(tile) != map_.end()) return;
  Admit(tile);
}

bool TileCache::Contains(const TileId& tile) const {
  return map_.find(tile) != map_.end();
}

double TileCache::HitRate() const {
  const int64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void TileCache::Clear() {
  order_.clear();
  map_.clear();
}

const char* MapMoveToString(MapMove move) {
  switch (move) {
    case MapMove::kNorth:
      return "N";
    case MapMove::kSouth:
      return "S";
    case MapMove::kEast:
      return "E";
    case MapMove::kWest:
      return "W";
    case MapMove::kZoomIn:
      return "Z+";
    case MapMove::kZoomOut:
      return "Z-";
  }
  return "?";
}

Result<MapMove> ClassifyMove(const GeoBounds& before, int zoom_before,
                             const GeoBounds& after, int zoom_after) {
  if (zoom_after > zoom_before) return MapMove::kZoomIn;
  if (zoom_after < zoom_before) return MapMove::kZoomOut;
  const double dlat = after.CenterLat() - before.CenterLat();
  const double dlng = after.CenterLng() - before.CenterLng();
  if (dlat == 0.0 && dlng == 0.0) {
    return Status::InvalidArgument("viewport did not move");
  }
  if (std::abs(dlat) >= std::abs(dlng)) {
    return dlat > 0.0 ? MapMove::kNorth : MapMove::kSouth;
  }
  return dlng > 0.0 ? MapMove::kEast : MapMove::kWest;
}

MarkovTilePrefetcher::MarkovTilePrefetcher(Options options)
    : options_(options) {
  for (auto& row : counts_) row.fill(0.0);
}

void MarkovTilePrefetcher::Observe(MapMove move) {
  if (has_last_) {
    counts_[static_cast<size_t>(last_move_)][static_cast<size_t>(move)] +=
        1.0;
  }
  last_move_ = move;
  has_last_ = true;
}

double MarkovTilePrefetcher::TransitionProb(MapMove next) const {
  const auto& row = counts_[static_cast<size_t>(last_move_)];
  double total = 0.0;
  for (double c : row) total += c + options_.smoothing;
  if (total <= 0.0) return 1.0 / static_cast<double>(kNumMapMoves);
  return (row[static_cast<size_t>(next)] + options_.smoothing) / total;
}

std::vector<TileId> MarkovTilePrefetcher::PrefetchCandidates(
    const GeoBounds& bounds, int zoom) const {
  struct Candidate {
    TileId tile;
    double score;
  };
  const double clat = bounds.CenterLat();
  const double clng = bounds.CenterLng();
  const TileId center = MapWidget::TileAt(clat, clng, zoom);

  auto zoom_weight = [&](int z) {
    // Prefetching outside the zoom band users visit (Fig. 18) is wasted
    // effort; §8 recommends concentrating on levels 11–14.
    return (z >= options_.min_useful_zoom && z <= options_.max_useful_zoom)
               ? 1.0
               : 0.25;
  };

  std::vector<Candidate> candidates;
  // Directional neighbors at the current zoom.
  const struct {
    MapMove move;
    int64_t dx, dy;
  } kDirs[] = {{MapMove::kNorth, 0, -1},
               {MapMove::kSouth, 0, 1},
               {MapMove::kEast, 1, 0},
               {MapMove::kWest, -1, 0}};
  for (const auto& d : kDirs) {
    TileId t = center;
    t.tx += d.dx;
    t.ty += d.dy;
    candidates.push_back(
        Candidate{t, TransitionProb(d.move) * zoom_weight(zoom)});
  }
  // Zoom-in child tile under the viewport center and zoom-out parent.
  candidates.push_back(
      Candidate{MapWidget::TileAt(clat, clng, zoom + 1),
                TransitionProb(MapMove::kZoomIn) * zoom_weight(zoom + 1)});
  candidates.push_back(
      Candidate{MapWidget::TileAt(clat, clng, zoom - 1),
                TransitionProb(MapMove::kZoomOut) * zoom_weight(zoom - 1)});
  // Diagonals, discounted: drags are rarely perfectly axis-aligned.
  const struct {
    MapMove a, b;
    int64_t dx, dy;
  } kDiags[] = {{MapMove::kNorth, MapMove::kEast, 1, -1},
                {MapMove::kNorth, MapMove::kWest, -1, -1},
                {MapMove::kSouth, MapMove::kEast, 1, 1},
                {MapMove::kSouth, MapMove::kWest, -1, 1}};
  for (const auto& d : kDiags) {
    TileId t = center;
    t.tx += d.dx;
    t.ty += d.dy;
    candidates.push_back(Candidate{
        t, 0.5 * (TransitionProb(d.a) + TransitionProb(d.b)) * 0.5 *
               zoom_weight(zoom)});
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  std::vector<TileId> out;
  const size_t k = std::min<size_t>(candidates.size(),
                                    static_cast<size_t>(options_.fan_out));
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(candidates[i].tile);
  return out;
}

}  // namespace ideval
