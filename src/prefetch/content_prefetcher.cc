#include "prefetch/content_prefetcher.h"

#include <algorithm>

namespace ideval {

ContentAwarePrefetcher::ContentAwarePrefetcher(Options options,
                                               MarkovTilePrefetcher markov)
    : options_(options), markov_(std::move(markov)) {}

Result<ContentAwarePrefetcher> ContentAwarePrefetcher::Make(
    const TablePtr& table, const std::string& lat_col,
    const std::string& lng_col, Options options) {
  if (table == nullptr) {
    return Status::InvalidArgument("ContentAwarePrefetcher: null table");
  }
  if (table->num_rows() == 0) {
    return Status::InvalidArgument("ContentAwarePrefetcher: empty table");
  }
  if (options.min_useful_zoom > options.max_useful_zoom) {
    return Status::InvalidArgument(
        "ContentAwarePrefetcher: min_useful_zoom > max_useful_zoom");
  }
  IDEVAL_ASSIGN_OR_RETURN(const Column* lat, table->ColumnByName(lat_col));
  IDEVAL_ASSIGN_OR_RETURN(const Column* lng, table->ColumnByName(lng_col));
  if (lat->type() == DataType::kString ||
      lng->type() == DataType::kString) {
    return Status::InvalidArgument(
        "ContentAwarePrefetcher: lat/lng must be numeric");
  }

  MarkovTilePrefetcher::Options mopts;
  mopts.fan_out = options.fan_out;
  mopts.smoothing = options.smoothing;
  mopts.min_useful_zoom = options.min_useful_zoom;
  mopts.max_useful_zoom = options.max_useful_zoom;
  ContentAwarePrefetcher out(options, MarkovTilePrefetcher(mopts));

  // Count rows per tile for the useful band plus one margin level each
  // side (zoom-in/zoom-out candidates reach one level beyond the band).
  std::unordered_map<TileId, int64_t, TileIdHash> counts;
  std::unordered_map<int, int64_t> zoom_max;
  const size_t n = table->num_rows();
  for (int zoom = options.min_useful_zoom - 1;
       zoom <= options.max_useful_zoom + 1; ++zoom) {
    if (zoom < 1) continue;
    for (size_t row = 0; row < n; ++row) {
      const TileId tile =
          MapWidget::TileAt(lat->GetDouble(row), lng->GetDouble(row), zoom);
      const int64_t c = ++counts[tile];
      zoom_max[zoom] = std::max(zoom_max[zoom], c);
    }
  }
  out.density_.reserve(counts.size());
  for (const auto& [tile, count] : counts) {
    const int64_t mx = zoom_max[tile.zoom];
    out.density_[tile] =
        mx > 0 ? static_cast<double>(count) / static_cast<double>(mx) : 0.0;
  }
  return out;
}

double ContentAwarePrefetcher::DensityAt(const TileId& tile) const {
  auto it = density_.find(tile);
  return it == density_.end() ? 0.0 : it->second;
}

std::vector<TileId> ContentAwarePrefetcher::PrefetchCandidates(
    const GeoBounds& bounds, int zoom) const {
  struct Candidate {
    TileId tile;
    double score;
  };
  const double clat = bounds.CenterLat();
  const double clng = bounds.CenterLng();
  const TileId center = MapWidget::TileAt(clat, clng, zoom);

  auto zoom_weight = [&](int z) {
    return (z >= options_.min_useful_zoom && z <= options_.max_useful_zoom)
               ? 1.0
               : 0.25;
  };
  auto combined = [&](double direction_prob, const TileId& tile) {
    return options_.direction_weight * direction_prob * zoom_weight(tile.zoom) +
           options_.content_weight * DensityAt(tile) * zoom_weight(tile.zoom);
  };

  std::vector<Candidate> candidates;
  const struct {
    MapMove move;
    int64_t dx, dy;
  } kDirs[] = {{MapMove::kNorth, 0, -1},
               {MapMove::kSouth, 0, 1},
               {MapMove::kEast, 1, 0},
               {MapMove::kWest, -1, 0}};
  for (const auto& d : kDirs) {
    TileId t = center;
    t.tx += d.dx;
    t.ty += d.dy;
    candidates.push_back(Candidate{t, combined(markov_.TransitionProb(d.move),
                                               t)});
  }
  const TileId in = MapWidget::TileAt(clat, clng, zoom + 1);
  const TileId out = MapWidget::TileAt(clat, clng, zoom - 1);
  candidates.push_back(
      Candidate{in, combined(markov_.TransitionProb(MapMove::kZoomIn), in)});
  candidates.push_back(Candidate{
      out, combined(markov_.TransitionProb(MapMove::kZoomOut), out)});
  const struct {
    MapMove a, b;
    int64_t dx, dy;
  } kDiags[] = {{MapMove::kNorth, MapMove::kEast, 1, -1},
                {MapMove::kNorth, MapMove::kWest, -1, -1},
                {MapMove::kSouth, MapMove::kEast, 1, 1},
                {MapMove::kSouth, MapMove::kWest, -1, 1}};
  for (const auto& d : kDiags) {
    TileId t = center;
    t.tx += d.dx;
    t.ty += d.dy;
    const double p = 0.25 * (markov_.TransitionProb(d.a) +
                             markov_.TransitionProb(d.b));
    candidates.push_back(Candidate{t, combined(p, t)});
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  std::vector<TileId> result;
  const size_t k = std::min<size_t>(candidates.size(),
                                    static_cast<size_t>(options_.fan_out));
  result.reserve(k);
  for (size_t i = 0; i < k; ++i) result.push_back(candidates[i].tile);
  return result;
}

}  // namespace ideval
