#ifndef IDEVAL_PREFETCH_CONTENT_PREFETCHER_H_
#define IDEVAL_PREFETCH_CONTENT_PREFETCHER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "prefetch/tile_cache.h"
#include "storage/table.h"

namespace ideval {

/// Content-aware spatial prefetching (the Scout idea §3.1.1 surveys):
/// users navigate *toward content* — dense clusters of listings, not empty
/// ocean — so the data under a candidate tile predicts whether it will be
/// requested. This prefetcher combines the Markov direction predictor
/// with a per-tile density index built from the table itself, and exposes
/// the two weights so the Scout-style sensitivity analysis
/// (`bench_abl_content_prefetch`) can sweep them.
class ContentAwarePrefetcher {
 public:
  struct Options {
    /// Tiles prefetched per observed move.
    int fan_out = 6;
    /// Weight of the Markov next-move probability.
    double direction_weight = 1.0;
    /// Weight of the normalized tile density.
    double content_weight = 1.0;
    /// Zoom band worth prefetching into (Fig. 18) — the density index is
    /// built for these levels (plus one margin level on each side).
    int min_useful_zoom = 11;
    int max_useful_zoom = 14;
    /// Laplace smoothing for the Markov chain.
    double smoothing = 0.5;
  };

  /// Builds the density index over `table`'s `lat_col`/`lng_col` columns.
  /// Errors on missing/non-numeric columns or an empty table.
  static Result<ContentAwarePrefetcher> Make(const TablePtr& table,
                                             const std::string& lat_col,
                                             const std::string& lng_col,
                                             Options options);

  /// Observes a viewport move (updates the direction predictor).
  void Observe(MapMove move) { markov_.Observe(move); }

  /// Tiles to prefetch for the viewport at (`bounds`, `zoom`), ranked by
  /// the weighted direction × content score.
  std::vector<TileId> PrefetchCandidates(const GeoBounds& bounds,
                                         int zoom) const;

  /// Normalized data density under `tile` (1.0 = densest tile at that
  /// zoom; 0.0 = empty or outside the indexed band).
  double DensityAt(const TileId& tile) const;

  const Options& options() const { return options_; }

 private:
  ContentAwarePrefetcher(Options options, MarkovTilePrefetcher markov);

  Options options_;
  MarkovTilePrefetcher markov_;
  std::unordered_map<TileId, double, TileIdHash> density_;  ///< Normalized.
};

}  // namespace ideval

#endif  // IDEVAL_PREFETCH_CONTENT_PREFETCHER_H_
