#ifndef IDEVAL_GUIDELINES_METRIC_CATALOG_H_
#define IDEVAL_GUIDELINES_METRIC_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ideval {

/// The metric taxonomy of Fig. 1.
enum class Metric {
  // Human factors — qualitative.
  kUserFeedback,
  kDesignStudy,
  kFocusGroup,
  // Human factors — quantitative.
  kNumInsights,
  kUniquenessOfInsights,
  kTaskCompletionTime,
  kAccuracy,
  kNumInteractions,
  kLearnability,
  kDiscoverability,
  // System factors — backend.
  kThroughput,
  kScalability,
  kCacheHitRate,
  kLatency,
  // System factors — frontend (novel in this paper).
  kLatencyConstraintViolation,
  kQueryIssuingFrequency,
};

/// Broad category in Fig. 1's tree.
enum class MetricCategory {
  kHumanQualitative,
  kHumanQuantitative,
  kSystemBackend,
  kSystemFrontend,
};

const char* MetricToString(Metric metric);
const char* MetricCategoryToString(MetricCategory category);

/// Catalog entry: what the metric measures and when to use it (Table 3).
struct MetricInfo {
  Metric metric;
  MetricCategory category;
  std::string description;
  std::string when_to_use;
};

/// All metrics of Fig. 1 with their Table 3 guidance.
const std::vector<MetricInfo>& AllMetricInfo();

/// Catalog entry for `metric`.
const MetricInfo& InfoFor(Metric metric);

/// One surveyed system row of Tables 1–2: which metrics its published
/// evaluation reported.
struct SurveyedSystem {
  std::string name;
  int year = 0;
  std::vector<Metric> metrics;
};

/// Table 1: metrics for data interaction, 1997–2012.
const std::vector<SurveyedSystem>& SurveyTable1();

/// Table 2: metrics for data interaction, 2012–present.
const std::vector<SurveyedSystem>& SurveyTable2();

/// Count of surveyed systems (both tables) reporting `metric`.
int64_t SurveyUsageCount(Metric metric);

}  // namespace ideval

#endif  // IDEVAL_GUIDELINES_METRIC_CATALOG_H_
