#include "guidelines/metric_catalog.h"

#include <cassert>

namespace ideval {

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kUserFeedback:
      return "user feedback";
    case Metric::kDesignStudy:
      return "design study";
    case Metric::kFocusGroup:
      return "focus group";
    case Metric::kNumInsights:
      return "no. of insights";
    case Metric::kUniquenessOfInsights:
      return "uniqueness of insights";
    case Metric::kTaskCompletionTime:
      return "task completion time";
    case Metric::kAccuracy:
      return "accuracy";
    case Metric::kNumInteractions:
      return "number of interactions";
    case Metric::kLearnability:
      return "learnability";
    case Metric::kDiscoverability:
      return "discoverability";
    case Metric::kThroughput:
      return "throughput";
    case Metric::kScalability:
      return "scalability";
    case Metric::kCacheHitRate:
      return "cache hit rate";
    case Metric::kLatency:
      return "latency";
    case Metric::kLatencyConstraintViolation:
      return "latency constraint violation";
    case Metric::kQueryIssuingFrequency:
      return "query issuing frequency";
  }
  return "unknown";
}

const char* MetricCategoryToString(MetricCategory category) {
  switch (category) {
    case MetricCategory::kHumanQualitative:
      return "human/qualitative";
    case MetricCategory::kHumanQuantitative:
      return "human/quantitative";
    case MetricCategory::kSystemBackend:
      return "system/backend";
    case MetricCategory::kSystemFrontend:
      return "system/frontend";
  }
  return "unknown";
}

const std::vector<MetricInfo>& AllMetricInfo() {
  static const auto* kInfo = new std::vector<MetricInfo>{
      {Metric::kDesignStudy, MetricCategory::kHumanQualitative,
       "Extended interviews with practitioners to articulate the problem "
       "space and define study tasks.",
       "For formulating system specifications and evaluation tasks."},
      {Metric::kFocusGroup, MetricCategory::kHumanQualitative,
       "Small expert groups reaching consensus feedback on features or "
       "designs.",
       "To get consensus feedback from a group."},
      {Metric::kUserFeedback, MetricCategory::kHumanQualitative,
       "Open-ended comments, suggestions, Likert-scale surveys (e.g. SUS, "
       "ICE-T).",
       "Always."},
      {Metric::kNumInsights, MetricCategory::kHumanQuantitative,
       "Insights reported during exploratory analysis; subjective — use "
       "with caution.",
       "Exploratory systems that provide user guidance."},
      {Metric::kUniquenessOfInsights, MetricCategory::kHumanQuantitative,
       "How many reported insights are unique across users.",
       "Exploratory systems that provide user guidance."},
      {Metric::kTaskCompletionTime, MetricCategory::kHumanQuantitative,
       "Time for a user to complete a system-specific task.",
       "Task-based systems."},
      {Metric::kAccuracy, MetricCategory::kHumanQuantitative,
       "Deviation of approximate answers or user readings from ground "
       "truth (precision/recall, MSE, scored accuracy).",
       "Approximate and speculative systems."},
      {Metric::kNumInteractions, MetricCategory::kHumanQuantitative,
       "Iterations or operator applications needed to finish a task.",
       "Systems that aim to reduce user effort for a specific task, "
       "usually against a baseline."},
      {Metric::kLearnability, MetricCategory::kHumanQuantitative,
       "How quickly users master functionality after being taught.",
       "Complex systems that will be used frequently by experts."},
      {Metric::kDiscoverability, MetricCategory::kHumanQuantitative,
       "How quickly users find actions without instruction (affordances).",
       "Systems designed for everyday use by naive/untrained users."},
      {Metric::kLatency, MetricCategory::kSystemBackend,
       "Submit-to-result time, decomposed into network, query scheduling, "
       "query execution, post-aggregation and rendering.",
       "Always."},
      {Metric::kScalability, MetricCategory::kSystemBackend,
       "Performance change as data grows (scale-up / scale-out).",
       "Systems that deal with large amounts of data."},
      {Metric::kThroughput, MetricCategory::kSystemBackend,
       "Transactions/requests/tasks per second.",
       "Distributed systems."},
      {Metric::kCacheHitRate, MetricCategory::kSystemBackend,
       "Fraction of queries answered from cache.",
       "Systems that perform prefetching."},
      {Metric::kLatencyConstraintViolation, MetricCategory::kSystemFrontend,
       "Times the zero-latency rule is violated: the user perceives a "
       "delay because results arrive after their next interaction "
       "(delays cascade, Fig. 2).",
       "Systems where multiple queries are issued consecutively in a "
       "short time frame."},
      {Metric::kQueryIssuingFrequency, MetricCategory::kSystemFrontend,
       "Queries issued per second by a device/interface combination; must "
       "be matched (throttled) to backend capacity.",
       "Devices with high frame rate."},
  };
  return *kInfo;
}

const MetricInfo& InfoFor(Metric metric) {
  for (const auto& info : AllMetricInfo()) {
    if (info.metric == metric) return info;
  }
  assert(false && "metric missing from catalog");
  return AllMetricInfo().front();
}

namespace {

using M = Metric;

}  // namespace

const std::vector<SurveyedSystem>& SurveyTable1() {
  static const auto* kTable = new std::vector<SurveyedSystem>{
      {"Online Aggregation", 1997, {M::kAccuracy}},
      {"Igarashi et al.", 2000, {M::kUserFeedback, M::kTaskCompletionTime}},
      {"Fekete and Plaisant", 2002, {M::kLatency}},
      {"Yang et al.", 2003, {M::kUserFeedback}},
      {"Plaisant", 2004, {M::kNumInsights}},
      {"Yang et al.", 2004, {M::kTaskCompletionTime}},
      {"Seo and Shneiderman", 2005, {M::kNumInsights}},
      {"Kosara et al.", 2006, {M::kLatency}},
      {"Mackinlay et al.", 2007, {M::kUserFeedback}},
      {"Scented Widgets", 2007, {M::kUserFeedback, M::kUniquenessOfInsights}},
      {"Faith", 2007, {M::kAccuracy}},
      {"Jagadish et al.", 2007, {M::kUserFeedback}},
      {"Yang et al.", 2007, {M::kNumInsights}},
      {"Nalix", 2007, {M::kUserFeedback}},
      {"Heer et al.", 2008, {M::kUserFeedback}},
      {"LiveRac", 2008, {M::kUserFeedback}},
      {"Basu et al.", 2008, {M::kNumInteractions}},
      {"Atlas", 2008, {M::kLatency, M::kThroughput}},
      {"Liu and Jagadish", 2009, {M::kTaskCompletionTime}},
      {"Woodring and Shen", 2009, {M::kLatency, M::kScalability}},
      {"Facetor", 2010,
       {M::kUserFeedback, M::kTaskCompletionTime, M::kNumInteractions}},
      {"Wrangler", 2011, {M::kUserFeedback, M::kTaskCompletionTime}},
      {"Dicon", 2011, {M::kUserFeedback, M::kNumInsights}},
      {"Yang et al.", 2011, {M::kLatency}},
      {"Kashyap et al.", 2011, {M::kNumInteractions}},
      {"Fisher et al.", 2012, {M::kUserFeedback}},
      {"GravNav", 2012, {M::kUserFeedback, M::kTaskCompletionTime}},
      {"Wei et al.", 2012, {M::kNumInsights}},
      {"Dataplay", 2012, {M::kUserFeedback, M::kTaskCompletionTime}},
      {"Zhang et al.", 2012, {M::kNumInsights}},
      {"VizDeck", 2012, {M::kNumInteractions}},
  };
  return *kTable;
}

const std::vector<SurveyedSystem>& SurveyTable2() {
  static const auto* kTable = new std::vector<SurveyedSystem>{
      {"Skimmer", 2012, {M::kLatency, M::kScalability}},
      {"Scout", 2012, {M::kCacheHitRate}},
      {"Martin and Ward", 1995, {M::kUserFeedback}},
      {"Bakke et al.", 2011, {M::kUserFeedback, M::kTaskCompletionTime}},
      {"GestureDB", 2013,
       {M::kUserFeedback, M::kTaskCompletionTime, M::kLearnability,
        M::kDiscoverability}},
      {"Basole et al.", 2013,
       {M::kUserFeedback, M::kNumInsights, M::kTaskCompletionTime}},
      {"Biswas et al.", 2013, {M::kAccuracy, M::kScalability}},
      {"MotionExplorer", 2013, {M::kUserFeedback}},
      {"Yuan et al.", 2013, {M::kUserFeedback}},
      {"Ferreira et al.", 2013, {M::kNumInsights}},
      {"Cooper et al.", 2010, {M::kThroughput}},
      {"Immens", 2013, {M::kLatency, M::kScalability}},
      {"Nanocubes", 2013, {M::kLatency}},
      {"Kinetica", 2014,
       {M::kUserFeedback, M::kNumInsights, M::kTaskCompletionTime}},
      {"DICE", 2014,
       {M::kAccuracy, M::kLatency, M::kScalability, M::kCacheHitRate}},
      {"Lyra", 2014, {M::kUserFeedback, M::kNumInsights}},
      {"Dimitriadou et al.", 2014,
       {M::kAccuracy, M::kNumInteractions, M::kLatency}},
      {"SeeDB", 2014, {M::kUserFeedback, M::kAccuracy, M::kLatency}},
      {"SnapToQuery", 2015,
       {M::kUserFeedback, M::kAccuracy, M::kLatency}},
      {"Kim et al.", 2015, {M::kLatency}},
      {"ForeCache", 2015, {M::kCacheHitRate}},
      {"Zenvisage", 2016,
       {M::kUserFeedback, M::kTaskCompletionTime, M::kLatency}},
      {"FluxQuery", 2016, {M::kLatency}},
      {"Voyager", 2016, {M::kNumInteractions}},
      {"Moritz et al.", 2017, {M::kAccuracy}},
      {"Incvisage", 2017,
       {M::kUserFeedback, M::kNumInsights, M::kAccuracy, M::kLatency}},
      {"Data Tweening", 2017, {M::kUserFeedback, M::kAccuracy}},
      {"Icarus", 2018,
       {M::kUserFeedback, M::kAccuracy, M::kNumInteractions, M::kLatency}},
      {"Datamaran", 2018, {M::kAccuracy}},
      {"Tensorboard", 2018, {M::kUserFeedback, M::kNumInsights}},
      {"DataSpread", 2018, {M::kLatency}},
      {"Sesame", 2018, {M::kLatency, M::kScalability}},
      {"Transformer", 2019,
       {M::kUserFeedback, M::kTaskCompletionTime, M::kNumInteractions}},
      {"ARQuery", 2019, {M::kUserFeedback, M::kTaskCompletionTime}},
  };
  return *kTable;
}

int64_t SurveyUsageCount(Metric metric) {
  int64_t count = 0;
  for (const auto* table : {&SurveyTable1(), &SurveyTable2()}) {
    for (const auto& sys : *table) {
      for (Metric m : sys.metrics) {
        if (m == metric) ++count;
      }
    }
  }
  return count;
}

}  // namespace ideval
