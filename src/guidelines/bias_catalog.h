#ifndef IDEVAL_GUIDELINES_BIAS_CATALOG_H_
#define IDEVAL_GUIDELINES_BIAS_CATALOG_H_

#include <string>
#include <vector>

namespace ideval {

/// Cognitive biases affecting user studies (Table 4).
enum class CognitiveBias {
  kSocialDesirability,
  kAnchoring,
  kHalo,
  kAttraction,
  kFraming,
  kSelection,
  kConfirmation,
};

/// Whose behaviour the bias distorts.
enum class BiasSide {
  kParticipant,
  kExperimenter,
};

const char* CognitiveBiasToString(CognitiveBias bias);
const char* BiasSideToString(BiasSide side);

/// One row of Table 4.
struct BiasInfo {
  CognitiveBias bias;
  BiasSide side;
  std::string description;
  std::string mitigation;
};

/// All Table 4 rows.
const std::vector<BiasInfo>& AllBiases();

/// Catalog entry for `bias`.
const BiasInfo& InfoFor(CognitiveBias bias);

/// Threats to external validity in within-subject designs (§4.2.2).
struct ValidityThreat {
  std::string name;         ///< learning / interference / fatigue.
  std::string description;
  std::string mitigation;
};

const std::vector<ValidityThreat>& ExternalValidityThreats();

/// Pre-study checklist: every bias mitigation plus the §5 principles that
/// apply to study procedure, as actionable lines.
std::vector<std::string> StudyProcedureChecklist();

}  // namespace ideval

#endif  // IDEVAL_GUIDELINES_BIAS_CATALOG_H_
