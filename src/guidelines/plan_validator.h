#ifndef IDEVAL_GUIDELINES_PLAN_VALIDATOR_H_
#define IDEVAL_GUIDELINES_PLAN_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "guidelines/advisor.h"

namespace ideval {

/// A concrete evaluation plan for an interactive data system: which
/// metrics will be reported, how the user study is designed, and the
/// procedural safeguards in place. `ValidateEvaluationPlan` turns the
/// paper's guidelines (§3.3 best practices, §4's validity/bias analysis,
/// §5's principles) into executable checks over it.
struct EvaluationPlan {
  SystemProfile profile;
  std::vector<Metric> metrics;

  StudySetting setting = StudySetting::kInPerson;
  StudyStructure structure = StudyStructure::kBetweenSubject;
  int participants = 0;

  /// §4.2.2 mitigations.
  bool randomized_or_counterbalanced = false;
  bool breaks_between_tasks = false;

  /// Table 4 mitigations.
  bool tasks_externally_reviewed = false;
  bool hypothesis_disclosed_to_participants = false;
  bool demographics_collected_before_assignment = false;

  /// §5 principle 4.
  bool uses_real_datasets = false;

  /// §3.2.2: learnability and discoverability need disjoint users.
  bool same_users_for_learnability_and_discoverability = false;
};

/// One finding of the validator.
struct PlanIssue {
  enum class Severity {
    kError,    ///< The study's conclusions would be unsound.
    kWarning,  ///< A guideline is unmet; justify or fix.
  };
  Severity severity = Severity::kWarning;
  /// Which guideline fired ("best practice 1", "§4.2.2 learning", ...).
  std::string guideline;
  std::string message;
};

const char* SeverityToString(PlanIssue::Severity severity);

/// Checks `plan` against every applicable guideline; returns the issues
/// found, errors first. An empty result means the plan complies.
std::vector<PlanIssue> ValidateEvaluationPlan(const EvaluationPlan& plan);

/// Counterbalanced condition orderings (§4.2.2's mitigation for learning
/// and interference): a balanced Latin square over `conditions`, cycled
/// over `participants` rows. For even `conditions` each condition appears
/// in each position equally often AND each condition precedes every other
/// equally often; for odd `conditions` the square is completed with the
/// reversed rows (the standard 2n construction). Errors if either count
/// is < 1.
Result<std::vector<std::vector<int>>> CounterbalancedOrders(int conditions,
                                                            int participants);

}  // namespace ideval

#endif  // IDEVAL_GUIDELINES_PLAN_VALIDATOR_H_
