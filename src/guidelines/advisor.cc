#include "guidelines/advisor.h"

namespace ideval {

std::vector<MetricRecommendation> RecommendMetrics(
    const SystemProfile& profile) {
  std::vector<MetricRecommendation> recs;
  auto add = [&recs](Metric m, std::string reason) {
    for (const auto& r : recs) {
      if (r.metric == m) return;  // Keep the first (strongest) reason.
    }
    recs.push_back(MetricRecommendation{m, std::move(reason)});
  };

  // Qualitative human factors.
  if (profile.domain_specific) {
    add(Metric::kDesignStudy,
        "domain-specific tasks: formalize needs with practitioners "
        "(best practice 2)");
    add(Metric::kFocusGroup,
        "domain-specific tasks: collect consensus feedback from end-users "
        "(best practice 2)");
  }
  add(Metric::kUserFeedback,
      "always: end-users should give open-ended feedback at every stage "
      "(Table 3, best practice 3)");

  // Quantitative human factors.
  if (profile.exploratory) {
    add(Metric::kNumInsights,
        "exploratory system that provides user guidance (Table 3)");
    add(Metric::kUniquenessOfInsights,
        "exploratory system: unique discoveries have high value (Table 3)");
  }
  if (profile.task_based) {
    add(Metric::kTaskCompletionTime, "task-based system (Table 3)");
  }
  if (profile.approximate || profile.speculative_prefetching) {
    add(Metric::kAccuracy,
        "approximate/speculative system: evaluate accuracy trade-offs with "
        "effort and latency (Table 3, best practice 4)");
  }
  if (profile.reduces_user_effort) {
    add(Metric::kNumInteractions,
        "aims to reduce user effort for a specific task, against a "
        "baseline (Table 3)");
  }
  if (profile.targets_experts) {
    add(Metric::kLearnability,
        "complex system used frequently by experts (Table 3, best "
        "practice 5)");
  }
  if (profile.targets_novices) {
    add(Metric::kDiscoverability,
        "designed for everyday use by naive/untrained users (Table 3, "
        "best practice 5)");
  }

  // Backend system factors.
  add(Metric::kLatency,
      "always: latency is directly perceived by the user (Table 3)");
  if (profile.large_data) {
    add(Metric::kScalability,
        "deals with large amounts of data (Table 3, best practice 7)");
  }
  if (profile.distributed) {
    add(Metric::kThroughput, "distributed system (Table 3, best practice 7)");
  }
  if (profile.speculative_prefetching) {
    add(Metric::kCacheHitRate,
        "performs prefetching: measure cache hit rate (Table 3, best "
        "practice 4)");
  }

  // Frontend system factors (the paper's novel metrics).
  if (profile.consecutive_query_bursts || profile.high_frame_rate_device) {
    add(Metric::kLatencyConstraintViolation,
        "multiple queries issued consecutively in a short time frame "
        "(Table 3, best practice 8)");
  }
  if (profile.high_frame_rate_device) {
    add(Metric::kQueryIssuingFrequency,
        "high-frame-rate device: QIF must be matched to backend capacity "
        "(Table 3, best practice 8)");
  }
  return recs;
}

const std::vector<std::string>& MetricSelectionBestPractices() {
  static const auto* kList = new std::vector<std::string>{
      "1. Cover at least one metric from system and human factors.",
      "2. Domain-specific systems should perform design studies and focus "
      "groups with end-users to formalize needs and requirements.",
      "3. End-users should be able to provide qualitative open-ended "
      "feedback at different stages of development.",
      "4. Approximate systems should evaluate accuracy trade-offs with "
      "user effort and/or latency; accuracy or cache hit rate is also "
      "recommended for speculative prefetching systems.",
      "5. Measure discoverability for novice-facing systems and "
      "learnability for expert-facing systems.",
      "6. Task-oriented systems should measure user effort: task "
      "completion time, number of interactions, or quality of insights.",
      "7. Distributed systems over many datapoints should measure "
      "throughput and scalability, plus summarization latency and "
      "cognitive load.",
      "8. Gesture/touch devices with high frame rates, where queries are "
      "issued back-to-back, should measure query issuing frequency and "
      "latency constraint violations.",
  };
  return *kList;
}

const std::vector<std::string>& EvaluationPrinciples() {
  static const auto* kList = new std::vector<std::string>{
      "1. Take behavior-driven optimizations into consideration, "
      "leveraging the user's session characteristics in design and "
      "evaluation.",
      "2. Metrics should maximize coverage of query types (select, join, "
      "aggregation) and interaction techniques (filtering, linking & "
      "brushing), since each generates a unique workload.",
      "3. Evaluate from a human as well as a system perspective.",
      "4. User-study tasks should simulate real-world use cases on real "
      "datasets for high ecological validity.",
      "5. Randomize participant order between tasks to minimize learning "
      "and interference, for high external validity.",
      "6. Granularize tasks and externally review their language to "
      "mitigate experimenter and participant biases.",
      "7. Recruit at least ~10 users for behaviour studies; the number "
      "depends on task nature and interaction variability.",
      "8. Cover a variety of workloads: scenarios, data distributions, "
      "data sizes.",
  };
  return *kList;
}

const char* StudySettingToString(StudySetting setting) {
  switch (setting) {
    case StudySetting::kInPerson:
      return "in-person";
    case StudySetting::kRemote:
      return "remote";
  }
  return "unknown";
}

StudySettingDecision RecommendStudySetting(const StudySettingInputs& inputs) {
  if (inputs.think_aloud_protocol) {
    return {StudySetting::kInPerson,
            "think-aloud protocols require the researcher present (Fig. 4)"};
  }
  if (inputs.device_dependent) {
    return {StudySetting::kInPerson,
            "device-dependent studies need a controlled test device "
            "(Fig. 4)"};
  }
  if (inputs.comparison_against_control) {
    return {StudySetting::kInPerson,
            "comparisons against a control need fine experimental control "
            "(Fig. 4)"};
  }
  return {StudySetting::kRemote,
          "no control/device/think-aloud constraints: recruit a large, "
          "diverse population remotely for high ecological validity "
          "(Fig. 4)"};
}

const char* StudyStructureToString(StudyStructure structure) {
  switch (structure) {
    case StudyStructure::kBetweenSubject:
      return "between-subject";
    case StudyStructure::kWithinSubject:
      return "within-subject";
    case StudyStructure::kSimulation:
      return "simulation";
  }
  return "unknown";
}

StudyStructureDecision RecommendStudyStructure(
    const StudyStructureInputs& inputs) {
  StudyStructureDecision d;
  if (inputs.interactions_definitive &&
      inputs.all_navigation_patterns_testable) {
    d.structure = StudyStructure::kSimulation;
    d.rationale =
        "interactions are definitive and all navigation patterns can be "
        "tested: simulate plausible traces instead of recruiting (Fig. 5, "
        "§4.1.3)";
    d.cautions = {
        "Validate simulated traces against at least one small real-user "
        "study when possible.",
        "Use HCI timing models (Fitts', GOMS, ACT-R) appropriate for the "
        "input modality."};
    return d;
  }
  if (inputs.task_depends_on_inherent_ability) {
    d.structure = StudyStructure::kWithinSubject;
    d.rationale =
        "the task depends on an inherent ability of the user (e.g. what "
        "counts as an insight), so the same users must see every "
        "condition (Fig. 5)";
    d.cautions = {
        "Randomize or counterbalance condition order to combat learning.",
        "Watch for interference between conditions; asymmetric effects "
        "make conclusions hard.",
        "Break long sessions into chunks with breaks to avoid fatigue."};
    return d;
  }
  d.structure = StudyStructure::kBetweenSubject;
  d.rationale =
      "prefer between-subject whenever possible: it avoids carry-over "
      "effects and has high external validity (Fig. 5, §4.1.2)";
  d.cautions = {
      "Split users evenly and randomly to avoid demographic bias.",
      "Equalize instructions and conditions between control and test."};
  return d;
}

}  // namespace ideval
