#include "guidelines/plan_validator.h"

#include <algorithm>

namespace ideval {

const char* SeverityToString(PlanIssue::Severity severity) {
  switch (severity) {
    case PlanIssue::Severity::kError:
      return "ERROR";
    case PlanIssue::Severity::kWarning:
      return "WARNING";
  }
  return "unknown";
}

namespace {

bool Has(const std::vector<Metric>& metrics, Metric m) {
  return std::find(metrics.begin(), metrics.end(), m) != metrics.end();
}

bool IsHumanFactor(Metric m) {
  switch (InfoFor(m).category) {
    case MetricCategory::kHumanQualitative:
    case MetricCategory::kHumanQuantitative:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<PlanIssue> ValidateEvaluationPlan(const EvaluationPlan& plan) {
  std::vector<PlanIssue> issues;
  auto error = [&issues](std::string guideline, std::string message) {
    issues.push_back(PlanIssue{PlanIssue::Severity::kError,
                               std::move(guideline), std::move(message)});
  };
  auto warn = [&issues](std::string guideline, std::string message) {
    issues.push_back(PlanIssue{PlanIssue::Severity::kWarning,
                               std::move(guideline), std::move(message)});
  };

  // Best practice 1 / principle 3: cover both perspectives.
  const bool any_human =
      std::any_of(plan.metrics.begin(), plan.metrics.end(), IsHumanFactor);
  const bool any_system = std::any_of(
      plan.metrics.begin(), plan.metrics.end(),
      [](Metric m) { return !IsHumanFactor(m); });
  if (!any_human) {
    error("best practice 1",
          "no human-factor metric: interactive systems must be evaluated "
          "from the user's perspective too");
  }
  if (!any_system) {
    error("best practice 1",
          "no system-factor metric: report at least latency");
  }
  if (!Has(plan.metrics, Metric::kLatency)) {
    warn("Table 3", "latency applies to every interactive system");
  }
  if (!Has(plan.metrics, Metric::kUserFeedback)) {
    warn("Table 3 / best practice 3",
         "collect open-ended user feedback at every stage");
  }

  // Profile-conditional metrics (Table 3 / best practices 2, 4, 7, 8).
  if (plan.profile.approximate && !Has(plan.metrics, Metric::kAccuracy)) {
    warn("best practice 4",
         "approximate system without an accuracy metric: the "
         "accuracy/latency trade-off is the contribution to measure");
  }
  if (plan.profile.speculative_prefetching &&
      !Has(plan.metrics, Metric::kCacheHitRate) &&
      !Has(plan.metrics, Metric::kAccuracy)) {
    warn("best practice 4",
         "speculative prefetching without cache hit rate or accuracy");
  }
  if (plan.profile.distributed &&
      !Has(plan.metrics, Metric::kThroughput)) {
    warn("best practice 7", "distributed system without throughput");
  }
  if (plan.profile.high_frame_rate_device) {
    if (!Has(plan.metrics, Metric::kQueryIssuingFrequency)) {
      warn("best practice 8",
           "high-frame-rate device without query issuing frequency");
    }
    if (!Has(plan.metrics, Metric::kLatencyConstraintViolation)) {
      warn("best practice 8",
           "high-frame-rate device without latency constraint violations");
    }
  }
  if (plan.profile.domain_specific &&
      !Has(plan.metrics, Metric::kDesignStudy)) {
    warn("best practice 2",
         "domain-specific system without a design study to ground tasks");
  }

  // Construct validity (§4.2.3): insight metrics only make sense for
  // exploratory systems.
  if ((Has(plan.metrics, Metric::kNumInsights) ||
       Has(plan.metrics, Metric::kUniquenessOfInsights)) &&
      !plan.profile.exploratory) {
    warn("§4.2.3 construct validity",
         "insight metrics on a non-exploratory system measure the wrong "
         "construct");
  }

  // Study-structure threats (§4.2.2).
  if (plan.structure == StudyStructure::kWithinSubject &&
      !plan.randomized_or_counterbalanced) {
    error("§4.2.2 learning/interference",
          "within-subject design without randomization or "
          "counterbalancing: order effects confound the comparison");
  }
  if (plan.structure != StudyStructure::kSimulation &&
      !plan.breaks_between_tasks) {
    warn("§4.2.2 fatigue",
         "no breaks between tasks: fatigue degrades late-task performance");
  }
  if (Has(plan.metrics, Metric::kLearnability) &&
      Has(plan.metrics, Metric::kDiscoverability) &&
      plan.same_users_for_learnability_and_discoverability) {
    error("§3.2.2",
          "the same users cannot serve learnability and discoverability: "
          "once instructed, nothing is left to discover");
  }

  // Participants (§5 principle 7) — only when humans are involved.
  if (plan.structure != StudyStructure::kSimulation && any_human &&
      plan.participants < kRecommendedMinParticipants) {
    warn("§5 principle 7",
         "fewer than ~10 participants for a behaviour study");
  }

  // Bias mitigations (Table 4).
  if (plan.hypothesis_disclosed_to_participants) {
    error("Table 4 social desirability",
          "participants know the hypothesis: they will act to confirm it");
  }
  if (!plan.tasks_externally_reviewed &&
      plan.structure != StudyStructure::kSimulation) {
    warn("Table 4 framing",
         "study verbiage not externally reviewed: wording can steer "
         "participants");
  }
  if (plan.demographics_collected_before_assignment) {
    warn("Table 4 selection",
         "collecting demographics before random assignment invites "
         "selection bias");
  }

  // Ecological validity (§5 principle 4).
  if (!plan.uses_real_datasets &&
      plan.structure != StudyStructure::kSimulation) {
    warn("§5 principle 4",
         "synthetic-only tasks/datasets reduce ecological validity");
  }

  std::stable_sort(issues.begin(), issues.end(),
                   [](const PlanIssue& a, const PlanIssue& b) {
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
  return issues;
}

Result<std::vector<std::vector<int>>> CounterbalancedOrders(
    int conditions, int participants) {
  if (conditions < 1) {
    return Status::InvalidArgument("conditions must be >= 1");
  }
  if (participants < 1) {
    return Status::InvalidArgument("participants must be >= 1");
  }
  // Balanced Latin square construction: row r starts at r, then alternates
  // r+1, r-1, r+2, ... giving first-order carryover balance for even n.
  std::vector<std::vector<int>> square;
  for (int r = 0; r < conditions; ++r) {
    std::vector<int> row;
    row.reserve(static_cast<size_t>(conditions));
    int low = r;
    int high = r + 1;
    row.push_back(((low % conditions) + conditions) % conditions);
    for (int i = 1; i < conditions; ++i) {
      if (i % 2 == 1) {
        row.push_back(((high++ % conditions) + conditions) % conditions);
      } else {
        row.push_back((((--low) % conditions) + conditions) % conditions);
      }
    }
    square.push_back(row);
  }
  if (conditions % 2 == 1 && conditions > 1) {
    // Odd n: append the reversed rows to restore carryover balance.
    const size_t base = square.size();
    for (size_t r = 0; r < base; ++r) {
      std::vector<int> reversed(square[r].rbegin(), square[r].rend());
      square.push_back(std::move(reversed));
    }
  }
  std::vector<std::vector<int>> orders;
  orders.reserve(static_cast<size_t>(participants));
  for (int p = 0; p < participants; ++p) {
    orders.push_back(square[static_cast<size_t>(p) % square.size()]);
  }
  return orders;
}

}  // namespace ideval
