#include "guidelines/bias_catalog.h"

#include <cassert>

namespace ideval {

const char* CognitiveBiasToString(CognitiveBias bias) {
  switch (bias) {
    case CognitiveBias::kSocialDesirability:
      return "social desirability bias";
    case CognitiveBias::kAnchoring:
      return "anchoring effect";
    case CognitiveBias::kHalo:
      return "halo effect";
    case CognitiveBias::kAttraction:
      return "attraction effect";
    case CognitiveBias::kFraming:
      return "framing effect";
    case CognitiveBias::kSelection:
      return "selection bias";
    case CognitiveBias::kConfirmation:
      return "confirmation bias";
  }
  return "unknown";
}

const char* BiasSideToString(BiasSide side) {
  switch (side) {
    case BiasSide::kParticipant:
      return "participant";
    case BiasSide::kExperimenter:
      return "experimenter";
  }
  return "unknown";
}

const std::vector<BiasInfo>& AllBiases() {
  static const auto* kBiases = new std::vector<BiasInfo>{
      {CognitiveBias::kSocialDesirability, BiasSide::kParticipant,
       "Participants act to please the researcher, e.g. supporting the "
       "tested hypothesis.",
       "Follow externally approved scripted language with participants; "
       "never disclose the tested hypothesis."},
      {CognitiveBias::kAnchoring, BiasSide::kParticipant,
       "Fixating on initial information, e.g. preferring the first system "
       "seen.",
       "Randomize and counterbalance condition order."},
      {CognitiveBias::kHalo, BiasSide::kParticipant,
       "One positive trait (nice looks, one good feature) inflates every "
       "rating.",
       "Break tasks into fine-grained units; have each participant "
       "evaluate a single feature."},
      {CognitiveBias::kAttraction, BiasSide::kParticipant,
       "Clustering of points distorts choices between items on the Pareto "
       "front; affects accuracy in scatterplot studies.",
       "Modify the study procedure (e.g. the scatterplot mitigation of "
       "Dimara et al.)."},
      {CognitiveBias::kFraming, BiasSide::kExperimenter,
       "Question wording steers participants toward the tested system.",
       "Have all study verbiage externally reviewed."},
      {CognitiveBias::kSelection, BiasSide::kExperimenter,
       "Recruiting participants likely to favour the tested condition "
       "(e.g. only iPhone users for an iPhone study).",
       "Randomly assign participants before collecting demographics or "
       "background information."},
      {CognitiveBias::kConfirmation, BiasSide::kExperimenter,
       "Seeing the results one expects.",
       "Practice high transparency: publish study material and all user "
       "comments."},
  };
  return *kBiases;
}

const BiasInfo& InfoFor(CognitiveBias bias) {
  for (const auto& info : AllBiases()) {
    if (info.bias == bias) return info;
  }
  assert(false && "bias missing from catalog");
  return AllBiases().front();
}

const std::vector<ValidityThreat>& ExternalValidityThreats() {
  static const auto* kThreats = new std::vector<ValidityThreat>{
      {"learning",
       "In within-subject designs the user does better on the second "
       "condition simply from task familiarity.",
       "Randomize or counterbalance condition order; use different users "
       "for different metrics (e.g. learnability vs discoverability)."},
      {"interference",
       "Exposure to the first condition degrades performance on the "
       "second (confused functionality).",
       "Randomize/counterbalance; beware asymmetric effects, which make "
       "conclusions hard to draw."},
      {"fatigue",
       "Long tasks degrade performance toward the end.",
       "Break tasks into small chunks with adequate breaks."},
  };
  return *kThreats;
}

std::vector<std::string> StudyProcedureChecklist() {
  std::vector<std::string> checklist;
  for (const auto& b : AllBiases()) {
    checklist.push_back(std::string("[") + BiasSideToString(b.side) + "] " +
                        CognitiveBiasToString(b.bias) + ": " + b.mitigation);
  }
  for (const auto& t : ExternalValidityThreats()) {
    checklist.push_back("[validity] " + t.name + ": " + t.mitigation);
  }
  checklist.push_back(
      "[design] Recruit at least ~10 users for behaviour studies (more if "
      "the interaction is highly variable).");
  checklist.push_back(
      "[design] Use real datasets and real-world tasks for ecological "
      "validity.");
  return checklist;
}

}  // namespace ideval
