#ifndef IDEVAL_GUIDELINES_ADVISOR_H_
#define IDEVAL_GUIDELINES_ADVISOR_H_

#include <string>
#include <vector>

#include "guidelines/metric_catalog.h"

namespace ideval {

/// Characteristics of a system under evaluation; inputs to metric
/// selection (Table 3 + §3.3 best practices).
struct SystemProfile {
  std::string name = "system";
  bool exploratory = false;          ///< Guides users to insights.
  bool approximate = false;          ///< Sampling / progressive answers.
  bool speculative_prefetching = false;
  bool distributed = false;
  bool large_data = false;
  bool task_based = false;           ///< Solves a specific user task.
  bool reduces_user_effort = false;  ///< Compared against a baseline.
  bool targets_experts = false;      ///< Frequent expert use.
  bool targets_novices = false;      ///< Everyday untrained use.
  bool domain_specific = false;      ///< Needs practitioner task input.
  bool high_frame_rate_device = false;  ///< Touch/gesture, many events/s.
  bool consecutive_query_bursts = false;  ///< Queries issued back-to-back.
};

/// A recommended metric and why.
struct MetricRecommendation {
  Metric metric;
  std::string reason;
};

/// Applies Table 3's "when to use" rules plus the §3.3 best practices
/// (always cover at least one human and one system factor; user feedback
/// and latency always apply). Output is ordered: qualitative, quantitative
/// human, backend, frontend.
std::vector<MetricRecommendation> RecommendMetrics(
    const SystemProfile& profile);

/// Returns §3.3's numbered best practices (1–8) as text.
const std::vector<std::string>& MetricSelectionBestPractices();

/// Returns §5's evaluation principles (1–8) as text.
const std::vector<std::string>& EvaluationPrinciples();

/// --- Study-design decision trees (Figs. 4 and 5) ---

/// Inputs to the in-person vs remote decision (Fig. 4).
struct StudySettingInputs {
  bool think_aloud_protocol = false;
  bool device_dependent = false;
  bool comparison_against_control = false;
};

enum class StudySetting {
  kInPerson,  ///< Low ecological validity, high experimental control.
  kRemote,    ///< High ecological validity, low control (crowdsourcing).
};

const char* StudySettingToString(StudySetting setting);

struct StudySettingDecision {
  StudySetting setting;
  std::string rationale;
};

/// Fig. 4: remote only if no think-aloud, not device-dependent and no
/// control-comparison is needed.
StudySettingDecision RecommendStudySetting(const StudySettingInputs& inputs);

/// Inputs to the within/between-subject/simulation decision (Fig. 5).
struct StudyStructureInputs {
  /// Task outcome depends on an inherent ability of the user (e.g. what
  /// counts as an insight).
  bool task_depends_on_inherent_ability = false;
  /// Interactions are definitive and need no user cognition.
  bool interactions_definitive = false;
  /// All plausible navigation patterns can be enumerated/tested.
  bool all_navigation_patterns_testable = false;
};

enum class StudyStructure {
  kBetweenSubject,  ///< High external validity; preferred when possible.
  kWithinSubject,   ///< Needed when ability confounds; randomize order.
  kSimulation,      ///< Replay plausible traces; no participants.
};

const char* StudyStructureToString(StudyStructure structure);

struct StudyStructureDecision {
  StudyStructure structure;
  std::string rationale;
  /// Extra cautions (counterbalancing, fatigue breaks, etc.).
  std::vector<std::string> cautions;
};

/// Fig. 5 plus §4.2.2's threats: prefers simulation when valid, then
/// between-subject, then within-subject with mitigations.
StudyStructureDecision RecommendStudyStructure(
    const StudyStructureInputs& inputs);

/// Minimum participant count §5 cites for behaviour studies.
inline constexpr int kRecommendedMinParticipants = 10;

}  // namespace ideval

#endif  // IDEVAL_GUIDELINES_ADVISOR_H_
