#ifndef IDEVAL_DEVICE_KLM_H_
#define IDEVAL_DEVICE_KLM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "device/device_model.h"

namespace ideval {

/// Keystroke-Level Model operators (Card, Moran & Newell; §4.1.3 lists
/// KLM/GOMS among the HCI models used to time simulated interactions).
enum class KlmOp {
  kKeystroke,      ///< K — press a key or button.
  kPoint,          ///< P — point at a target (device-specific, Fitts-based).
  kHome,           ///< H — move hands between keyboard and device.
  kMental,         ///< M — mental preparation.
  kButtonPress,    ///< B — press/release a pointing-device button.
  kDraw,           ///< D — draw a straight segment.
};

/// Parses a classic KLM operator string ("MPBK" etc.). Unknown characters
/// error; whitespace is ignored.
Result<std::vector<KlmOp>> ParseKlm(const std::string& ops);

/// Per-device KLM parameters. The pointing time uses the device's Fitts
/// coefficients for a canonical target (`point_distance`/`point_width`),
/// matching the "different versions of the models for different input
/// modes" the paper cites.
struct KlmParams {
  Duration keystroke = Duration::MillisF(200);
  Duration home = Duration::MillisF(400);
  Duration mental = Duration::MillisF(1350);
  Duration button_press = Duration::MillisF(100);
  Duration draw_per_segment = Duration::MillisF(900);
  double point_distance = 300.0;
  double point_width = 20.0;
  DeviceType device = DeviceType::kMouse;

  static KlmParams ForDevice(DeviceType device);
};

/// Total time estimate for an operator sequence on a device.
Result<Duration> KlmEstimate(const std::string& ops, const KlmParams& params);

/// Convenience: estimate with the device's default parameters.
Result<Duration> KlmEstimate(const std::string& ops, DeviceType device);

/// Standard operator sequences for the interface actions the case studies
/// simulate; used to sanity-check the behaviour models' pacing.
///
///   slider adjustment:   M P B D B   (think, acquire handle, drag)
///   text search:         M H K*n K   (think, home to keyboard, type)
///   zoom button:         P B
///   checkbox:            P B
std::string KlmSequenceForSliderAdjust();
std::string KlmSequenceForTextSearch(int characters);
std::string KlmSequenceForButton();

}  // namespace ideval

#endif  // IDEVAL_DEVICE_KLM_H_
