#include "device/device_model.h"

#include <cmath>

namespace ideval {

const char* DeviceTypeToString(DeviceType type) {
  switch (type) {
    case DeviceType::kMouse:
      return "mouse";
    case DeviceType::kTouchTrackpad:
      return "trackpad";
    case DeviceType::kTouchTablet:
      return "touch";
    case DeviceType::kLeapMotion:
      return "leap motion";
  }
  return "unknown";
}

DeviceSpec DeviceModel::Spec(DeviceType type) {
  DeviceSpec s;
  s.type = type;
  switch (type) {
    case DeviceType::kMouse:
      // 60 Hz toolkit events, broad interval bell (Fig. 14), sub-pixel
      // noise: friction and the desk surface make the mouse accurate.
      s.sensing_rate_hz = 60.0;
      s.interval_spread = 0.30;
      s.jitter_std = 0.7;
      s.wander_std = 0.0;
      s.emits_when_still = false;
      s.fitts_a = 0.10;
      s.fitts_b = 0.15;
      s.motion_threshold = 1.0;
      break;
    case DeviceType::kTouchTrackpad:
      // §6's scrolling device; similar regime to touch.
      s.sensing_rate_hz = 60.0;
      s.interval_spread = 0.28;
      s.jitter_std = 1.5;
      s.wander_std = 0.0;
      s.emits_when_still = false;
      s.fitts_a = 0.08;
      s.fitts_b = 0.18;
      s.motion_threshold = 1.0;
      break;
    case DeviceType::kTouchTablet:
      // iPad: 60 Hz (§3.1.2 notes newer panels reach 120 Hz), fat-finger
      // noise larger than mouse but still friction-anchored.
      s.sensing_rate_hz = 60.0;
      s.interval_spread = 0.28;
      s.jitter_std = 2.0;
      s.wander_std = 0.0;
      s.emits_when_still = false;
      s.fitts_a = 0.05;
      s.fitts_b = 0.20;
      s.motion_threshold = 1.0;
      break;
    case DeviceType::kLeapMotion:
      // Mid-air: tight 20–25 ms interval peak (Fig. 14), strong tremor
      // and drift (Fig. 11c), and no friction — it keeps emitting while
      // the user tries to dwell, which is what floods the backend.
      s.sensing_rate_hz = 45.0;
      s.interval_spread = 0.06;
      s.jitter_std = 4.0;
      s.wander_std = 14.0;
      s.wander_reversion = 2.5;
      s.emits_when_still = true;
      s.fitts_a = 0.30;
      s.fitts_b = 0.35;
      s.motion_threshold = 1.0;
      break;
  }
  return s;
}

DeviceModel::DeviceModel(DeviceType type, Rng rng)
    : DeviceModel(Spec(type), std::move(rng)) {}

DeviceModel::DeviceModel(DeviceSpec spec, Rng rng)
    : spec_(spec), rng_(std::move(rng)) {}

Duration DeviceModel::NextSampleInterval() {
  const double nominal_s = 1.0 / spec_.sensing_rate_hz;
  double s = nominal_s * (1.0 + spec_.interval_spread * rng_.Gaussian());
  const double floor_s = nominal_s * 0.4;
  if (s < floor_s) s = floor_s;
  return Duration::Seconds(s);
}

PointerTrace DeviceModel::SamplePath(
    const IntendedPath& path, SimTime t0, SimTime t1,
    const std::function<bool(SimTime)>& intended_moving) {
  PointerTrace trace;
  const double nominal_s = 1.0 / spec_.sensing_rate_hz;
  for (SimTime t = t0; t <= t1; t += NextSampleInterval()) {
    const auto [ix, iy] = path(t);
    const bool moving = intended_moving(t);
    // Slow Ornstein–Uhlenbeck drift (frictionless wander).
    if (spec_.wander_std > 0.0) {
      const double dt = nominal_s;
      const double k = std::exp(-spec_.wander_reversion * dt);
      const double eq_std =
          spec_.wander_std * std::sqrt(1.0 - k * k);
      wander_x_ = wander_x_ * k + rng_.Gaussian(0.0, eq_std);
      wander_y_ = wander_y_ * k + rng_.Gaussian(0.0, eq_std);
    }
    PointerSample s;
    s.time = t;
    s.intended_motion = moving;
    const bool noisy = moving || spec_.emits_when_still;
    const double jitter = noisy ? spec_.jitter_std : spec_.jitter_std * 0.1;
    s.x = ix + wander_x_ + rng_.Gaussian(0.0, jitter);
    s.y = iy + wander_y_ + rng_.Gaussian(0.0, jitter);
    trace.push_back(s);
  }
  return trace;
}

PointerTrace DeviceModel::SamplePath(const IntendedPath& path, SimTime t0,
                                     SimTime t1) {
  return SamplePath(path, t0, t1, [](SimTime) { return true; });
}

Duration DeviceModel::FittsMovementTime(double distance, double width) const {
  const double d = distance < 0.0 ? -distance : distance;
  const double w = width <= 0.0 ? 1.0 : width;
  const double index_of_difficulty = std::log2(d / w + 1.0);
  return Duration::Seconds(spec_.fitts_a + spec_.fitts_b * index_of_difficulty);
}

int64_t CountMotionEvents(const PointerTrace& trace, double threshold) {
  if (trace.empty()) return 0;
  int64_t events = 0;
  double last_x = trace[0].x;
  double last_y = trace[0].y;
  for (size_t i = 1; i < trace.size(); ++i) {
    const double dx = trace[i].x - last_x;
    const double dy = trace[i].y - last_y;
    if (std::sqrt(dx * dx + dy * dy) >= threshold) {
      ++events;
      last_x = trace[i].x;
      last_y = trace[i].y;
    }
  }
  return events;
}

}  // namespace ideval
