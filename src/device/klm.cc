#include "device/klm.h"

namespace ideval {

Result<std::vector<KlmOp>> ParseKlm(const std::string& ops) {
  std::vector<KlmOp> out;
  out.reserve(ops.size());
  for (char c : ops) {
    switch (c) {
      case 'K':
        out.push_back(KlmOp::kKeystroke);
        break;
      case 'P':
        out.push_back(KlmOp::kPoint);
        break;
      case 'H':
        out.push_back(KlmOp::kHome);
        break;
      case 'M':
        out.push_back(KlmOp::kMental);
        break;
      case 'B':
        out.push_back(KlmOp::kButtonPress);
        break;
      case 'D':
        out.push_back(KlmOp::kDraw);
        break;
      case ' ':
      case '\t':
        break;
      default:
        return Status::InvalidArgument(
            std::string("unknown KLM operator '") + c + "'");
    }
  }
  return out;
}

KlmParams KlmParams::ForDevice(DeviceType device) {
  KlmParams p;
  p.device = device;
  switch (device) {
    case DeviceType::kMouse:
      break;  // Classic KLM constants.
    case DeviceType::kTouchTrackpad:
      p.home = Duration::MillisF(200);  // Hands stay near the keyboard.
      break;
    case DeviceType::kTouchTablet:
      // Touch KLM variants (El Batran & Dunlop): no homing, faster taps.
      p.home = Duration::MillisF(100);
      p.keystroke = Duration::MillisF(280);  // On-screen keyboard.
      p.button_press = Duration::MillisF(80);
      break;
    case DeviceType::kLeapMotion:
      // Mid-air: no surfaces to home to, but selection dwell is slow and
      // drawing is imprecise.
      p.home = Duration::MillisF(150);
      p.button_press = Duration::MillisF(350);  // Pinch/dwell select.
      p.draw_per_segment = Duration::MillisF(1400);
      break;
  }
  return p;
}

Result<Duration> KlmEstimate(const std::string& ops,
                             const KlmParams& params) {
  IDEVAL_ASSIGN_OR_RETURN(std::vector<KlmOp> sequence, ParseKlm(ops));
  DeviceModel device(params.device, Rng(1));
  const Duration point_time = device.FittsMovementTime(
      params.point_distance, params.point_width);
  Duration total;
  for (KlmOp op : sequence) {
    switch (op) {
      case KlmOp::kKeystroke:
        total += params.keystroke;
        break;
      case KlmOp::kPoint:
        total += point_time;
        break;
      case KlmOp::kHome:
        total += params.home;
        break;
      case KlmOp::kMental:
        total += params.mental;
        break;
      case KlmOp::kButtonPress:
        total += params.button_press;
        break;
      case KlmOp::kDraw:
        total += params.draw_per_segment;
        break;
    }
  }
  return total;
}

Result<Duration> KlmEstimate(const std::string& ops, DeviceType device) {
  return KlmEstimate(ops, KlmParams::ForDevice(device));
}

std::string KlmSequenceForSliderAdjust() { return "MPBDB"; }

std::string KlmSequenceForTextSearch(int characters) {
  std::string seq = "MH";
  for (int i = 0; i < characters; ++i) seq += 'K';
  seq += 'K';  // Enter.
  return seq;
}

std::string KlmSequenceForButton() { return "PB"; }

}  // namespace ideval
