#ifndef IDEVAL_DEVICE_DEVICE_MODEL_H_
#define IDEVAL_DEVICE_DEVICE_MODEL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace ideval {

/// Input devices studied by the paper's case studies (§2.1, §7).
enum class DeviceType {
  kMouse,          ///< Desktop mouse (§7).
  kTouchTrackpad,  ///< MacBook trackpad with inertial scrolling (§6).
  kTouchTablet,    ///< iPad touch (§7).
  kLeapMotion,     ///< Mid-air gesture sensor (§7).
};

const char* DeviceTypeToString(DeviceType type);

/// Physical characteristics of a device. Different sensing rates directly
/// set the query-issuing frequency (§2.1), and the absence of friction on
/// gestural devices makes the interaction "highly variable and sensitive"
/// (§2.3) — captured here as jitter magnitude plus whether the device keeps
/// emitting motion while the user tries to hold still.
struct DeviceSpec {
  DeviceType type = DeviceType::kMouse;
  /// Nominal event sensing rate.
  double sensing_rate_hz = 60.0;
  /// Relative spread of the inter-sample interval (gives Fig. 14's broad
  /// bell for mouse/touch vs the tight 20–25 ms peak for Leap Motion).
  double interval_spread = 0.25;
  /// White positional noise per sample (pixels or millimetres).
  double jitter_std = 1.0;
  /// Ornstein–Uhlenbeck wander: magnitude and mean-reversion rate of the
  /// slow drift component visible in Fig. 11(c).
  double wander_std = 0.0;
  double wander_reversion = 8.0;
  /// True for frictionless devices that cannot hold a point steady: motion
  /// events keep firing during dwell (unintended queries, §2.3).
  bool emits_when_still = false;
  /// Fitts'-law coefficients MT = a + b * log2(D/W + 1), seconds.
  double fitts_a = 0.1;
  double fitts_b = 0.15;
  /// Pointer-movement threshold (same units as jitter) below which the
  /// toolkit suppresses a move event.
  double motion_threshold = 0.5;
};

/// One sampled pointer position.
struct PointerSample {
  SimTime time;
  double x = 0.0;
  double y = 0.0;
  /// True if the user was intentionally moving (vs dwelling) — ground
  /// truth the noisy trace analyses can be compared against.
  bool intended_motion = false;
};

/// A full pointer trace.
using PointerTrace = std::vector<PointerSample>;

/// The user's intended pointer position at time `t`.
using IntendedPath = std::function<std::pair<double, double>(SimTime)>;

/// Simulates a pointing device: samples an intended path at the device's
/// (jittered) sensing rate and perturbs it with device noise.
class DeviceModel {
 public:
  /// Calibrated spec for each device, matching the traces of Fig. 11 and
  /// the interval histograms of Fig. 14.
  static DeviceSpec Spec(DeviceType type);

  DeviceModel(DeviceType type, Rng rng);
  DeviceModel(DeviceSpec spec, Rng rng);

  const DeviceSpec& spec() const { return spec_; }

  /// Samples `path` over [t0, t1]. `intended_moving(t)` tells the model
  /// whether the user is deliberately moving at `t`; during dwell, devices
  /// with friction hold position (no samples beyond threshold), while
  /// frictionless ones keep wandering.
  PointerTrace SamplePath(const IntendedPath& path, SimTime t0, SimTime t1,
                          const std::function<bool(SimTime)>& intended_moving);

  /// Convenience overload: the whole span counts as intended motion.
  PointerTrace SamplePath(const IntendedPath& path, SimTime t0, SimTime t1);

  /// Fitts'-law movement time for amplitude `distance` and target width
  /// `width` (§4.1.3 simulation guidance).
  Duration FittsMovementTime(double distance, double width) const;

  /// Draws the next inter-sample interval (jittered around the nominal
  /// sensing period).
  Duration NextSampleInterval();

 private:
  DeviceSpec spec_;
  Rng rng_;
  double wander_x_ = 0.0;
  double wander_y_ = 0.0;
};

/// Counts motion events a toolkit would emit for `trace`: one event per
/// sample whose displacement from the previously emitted position exceeds
/// `threshold`. This is what turns device jitter into unintended queries.
int64_t CountMotionEvents(const PointerTrace& trace, double threshold);

}  // namespace ideval

#endif  // IDEVAL_DEVICE_DEVICE_MODEL_H_
