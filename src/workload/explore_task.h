#ifndef IDEVAL_WORKLOAD_EXPLORE_TASK_H_
#define IDEVAL_WORKLOAD_EXPLORE_TASK_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "widget/composite_interface.h"

namespace ideval {

/// One request–render–explore cycle of the §8 exploration process
/// (Fig. 17): the browser fetches (T0), renders (T1), then the user reads
/// the results and decides the next query (T2).
struct ExplorePhase {
  CompositeRequest request;
  Duration request_time;      ///< T0.
  Duration rendering_time;    ///< T1.
  Duration exploration_time;  ///< T2.
};

/// A full §8 composite-interface session.
struct ExploreTrace {
  int user_id = 0;
  std::vector<ExplorePhase> phases;
  Duration session_duration;
};

/// Per-user behaviour parameters for the vacation-booking task ("think of
/// an ideal vacation and use the site to book short-term housing; spend at
/// least 20 minutes").
struct ExploreUserParams {
  int user_id = 0;
  /// Minimum session length; the user keeps exploring past it to finish
  /// their current line of investigation.
  Duration min_session = Duration::Seconds(20 * 60);
  /// Zoom level the destination search lands on.
  int start_zoom = 12;
  /// Deepest zoom-in relative to start (almost all users stay within 3,
  /// Fig. 18).
  int max_zoom_depth = 3;
  /// Log-normal exploration-time parameters (T2). Defaults give mean
  /// ≈18.3 s with ≈80% of phases above 1 s, matching Fig. 21.
  double explore_mu = 1.44;
  double explore_sigma = 1.71;
  /// Log-normal request-time parameters (T0). Defaults give mean ≈1.1 s
  /// with ≈80% of requests below 1 s, matching Fig. 21.
  double request_mu = -1.512;
  double request_sigma = 1.8;
  uint64_t seed = 1;
};

/// Samples `n` users (the study recruited 15 students).
std::vector<ExploreUserParams> SampleExploreUsers(int n, Rng* rng);

/// Simulates the session over `ui`. Action mix, zoom walk and drag
/// distances are calibrated to Table 9 (map 62.8%, slider/checkbox 29.9%,
/// button 3.6%, text box 3.6%), Fig. 18 (zoom levels concentrate on
/// 11–14), and Table 10 (drag ranges shrink with depth).
Result<ExploreTrace> GenerateExploreTrace(const ExploreUserParams& params,
                                          CompositeInterface* ui);

}  // namespace ideval

#endif  // IDEVAL_WORKLOAD_EXPLORE_TASK_H_
