#include "workload/trace_io.h"

#include <cstdio>

#include "common/text_table.h"

namespace ideval {

std::string ScrollTraceToCsv(const ScrollTrace& trace) {
  std::string out = "timestamp_ms,scroll_top_px,top_tuple,delta_px\n";
  for (const ScrollEvent& e : trace.events) {
    out += StrFormat("%.3f,%.1f,%lld,%.2f\n", e.time.millis(),
                     e.scroll_top_px, static_cast<long long>(e.top_tuple),
                     e.wheel_delta_px);
  }
  return out;
}

std::string CrossfilterTraceToCsv(const CrossfilterTrace& trace) {
  std::string out = "timestamp_ms,min_val,max_val,slider_idx\n";
  for (const SliderEvent& e : trace.events) {
    out += StrFormat("%.3f,%.6f,%.6f,%d\n", e.time.millis(), e.min_val,
                     e.max_val, e.slider_index);
  }
  return out;
}

std::string ExploreTraceToCsv(const ExploreTrace& trace) {
  std::string out =
      "timestamp_ms,widget,zoom,sw_lat,sw_lng,ne_lat,ne_lng,filters,"
      "request_ms,render_ms,explore_ms\n";
  for (const ExplorePhase& p : trace.phases) {
    out += StrFormat(
        "%.3f,%s,%d,%.5f,%.5f,%.5f,%.5f,%d,%.1f,%.1f,%.1f\n",
        p.request.time.millis(), WidgetKindToString(p.request.widget),
        p.request.zoom_level, p.request.bounds.sw_lat, p.request.bounds.sw_lng,
        p.request.bounds.ne_lat, p.request.bounds.ne_lng,
        p.request.num_filter_conditions, p.request_time.millis(),
        p.rendering_time.millis(), p.exploration_time.millis());
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace ideval
