#include "workload/crossfilter_task.h"

#include <algorithm>
#include <cmath>

namespace ideval {

std::vector<CrossfilterUserParams> SampleCrossfilterUsers(int n,
                                                          DeviceType device,
                                                          Rng* rng) {
  std::vector<CrossfilterUserParams> users;
  users.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    CrossfilterUserParams p;
    p.user_id = i;
    p.device = device;
    p.num_moves = static_cast<int>(rng->UniformInt(16, 26));
    p.dwell_mean_s = rng->Uniform(1.2, 3.0);
    p.seed = rng->Next();
    users.push_back(p);
  }
  return users;
}

namespace {

/// Minimum-jerk position profile from x0 to x1 over [0, 1].
double MinimumJerk(double x0, double x1, double s) {
  const double u = std::clamp(s, 0.0, 1.0);
  const double blend = 10.0 * u * u * u - 15.0 * u * u * u * u +
                       6.0 * u * u * u * u * u;
  return x0 + (x1 - x0) * blend;
}

}  // namespace

Result<CrossfilterTrace> GenerateCrossfilterTrace(
    const CrossfilterUserParams& params, CrossfilterView* view) {
  if (view == nullptr) {
    return Status::InvalidArgument("GenerateCrossfilterTrace: null view");
  }
  if (params.num_moves <= 0) {
    return Status::InvalidArgument("num_moves must be positive");
  }
  Rng rng(params.seed);
  DeviceModel device(params.device, rng.Fork());
  const DeviceSpec& spec = device.spec();

  CrossfilterTrace trace;
  trace.user_id = params.user_id;
  trace.device = params.device;

  SimTime t;
  // Track, per slider, the current handle pixel positions (lower, upper).
  struct HandleState {
    double lo_px;
    double hi_px;
  };
  std::vector<HandleState> handles;
  for (size_t i = 0; i < view->num_attributes(); ++i) {
    const RangeSlider& s = view->slider(i);
    handles.push_back({s.PixelAt(s.selected_lo()), s.PixelAt(s.selected_hi())});
  }

  for (int move = 0; move < params.num_moves; ++move) {
    const int slider_idx =
        static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(
                                               view->num_attributes()) -
                                               1));
    const RangeSlider& slider =
        view->slider(static_cast<size_t>(slider_idx));
    HandleState& hs = handles[static_cast<size_t>(slider_idx)];
    const bool lower = rng.Bernoulli(0.5);
    const double x0 = lower ? hs.lo_px : hs.hi_px;
    // Target position: anywhere on the track (keeping lo <= hi).
    const double x1 = lower ? rng.Uniform(0.0, hs.hi_px)
                            : rng.Uniform(hs.lo_px, slider.track_px());
    const double target_width_px = 8.0;  // Handle acquisition width.
    const Duration mt =
        device.FittsMovementTime(std::abs(x1 - x0), target_width_px);
    const Duration dwell = Duration::Seconds(
        std::max(0.25, rng.Exponential(params.dwell_mean_s)));

    const SimTime move_start = t;
    const SimTime move_end = t + mt;
    const SimTime dwell_end = move_end + dwell;

    auto path = [&](SimTime now) -> std::pair<double, double> {
      if (now <= move_end) {
        const double s = (now - move_start).seconds() /
                         std::max(1e-9, mt.seconds());
        return {MinimumJerk(x0, x1, s), 0.0};
      }
      return {x1, 0.0};
    };
    auto moving = [&](SimTime now) { return now < move_end; };
    PointerTrace samples = device.SamplePath(path, move_start, dwell_end,
                                             moving);

    // Toolkit thresholding: emit a slider event when the handle pixel moved
    // enough since the last emitted event.
    double last_emitted = x0;
    for (const PointerSample& s : samples) {
      if (std::abs(s.x - last_emitted) < spec.motion_threshold) continue;
      last_emitted = s.x;
      const double clamped = std::clamp(s.x, 0.0, slider.track_px());
      double lo_px = hs.lo_px;
      double hi_px = hs.hi_px;
      if (lower) {
        lo_px = std::min(clamped, hs.hi_px);
      } else {
        hi_px = std::max(clamped, hs.lo_px);
      }
      SliderEvent e;
      e.time = s.time;
      e.slider_index = slider_idx;
      e.min_val = slider.ValueAt(lo_px);
      e.max_val = slider.ValueAt(hi_px);
      trace.events.push_back(e);
      hs.lo_px = lo_px;
      hs.hi_px = hi_px;
    }
    trace.pointer_trace.insert(trace.pointer_trace.end(), samples.begin(),
                               samples.end());
    t = dwell_end;
  }
  trace.session_duration = t - SimTime::Origin();
  return trace;
}

Result<std::vector<QueryGroup>> BuildQueryGroups(
    CrossfilterView* view, const std::vector<SliderEvent>& events) {
  if (view == nullptr) {
    return Status::InvalidArgument("BuildQueryGroups: null view");
  }
  std::vector<QueryGroup> groups;
  groups.reserve(events.size());
  for (const SliderEvent& e : events) {
    IDEVAL_ASSIGN_OR_RETURN(QueryGroup g, view->ApplySliderEvent(e));
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace ideval
