#ifndef IDEVAL_WORKLOAD_SCROLL_TASK_H_
#define IDEVAL_WORKLOAD_SCROLL_TASK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "widget/inertial_scroller.h"

namespace ideval {

/// One movie selection made during a scroll session.
struct SelectionRecord {
  SimTime time;
  int64_t tuple_index = 0;
  /// Corrective reverse-flicks needed to land on the tuple (0 = the user
  /// stopped in time).
  int backscrolls = 0;
};

/// A full §6 scroll session for one simulated user: the raw event log
/// ({timestamp, scrollTop, scrollNum, delta}) plus selections.
struct ScrollTrace {
  int user_id = 0;
  std::vector<ScrollEvent> events;
  std::vector<SelectionRecord> selections;
  int64_t total_backscrolls = 0;
  Duration session_duration;
};

/// Per-user behaviour parameters for the skim-and-select task. Sampled by
/// `SampleScrollUsers` from distributions calibrated to Table 7 / Fig. 8:
/// per-user peak scroll velocity spans [1824, 31517] px/s with median
/// ~8741 px/s (≈ 58 tuples/s at 157 px per tuple).
struct ScrollUserParams {
  int user_id = 0;
  /// Peak flick velocity this user is capable of (px/s).
  double peak_velocity_px_s = 8741.0;
  /// Probability any given tuple interests the user (drives Fig. 9's
  /// selection counts).
  double interest_prob = 0.01;
  /// Mean pause between flicks while skimming (s).
  double dwell_mean_s = 0.5;
  /// Tendency to overshoot when correcting toward a target; glide distance
  /// is `wanted * Uniform(1-o, 1+o)`.
  double overshoot = 0.35;
  /// Users read carefully at the top of the ranked list and skim faster as
  /// they go: flick velocity ramps from `warmup_factor * peak` up to the
  /// full peak over the first `warmup_fraction` of the list.
  double warmup_factor = 0.4;
  double warmup_fraction = 0.2;
  uint64_t seed = 1;
};

/// Task configuration shared across users.
struct ScrollTaskOptions {
  ScrollerOptions scroller;
  /// Maximum corrective flicks per selection before the user gives up and
  /// fine-scrolls precisely.
  int max_corrections = 4;
};

/// Samples `n` users' parameters (the study recruited 15).
std::vector<ScrollUserParams> SampleScrollUsers(int n, Rng* rng);

/// Simulates one user skimming all tuples and selecting interesting
/// movies, per §6's task ("skim all 4000 tuples and select interesting
/// movies"). Deterministic given the params' seed.
Result<ScrollTrace> GenerateScrollTrace(const ScrollUserParams& params,
                                        const ScrollTaskOptions& options);

/// Per-event scroll speeds of a trace.
struct ScrollSpeeds {
  std::vector<double> px_per_s;      ///< |delta| / interval, per event.
  std::vector<double> tuples_per_s;  ///< Same, in tuples.
};

/// Computes per-event speeds (consecutive-event deltas over intervals);
/// feeds Fig. 8 and Table 7.
ScrollSpeeds ComputeScrollSpeeds(const ScrollTrace& trace,
                                 double tuple_height_px);

}  // namespace ideval

#endif  // IDEVAL_WORKLOAD_SCROLL_TASK_H_
