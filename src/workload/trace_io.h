#ifndef IDEVAL_WORKLOAD_TRACE_IO_H_
#define IDEVAL_WORKLOAD_TRACE_IO_H_

#include <string>

#include "common/result.h"
#include "workload/crossfilter_task.h"
#include "workload/explore_task.h"
#include "workload/scroll_task.h"

namespace ideval {

/// CSV serializations of the case-study traces, in the column layouts the
/// paper logs (Table 5): scrolling {timestamp, scrollTop, scrollNum,
/// delta}, crossfiltering {timestamp, minVal, maxVal, sliderIdx}, and the
/// composite interface {timestamp, widget, zoom, bounds, filters, T0, T1,
/// T2}. These files are the shareable workload artifacts §4.1.3 argues the
/// community needs.
std::string ScrollTraceToCsv(const ScrollTrace& trace);
std::string CrossfilterTraceToCsv(const CrossfilterTrace& trace);
std::string ExploreTraceToCsv(const ExploreTrace& trace);

/// Writes `contents` to `path`, failing with a Status instead of throwing.
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace ideval

#endif  // IDEVAL_WORKLOAD_TRACE_IO_H_
