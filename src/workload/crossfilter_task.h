#ifndef IDEVAL_WORKLOAD_CROSSFILTER_TASK_H_
#define IDEVAL_WORKLOAD_CROSSFILTER_TASK_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "device/device_model.h"
#include "widget/crossfilter.h"

namespace ideval {

/// A §7 crossfilter session for one user on one device: the slider event
/// log ({timestamp, minVal, maxVal, sliderIdx}) plus the raw pointer trace
/// it came from (Fig. 11).
struct CrossfilterTrace {
  int user_id = 0;
  DeviceType device = DeviceType::kMouse;
  std::vector<SliderEvent> events;
  PointerTrace pointer_trace;
  Duration session_duration;
};

/// Per-user behaviour parameters for the range-query task ("specify range
/// queries by moving the handle to a specific position", §7).
struct CrossfilterUserParams {
  int user_id = 0;
  DeviceType device = DeviceType::kMouse;
  /// Slider adjustments in the session.
  int num_moves = 20;
  /// Mean dwell between moves while reading the coordinated histograms (s).
  double dwell_mean_s = 2.0;
  uint64_t seed = 1;
};

/// Samples `n` users for a device (the study ran 10 users per device).
std::vector<CrossfilterUserParams> SampleCrossfilterUsers(int n,
                                                          DeviceType device,
                                                          Rng* rng);

/// Simulates the session: each move is a Fitts-timed minimum-jerk handle
/// drag sampled through the device model; every pointer motion event that
/// clears the toolkit threshold becomes a slider event. On frictionless
/// devices (Leap Motion) the dwell phases keep emitting events — the
/// unintended, noisy, repeated queries of §2.3.
///
/// `view` provides slider geometry and is left with the final selections.
Result<CrossfilterTrace> GenerateCrossfilterTrace(
    const CrossfilterUserParams& params, CrossfilterView* view);

/// Converts slider events into coordinated query groups by replaying them
/// through `view` (n-1 histogram queries per event).
Result<std::vector<QueryGroup>> BuildQueryGroups(
    CrossfilterView* view, const std::vector<SliderEvent>& events);

}  // namespace ideval

#endif  // IDEVAL_WORKLOAD_CROSSFILTER_TASK_H_
