#include "workload/explore_task.h"

#include <algorithm>
#include <cmath>

namespace ideval {

std::vector<ExploreUserParams> SampleExploreUsers(int n, Rng* rng) {
  std::vector<ExploreUserParams> users;
  users.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ExploreUserParams p;
    p.user_id = i;
    // Destination searches land at zoom 11–12, which (with the ≤3-level
    // walk) concentrates Fig. 18's activity on levels 11–14.
    p.start_zoom = static_cast<int>(rng->UniformInt(11, 12));
    // One user in the study wandered further than three levels.
    p.max_zoom_depth = rng->Bernoulli(0.07) ? 5 : 3;
    p.seed = rng->Next();
    users.push_back(p);
  }
  return users;
}

Result<ExploreTrace> GenerateExploreTrace(const ExploreUserParams& params,
                                          CompositeInterface* ui) {
  if (ui == nullptr) {
    return Status::InvalidArgument("GenerateExploreTrace: null ui");
  }
  if (ui->map().zoom() <= 0) {
    return Status::InvalidArgument("composite interface has no map state");
  }
  Rng rng(params.seed);
  ExploreTrace trace;
  trace.user_id = params.user_id;

  SimTime t;
  // Session opens with a destination search (text box).
  const size_t num_destinations = ui->num_destinations();
  if (num_destinations == 0) {
    return Status::InvalidArgument(
        "composite interface has no destination presets");
  }
  auto first = ui->SearchDestination(
      t, static_cast<size_t>(rng.UniformInt(
             0, static_cast<int64_t>(num_destinations) - 1)));
  if (!first.ok()) return first.status();
  // Anchor the zoom walk at the user's preferred start level.
  ui->mutable_map()->JumpTo(ui->map().center_lat(), ui->map().center_lng(),
                            params.start_zoom);
  CompositeRequest pending = *first;
  pending.zoom_level = ui->map().zoom();
  pending.bounds = ui->map().Viewport();

  // The center of the searched destination: drags gravitate back toward
  // it (users pan around the content they came for, not into empty map).
  double dest_lat = ui->map().center_lat();
  double dest_lng = ui->map().center_lng();

  // Most travellers pin their dates right after picking a destination
  // (two URL filter conditions that persist for the whole session).
  const bool sets_dates = rng.Bernoulli(0.9);
  bool dates_set = false;

  // Action mix calibrated to Table 9: the map dominates, filters second.
  // (The forced destination search and date pick add to the text-box and
  // button shares, which the weights compensate for.)
  enum Action { kDrag, kZoom, kSlider, kCheckbox, kButton, kTextBox };
  const std::vector<double> weights = {46.9, 17.6, 20.0, 10.2, 2.2, 2.8};

  // Which filters this user cares about at all; most stick to dates and
  // price, which keeps ~70% of queries at four or fewer conditions
  // (Fig. 20).
  const bool uses_guests = rng.Bernoulli(0.35);
  const bool uses_rating = rng.Bernoulli(0.30);
  const bool uses_nights = rng.Bernoulli(0.25);
  // Preferred room types the checkbox toggling moves between (1–2).
  static const char* const kRooms[] = {"Entire home/apt", "Private room",
                                       "Shared room", "Hotel room"};
  const size_t preferred_room_a =
      static_cast<size_t>(rng.UniformInt(0, 3));
  const size_t preferred_room_b =
      rng.Bernoulli(0.4) ? static_cast<size_t>(rng.UniformInt(0, 3))
                         : preferred_room_a;

  while (t - SimTime::Origin() < params.min_session) {
    // Complete the request–render–explore cycle for the pending request.
    ExplorePhase phase;
    phase.request = pending;
    phase.request_time = Duration::Seconds(std::clamp(
        rng.LogNormal(params.request_mu, params.request_sigma), 0.08, 30.0));
    phase.rendering_time = Duration::Seconds(
        std::clamp(rng.LogNormal(std::log(0.15), 0.5), 0.03, 2.0));
    phase.exploration_time = Duration::Seconds(std::clamp(
        rng.LogNormal(params.explore_mu, params.explore_sigma), 0.15, 240.0));
    t += phase.request_time + phase.rendering_time + phase.exploration_time;
    trace.phases.push_back(phase);

    // Decide the next action.
    if (sets_dates && !dates_set && trace.phases.size() >= 1) {
      dates_set = true;
      pending = ui->SetDates(t, static_cast<int>(rng.UniformInt(1, 300)),
                             static_cast<int>(rng.UniformInt(2, 10)));
      continue;
    }
    switch (static_cast<Action>(rng.WeightedIndex(weights))) {
      case kDrag: {
        const GeoBounds b = ui->map().Viewport();
        // Drag amplitude is a fraction of the visible span, so deeper
        // zooms move smaller distances (Table 10); drags are biased back
        // toward the destination's content rather than random walks into
        // empty map.
        const double pull_lat =
            std::clamp(0.5 * (dest_lat - b.CenterLat()),
                       -0.30 * b.LatSpan(), 0.30 * b.LatSpan());
        const double pull_lng =
            std::clamp(0.5 * (dest_lng - b.CenterLng()),
                       -0.25 * b.LngSpan(), 0.25 * b.LngSpan());
        const double dlat =
            pull_lat + b.LatSpan() * rng.Uniform(-0.60, 0.60);
        const double dlng =
            pull_lng + b.LngSpan() * rng.Uniform(-0.45, 0.45);
        pending = ui->Drag(t, dlat, dlng);
        break;
      }
      case kZoom: {
        const int depth = ui->map().zoom() - params.start_zoom;
        const bool zoom_in =
            depth < params.max_zoom_depth &&
            (depth <= 0 || rng.Bernoulli(0.62));
        if (zoom_in) {
          pending = ui->ZoomIn(t);
        } else if (depth > -1) {
          pending = ui->ZoomOut(t);
        } else {
          pending = ui->ZoomIn(t);
        }
        break;
      }
      case kSlider: {
        const double which = rng.NextDouble();
        if (uses_rating && which < 0.15) {
          pending = ui->SetMinRating(
              t, rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(3.5, 4.8));
        } else if (uses_nights && which < 0.30) {
          pending = ui->SetMaxMinNights(
              t, rng.Bernoulli(0.25) ? 0 : rng.UniformInt(2, 7));
        } else if (rng.Bernoulli(0.35)) {
          // Dragging the price slider back to the track ends clears it.
          pending = ui->SetPriceRange(t, 0.0, 0.0);
        } else {
          const double lo = rng.Uniform(10.0, 120.0);
          const double hi = lo + rng.Uniform(30.0, 320.0);
          pending = ui->SetPriceRange(t, lo, hi);
        }
        break;
      }
      case kCheckbox: {
        const size_t pick = rng.Bernoulli(0.5) ? preferred_room_a
                                               : preferred_room_b;
        pending = ui->ToggleRoomType(t, kRooms[pick]);
        break;
      }
      case kButton:
        pending = ui->SetGuests(
            t, uses_guests && !rng.Bernoulli(0.45) ? rng.UniformInt(1, 6)
                                                  : 0);
        break;
      case kTextBox: {
        auto r = ui->SearchDestination(
            t, static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(num_destinations) - 1)));
        if (!r.ok()) return r.status();
        // A fresh destination restarts the zoom walk near the start level.
        ui->mutable_map()->JumpTo(ui->map().center_lat(),
                                  ui->map().center_lng(), params.start_zoom);
        dest_lat = ui->map().center_lat();
        dest_lng = ui->map().center_lng();
        pending = *r;
        pending.zoom_level = ui->map().zoom();
        pending.bounds = ui->map().Viewport();
        break;
      }
    }
  }
  trace.session_duration = t - SimTime::Origin();
  return trace;
}

}  // namespace ideval
