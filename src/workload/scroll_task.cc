#include "workload/scroll_task.h"

#include <algorithm>
#include <cmath>

namespace ideval {

std::vector<ScrollUserParams> SampleScrollUsers(int n, Rng* rng) {
  std::vector<ScrollUserParams> users;
  users.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ScrollUserParams p;
    p.user_id = i;
    // Log-normal peak velocity with median ~8741 px/s, clamped to the
    // observed range [1824, 31517] px/s (Table 7).
    p.peak_velocity_px_s =
        std::clamp(rng->LogNormal(std::log(8741.0), 1.1), 1824.0, 31517.0);
    p.interest_prob = std::clamp(rng->LogNormal(std::log(0.009), 0.5),
                                 0.003, 0.03);
    p.dwell_mean_s = rng->Uniform(0.25, 0.9);
    p.overshoot = rng->Uniform(0.15, 0.6);
    // How long the careful-reading phase lasts differs per user; impatient
    // skimmers hit full speed almost immediately.
    p.warmup_factor = rng->Uniform(0.25, 0.6);
    p.warmup_fraction = rng->Uniform(0.04, 0.3);
    p.seed = rng->Next();
    users.push_back(p);
  }
  return users;
}

namespace {

/// Initial velocity whose exponential-decay glide covers approximately
/// `distance` pixels (the glide integral is (|v0| - rest) / decay).
double VelocityForDistance(double distance, double decay, double rest) {
  return distance * decay + (distance < 0.0 ? -rest : rest);
}

}  // namespace

Result<ScrollTrace> GenerateScrollTrace(const ScrollUserParams& params,
                                        const ScrollTaskOptions& options) {
  if (params.peak_velocity_px_s <= 0.0) {
    return Status::InvalidArgument("peak velocity must be positive");
  }
  if (params.interest_prob < 0.0 || params.interest_prob > 1.0) {
    return Status::InvalidArgument("interest_prob must be in [0, 1]");
  }
  Rng rng(params.seed);
  InertialScroller scroller(options.scroller);
  const ScrollerOptions& so = options.scroller;

  ScrollTrace trace;
  trace.user_id = params.user_id;
  SimTime t;
  const double decay = so.inertia_decay;
  const double rest = so.rest_velocity;
  const double window_px =
      static_cast<double>(so.visible_tuples) * so.tuple_height_px;

  auto run_flick = [&](double v0) {
    const auto events = scroller.Flick(t, v0);
    if (!events.empty()) {
      t = events.back().time + so.event_interval;
      trace.events.insert(trace.events.end(), events.begin(), events.end());
    }
  };

  while (scroller.top_tuple() + so.visible_tuples < so.total_tuples) {
    const double before_px = scroller.scroll_top_px();
    // Skim flick at a fraction of the user's peak speed, ramping up from
    // careful reading at the top of the ranked list to fast skimming.
    const double progress =
        scroller.scroll_top_px() / std::max(1.0, scroller.MaxScrollTopPx());
    const double warmup =
        params.warmup_factor +
        (1.0 - params.warmup_factor) *
            std::min(1.0, progress / params.warmup_fraction);
    const double v0 =
        params.peak_velocity_px_s * warmup * rng.Uniform(0.35, 1.0);
    run_flick(v0);
    const double after_px = scroller.scroll_top_px();
    if (after_px <= before_px) break;  // Pinned at the end.

    // Reading pause between flicks.
    t += Duration::Seconds(std::max(0.1, rng.Exponential(params.dwell_mean_s)));

    // Which tuples flew by? Interest strikes per tuple.
    const int64_t first =
        static_cast<int64_t>(before_px / so.tuple_height_px);
    const int64_t last = static_cast<int64_t>(after_px / so.tuple_height_px);
    for (int64_t tuple = first; tuple < last; ++tuple) {
      if (!rng.Bernoulli(params.interest_prob)) continue;
      // The user wants `tuple`. If it still sits in the visible window they
      // select directly; with momentum it has usually flown past, so they
      // flick back toward it — overshooting sometimes, which is exactly
      // Fig. 9's "backscrolled selections".
      SelectionRecord sel;
      sel.tuple_index = tuple;
      const double target_px =
          static_cast<double>(tuple) * so.tuple_height_px;
      int corrections = 0;
      while (std::abs(scroller.scroll_top_px() - target_px) >
                 window_px * 0.5 &&
             corrections < options.max_corrections) {
        const double dist = target_px - scroller.scroll_top_px();
        const double factor =
            rng.Uniform(1.0 - params.overshoot, 1.0 + params.overshoot);
        // Corrective flicks are bounded by what the user's hands can do.
        const double v = std::clamp(VelocityForDistance(dist * factor, decay,
                                                        rest),
                                    -params.peak_velocity_px_s,
                                    params.peak_velocity_px_s);
        run_flick(v);
        ++corrections;
        t += Duration::Seconds(rng.Uniform(0.1, 0.3));  // Re-acquire target.
      }
      if (std::abs(scroller.scroll_top_px() - target_px) > window_px * 0.5) {
        // Give up gliding; settle precisely with slow wheel notches.
        scroller.JumpTo(target_px);
      }
      sel.backscrolls = corrections;
      trace.total_backscrolls += corrections;
      t += Duration::Seconds(rng.Uniform(0.2, 0.5));  // Click + confirm.
      sel.time = t;
      trace.selections.push_back(sel);
    }
  }
  trace.session_duration = t - SimTime::Origin();
  return trace;
}

ScrollSpeeds ComputeScrollSpeeds(const ScrollTrace& trace,
                                 double tuple_height_px) {
  ScrollSpeeds out;
  for (size_t i = 1; i < trace.events.size(); ++i) {
    const Duration dt = trace.events[i].time - trace.events[i - 1].time;
    if (dt <= Duration::Zero()) continue;
    // Only count contiguous scrolling samples; pauses between flicks are
    // not "scrolling speed".
    if (dt > Duration::Millis(100)) continue;
    const double px = std::abs(trace.events[i].wheel_delta_px);
    if (px <= 0.0) continue;
    const double px_s = px / dt.seconds();
    out.px_per_s.push_back(px_s);
    out.tuples_per_s.push_back(px_s / tuple_height_px);
  }
  return out;
}

}  // namespace ideval
