#include "net/net_load_driver.h"

#include <chrono>
#include <memory>
#include <utility>

#include "serve/load_driver.h"

namespace ideval {

Result<NetLoadReport> RunNetLoadDriver(
    const std::vector<std::vector<QueryGroup>>& clients,
    NetLoadDriverOptions options) {
  NetLoadReport report;
  report.clients.resize(clients.size());
  std::vector<std::unique_ptr<NetClient>> nets;
  nets.reserve(clients.size());
  for (size_t ci = 0; ci < clients.size(); ++ci) {
    IDEVAL_ASSIGN_OR_RETURN(std::unique_ptr<NetClient> net,
                            NetClient::Connect(options.host, options.port));
    IDEVAL_ASSIGN_OR_RETURN(report.clients[ci].session_id,
                            net->OpenSession());
    nets.push_back(std::move(net));
  }

  const auto epoch = std::chrono::steady_clock::now();
  IDEVAL_RETURN_NOT_OK(ReplayClients(
      clients, options.time_compression,
      [&](size_t ci, const QueryGroup& group) {
        // Each client thread touches only its own (non-thread-safe)
        // NetClient, mirroring one frontend per user.
        NetClientLoadResult& tally = report.clients[ci];
        auto ack = nets[ci]->Submit(tally.session_id, group.queries);
        ++tally.submitted;
        if (!ack.ok()) {
          ++tally.submit_errors;
          return;
        }
        switch (ack->disposition) {
          case SubmitDisposition::kEnqueued:
            ++tally.enqueued;
            break;
          case SubmitDisposition::kCoalesced:
            ++tally.coalesced;
            break;
          case SubmitDisposition::kThrottled:
            ++tally.throttled;
            break;
          case SubmitDisposition::kRejected:
            ++tally.rejected;
            break;
        }
      }));

  // Drain every session before closing any: completions (and their
  // frames) all land before the sockets go away, so client and server
  // byte counters describe the same finished conversation.
  if (options.drain) {
    for (size_t ci = 0; ci < clients.size(); ++ci) {
      IDEVAL_RETURN_NOT_OK(nets[ci]->Drain(report.clients[ci].session_id));
    }
  }
  for (size_t ci = 0; ci < clients.size(); ++ci) {
    IDEVAL_RETURN_NOT_OK(
        nets[ci]->CloseSession(report.clients[ci].session_id));
  }
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - epoch)
          .count();
  for (size_t ci = 0; ci < clients.size(); ++ci) {
    report.clients[ci].wire = nets[ci]->stats();
    NetClientStats& total = report.wire_totals;
    const NetClientStats& w = report.clients[ci].wire;
    total.bytes_sent += w.bytes_sent;
    total.bytes_received += w.bytes_received;
    total.frames_sent += w.frames_sent;
    total.frames_received += w.frames_received;
    total.completions_executed += w.completions_executed;
    total.completions_shed += w.completions_shed;
    total.completions_dropped += w.completions_dropped;
    total.lcv_violations += w.lcv_violations;
    total.queries_executed += w.queries_executed;
    total.queries_failed += w.queries_failed;
    total.cache_hits += w.cache_hits;
    total.latency_ms.insert(total.latency_ms.end(), w.latency_ms.begin(),
                            w.latency_ms.end());
  }
  // Destroying the clients closes the sockets; the server reaps the
  // connections on its next poll round.
  return report;
}

}  // namespace ideval
