#ifndef IDEVAL_NET_NET_CLIENT_H_
#define IDEVAL_NET_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "net/codec.h"
#include "net/wire.h"

namespace ideval {

/// Client-side wire tallies. `bytes_*` mirror the server's counters from
/// the other end of the socket: after every session has drained and the
/// connection is closed, this client's `bytes_sent` is contained in the
/// server's `net_bytes_received` (exactly equal when it is the only
/// client), which the serve tests assert.
struct NetClientStats {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  /// Deferred terminal reports, one per admitted group:
  /// executed + shed + dropped == groups acked kEnqueued/kCoalesced.
  int64_t completions_executed = 0;
  int64_t completions_shed = 0;     ///< Server shed (stale/coalesced).
  int64_t completions_dropped = 0;  ///< Write-queue shed error frames.
  int64_t lcv_violations = 0;
  int64_t queries_executed = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  /// Server-reported submit->terminal latency of executed groups.
  std::vector<double> latency_ms;
};

/// Blocking client for the `NetServer` wire protocol — what `LoadDriver`
/// clients become in `--net` mode. One instance owns one TCP connection
/// and may multiplex any number of sessions; it is NOT thread-safe (the
/// net load driver gives each client thread its own instance, mirroring
/// the one-thread-per-client in-process driver).
///
/// Deferred `kGroupComplete` frames interleave with direct responses on
/// the same socket; every blocking call drains and tallies them while
/// waiting for its own response, so completions are never lost and the
/// socket never deadlocks.
class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(const std::string& host,
                                                    int port);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Round-trips a ping frame.
  Status Ping();

  /// Opens a server session bound to this connection.
  Result<uint64_t> OpenSession();

  Status CloseSession(uint64_t session_id);

  /// Submits one query group and blocks for the door ack. The group's
  /// terminal report arrives later as a completion (tallied in `stats()`
  /// and offered to the `on_complete` hook).
  Result<SubmitAckPayload> Submit(uint64_t session_id,
                                  const std::vector<Query>& queries);

  /// Blocks until the session has no pending groups server-side — i.e.
  /// every admitted group's completion (or its write-queue-shed error)
  /// has been received. After draining all sessions, the byte counters
  /// on both ends of the socket agree.
  Status Drain(uint64_t session_id);

  /// Optional hook observing every completion as it is tallied.
  void set_on_complete(std::function<void(const CompletionPayload&)> fn) {
    on_complete_ = std::move(fn);
  }

  const NetClientStats& stats() const { return stats_; }

 private:
  NetClient() = default;

  Status SendAll();
  /// Blocks until one full frame is buffered; leaves it decoded in
  /// `last_header_` with the payload at `payload_`.
  Status ReadFrame();
  /// Sends the frame just built in `wbuf_` and loops reading frames,
  /// tallying completions, until the direct response for `request_id`
  /// arrives (returned via `last_header_`/`payload_`). An error frame
  /// for `request_id` is converted to a non-OK status unless it is a
  /// write-queue shed (those are completion substitutes).
  Status Call(uint64_t request_id, Opcode expect);
  void TallyCompletion(const FrameHeader& h);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> wbuf_;
  std::vector<uint8_t> rbuf_;
  size_t rpos_ = 0;
  FrameHeader last_header_;
  const uint8_t* payload_ = nullptr;
  NetClientStats stats_;
  std::function<void(const CompletionPayload&)> on_complete_;
};

}  // namespace ideval

#endif  // IDEVAL_NET_NET_CLIENT_H_
