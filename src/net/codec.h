#ifndef IDEVAL_NET_CODEC_H_
#define IDEVAL_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "net/wire.h"
#include "serve/server.h"
#include "serve/session.h"

namespace ideval {

/// Payload codecs on top of `net/wire.h` primitives: the query shapes a
/// client submits and the result/ack/completion payloads the server sends
/// back. Encoders append to the caller's reusable buffer (no hot-path
/// allocation beyond buffer growth to the high-water mark); decoders read
/// through a bounds-checked `WireReader` and return `Status` on any
/// truncated, corrupted, or over-long payload.
///
/// Variant tags (u8, 0 is reserved/invalid so a zeroed buffer never
/// decodes): Query {1 select, 2 histogram, 3 join_page}; Predicate
/// {1 range, 2 string_eq, 3 string_in}; Value {1 int64, 2 double,
/// 3 string}; result {1 row_set, 2 histogram}.

/// Door verdict for one `kSubmitGroup`, echoed as `kSubmitAck`.
struct SubmitAckPayload {
  uint64_t seq = 0;
  SubmitDisposition disposition = SubmitDisposition::kEnqueued;
  LoadState load_state = LoadState::kIdle;
  double load_factor = 0.0;

  bool operator==(const SubmitAckPayload&) const = default;
};

/// Terminal report for one admitted group, carried by `kGroupComplete`.
/// Mirrors `GroupCompletion` minus the session id (that rides in the
/// frame header).
struct CompletionPayload {
  uint64_t seq = 0;
  GroupTerminal terminal = GroupTerminal::kExecuted;
  bool lcv = false;
  int64_t queries_executed = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  int64_t queue_wait_us = 0;
  int64_t service_us = 0;
  int64_t latency_us = 0;
  /// One slot per query in submission order; empty = that query failed.
  /// Empty vector for shed groups.
  std::vector<std::optional<QueryResultData>> results;
};

/// Error payload of a `kError` frame.
struct ErrorPayload {
  WireErrorCode code = WireErrorCode::kNone;
  std::string message;
};

void EncodeQueryGroup(WireWriter* w, const std::vector<Query>& queries);
Result<std::vector<Query>> DecodeQueryGroup(WireReader* r);

void EncodeSubmitAck(WireWriter* w, const SubmitAckPayload& ack);
Result<SubmitAckPayload> DecodeSubmitAck(WireReader* r);

void EncodeCompletion(WireWriter* w, const CompletionPayload& done);
Result<CompletionPayload> DecodeCompletion(WireReader* r);

void EncodeError(WireWriter* w, WireErrorCode code, std::string_view message);
Result<ErrorPayload> DecodeError(WireReader* r);

}  // namespace ideval

#endif  // IDEVAL_NET_CODEC_H_
