#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ideval {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, int port) {
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("NetClient: port out of range");
  }
  std::unique_ptr<NetClient> client(new NetClient);
  client->fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (client->fd_ < 0) return Errno("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("NetClient: bad host " + host);
  }
  if (connect(client->fd_, reinterpret_cast<sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    return Errno("connect");
  }
  const int one = 1;
  setsockopt(client->fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

NetClient::~NetClient() {
  if (fd_ >= 0) close(fd_);
}

Status NetClient::SendAll() {
  size_t pos = 0;
  while (pos < wbuf_.size()) {
    const ssize_t n =
        send(fd_, wbuf_.data() + pos, wbuf_.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<size_t>(n);
      stats_.bytes_sent += n;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  ++stats_.frames_sent;
  wbuf_.clear();
  return Status::OK();
}

Status NetClient::ReadFrame() {
  // Blocks until header + payload are buffered, then decodes in place.
  auto need = [this](size_t bytes) -> Status {
    while (rbuf_.size() - rpos_ < bytes) {
      uint8_t chunk[64 * 1024];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        stats_.bytes_received += n;
        rbuf_.insert(rbuf_.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) return Status::Internal("connection closed by server");
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return Status::OK();
  };
  // Discard the consumed prefix once it gets large.
  if (rpos_ > (1u << 20)) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + rpos_);
    rpos_ = 0;
  }
  IDEVAL_RETURN_NOT_OK(need(kWireHeaderBytes));
  if (!DecodeFrameHeader(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                         &last_header_)) {
    return Status::Internal("malformed frame header from server");
  }
  IDEVAL_RETURN_NOT_OK(need(kWireHeaderBytes + last_header_.payload_len));
  payload_ = rbuf_.data() + rpos_ + kWireHeaderBytes;
  rpos_ += kWireHeaderBytes + last_header_.payload_len;
  ++stats_.frames_received;
  return Status::OK();
}

void NetClient::TallyCompletion(const FrameHeader& h) {
  WireReader r(payload_, h.payload_len);
  auto done = DecodeCompletion(&r);
  if (!done.ok() || !r.Done()) return;  // Corrupt completion: skip.
  if (done->terminal == GroupTerminal::kExecuted) {
    ++stats_.completions_executed;
    stats_.latency_ms.push_back(static_cast<double>(done->latency_us) /
                                1000.0);
  } else {
    ++stats_.completions_shed;
  }
  if (done->lcv) ++stats_.lcv_violations;
  stats_.queries_executed += done->queries_executed;
  stats_.queries_failed += done->queries_failed;
  stats_.cache_hits += done->cache_hits;
  if (on_complete_) on_complete_(*done);
}

Status NetClient::Call(uint64_t request_id, Opcode expect) {
  IDEVAL_RETURN_NOT_OK(SendAll());
  while (true) {
    IDEVAL_RETURN_NOT_OK(ReadFrame());
    const FrameHeader& h = last_header_;
    if (h.opcode == Opcode::kGroupComplete) {
      TallyCompletion(h);
      continue;
    }
    if (h.opcode == Opcode::kError) {
      WireReader r(payload_, h.payload_len);
      auto err = DecodeError(&r);
      const WireErrorCode code =
          err.ok() ? err->code : WireErrorCode::kMalformedFrame;
      if (code == WireErrorCode::kWriteQueueShed) {
        // A past submit's completion was shed; its error frame is the
        // completion substitute, not this call's response.
        ++stats_.completions_dropped;
        continue;
      }
      if (h.request_id == request_id) {
        return Status::Internal(
            std::string("server error: ") +
            WireErrorCodeToString(code) +
            (err.ok() && !err->message.empty() ? ": " + err->message : ""));
      }
      continue;  // Error for an unrelated request; nothing to match.
    }
    if (h.request_id != request_id) continue;
    if (h.opcode != expect) {
      return Status::Internal(
          std::string("unexpected response opcode: ") +
          OpcodeToString(h.opcode));
    }
    return Status::OK();
  }
}

Status NetClient::Ping() {
  const uint64_t rid = next_request_id_++;
  WireWriter w(&wbuf_);
  const size_t f = w.BeginFrame(Opcode::kPing, 0, rid);
  w.EndFrame(f);
  return Call(rid, Opcode::kPong);
}

Result<uint64_t> NetClient::OpenSession() {
  const uint64_t rid = next_request_id_++;
  WireWriter w(&wbuf_);
  const size_t f = w.BeginFrame(Opcode::kOpenSession, 0, rid);
  w.EndFrame(f);
  IDEVAL_RETURN_NOT_OK(Call(rid, Opcode::kSessionOpened));
  WireReader r(payload_, last_header_.payload_len);
  const uint64_t session_id = r.U64();
  if (!r.Done()) return Status::Internal("malformed session-opened payload");
  return session_id;
}

Status NetClient::CloseSession(uint64_t session_id) {
  const uint64_t rid = next_request_id_++;
  WireWriter w(&wbuf_);
  const size_t f = w.BeginFrame(Opcode::kCloseSession, session_id, rid);
  w.EndFrame(f);
  return Call(rid, Opcode::kSessionClosed);
}

Result<SubmitAckPayload> NetClient::Submit(
    uint64_t session_id, const std::vector<Query>& queries) {
  const uint64_t rid = next_request_id_++;
  WireWriter w(&wbuf_);
  const size_t f = w.BeginFrame(Opcode::kSubmitGroup, session_id, rid);
  EncodeQueryGroup(&w, queries);
  w.EndFrame(f);
  IDEVAL_RETURN_NOT_OK(Call(rid, Opcode::kSubmitAck));
  WireReader r(payload_, last_header_.payload_len);
  IDEVAL_ASSIGN_OR_RETURN(SubmitAckPayload ack, DecodeSubmitAck(&r));
  if (!r.Done()) return Status::Internal("malformed submit-ack payload");
  return ack;
}

Status NetClient::Drain(uint64_t session_id) {
  const uint64_t rid = next_request_id_++;
  WireWriter w(&wbuf_);
  const size_t f = w.BeginFrame(Opcode::kDrain, session_id, rid);
  w.EndFrame(f);
  return Call(rid, Opcode::kSessionDrained);
}

}  // namespace ideval
