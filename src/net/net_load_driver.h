#ifndef IDEVAL_NET_NET_LOAD_DRIVER_H_
#define IDEVAL_NET_NET_LOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/net_client.h"
#include "sim/query_scheduler.h"

namespace ideval {

struct NetLoadDriverOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< Required: a running `NetServer`'s port.
  /// Wall time = trace time / time_compression (same contract as
  /// `LoadDriverOptions`).
  double time_compression = 1.0;
  /// Drain every session (wait for all completions) before returning —
  /// required for the client/server byte counters to reconcile.
  bool drain = true;
};

/// One networked client's tallies: the door dispositions it was acked
/// plus its socket-level wire stats.
struct NetClientLoadResult {
  uint64_t session_id = 0;
  int64_t submitted = 0;
  int64_t enqueued = 0;
  int64_t coalesced = 0;
  int64_t throttled = 0;
  int64_t rejected = 0;
  int64_t submit_errors = 0;  ///< Submits answered with an error frame.
  NetClientStats wire;
};

struct NetLoadReport {
  std::vector<NetClientLoadResult> clients;
  /// Sum over all clients (latency samples concatenated).
  NetClientStats wire_totals;
  double wall_seconds = 0.0;
};

/// The over-the-wire twin of `RunLoadDriver`: one `NetClient` (one TCP
/// connection, one session) per trace client, one OS thread per client
/// via the shared `ReplayClients` loop, submissions flowing through the
/// full wire path — encode, socket, server decode, admission, execute,
/// completion frame back. After the replay every session is drained and
/// closed, so on return all byte counters reconcile with the server's.
Result<NetLoadReport> RunNetLoadDriver(
    const std::vector<std::vector<QueryGroup>>& clients,
    NetLoadDriverOptions options);

}  // namespace ideval

#endif  // IDEVAL_NET_NET_LOAD_DRIVER_H_
