#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace ideval {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// One admitted group's terminal report, in flight from a worker thread's
/// completion callback to the event loop.
struct CompletionItem {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  GroupCompletion done;
};

/// The worker-to-loop handoff queue. Owned by a `shared_ptr` that the
/// submit callbacks capture, so a completion firing after `NetServer` is
/// gone lands harmlessly here (`wake_fd` is already -1 by then) instead
/// of touching freed state.
struct CompletionQueue {
  std::mutex mu;
  std::vector<CompletionItem> items;
  int wake_fd = -1;  ///< Self-pipe write end; -1 once the loop is gone.

  void Push(CompletionItem item) {
    std::lock_guard<std::mutex> lock(mu);
    items.push_back(std::move(item));
    if (wake_fd >= 0) {
      const char byte = 1;
      // EAGAIN (pipe full) is fine: a wakeup is already pending.
      [[maybe_unused]] const ssize_t n = write(wake_fd, &byte, 1);
    }
  }
};

/// Per-session routing state: which connection owns the session and how
/// many admitted groups have not had their completion delivered yet.
struct NetSession {
  uint64_t conn_id = 0;
  int64_t pending = 0;
  bool drain_requested = false;
  uint64_t drain_request_id = 0;
};

struct Conn {
  int fd = -1;
  uint64_t id = 0;
  std::vector<uint8_t> rbuf;
  /// Write queue: [wpos, wbuf.size()) is buffered-but-unsent. Both
  /// buffers keep their high-water capacity across frames, so the
  /// steady-state encode/flush path does not allocate.
  std::vector<uint8_t> wbuf;
  size_t wpos = 0;
  std::vector<uint64_t> sessions;  ///< Sessions opened on this conn.
  bool dead = false;

  size_t QueuedBytes() const { return wbuf.size() - wpos; }
};

}  // namespace

struct NetServer::Impl {
  QueryServer* server = nullptr;
  NetServerOptions options;
  TraceBuffer* trace = nullptr;

  int listen_fd = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::shared_ptr<CompletionQueue> cq;
  std::thread loop;
  std::atomic<bool> running{false};
  bool stopped = false;

  // ----- loop-thread-only state -----
  uint64_t next_conn_id = 1;
  std::unordered_map<uint64_t, Conn> conns;
  std::unordered_map<uint64_t, NetSession> sessions;
  std::vector<uint8_t> scratch;  ///< Reused frame-encode buffer.

  // ----- wire counters (relaxed; read by Stats() from any thread) -----
  std::atomic<int64_t> bytes_sent{0};
  std::atomic<int64_t> bytes_received{0};
  std::atomic<int64_t> frames_sent{0};
  std::atomic<int64_t> frames_received{0};
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> active_connections{0};
  std::atomic<int64_t> write_queue_shed{0};
  std::atomic<int64_t> protocol_errors{0};

  // Registry-backed mirrors (null when the server has no registry).
  Counter* m_bytes_sent = nullptr;
  Counter* m_bytes_received = nullptr;
  Counter* m_frames_sent = nullptr;
  Counter* m_frames_received = nullptr;
  Counter* m_connections = nullptr;
  Counter* m_shed = nullptr;
  Counter* m_proto_errors = nullptr;
  Gauge* m_active = nullptr;

  void RegisterMetrics(MetricsRegistry* reg);
  void Loop();
  void AcceptNew();
  void HandleReadable(Conn* c);
  void ParseFrames(Conn* c);
  void HandleFrame(Conn* c, const uint8_t* payload, const FrameHeader& h);
  void DrainCompletions();
  void DrainWakePipe();
  void ReapDead();
  void CheckDrain(uint64_t session_id);
  void FlushWrites(Conn* c);
  Conn* FindConn(uint64_t conn_id);

  /// Appends the scratch-encoded frame `[frame_start, scratch.end())` to
  /// the connection's write queue unconditionally (control frames are
  /// never shed) and tries an opportunistic flush.
  void CommitFrame(Conn* c, size_t frame_start);
  void SendError(Conn* c, uint64_t session_id, uint64_t request_id,
                 WireErrorCode code, std::string_view message);
};

void NetServer::Impl::RegisterMetrics(MetricsRegistry* reg) {
  m_bytes_sent = reg->RegisterCounter("ideval_net_bytes_sent_total",
                                      "Bytes written to client sockets");
  m_bytes_received = reg->RegisterCounter(
      "ideval_net_bytes_received_total", "Bytes read from client sockets");
  m_frames_sent = reg->RegisterCounter("ideval_net_frames_sent_total",
                                       "Response frames enqueued");
  m_frames_received = reg->RegisterCounter(
      "ideval_net_frames_received_total", "Request frames decoded");
  m_connections = reg->RegisterCounter(
      "ideval_net_connections_accepted_total", "Connections accepted");
  m_shed = reg->RegisterCounter(
      "ideval_net_write_queue_shed_total",
      "Completion frames shed by the per-connection write-queue bound");
  m_proto_errors = reg->RegisterCounter(
      "ideval_net_protocol_errors_total",
      "Malformed or unknown frames answered with an error frame");
  m_active = reg->RegisterGauge("ideval_net_active_connections",
                                "Currently open client connections");
}

Conn* NetServer::Impl::FindConn(uint64_t conn_id) {
  auto it = conns.find(conn_id);
  return it == conns.end() ? nullptr : &it->second;
}

void NetServer::Impl::Loop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> conn_ids;
  while (running.load(std::memory_order_acquire)) {
    pfds.clear();
    conn_ids.clear();
    pfds.push_back({listen_fd, POLLIN, 0});
    pfds.push_back({wake_read_fd, POLLIN, 0});
    for (auto& [id, c] : conns) {
      short events = POLLIN;
      if (c.QueuedBytes() > 0) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
      conn_ids.push_back(id);
    }
    const int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 250);
    if (!running.load(std::memory_order_acquire)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll() itself failed; shut the front-end down.
    }
    if ((pfds[1].revents & POLLIN) != 0) DrainWakePipe();
    if ((pfds[0].revents & POLLIN) != 0) AcceptNew();
    for (size_t i = 2; i < pfds.size(); ++i) {
      Conn* c = FindConn(conn_ids[i - 2]);
      if (c == nullptr) continue;
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        HandleReadable(c);
      }
      if (!c->dead && (pfds[i].revents & POLLOUT) != 0) FlushWrites(c);
    }
    DrainCompletions();
    ReapDead();
  }
  // Shutdown: close every socket and every server session still bound to
  // one, so a stopped front-end never leaks open sessions into the
  // `QueryServer` (the symmetric cleanup `ReapDead` does per connection).
  for (auto& [sid, s] : sessions) (void)server->CloseSession(sid);
  for (auto& [id, c] : conns) close(c.fd);
  conns.clear();
  sessions.clear();
  if (m_active != nullptr) m_active->Set(0.0);
  active_connections.store(0, std::memory_order_relaxed);
}

void NetServer::Impl::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient: try again next poll round.
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn c;
    c.fd = fd;
    c.id = next_conn_id++;
    conns.emplace(c.id, std::move(c));
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const auto active =
        active_connections.fetch_add(1, std::memory_order_relaxed) + 1;
    if (m_connections != nullptr) m_connections->Increment();
    if (m_active != nullptr) m_active->Set(static_cast<double>(active));
  }
}

void NetServer::Impl::HandleReadable(Conn* c) {
  uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n = recv(c->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      bytes_received.fetch_add(n, std::memory_order_relaxed);
      if (m_bytes_received != nullptr) m_bytes_received->Increment(n);
      c->rbuf.insert(c->rbuf.end(), chunk, chunk + n);
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      c->dead = true;  // Peer closed; frames already buffered still run.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c->dead = true;
    break;
  }
  ParseFrames(c);
}

void NetServer::Impl::ParseFrames(Conn* c) {
  size_t pos = 0;
  while (c->rbuf.size() - pos >= kWireHeaderBytes) {
    FrameHeader h;
    if (!DecodeFrameHeader(c->rbuf.data() + pos, c->rbuf.size() - pos, &h)) {
      // Bad magic/version/length: byte framing is lost, the connection
      // cannot be resynchronized. Error out and drop it.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (m_proto_errors != nullptr) m_proto_errors->Increment();
      SendError(c, 0, 0, WireErrorCode::kMalformedFrame,
                "bad frame header");
      c->dead = true;
      break;
    }
    if (c->rbuf.size() - pos < kWireHeaderBytes + h.payload_len) break;
    HandleFrame(c, c->rbuf.data() + pos + kWireHeaderBytes, h);
    pos += kWireHeaderBytes + h.payload_len;
    if (c->dead) break;
  }
  if (pos > 0) c->rbuf.erase(c->rbuf.begin(), c->rbuf.begin() + pos);
}

void NetServer::Impl::HandleFrame(Conn* c, const uint8_t* payload,
                                  const FrameHeader& h) {
  frames_received.fetch_add(1, std::memory_order_relaxed);
  if (m_frames_received != nullptr) m_frames_received->Increment();
  const int64_t recv_t0 = trace != nullptr ? trace->NowMicros() : 0;
  switch (h.opcode) {
    case Opcode::kPing: {
      WireWriter w(&scratch);
      const size_t f = w.BeginFrame(Opcode::kPong, 0, h.request_id);
      w.EndFrame(f);
      CommitFrame(c, f);
      return;
    }
    case Opcode::kOpenSession: {
      const uint64_t sid = server->OpenSession();
      sessions[sid] = NetSession{c->id, 0, false, 0};
      c->sessions.push_back(sid);
      WireWriter w(&scratch);
      const size_t f = w.BeginFrame(Opcode::kSessionOpened, sid,
                                    h.request_id);
      w.U64(sid);
      w.EndFrame(f);
      CommitFrame(c, f);
      return;
    }
    case Opcode::kCloseSession: {
      auto it = sessions.find(h.session_id);
      if (it == sessions.end() || it->second.conn_id != c->id) {
        SendError(c, h.session_id, h.request_id,
                  WireErrorCode::kUnknownSession, "session not open here");
        return;
      }
      server->CloseSession(h.session_id);
      sessions.erase(it);
      WireWriter w(&scratch);
      const size_t f = w.BeginFrame(Opcode::kSessionClosed, h.session_id,
                                    h.request_id);
      w.EndFrame(f);
      CommitFrame(c, f);
      return;
    }
    case Opcode::kSubmitGroup: {
      auto it = sessions.find(h.session_id);
      if (it == sessions.end() || it->second.conn_id != c->id) {
        SendError(c, h.session_id, h.request_id,
                  WireErrorCode::kUnknownSession, "session not open here");
        return;
      }
      WireReader r(payload, h.payload_len);
      auto queries = DecodeQueryGroup(&r);
      if (!queries.ok() || !r.Done()) {
        // Payload-level corruption: the frame was still self-delimited,
        // so the connection survives.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        if (m_proto_errors != nullptr) m_proto_errors->Increment();
        SendError(c, h.session_id, h.request_id,
                  WireErrorCode::kMalformedFrame, "bad submit payload");
        return;
      }
      if (trace != nullptr) {
        TraceContext ctx = MakeTraceContext(trace, h.session_id);
        RecordSpan(ctx, SpanKind::kNetRecv, ctx.root_span_id, 0, recv_t0,
                   trace->NowMicros(),
                   static_cast<uint32_t>(h.opcode),
                   static_cast<int64_t>(kWireHeaderBytes + h.payload_len),
                   static_cast<int64_t>(h.request_id));
      }
      auto queue = cq;
      const uint64_t conn_id = c->id;
      const uint64_t request_id = h.request_id;
      auto outcome = server->Submit(
          h.session_id, std::move(*queries),
          [queue, conn_id, request_id](GroupCompletion&& done) {
            // Runs under the server lock on a worker (or submitter)
            // thread: enqueue and tickle the loop, nothing else.
            queue->Push(CompletionItem{conn_id, request_id,
                                       std::move(done)});
          });
      if (!outcome.ok()) {
        SendError(c, h.session_id, h.request_id,
                  WireErrorCode::kSubmitFailed,
                  outcome.status().message());
        return;
      }
      if (outcome->disposition == SubmitDisposition::kEnqueued ||
          outcome->disposition == SubmitDisposition::kCoalesced) {
        ++it->second.pending;
      }
      SubmitAckPayload ack;
      ack.seq = outcome->seq;
      ack.disposition = outcome->disposition;
      ack.load_state = outcome->load.state;
      ack.load_factor = outcome->load.load_factor;
      WireWriter w(&scratch);
      const size_t f = w.BeginFrame(Opcode::kSubmitAck, h.session_id,
                                    h.request_id);
      EncodeSubmitAck(&w, ack);
      w.EndFrame(f);
      CommitFrame(c, f);
      return;
    }
    case Opcode::kDrain: {
      auto it = sessions.find(h.session_id);
      if (it == sessions.end() || it->second.conn_id != c->id) {
        SendError(c, h.session_id, h.request_id,
                  WireErrorCode::kUnknownSession, "session not open here");
        return;
      }
      it->second.drain_requested = true;
      it->second.drain_request_id = h.request_id;
      CheckDrain(h.session_id);
      return;
    }
    default:
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (m_proto_errors != nullptr) m_proto_errors->Increment();
      SendError(c, h.session_id, h.request_id,
                WireErrorCode::kUnknownOpcode, "unknown opcode");
      return;
  }
}

void NetServer::Impl::DrainWakePipe() {
  uint8_t sink[256];
  while (read(wake_read_fd, sink, sizeof(sink)) > 0) {
  }
}

void NetServer::Impl::DrainCompletions() {
  std::vector<CompletionItem> items;
  {
    std::lock_guard<std::mutex> lock(cq->mu);
    items.swap(cq->items);
  }
  for (CompletionItem& item : items) {
    auto sit = sessions.find(item.done.session_id);
    if (sit != sessions.end()) --sit->second.pending;
    Conn* c = FindConn(item.conn_id);
    if (c == nullptr || c->dead) {
      // Connection went away with groups in flight; the report has
      // nowhere to go.
      if (sit != sessions.end()) CheckDrain(item.done.session_id);
      continue;
    }
    const int64_t send_t0 = trace != nullptr ? trace->NowMicros() : 0;
    CompletionPayload payload;
    payload.seq = item.done.seq;
    payload.terminal = item.done.terminal;
    payload.lcv = item.done.lcv;
    payload.queries_executed = item.done.queries_executed;
    payload.queries_failed = item.done.queries_failed;
    payload.cache_hits = item.done.cache_hits;
    payload.queue_wait_us = item.done.queue_wait.micros();
    payload.service_us = item.done.service.micros();
    payload.latency_us = item.done.latency.micros();
    payload.results = std::move(item.done.results);
    WireWriter w(&scratch);
    const size_t f = w.BeginFrame(Opcode::kGroupComplete,
                                  item.done.session_id, item.request_id);
    EncodeCompletion(&w, payload);
    w.EndFrame(f);
    const size_t frame_bytes = scratch.size() - f;
    if (c->QueuedBytes() + frame_bytes >
        static_cast<size_t>(options.max_write_queue_bytes)) {
      // Slow reader: drop the bulky result frame, keep the connection
      // and its control-plane flowing.
      scratch.resize(f);
      write_queue_shed.fetch_add(1, std::memory_order_relaxed);
      if (m_shed != nullptr) m_shed->Increment();
      SendError(c, item.done.session_id, item.request_id,
                WireErrorCode::kWriteQueueShed,
                "completion shed: write queue full");
    } else {
      CommitFrame(c, f);
      if (trace != nullptr) {
        TraceContext ctx = MakeTraceContext(trace, item.done.session_id);
        RecordSpan(ctx, SpanKind::kNetSend, ctx.root_span_id, 0, send_t0,
                   trace->NowMicros(),
                   static_cast<uint32_t>(Opcode::kGroupComplete),
                   static_cast<int64_t>(frame_bytes),
                   static_cast<int64_t>(item.request_id));
      }
    }
    CheckDrain(item.done.session_id);
  }
}

void NetServer::Impl::CheckDrain(uint64_t session_id) {
  auto it = sessions.find(session_id);
  if (it == sessions.end()) return;
  NetSession& s = it->second;
  if (!s.drain_requested || s.pending > 0) return;
  s.drain_requested = false;
  Conn* c = FindConn(s.conn_id);
  if (c == nullptr || c->dead) return;
  WireWriter w(&scratch);
  const size_t f = w.BeginFrame(Opcode::kSessionDrained, session_id,
                                s.drain_request_id);
  w.EndFrame(f);
  CommitFrame(c, f);
}

void NetServer::Impl::CommitFrame(Conn* c, size_t frame_start) {
  c->wbuf.insert(c->wbuf.end(), scratch.begin() + frame_start,
                 scratch.end());
  scratch.resize(frame_start);
  frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (m_frames_sent != nullptr) m_frames_sent->Increment();
  FlushWrites(c);
}

void NetServer::Impl::SendError(Conn* c, uint64_t session_id,
                                uint64_t request_id, WireErrorCode code,
                                std::string_view message) {
  WireWriter w(&scratch);
  const size_t f = w.BeginFrame(Opcode::kError, session_id, request_id);
  EncodeError(&w, code, message);
  w.EndFrame(f);
  CommitFrame(c, f);
}

void NetServer::Impl::FlushWrites(Conn* c) {
  while (c->wpos < c->wbuf.size()) {
    const ssize_t n = send(c->fd, c->wbuf.data() + c->wpos,
                           c->wbuf.size() - c->wpos, MSG_NOSIGNAL);
    if (n > 0) {
      c->wpos += static_cast<size_t>(n);
      bytes_sent.fetch_add(n, std::memory_order_relaxed);
      if (m_bytes_sent != nullptr) m_bytes_sent->Increment(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    c->dead = true;
    return;
  }
  c->wbuf.clear();
  c->wpos = 0;
}

void NetServer::Impl::ReapDead() {
  for (auto it = conns.begin(); it != conns.end();) {
    Conn& c = it->second;
    if (!c.dead) {
      ++it;
      continue;
    }
    for (uint64_t sid : c.sessions) {
      auto sit = sessions.find(sid);
      if (sit != sessions.end() && sit->second.conn_id == c.id) {
        server->CloseSession(sid);
        sessions.erase(sit);
      }
    }
    close(c.fd);
    const auto active =
        active_connections.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (m_active != nullptr) m_active->Set(static_cast<double>(active));
    it = conns.erase(it);
  }
}

NetServer::NetServer() : impl_(new Impl) {}

NetServer::~NetServer() { Stop(); }

Result<std::unique_ptr<NetServer>> NetServer::Start(
    QueryServer* server, NetServerOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("NetServer: null QueryServer");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("NetServer: port out of range");
  }
  if (options.max_write_queue_bytes < static_cast<int64_t>(kWireHeaderBytes)) {
    return Status::InvalidArgument(
        "NetServer: max_write_queue_bytes smaller than one frame header");
  }
  std::unique_ptr<NetServer> net(new NetServer);
  Impl* impl = net->impl_.get();
  impl->server = server;
  impl->options = std::move(options);
  impl->trace = server->trace_buffer();

  impl->listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(impl->options.port));
  if (inet_pton(AF_INET, impl->options.bind_address.c_str(),
                &addr.sin_addr) != 1) {
    return Status::InvalidArgument("NetServer: bad bind address " +
                                   impl->options.bind_address);
  }
  if (bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(impl->listen_fd, 128) < 0) return Errno("listen");
  IDEVAL_RETURN_NOT_OK(SetNonBlocking(impl->listen_fd));

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    return Errno("getsockname");
  }
  net->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) return Errno("pipe");
  impl->wake_read_fd = pipe_fds[0];
  impl->wake_write_fd = pipe_fds[1];
  IDEVAL_RETURN_NOT_OK(SetNonBlocking(impl->wake_read_fd));
  IDEVAL_RETURN_NOT_OK(SetNonBlocking(impl->wake_write_fd));

  impl->cq = std::make_shared<CompletionQueue>();
  impl->cq->wake_fd = impl->wake_write_fd;

  if (server->metrics_registry() != nullptr) {
    impl->RegisterMetrics(server->metrics_registry());
  }

  impl->running.store(true, std::memory_order_release);
  impl->loop = std::thread([impl] { impl->Loop(); });
  return net;
}

void NetServer::Stop() {
  Impl* impl = impl_.get();
  if (impl == nullptr || impl->stopped) return;
  impl->stopped = true;
  if (impl->loop.joinable()) {
    impl->running.store(false, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        write(impl->wake_write_fd, &byte, 1);
    impl->loop.join();
  }
  if (impl->cq != nullptr) {
    // Late completion callbacks from still-running worker groups must not
    // write into a closed pipe; park the queue first.
    std::lock_guard<std::mutex> lock(impl->cq->mu);
    impl->cq->wake_fd = -1;
  }
  if (impl->wake_read_fd >= 0) close(impl->wake_read_fd);
  if (impl->wake_write_fd >= 0) close(impl->wake_write_fd);
  if (impl->listen_fd >= 0) close(impl->listen_fd);
  impl->wake_read_fd = impl->wake_write_fd = impl->listen_fd = -1;
}

NetStatsSnapshot NetServer::Stats() const {
  const Impl* impl = impl_.get();
  NetStatsSnapshot s;
  s.bytes_sent = impl->bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = impl->bytes_received.load(std::memory_order_relaxed);
  s.frames_sent = impl->frames_sent.load(std::memory_order_relaxed);
  s.frames_received =
      impl->frames_received.load(std::memory_order_relaxed);
  s.connections_accepted =
      impl->connections_accepted.load(std::memory_order_relaxed);
  s.active_connections =
      impl->active_connections.load(std::memory_order_relaxed);
  s.write_queue_shed =
      impl->write_queue_shed.load(std::memory_order_relaxed);
  s.protocol_errors = impl->protocol_errors.load(std::memory_order_relaxed);
  return s;
}

void NetServer::FillSnapshot(ServerStatsSnapshot* snap) const {
  snap->net_enabled = true;
  snap->net = Stats();
}

}  // namespace ideval
