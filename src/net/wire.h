#ifndef IDEVAL_NET_WIRE_H_
#define IDEVAL_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ideval {

/// Binary framing for the socket front-end (`docs/net.md` is the
/// normative spec). Every message is one frame: a fixed 24-byte
/// little-endian header followed by `payload_len` bytes of opcode-specific
/// payload. Fields are packed at fixed offsets — the header is not a
/// struct cast, so the format is independent of host padding/endianness
/// (values are serialized explicitly as little-endian bytes).
///
///   offset | size | field
///   -------|------|---------------------------------------------
///        0 |    2 | magic (0xD11D)
///        2 |    1 | version (1)
///        3 |    1 | opcode
///        4 |    8 | session_id (0 when not session-scoped)
///       12 |    8 | request_id (echoed in the matching response)
///       20 |    4 | payload_len
inline constexpr uint16_t kWireMagic = 0xD11D;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 24;
/// Upper bound on a single frame's payload; a larger advertised length is
/// a protocol error, never an allocation.
inline constexpr uint32_t kMaxPayloadBytes = 8u << 20;

/// Frame opcodes. Requests are < 16, responses >= 16; every request gets
/// exactly one direct response (same `request_id`), and `kSubmitGroup`
/// additionally gets one deferred `kGroupComplete` per *admitted* group.
enum class Opcode : uint8_t {
  // Client -> server.
  kPing = 1,          ///< Liveness probe; empty payload.
  kOpenSession = 2,   ///< Open a server session bound to this connection.
  kCloseSession = 3,  ///< Close a session opened on this connection.
  kSubmitGroup = 4,   ///< One query group (payload: encoded queries).
  kDrain = 5,         ///< Flush: respond once the session has no pending
                      ///< groups (all completions delivered or shed).
  // Server -> client.
  kPong = 16,
  kSessionOpened = 17,   ///< Payload: the new session id (u64).
  kSessionClosed = 18,
  kSubmitAck = 19,       ///< Door verdict (payload: SubmitAckPayload).
  kGroupComplete = 20,   ///< Terminal state + results (CompletionPayload).
  kSessionDrained = 21,
  kError = 22,           ///< Payload: error code (u16) + message.
};

const char* OpcodeToString(Opcode op);

/// Error codes carried by `kError` frames.
enum class WireErrorCode : uint16_t {
  kNone = 0,
  kMalformedFrame = 1,   ///< Bad magic/version/length or payload decode.
  kUnknownOpcode = 2,
  kUnknownSession = 3,   ///< Session not open, or bound to another conn.
  kSubmitFailed = 4,     ///< `QueryServer::Submit` returned an error.
  kWriteQueueShed = 5,   ///< Completion dropped: write queue was full.
  kServerShutdown = 6,
};

const char* WireErrorCodeToString(WireErrorCode code);

/// Decoded view of a frame header.
struct FrameHeader {
  uint8_t version = 0;
  Opcode opcode = Opcode::kPing;
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Appends little-endian primitives and frames into a caller-owned byte
/// buffer. Connections reuse one buffer per direction, so steady-state
/// encoding never allocates (the vector keeps its high-water capacity).
class WireWriter {
 public:
  /// Appends to `out` (not cleared — callers batch multiple frames).
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// Length-prefixed (u32) bytes.
  void Str(std::string_view s);

  /// Writes a frame header with a placeholder payload length and returns
  /// the frame's start offset in the buffer (pass it to `EndFrame`).
  size_t BeginFrame(Opcode op, uint64_t session_id, uint64_t request_id);

  /// Patches the header's `payload_len` to cover everything appended
  /// since `BeginFrame`.
  void EndFrame(size_t frame_start);

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian reader over one frame's payload. Any
/// out-of-range read flips `ok()` to false and returns zero values; a
/// decoder checks `ok()` once at the end instead of after every field, and
/// a truncated or corrupted frame can never over-read.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();

  /// Sanity bound for count-prefixed repetition: true iff `count` items
  /// of at least `min_bytes_each` could still fit in the remaining
  /// payload. Guards `resize(count)` against hostile length prefixes.
  bool CanContain(uint64_t count, size_t min_bytes_each);

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  /// True iff decoding consumed the payload exactly and never over-read.
  bool Done() const { return ok_ && pos_ == size_; }

 private:
  const uint8_t* Take(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Parses and validates the fixed header from `buf` (which must hold at
/// least `kWireHeaderBytes`). Returns false on bad magic, unsupported
/// version, or `payload_len > kMaxPayloadBytes`.
bool DecodeFrameHeader(const uint8_t* buf, size_t size, FrameHeader* out);

}  // namespace ideval

#endif  // IDEVAL_NET_WIRE_H_
