#include "net/wire.h"

#include <cstring>

namespace ideval {

const char* OpcodeToString(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kOpenSession:
      return "open_session";
    case Opcode::kCloseSession:
      return "close_session";
    case Opcode::kSubmitGroup:
      return "submit_group";
    case Opcode::kDrain:
      return "drain";
    case Opcode::kPong:
      return "pong";
    case Opcode::kSessionOpened:
      return "session_opened";
    case Opcode::kSessionClosed:
      return "session_closed";
    case Opcode::kSubmitAck:
      return "submit_ack";
    case Opcode::kGroupComplete:
      return "group_complete";
    case Opcode::kSessionDrained:
      return "session_drained";
    case Opcode::kError:
      return "error";
  }
  return "unknown";
}

const char* WireErrorCodeToString(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kNone:
      return "none";
    case WireErrorCode::kMalformedFrame:
      return "malformed_frame";
    case WireErrorCode::kUnknownOpcode:
      return "unknown_opcode";
    case WireErrorCode::kUnknownSession:
      return "unknown_session";
    case WireErrorCode::kSubmitFailed:
      return "submit_failed";
    case WireErrorCode::kWriteQueueShed:
      return "write_queue_shed";
    case WireErrorCode::kServerShutdown:
      return "server_shutdown";
  }
  return "unknown";
}

void WireWriter::U16(uint16_t v) {
  out_->push_back(static_cast<uint8_t>(v));
  out_->push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  out_->push_back(static_cast<uint8_t>(v));
  out_->push_back(static_cast<uint8_t>(v >> 8));
  out_->push_back(static_cast<uint8_t>(v >> 16));
  out_->push_back(static_cast<uint8_t>(v >> 24));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

size_t WireWriter::BeginFrame(Opcode op, uint64_t session_id,
                              uint64_t request_id) {
  const size_t start = out_->size();
  U16(kWireMagic);
  U8(kWireVersion);
  U8(static_cast<uint8_t>(op));
  U64(session_id);
  U64(request_id);
  U32(0);  // payload_len, patched by EndFrame.
  return start;
}

void WireWriter::EndFrame(size_t frame_start) {
  const uint32_t payload_len =
      static_cast<uint32_t>(out_->size() - frame_start - kWireHeaderBytes);
  uint8_t* p = out_->data() + frame_start + 20;
  p[0] = static_cast<uint8_t>(payload_len);
  p[1] = static_cast<uint8_t>(payload_len >> 8);
  p[2] = static_cast<uint8_t>(payload_len >> 16);
  p[3] = static_cast<uint8_t>(payload_len >> 24);
}

const uint8_t* WireReader::Take(size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return nullptr;
  }
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

uint8_t WireReader::U8() {
  const uint8_t* p = Take(1);
  return p != nullptr ? p[0] : 0;
}

uint16_t WireReader::U16() {
  const uint8_t* p = Take(2);
  if (p == nullptr) return 0;
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t WireReader::U32() {
  const uint8_t* p = Take(4);
  if (p == nullptr) return 0;
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t WireReader::U64() {
  const uint8_t* p = Take(8);
  if (p == nullptr) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const uint32_t len = U32();
  const uint8_t* p = Take(len);
  if (p == nullptr) return std::string();
  return std::string(reinterpret_cast<const char*>(p), len);
}

bool WireReader::CanContain(uint64_t count, size_t min_bytes_each) {
  if (!ok_) return false;
  const size_t rem = size_ - pos_;
  if (min_bytes_each == 0) min_bytes_each = 1;
  if (count > rem / min_bytes_each) {
    ok_ = false;
    return false;
  }
  return true;
}

bool DecodeFrameHeader(const uint8_t* buf, size_t size, FrameHeader* out) {
  if (size < kWireHeaderBytes) return false;
  WireReader r(buf, kWireHeaderBytes);
  const uint16_t magic = r.U16();
  out->version = r.U8();
  out->opcode = static_cast<Opcode>(r.U8());
  out->session_id = r.U64();
  out->request_id = r.U64();
  out->payload_len = r.U32();
  if (magic != kWireMagic) return false;
  if (out->version != kWireVersion) return false;
  if (out->payload_len > kMaxPayloadBytes) return false;
  return true;
}

}  // namespace ideval
