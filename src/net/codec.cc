#include "net/codec.h"

#include <optional>
#include <utility>
#include <variant>

namespace ideval {

namespace {

constexpr uint8_t kTagSelect = 1;
constexpr uint8_t kTagHistogram = 2;
constexpr uint8_t kTagJoinPage = 3;

constexpr uint8_t kTagRange = 1;
constexpr uint8_t kTagStringEq = 2;
constexpr uint8_t kTagStringIn = 3;

constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

constexpr uint8_t kTagRowSet = 1;
constexpr uint8_t kTagHistogramResult = 2;

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

void EncodePredicate(WireWriter* w, const Predicate& pred) {
  if (const auto* r = std::get_if<RangePredicate>(&pred)) {
    w->U8(kTagRange);
    w->Str(r->column);
    w->F64(r->lo);
    w->F64(r->hi);
  } else if (const auto* eq = std::get_if<StringEqPredicate>(&pred)) {
    w->U8(kTagStringEq);
    w->Str(eq->column);
    w->Str(eq->value);
  } else {
    const auto& in = std::get<StringInPredicate>(pred);
    w->U8(kTagStringIn);
    w->Str(in.column);
    w->U32(static_cast<uint32_t>(in.values.size()));
    for (const auto& v : in.values) w->Str(v);
  }
}

Result<Predicate> DecodePredicate(WireReader* r) {
  switch (r->U8()) {
    case kTagRange: {
      RangePredicate p;
      p.column = r->Str();
      p.lo = r->F64();
      p.hi = r->F64();
      if (!r->ok()) return Malformed("range predicate");
      return Predicate(std::move(p));
    }
    case kTagStringEq: {
      StringEqPredicate p;
      p.column = r->Str();
      p.value = r->Str();
      if (!r->ok()) return Malformed("string-eq predicate");
      return Predicate(std::move(p));
    }
    case kTagStringIn: {
      StringInPredicate p;
      p.column = r->Str();
      const uint32_t n = r->U32();
      // Each value is at least its u32 length prefix.
      if (!r->CanContain(n, 4)) return Malformed("string-in count");
      p.values.reserve(n);
      for (uint32_t i = 0; i < n; ++i) p.values.push_back(r->Str());
      if (!r->ok()) return Malformed("string-in predicate");
      return Predicate(std::move(p));
    }
    default:
      return Malformed("predicate tag");
  }
}

void EncodePredicates(WireWriter* w, const std::vector<Predicate>& preds) {
  w->U32(static_cast<uint32_t>(preds.size()));
  for (const auto& p : preds) EncodePredicate(w, p);
}

Result<std::vector<Predicate>> DecodePredicates(WireReader* r) {
  const uint32_t n = r->U32();
  // A predicate is at least tag + column length prefix.
  if (!r->CanContain(n, 5)) return Malformed("predicate count");
  std::vector<Predicate> preds;
  preds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    IDEVAL_ASSIGN_OR_RETURN(Predicate p, DecodePredicate(r));
    preds.push_back(std::move(p));
  }
  return preds;
}

void EncodeQuery(WireWriter* w, const Query& query) {
  if (const auto* sel = std::get_if<SelectQuery>(&query)) {
    w->U8(kTagSelect);
    w->Str(sel->table);
    w->U32(static_cast<uint32_t>(sel->columns.size()));
    for (const auto& c : sel->columns) w->Str(c);
    EncodePredicates(w, sel->predicates);
    w->I64(sel->limit);
    w->I64(sel->offset);
  } else if (const auto* hist = std::get_if<HistogramQuery>(&query)) {
    w->U8(kTagHistogram);
    w->Str(hist->table);
    w->Str(hist->bin_column);
    w->F64(hist->bin_lo);
    w->F64(hist->bin_hi);
    w->I64(hist->bins);
    EncodePredicates(w, hist->predicates);
  } else {
    const auto& join = std::get<JoinPageQuery>(query);
    w->U8(kTagJoinPage);
    w->Str(join.left_table);
    w->Str(join.right_table);
    w->Str(join.join_column);
    w->I64(join.limit);
    w->I64(join.offset);
  }
}

Result<Query> DecodeQuery(WireReader* r) {
  switch (r->U8()) {
    case kTagSelect: {
      SelectQuery q;
      q.table = r->Str();
      const uint32_t ncols = r->U32();
      if (!r->CanContain(ncols, 4)) return Malformed("select column count");
      q.columns.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) q.columns.push_back(r->Str());
      IDEVAL_ASSIGN_OR_RETURN(q.predicates, DecodePredicates(r));
      q.limit = r->I64();
      q.offset = r->I64();
      if (!r->ok()) return Malformed("select query");
      return Query(std::move(q));
    }
    case kTagHistogram: {
      HistogramQuery q;
      q.table = r->Str();
      q.bin_column = r->Str();
      q.bin_lo = r->F64();
      q.bin_hi = r->F64();
      q.bins = r->I64();
      IDEVAL_ASSIGN_OR_RETURN(q.predicates, DecodePredicates(r));
      if (!r->ok()) return Malformed("histogram query");
      return Query(std::move(q));
    }
    case kTagJoinPage: {
      JoinPageQuery q;
      q.left_table = r->Str();
      q.right_table = r->Str();
      q.join_column = r->Str();
      q.limit = r->I64();
      q.offset = r->I64();
      if (!r->ok()) return Malformed("join-page query");
      return Query(std::move(q));
    }
    default:
      return Malformed("query tag");
  }
}

void EncodeValue(WireWriter* w, const Value& v) {
  if (v.is_int64()) {
    w->U8(kTagInt64);
    w->I64(v.int64());
  } else if (v.is_double()) {
    w->U8(kTagDouble);
    w->F64(v.dbl());
  } else {
    w->U8(kTagString);
    w->Str(v.str());
  }
}

Result<Value> DecodeValue(WireReader* r) {
  switch (r->U8()) {
    case kTagInt64:
      return Value(r->I64());
    case kTagDouble:
      return Value(r->F64());
    case kTagString:
      return Value(r->Str());
    default:
      return Malformed("value tag");
  }
}

void EncodeResultData(WireWriter* w, const QueryResultData& data) {
  if (const auto* rows = std::get_if<RowSet>(&data)) {
    w->U8(kTagRowSet);
    w->U32(static_cast<uint32_t>(rows->column_names.size()));
    for (const auto& c : rows->column_names) w->Str(c);
    w->U32(static_cast<uint32_t>(rows->rows.size()));
    for (const auto& row : rows->rows) {
      w->U32(static_cast<uint32_t>(row.size()));
      for (const auto& v : row) EncodeValue(w, v);
    }
  } else {
    const auto& hist = std::get<FixedHistogram>(data);
    w->U8(kTagHistogramResult);
    w->F64(hist.lo());
    w->F64(hist.hi());
    w->U32(static_cast<uint32_t>(hist.num_bins()));
    for (double c : hist.counts()) w->F64(c);
  }
}

Result<QueryResultData> DecodeResultData(WireReader* r) {
  switch (r->U8()) {
    case kTagRowSet: {
      RowSet rows;
      const uint32_t ncols = r->U32();
      if (!r->CanContain(ncols, 4)) return Malformed("row-set column count");
      rows.column_names.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        rows.column_names.push_back(r->Str());
      }
      const uint32_t nrows = r->U32();
      if (!r->CanContain(nrows, 4)) return Malformed("row-set row count");
      rows.rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        const uint32_t ncells = r->U32();
        // A value is at least tag + one byte of payload... actually an
        // int64 is 9 bytes, but the smallest (empty string) is 5.
        if (!r->CanContain(ncells, 5)) return Malformed("row cell count");
        std::vector<Value> row;
        row.reserve(ncells);
        for (uint32_t j = 0; j < ncells; ++j) {
          IDEVAL_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
          row.push_back(std::move(v));
        }
        rows.rows.push_back(std::move(row));
      }
      if (!r->ok()) return Malformed("row set");
      return QueryResultData(std::move(rows));
    }
    case kTagHistogramResult: {
      const double lo = r->F64();
      const double hi = r->F64();
      const uint32_t bins = r->U32();
      if (!r->CanContain(bins, 8)) return Malformed("histogram bin count");
      std::vector<double> counts;
      counts.reserve(bins);
      for (uint32_t i = 0; i < bins; ++i) counts.push_back(r->F64());
      if (!r->ok()) return Malformed("histogram result");
      IDEVAL_ASSIGN_OR_RETURN(FixedHistogram hist,
                              FixedHistogram::FromCounts(lo, hi,
                                                         std::move(counts)));
      return QueryResultData(std::move(hist));
    }
    default:
      return Malformed("result tag");
  }
}

}  // namespace

void EncodeQueryGroup(WireWriter* w, const std::vector<Query>& queries) {
  w->U32(static_cast<uint32_t>(queries.size()));
  for (const auto& q : queries) EncodeQuery(w, q);
}

Result<std::vector<Query>> DecodeQueryGroup(WireReader* r) {
  const uint32_t n = r->U32();
  // A query is at least tag + table-name length prefix.
  if (!r->CanContain(n, 5)) return Malformed("query count");
  std::vector<Query> queries;
  queries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    IDEVAL_ASSIGN_OR_RETURN(Query q, DecodeQuery(r));
    queries.push_back(std::move(q));
  }
  return queries;
}

void EncodeSubmitAck(WireWriter* w, const SubmitAckPayload& ack) {
  w->U64(ack.seq);
  w->U8(static_cast<uint8_t>(ack.disposition));
  w->U8(static_cast<uint8_t>(ack.load_state));
  w->F64(ack.load_factor);
}

Result<SubmitAckPayload> DecodeSubmitAck(WireReader* r) {
  SubmitAckPayload ack;
  ack.seq = r->U64();
  const uint8_t disposition = r->U8();
  const uint8_t load_state = r->U8();
  ack.load_factor = r->F64();
  if (!r->ok()) return Malformed("submit ack");
  if (disposition > static_cast<uint8_t>(SubmitDisposition::kRejected)) {
    return Malformed("submit-ack disposition");
  }
  if (load_state > static_cast<uint8_t>(LoadState::kOverloaded)) {
    return Malformed("submit-ack load state");
  }
  ack.disposition = static_cast<SubmitDisposition>(disposition);
  ack.load_state = static_cast<LoadState>(load_state);
  return ack;
}

void EncodeCompletion(WireWriter* w, const CompletionPayload& done) {
  w->U64(done.seq);
  w->U8(static_cast<uint8_t>(done.terminal));
  w->U8(done.lcv ? 1 : 0);
  w->I64(done.queries_executed);
  w->I64(done.queries_failed);
  w->I64(done.cache_hits);
  w->I64(done.queue_wait_us);
  w->I64(done.service_us);
  w->I64(done.latency_us);
  w->U32(static_cast<uint32_t>(done.results.size()));
  for (const auto& slot : done.results) {
    w->U8(slot.has_value() ? 1 : 0);
    if (slot.has_value()) EncodeResultData(w, *slot);
  }
}

Result<CompletionPayload> DecodeCompletion(WireReader* r) {
  CompletionPayload done;
  done.seq = r->U64();
  const uint8_t terminal = r->U8();
  done.lcv = r->U8() != 0;
  done.queries_executed = r->I64();
  done.queries_failed = r->I64();
  done.cache_hits = r->I64();
  done.queue_wait_us = r->I64();
  done.service_us = r->I64();
  done.latency_us = r->I64();
  if (!r->ok()) return Malformed("completion");
  if (terminal > static_cast<uint8_t>(GroupTerminal::kShedStale)) {
    return Malformed("completion terminal");
  }
  done.terminal = static_cast<GroupTerminal>(terminal);
  const uint32_t n = r->U32();
  if (!r->CanContain(n, 1)) return Malformed("completion result count");
  done.results.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (r->U8() == 0) {
      done.results.emplace_back(std::nullopt);
      continue;
    }
    IDEVAL_ASSIGN_OR_RETURN(QueryResultData data, DecodeResultData(r));
    done.results.emplace_back(std::move(data));
  }
  if (!r->ok()) return Malformed("completion results");
  return done;
}

void EncodeError(WireWriter* w, WireErrorCode code,
                 std::string_view message) {
  w->U16(static_cast<uint16_t>(code));
  w->Str(message);
}

Result<ErrorPayload> DecodeError(WireReader* r) {
  ErrorPayload err;
  err.code = static_cast<WireErrorCode>(r->U16());
  err.message = r->Str();
  if (!r->ok()) return Malformed("error payload");
  return err;
}

}  // namespace ideval
