#ifndef IDEVAL_NET_NET_SERVER_H_
#define IDEVAL_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "net/wire.h"
#include "serve/server.h"

namespace ideval {

struct NetServerOptions {
  /// Address to bind; the front-end is meant for loopback benching, so
  /// the default stays on 127.0.0.1.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Per-connection bound on buffered-but-unsent response bytes. When a
  /// `kGroupComplete` frame would push a connection past this, the bulky
  /// completion is shed and replaced with a small
  /// `kError(kWriteQueueShed)` frame — a slow reader loses result
  /// payloads, never admission-control feedback (control frames are
  /// always enqueued).
  int64_t max_write_queue_bytes = 4 << 20;
};

/// Socket front-end over a running `QueryServer`: a single poll()-based
/// event-loop thread accepts persistent loopback connections, decodes
/// `net/wire.h` frames, submits query groups into the server (admission,
/// caching, shards, and tracing all unchanged), and streams door acks and
/// deferred group completions back asynchronously. One connection may
/// multiplex any number of sessions; each session is bound to the
/// connection that opened it.
///
/// Completion flow: `QueryServer::Submit` gets a completion callback that
/// enqueues the terminal report onto an internal queue and tickles the
/// loop's self-pipe; the loop thread drains the queue and writes
/// `kGroupComplete` frames. The callback itself never touches a socket,
/// so worker threads are insulated from slow clients — backpressure is
/// absorbed by the bounded per-connection write queue instead.
///
/// Lifecycle: `Start` spawns the loop; `Stop` (idempotent, also run by
/// the destructor) joins it and closes every socket. The `QueryServer`
/// must outlive the `NetServer`. In-flight completion callbacks may
/// outlive `Stop` — they land on a shared queue that outlives this
/// object and are discarded.
class NetServer {
 public:
  static Result<std::unique_ptr<NetServer>> Start(QueryServer* server,
                                                  NetServerOptions options);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (the actual one when `options.port` was 0).
  int port() const { return port_; }

  /// Point-in-time wire counters; also folded into the owning server's
  /// `ServerStatsSnapshot` by `FillSnapshot`.
  NetStatsSnapshot Stats() const;

  /// Copies the wire counters into `snap` and flips `net_enabled`.
  void FillSnapshot(ServerStatsSnapshot* snap) const;

  /// Stops accepting, joins the event loop, closes every connection.
  void Stop();

 private:
  struct Impl;

  NetServer();

  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace ideval

#endif  // IDEVAL_NET_NET_SERVER_H_
