#ifndef IDEVAL_HARNESS_BENCHMARK_RUNNER_H_
#define IDEVAL_HARNESS_BENCHMARK_RUNNER_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "device/device_model.h"
#include "engine/engine.h"
#include "metrics/frontend_metrics.h"
#include "prefetch/scroll_loader.h"
#include "serve/admission.h"
#include "sim/query_scheduler.h"

namespace ideval {

/// Which query interface the benchmark drives (§2.1: each device-interface
/// combination generates a unique workload, so it is a first-class axis).
enum class InterfaceKind {
  kInertialScroll,
  kCrossfilter,
  kCompositeExplore,
};

const char* InterfaceKindToString(InterfaceKind kind);

/// A declarative benchmark specification, in the spirit of the IDEBench
/// effort the paper discusses (§4.1.3, §9): a complete interactive
/// workload — dataset, interface, device, users, backend, optimizations —
/// described as data, so that runs are comparable and shareable.
///
/// Specs serialize to/from a `key = value` text format (see
/// `ParseWorkloadSpec` / `WorkloadSpecToText`) so they can live in files
/// next to results.
struct WorkloadSpec {
  std::string name = "workload";
  InterfaceKind interface_kind = InterfaceKind::kCrossfilter;
  DeviceType device = DeviceType::kMouse;
  EngineProfile engine = EngineProfile::kInMemoryColumnStore;
  int num_users = 3;
  uint64_t seed = 1;
  /// Dataset rows; 0 = the case study's published size.
  int64_t rows = 0;

  // --- Optimization knobs (all off by default). ---
  /// KL suppression threshold; negative = disabled (§7.1, Algorithm 2).
  double kl_threshold = -1.0;
  /// Minimum issue interval; zero = no throttling (§3.1.2).
  Duration throttle_interval;
  /// Backend queue policy (§7.1, Algorithm 1).
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  int num_connections = 2;

  // --- Interface-specific knobs. ---
  /// Crossfilter: slider adjustments per user.
  int crossfilter_moves = 15;
  /// Scroll: loading strategy and fetch size (§6.2).
  ScrollLoadStrategy scroll_strategy = ScrollLoadStrategy::kTimerFetch;
  int64_t scroll_tuples_per_fetch = 58;
  /// Composite: session length in minutes (§8's study required >= 20).
  double explore_session_minutes = 20.0;

  // --- Live-server knobs (src/serve/). ---
  /// Worker threads for the live `QueryServer`; 0 = replay on the
  /// simulated scheduler instead (the default, fully deterministic mode).
  int serve_threads = 0;
  /// Concurrent client threads in live mode; 0 = one per user.
  int serve_clients = 0;
  /// Bounded per-session queue depth in live mode.
  int serve_queue_cap = 8;
  /// Live admission policy (§7.1 drain policies + §3.1.2 shapers).
  AdmissionPolicy admission = AdmissionPolicy::kFifo;
  /// Let the admission controller switch to shedding under overload.
  bool adaptive_admission = false;
  /// Per-session exact-match result cache in live mode.
  bool serve_cache = false;
  /// Shared cross-session result cache in live mode
  /// (`ServerOptions::enable_shared_cache`): one invalidation-aware LRU
  /// above the backend with single-flight coalescing. Works with any
  /// `serve_shards`; mutually exclusive with `serve_cache`.
  bool serve_shared_cache = false;
  /// Engine shards behind the live server; > 1 range-partitions the
  /// workload table across that many `Engine` instances and every group
  /// goes through the scatter/execute/merge pipeline. Incompatible with
  /// `serve_cache` (use `serve_shared_cache` instead).
  int serve_shards = 1;
  /// Trace replay speed-up for the live load driver (>= 1 recommended).
  double time_compression = 50.0;
  /// Per-query tracing in live mode (`ServerOptions::enable_tracing`):
  /// every group records admission/queue/cache/shard/merge spans into the
  /// server's ring buffer. Off by default — the hot path stays span-free.
  bool serve_trace = false;
  /// Ring-buffer capacity (spans) when `serve_trace` is on.
  int64_t serve_trace_buffer_spans = 1 << 16;
  /// Slow-query log threshold in milliseconds; negative = log disabled.
  /// LCV-violating groups are logged regardless of latency.
  double serve_slow_query_ms = -1.0;
  /// Registry-backed serve metrics (`ServerOptions::enable_metrics`):
  /// terminal counters and latency histograms scrapeable as Prometheus
  /// text / JSON. Off by default.
  bool serve_metrics = false;
  /// Stats-poller period in milliseconds (`ServerOptions::
  /// stats_poll_ms`); <= 0 disables the background time-series sampler.
  double serve_stats_poll_ms = 0.0;
  /// Drive live mode over loopback TCP through the `src/net/` socket
  /// front-end instead of in-process submission: clients become real
  /// `NetClient` connections and every group crosses the wire.
  bool serve_net = false;
  /// Port for `serve_net` (1..65535); 0 picks an ephemeral port.
  int serve_net_port = 0;

  // --- Engine knobs (simulated and live modes). ---
  /// Build zone maps at registration and prune scan blocks whose min/max
  /// range cannot match (`EngineOptions::enable_zone_maps`). Results are
  /// bitwise identical; only the work (and modelled time) shrinks.
  bool engine_zone_maps = false;
};

/// Parses the `key = value` format (one pair per line; '#' comments and
/// blank lines ignored). Unknown keys and malformed values are errors —
/// a benchmark spec that silently ignores options is not a benchmark.
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text);

/// Serializes a spec to the same format (round-trips through the parser).
std::string WorkloadSpecToText(const WorkloadSpec& spec);

/// Aggregate results of one benchmark run: the paper's system-factor
/// battery plus interface-specific extras.
struct WorkloadReport {
  WorkloadSpec spec;

  // Workload shape.
  int64_t interaction_events = 0;  ///< Device/widget events generated.
  int64_t queries_generated = 0;   ///< Queries the interface produced.
  int64_t queries_executed = 0;    ///< After suppression/skip.
  int64_t queries_suppressed = 0;  ///< Dropped client-side (KL/throttle).
  int64_t groups_skipped = 0;      ///< Shed by the backend (skip policy).
  int64_t groups_rejected = 0;     ///< Pushed back (live-server mode).

  // System factors.
  double qif = 0.0;                 ///< Queries/second issued.
  double lcv_fraction = 0.0;        ///< §7.2 definition (crossfilter) or
                                    ///< stall-episode fraction (scroll).
  double median_latency_ms = 0.0;   ///< Perceived, executed queries.
  double p90_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double throughput_qps = 0.0;

  /// Scroll-only extras.
  std::optional<double> mean_stall_ms;
  std::optional<int64_t> stalls;

  /// Human factors (aggregated over users).
  double mean_session_s = 0.0;
  double mean_interactions_per_user = 0.0;

  /// Renders the report as an aligned text block.
  std::string ToText() const;
};

/// Materializes the spec — builds the dataset, simulates the users on the
/// device/interface, applies the client-side optimizations, replays the
/// workload against the backend — and measures the full metric battery.
/// Deterministic for a given spec when `serve_threads == 0` (simulated
/// scheduler). With `serve_threads > 0` the same trace-derived workload is
/// instead driven through the live multi-threaded `QueryServer` by
/// concurrent clients (crossfilter/explore interfaces only); timings are
/// then wall-clock and machine-dependent, trace generation stays seeded.
Result<WorkloadReport> RunWorkload(const WorkloadSpec& spec);

}  // namespace ideval

#endif  // IDEVAL_HARNESS_BENCHMARK_RUNNER_H_
