#include "harness/benchmark_runner.h"

#include <cmath>
#include <set>

#include "common/text_table.h"
#include "data/datasets.h"
#include "engine/sharded_engine.h"
#include "metrics/human_factors.h"
#include "net/net_load_driver.h"
#include "net/net_server.h"
#include "opt/kl_filter.h"
#include "opt/throttle.h"
#include "serve/load_driver.h"
#include "serve/server.h"
#include "widget/crossfilter.h"
#include "workload/crossfilter_task.h"
#include "workload/explore_task.h"
#include "workload/scroll_task.h"

namespace ideval {

const char* InterfaceKindToString(InterfaceKind kind) {
  switch (kind) {
    case InterfaceKind::kInertialScroll:
      return "scroll";
    case InterfaceKind::kCrossfilter:
      return "crossfilter";
    case InterfaceKind::kCompositeExplore:
      return "explore";
  }
  return "unknown";
}

namespace {

Result<InterfaceKind> ParseInterface(const std::string& v) {
  if (v == "scroll") return InterfaceKind::kInertialScroll;
  if (v == "crossfilter") return InterfaceKind::kCrossfilter;
  if (v == "explore") return InterfaceKind::kCompositeExplore;
  return Status::InvalidArgument("unknown interface '" + v + "'");
}

Result<DeviceType> ParseDevice(const std::string& v) {
  if (v == "mouse") return DeviceType::kMouse;
  if (v == "trackpad") return DeviceType::kTouchTrackpad;
  if (v == "touch") return DeviceType::kTouchTablet;
  if (v == "leap") return DeviceType::kLeapMotion;
  return Status::InvalidArgument("unknown device '" + v + "'");
}

Result<EngineProfile> ParseEngine(const std::string& v) {
  if (v == "disk") return EngineProfile::kDiskRowStore;
  if (v == "memory") return EngineProfile::kInMemoryColumnStore;
  return Status::InvalidArgument("unknown engine '" + v + "'");
}

Result<ScrollLoadStrategy> ParseScrollStrategy(const std::string& v) {
  if (v == "lazy") return ScrollLoadStrategy::kLazyLoad;
  if (v == "event") return ScrollLoadStrategy::kEventFetch;
  if (v == "timer") return ScrollLoadStrategy::kTimerFetch;
  return Status::InvalidArgument("unknown scroll_strategy '" + v + "'");
}

Result<AdmissionPolicy> ParseAdmission(const std::string& v) {
  if (v == "fifo") return AdmissionPolicy::kFifo;
  if (v == "skip") return AdmissionPolicy::kSkipStale;
  if (v == "debounce") return AdmissionPolicy::kDebounce;
  if (v == "throttle") return AdmissionPolicy::kThrottle;
  return Status::InvalidArgument("unknown admission policy '" + v + "'");
}

Result<bool> ParseBool(const std::string& key, const std::string& v) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return Status::InvalidArgument("bad boolean value for '" + key + "': " + v);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

Result<double> ParseNumber(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric value for '" + key + "': " +
                                   v);
  }
  return d;
}

}  // namespace

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text) {
  WorkloadSpec spec;
  size_t pos = 0;
  int line_no = 0;
  std::set<std::string> seen_keys;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = Trim(text.substr(pos, nl - pos));
    pos = nl + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 'key = value'", line_no));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (!seen_keys.insert(key).second) {
      // A spec that silently lets a later line win is ambiguous about
      // what was benchmarked — duplicates are as fatal as unknown keys.
      return Status::InvalidArgument(
          StrFormat("line %d: duplicate key '%s'", line_no, key.c_str()));
    }

    if (key == "name") {
      spec.name = value;
    } else if (key == "interface") {
      IDEVAL_ASSIGN_OR_RETURN(spec.interface_kind, ParseInterface(value));
    } else if (key == "device") {
      IDEVAL_ASSIGN_OR_RETURN(spec.device, ParseDevice(value));
    } else if (key == "engine") {
      IDEVAL_ASSIGN_OR_RETURN(spec.engine, ParseEngine(value));
    } else if (key == "users") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) return Status::InvalidArgument("users must be >= 1");
      spec.num_users = static_cast<int>(n);
    } else if (key == "seed") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      spec.seed = static_cast<uint64_t>(n);
    } else if (key == "rows") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 0) return Status::InvalidArgument("rows must be >= 0");
      spec.rows = static_cast<int64_t>(n);
    } else if (key == "kl_threshold") {
      IDEVAL_ASSIGN_OR_RETURN(spec.kl_threshold, ParseNumber(key, value));
    } else if (key == "throttle_ms") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 0) return Status::InvalidArgument("throttle_ms must be >= 0");
      spec.throttle_interval = Duration::MillisF(n);
    } else if (key == "policy") {
      if (value == "fifo") {
        spec.policy = SchedulingPolicy::kFifo;
      } else if (value == "skip") {
        spec.policy = SchedulingPolicy::kSkipStale;
      } else {
        return Status::InvalidArgument("unknown policy '" + value + "'");
      }
    } else if (key == "connections") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) return Status::InvalidArgument("connections must be >= 1");
      spec.num_connections = static_cast<int>(n);
    } else if (key == "crossfilter_moves") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) {
        return Status::InvalidArgument("crossfilter_moves must be >= 1");
      }
      spec.crossfilter_moves = static_cast<int>(n);
    } else if (key == "scroll_strategy") {
      IDEVAL_ASSIGN_OR_RETURN(spec.scroll_strategy,
                              ParseScrollStrategy(value));
    } else if (key == "tuples_per_fetch") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) {
        return Status::InvalidArgument("tuples_per_fetch must be >= 1");
      }
      spec.scroll_tuples_per_fetch = static_cast<int64_t>(n);
    } else if (key == "session_minutes") {
      IDEVAL_ASSIGN_OR_RETURN(spec.explore_session_minutes,
                              ParseNumber(key, value));
      if (spec.explore_session_minutes <= 0) {
        return Status::InvalidArgument("session_minutes must be > 0");
      }
    } else if (key == "serve_threads") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 0) return Status::InvalidArgument("serve_threads must be >= 0");
      spec.serve_threads = static_cast<int>(n);
    } else if (key == "serve_clients") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 0) return Status::InvalidArgument("serve_clients must be >= 0");
      spec.serve_clients = static_cast<int>(n);
    } else if (key == "serve_queue_cap") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) {
        return Status::InvalidArgument("serve_queue_cap must be >= 1");
      }
      spec.serve_queue_cap = static_cast<int>(n);
    } else if (key == "admission") {
      IDEVAL_ASSIGN_OR_RETURN(spec.admission, ParseAdmission(value));
    } else if (key == "adaptive_admission") {
      IDEVAL_ASSIGN_OR_RETURN(spec.adaptive_admission,
                              ParseBool(key, value));
    } else if (key == "serve_cache") {
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_cache, ParseBool(key, value));
    } else if (key == "serve_shared_cache") {
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_shared_cache,
                              ParseBool(key, value));
    } else if (key == "engine_zone_maps") {
      IDEVAL_ASSIGN_OR_RETURN(spec.engine_zone_maps, ParseBool(key, value));
    } else if (key == "serve_shards") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) return Status::InvalidArgument("serve_shards must be >= 1");
      spec.serve_shards = static_cast<int>(n);
    } else if (key == "time_compression") {
      IDEVAL_ASSIGN_OR_RETURN(spec.time_compression,
                              ParseNumber(key, value));
      if (spec.time_compression <= 0) {
        return Status::InvalidArgument("time_compression must be > 0");
      }
    } else if (key == "serve_trace") {
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_trace, ParseBool(key, value));
    } else if (key == "serve_trace_buffer_spans") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1) {
        return Status::InvalidArgument(
            "serve_trace_buffer_spans must be >= 1");
      }
      spec.serve_trace_buffer_spans = static_cast<int64_t>(n);
    } else if (key == "serve_slow_query_ms") {
      // Negative disables the log, so any number parses.
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_slow_query_ms,
                              ParseNumber(key, value));
    } else if (key == "serve_metrics") {
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_metrics, ParseBool(key, value));
    } else if (key == "serve_stats_poll_ms") {
      // <= 0 disables the poller, so any number parses.
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_stats_poll_ms,
                              ParseNumber(key, value));
    } else if (key == "serve_net") {
      IDEVAL_ASSIGN_OR_RETURN(spec.serve_net, ParseBool(key, value));
    } else if (key == "serve_net_port") {
      IDEVAL_ASSIGN_OR_RETURN(double n, ParseNumber(key, value));
      if (n < 1 || n > 65535) {
        return Status::InvalidArgument(
            "serve_net_port must be in 1..65535");
      }
      spec.serve_net_port = static_cast<int>(n);
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown key '%s'", line_no, key.c_str()));
    }
  }
  return spec;
}

std::string WorkloadSpecToText(const WorkloadSpec& spec) {
  std::string device;
  switch (spec.device) {
    case DeviceType::kMouse:
      device = "mouse";
      break;
    case DeviceType::kTouchTrackpad:
      device = "trackpad";
      break;
    case DeviceType::kTouchTablet:
      device = "touch";
      break;
    case DeviceType::kLeapMotion:
      device = "leap";
      break;
  }
  std::string out;
  out += "name = " + spec.name + "\n";
  out += StrFormat("interface = %s\n",
                   InterfaceKindToString(spec.interface_kind));
  out += "device = " + device + "\n";
  out += StrFormat("engine = %s\n",
                   spec.engine == EngineProfile::kDiskRowStore ? "disk"
                                                               : "memory");
  out += StrFormat("users = %d\n", spec.num_users);
  out += StrFormat("seed = %llu\n",
                   static_cast<unsigned long long>(spec.seed));
  out += StrFormat("rows = %lld\n", static_cast<long long>(spec.rows));
  out += StrFormat("kl_threshold = %g\n", spec.kl_threshold);
  out += StrFormat("throttle_ms = %g\n", spec.throttle_interval.millis());
  out += StrFormat("policy = %s\n",
                   spec.policy == SchedulingPolicy::kFifo ? "fifo" : "skip");
  out += StrFormat("connections = %d\n", spec.num_connections);
  out += StrFormat("crossfilter_moves = %d\n", spec.crossfilter_moves);
  out += StrFormat("scroll_strategy = %s\n",
                   ScrollLoadStrategyToString(spec.scroll_strategy));
  out += StrFormat("tuples_per_fetch = %lld\n",
                   static_cast<long long>(spec.scroll_tuples_per_fetch));
  out += StrFormat("session_minutes = %g\n", spec.explore_session_minutes);
  out += StrFormat("serve_threads = %d\n", spec.serve_threads);
  out += StrFormat("serve_clients = %d\n", spec.serve_clients);
  out += StrFormat("serve_queue_cap = %d\n", spec.serve_queue_cap);
  out += StrFormat("admission = %s\n",
                   AdmissionPolicyToString(spec.admission));
  out += StrFormat("adaptive_admission = %s\n",
                   spec.adaptive_admission ? "true" : "false");
  out += StrFormat("serve_cache = %s\n", spec.serve_cache ? "true" : "false");
  out += StrFormat("serve_shared_cache = %s\n",
                   spec.serve_shared_cache ? "true" : "false");
  out += StrFormat("serve_shards = %d\n", spec.serve_shards);
  out += StrFormat("time_compression = %g\n", spec.time_compression);
  out += StrFormat("serve_trace = %s\n", spec.serve_trace ? "true" : "false");
  out += StrFormat("serve_trace_buffer_spans = %lld\n",
                   static_cast<long long>(spec.serve_trace_buffer_spans));
  out += StrFormat("serve_slow_query_ms = %g\n", spec.serve_slow_query_ms);
  out += StrFormat("serve_metrics = %s\n",
                   spec.serve_metrics ? "true" : "false");
  out += StrFormat("serve_stats_poll_ms = %g\n", spec.serve_stats_poll_ms);
  out += StrFormat("serve_net = %s\n", spec.serve_net ? "true" : "false");
  if (spec.serve_net_port != 0) {
    out += StrFormat("serve_net_port = %d\n", spec.serve_net_port);
  }
  out += StrFormat("engine_zone_maps = %s\n",
                   spec.engine_zone_maps ? "true" : "false");
  return out;
}

namespace {

Result<WorkloadReport> RunCrossfilterWorkload(const WorkloadSpec& spec,
                                              WorkloadReport report) {
  RoadNetworkOptions dopts;
  if (spec.rows > 0) dopts.num_rows = spec.rows;
  IDEVAL_ASSIGN_OR_RETURN(TablePtr road, MakeRoadNetworkTable(dopts));

  EngineOptions eopts;
  eopts.profile = spec.engine;
  eopts.enable_zone_maps = spec.engine_zone_maps;
  Engine engine(eopts);
  IDEVAL_RETURN_NOT_OK(engine.RegisterTable(road));

  Rng rng(spec.seed);
  std::vector<QueryTimeline> all_timelines;
  double session_s = 0.0;
  double interactions = 0.0;
  std::vector<SimTime> issue_times;
  for (int user = 0; user < spec.num_users; ++user) {
    IDEVAL_ASSIGN_OR_RETURN(
        CrossfilterView view,
        CrossfilterView::Make(road, {"x", "y", "z"}));
    CrossfilterUserParams params;
    params.user_id = user;
    params.device = spec.device;
    params.num_moves = spec.crossfilter_moves;
    params.seed = rng.Next();
    IDEVAL_ASSIGN_OR_RETURN(CrossfilterTrace trace,
                            GenerateCrossfilterTrace(params, &view));
    IDEVAL_ASSIGN_OR_RETURN(
        CrossfilterView replay,
        CrossfilterView::Make(road, {"x", "y", "z"}));
    IDEVAL_ASSIGN_OR_RETURN(std::vector<QueryGroup> groups,
                            BuildQueryGroups(&replay, trace.events));

    report.interaction_events += static_cast<int64_t>(trace.events.size());
    for (const auto& g : groups) {
      report.queries_generated += static_cast<int64_t>(g.queries.size());
      issue_times.push_back(g.issue_time);
    }
    session_s += trace.session_duration.seconds();
    interactions += static_cast<double>(trace.events.size());

    // Client-side optimizations.
    if (spec.throttle_interval > Duration::Zero()) {
      QifThrottler throttler(spec.throttle_interval);
      groups = ThrottleQueryGroups(&throttler, groups);
    }
    if (spec.kl_threshold >= 0.0) {
      IDEVAL_ASSIGN_OR_RETURN(KlQueryFilter filter,
                              KlQueryFilter::Make(road, spec.kl_threshold));
      IDEVAL_ASSIGN_OR_RETURN(groups, FilterQueryGroups(&filter, groups));
    }

    SchedulerOptions sopts;
    sopts.policy = spec.policy;
    sopts.num_connections = spec.num_connections;
    QueryScheduler scheduler(&engine, sopts);
    IDEVAL_ASSIGN_OR_RETURN(SessionExecution run, scheduler.Run(groups));
    report.groups_skipped += run.groups_skipped;
    for (auto& t : run.timelines) all_timelines.push_back(std::move(t));
  }

  std::sort(issue_times.begin(), issue_times.end());
  IDEVAL_ASSIGN_OR_RETURN(QifStats qif, ComputeQif(issue_times));
  report.qif = qif.qif / std::max(1, spec.num_users);
  for (const auto& t : all_timelines) {
    report.queries_executed += !t.skipped;
  }
  report.queries_suppressed =
      report.queries_generated - report.queries_executed;
  const LcvStats lcv = ComputeCrossfilterLcv(all_timelines);
  report.lcv_fraction = lcv.ViolationFraction();
  const Summary latency = PerceivedLatencySummary(all_timelines);
  report.median_latency_ms = latency.median();
  report.p90_latency_ms = latency.Quantile(0.9);
  report.max_latency_ms = latency.max();
  report.throughput_qps = ComputeThroughput(all_timelines);
  report.mean_session_s = session_s / spec.num_users;
  report.mean_interactions_per_user = interactions / spec.num_users;
  return report;
}

Result<WorkloadReport> RunScrollWorkload(const WorkloadSpec& spec,
                                         WorkloadReport report) {
  MoviesOptions dopts;
  if (spec.rows > 0) dopts.num_rows = spec.rows;
  IDEVAL_ASSIGN_OR_RETURN(TablePtr movies, MakeMoviesTable(dopts));
  EngineOptions eopts;
  eopts.profile = spec.engine;
  eopts.enable_zone_maps = spec.engine_zone_maps;
  Engine engine(eopts);
  IDEVAL_RETURN_NOT_OK(engine.RegisterTable(movies));

  Rng rng(spec.seed);
  auto users = SampleScrollUsers(spec.num_users, &rng);
  ScrollTaskOptions topts;
  topts.scroller.total_tuples = movies->num_rows();

  int64_t stalls = 0;
  double stall_ms_total = 0.0;
  int64_t stall_count_for_mean = 0;
  double session_s = 0.0;
  double interactions = 0.0;
  double qif_total = 0.0;
  for (const auto& user : users) {
    IDEVAL_ASSIGN_OR_RETURN(ScrollTrace trace,
                            GenerateScrollTrace(user, topts));
    report.interaction_events += static_cast<int64_t>(trace.events.size());
    session_s += trace.session_duration.seconds();
    const HumanFactors hf = ComputeScrollHumanFactors(trace);
    interactions += static_cast<double>(hf.num_interactions);
    if (trace.session_duration > Duration::Zero()) {
      qif_total += static_cast<double>(trace.events.size()) /
                   trace.session_duration.seconds();
    }

    ScrollLoadOptions lopts;
    lopts.strategy = spec.scroll_strategy;
    lopts.tuples_per_fetch = spec.scroll_tuples_per_fetch;
    lopts.table = movies->name();
    engine.ClearCaches();
    IDEVAL_ASSIGN_OR_RETURN(ScrollLoadReport load,
                            SimulateScrollLoading(trace, &engine, lopts));
    report.queries_generated += load.fetches_issued;
    report.queries_executed += load.fetches_issued;
    stalls += load.violations;
    for (Duration w : load.waits) {
      stall_ms_total += w.millis();
      ++stall_count_for_mean;
    }
  }
  report.stalls = stalls;
  report.mean_stall_ms =
      stall_count_for_mean == 0 ? 0.0
                                : stall_ms_total / stall_count_for_mean;
  report.lcv_fraction =
      report.interaction_events == 0
          ? 0.0
          : static_cast<double>(stalls) /
                static_cast<double>(report.interaction_events);
  report.qif = qif_total / spec.num_users;
  report.mean_session_s = session_s / spec.num_users;
  report.mean_interactions_per_user = interactions / spec.num_users;
  report.median_latency_ms = *report.mean_stall_ms;  // Stall = user wait.
  report.p90_latency_ms = *report.mean_stall_ms;
  report.max_latency_ms = *report.mean_stall_ms;
  return report;
}

Result<WorkloadReport> RunExploreWorkload(const WorkloadSpec& spec,
                                          WorkloadReport report) {
  ListingsOptions dopts;
  if (spec.rows > 0) dopts.num_rows = spec.rows;
  IDEVAL_ASSIGN_OR_RETURN(TablePtr listings, MakeListingsTable(dopts));
  EngineOptions eopts;
  eopts.profile = spec.engine;
  eopts.enable_zone_maps = spec.engine_zone_maps;
  Engine engine(eopts);
  IDEVAL_RETURN_NOT_OK(engine.RegisterTable(listings));

  Rng rng(spec.seed);
  auto users = SampleExploreUsers(spec.num_users, &rng);
  std::vector<QueryTimeline> all_timelines;
  double session_s = 0.0;
  double interactions = 0.0;
  std::vector<SimTime> issue_times;
  for (auto& user : users) {
    user.min_session = Duration::Seconds(spec.explore_session_minutes * 60);
    CompositeInterface::Options copts;
    copts.table = listings->name();
    copts.destinations = {{"Birmingham", 33.52, -86.80, 12},
                          {"Atlanta", 33.75, -84.39, 12},
                          {"Nashville", 36.16, -86.78, 11},
                          {"Memphis", 35.15, -90.05, 12}};
    CompositeInterface ui(MapWidget(32.0, -86.0, 11), std::move(copts));
    IDEVAL_ASSIGN_OR_RETURN(ExploreTrace trace,
                            GenerateExploreTrace(user, &ui));
    session_s += trace.session_duration.seconds();
    interactions += static_cast<double>(trace.phases.size());
    report.interaction_events += static_cast<int64_t>(trace.phases.size());

    std::vector<QueryGroup> groups;
    for (const auto& phase : trace.phases) {
      QueryGroup g;
      g.issue_time = phase.request.time;
      g.queries.push_back(phase.request.query);
      groups.push_back(std::move(g));
      issue_times.push_back(phase.request.time);
      ++report.queries_generated;
    }
    SchedulerOptions sopts;
    sopts.policy = spec.policy;
    sopts.num_connections = spec.num_connections;
    QueryScheduler scheduler(&engine, sopts);
    IDEVAL_ASSIGN_OR_RETURN(SessionExecution run, scheduler.Run(groups));
    report.groups_skipped += run.groups_skipped;
    for (auto& t : run.timelines) all_timelines.push_back(std::move(t));
  }
  std::sort(issue_times.begin(), issue_times.end());
  IDEVAL_ASSIGN_OR_RETURN(QifStats qif, ComputeQif(issue_times));
  report.qif = qif.qif / std::max(1, spec.num_users);
  for (const auto& t : all_timelines) report.queries_executed += !t.skipped;
  report.queries_suppressed =
      report.queries_generated - report.queries_executed;
  const LcvStats lcv = ComputeCrossfilterLcv(all_timelines);
  report.lcv_fraction = lcv.ViolationFraction();
  const Summary latency = PerceivedLatencySummary(all_timelines);
  report.median_latency_ms = latency.median();
  report.p90_latency_ms = latency.Quantile(0.9);
  report.max_latency_ms = latency.max();
  report.throughput_qps = ComputeThroughput(all_timelines);
  report.mean_session_s = session_s / spec.num_users;
  report.mean_interactions_per_user = interactions / spec.num_users;
  return report;
}

/// Live-server mode: the same trace-derived interaction workload, but
/// driven through the multi-threaded `QueryServer` by one client thread
/// per user with trace-faithful (compressed) inter-arrival sleeps.
Result<WorkloadReport> RunServeWorkload(const WorkloadSpec& spec,
                                        WorkloadReport report) {
  if (spec.interface_kind == InterfaceKind::kInertialScroll) {
    return Status::InvalidArgument(
        "live-server mode (serve_threads > 0) supports the crossfilter and "
        "explore interfaces; scroll loading is simulation-only");
  }
  const int clients =
      spec.serve_clients > 0 ? spec.serve_clients : spec.num_users;

  EngineOptions eopts;
  eopts.profile = spec.engine;
  eopts.enable_zone_maps = spec.engine_zone_maps;
  Engine engine(eopts);
  std::unique_ptr<ShardedEngine> sharded;
  if (spec.serve_shards > 1) {
    ShardedEngineOptions shopts;
    shopts.num_shards = spec.serve_shards;
    shopts.engine_options = eopts;
    IDEVAL_ASSIGN_OR_RETURN(sharded, ShardedEngine::Create(shopts));
  }
  // Workload tables go to the sharded backend (range-partitioned) when
  // serve_shards > 1, to the single engine otherwise.
  auto register_table = [&](const TablePtr& table) -> Status {
    if (sharded != nullptr) return sharded->PartitionTable(table);
    return engine.RegisterTable(table);
  };

  Rng rng(spec.seed);
  std::vector<std::vector<QueryGroup>> client_groups;
  double session_s = 0.0;
  double interactions = 0.0;

  if (spec.interface_kind == InterfaceKind::kCrossfilter) {
    RoadNetworkOptions dopts;
    if (spec.rows > 0) dopts.num_rows = spec.rows;
    IDEVAL_ASSIGN_OR_RETURN(TablePtr road, MakeRoadNetworkTable(dopts));
    IDEVAL_RETURN_NOT_OK(register_table(road));
    for (int c = 0; c < clients; ++c) {
      IDEVAL_ASSIGN_OR_RETURN(CrossfilterView view,
                              CrossfilterView::Make(road, {"x", "y", "z"}));
      CrossfilterUserParams params;
      params.user_id = c;
      params.device = spec.device;
      params.num_moves = spec.crossfilter_moves;
      params.seed = rng.Next();
      IDEVAL_ASSIGN_OR_RETURN(CrossfilterTrace trace,
                              GenerateCrossfilterTrace(params, &view));
      IDEVAL_ASSIGN_OR_RETURN(CrossfilterView replay,
                              CrossfilterView::Make(road, {"x", "y", "z"}));
      IDEVAL_ASSIGN_OR_RETURN(std::vector<QueryGroup> groups,
                              BuildQueryGroups(&replay, trace.events));
      report.interaction_events += static_cast<int64_t>(trace.events.size());
      session_s += trace.session_duration.seconds();
      interactions += static_cast<double>(trace.events.size());
      for (const auto& g : groups) {
        report.queries_generated += static_cast<int64_t>(g.queries.size());
      }
      client_groups.push_back(std::move(groups));
    }
  } else {
    ListingsOptions dopts;
    if (spec.rows > 0) dopts.num_rows = spec.rows;
    IDEVAL_ASSIGN_OR_RETURN(TablePtr listings, MakeListingsTable(dopts));
    IDEVAL_RETURN_NOT_OK(register_table(listings));
    auto users = SampleExploreUsers(clients, &rng);
    for (auto& user : users) {
      user.min_session =
          Duration::Seconds(spec.explore_session_minutes * 60);
      CompositeInterface::Options copts;
      copts.table = listings->name();
      copts.destinations = {{"Birmingham", 33.52, -86.80, 12},
                            {"Atlanta", 33.75, -84.39, 12},
                            {"Nashville", 36.16, -86.78, 11},
                            {"Memphis", 35.15, -90.05, 12}};
      CompositeInterface ui(MapWidget(32.0, -86.0, 11), std::move(copts));
      IDEVAL_ASSIGN_OR_RETURN(ExploreTrace trace,
                              GenerateExploreTrace(user, &ui));
      session_s += trace.session_duration.seconds();
      interactions += static_cast<double>(trace.phases.size());
      report.interaction_events += static_cast<int64_t>(trace.phases.size());
      std::vector<QueryGroup> groups;
      groups.reserve(trace.phases.size());
      for (const auto& phase : trace.phases) {
        QueryGroup g;
        g.issue_time = phase.request.time;
        g.queries.push_back(phase.request.query);
        groups.push_back(std::move(g));
        ++report.queries_generated;
      }
      client_groups.push_back(std::move(groups));
    }
  }

  ServerOptions sopts;
  sopts.num_workers = spec.serve_threads;
  sopts.max_queue_per_session = spec.serve_queue_cap;
  sopts.policy = spec.admission;
  sopts.adaptive_admission = spec.adaptive_admission;
  sopts.enable_session_cache = spec.serve_cache;
  sopts.enable_shared_cache = spec.serve_shared_cache;
  sopts.enable_tracing = spec.serve_trace;
  sopts.trace_buffer_spans = spec.serve_trace_buffer_spans;
  sopts.slow_query_ms = spec.serve_slow_query_ms;
  sopts.enable_metrics = spec.serve_metrics;
  sopts.stats_poll_ms = spec.serve_stats_poll_ms;
  if (spec.throttle_interval > Duration::Zero()) {
    sopts.throttle_min_interval = spec.throttle_interval;
  }
  IDEVAL_ASSIGN_OR_RETURN(std::unique_ptr<QueryServer> server,
                          sharded != nullptr
                              ? QueryServer::Create(sharded.get(), sopts)
                              : QueryServer::Create(&engine, sopts));
  ServerStatsSnapshot snap;
  double wall_seconds = 0.0;
  if (spec.serve_net) {
    // Over-the-wire mode: front the server with the socket layer and
    // replay the same traces through real loopback connections.
    NetServerOptions nopts;
    nopts.port = spec.serve_net_port;
    IDEVAL_ASSIGN_OR_RETURN(std::unique_ptr<NetServer> net,
                            NetServer::Start(server.get(), nopts));
    NetLoadDriverOptions nlopts;
    nlopts.port = net->port();
    nlopts.time_compression = spec.time_compression;
    IDEVAL_ASSIGN_OR_RETURN(NetLoadReport nload,
                            RunNetLoadDriver(client_groups, nlopts));
    server->Drain();
    snap = server->Snapshot();
    net->FillSnapshot(&snap);
    net->Stop();
    wall_seconds = nload.wall_seconds;
  } else {
    LoadDriverOptions lopts;
    lopts.time_compression = spec.time_compression;
    IDEVAL_ASSIGN_OR_RETURN(
        LoadReport load, RunLoadDriver(server.get(), client_groups, lopts));
    snap = load.snapshot;
    wall_seconds = load.wall_seconds;
  }
  server->Stop();

  report.queries_executed = snap.totals.queries_executed;
  report.queries_suppressed =
      report.queries_generated - snap.totals.queries_executed;
  report.groups_skipped = snap.totals.GroupsShed();
  report.groups_rejected = snap.totals.groups_rejected;
  const double wall = std::max(1e-9, wall_seconds);
  report.qif = static_cast<double>(snap.totals.groups_submitted) / wall /
               std::max(1, clients);
  report.lcv_fraction = snap.lcv_fraction;
  report.median_latency_ms = snap.latency_p50_ms;
  report.p90_latency_ms = snap.latency_p90_ms;
  report.max_latency_ms = snap.latency_max_ms;
  report.throughput_qps =
      static_cast<double>(snap.totals.queries_executed) / wall;
  report.mean_session_s = session_s / std::max(1, clients);
  report.mean_interactions_per_user = interactions / std::max(1, clients);
  return report;
}

}  // namespace

Result<WorkloadReport> RunWorkload(const WorkloadSpec& spec) {
  WorkloadReport report;
  report.spec = spec;
  if (spec.serve_threads > 0) {
    return RunServeWorkload(spec, std::move(report));
  }
  switch (spec.interface_kind) {
    case InterfaceKind::kCrossfilter:
      return RunCrossfilterWorkload(spec, std::move(report));
    case InterfaceKind::kInertialScroll:
      return RunScrollWorkload(spec, std::move(report));
    case InterfaceKind::kCompositeExplore:
      return RunExploreWorkload(spec, std::move(report));
  }
  return Status::Internal("unreachable interface kind");
}

std::string WorkloadReport::ToText() const {
  TextTable table({"metric", "value"});
  table.AddRow({"workload", spec.name});
  table.AddRow({"interface / device / engine",
                StrFormat("%s / %s / %s",
                          InterfaceKindToString(spec.interface_kind),
                          DeviceTypeToString(spec.device),
                          EngineProfileToString(spec.engine))});
  table.AddRow({"users", StrFormat("%d", spec.num_users)});
  table.AddRow({"interaction events",
                StrFormat("%lld", static_cast<long long>(
                                      interaction_events))});
  table.AddRow({"queries generated / executed / suppressed",
                StrFormat("%lld / %lld / %lld",
                          static_cast<long long>(queries_generated),
                          static_cast<long long>(queries_executed),
                          static_cast<long long>(queries_suppressed))});
  if (groups_skipped > 0) {
    table.AddRow({"groups skipped by backend",
                  StrFormat("%lld", static_cast<long long>(groups_skipped))});
  }
  if (groups_rejected > 0) {
    table.AddRow({"groups rejected (backpressure)",
                  StrFormat("%lld",
                            static_cast<long long>(groups_rejected))});
  }
  table.AddRow({"QIF (per user)", StrFormat("%.1f queries/s", qif)});
  table.AddRow({"LCV fraction", StrFormat("%.3f", lcv_fraction)});
  table.AddRow({"perceived latency median / p90 / max (ms)",
                StrFormat("%.1f / %.1f / %.1f", median_latency_ms,
                          p90_latency_ms, max_latency_ms)});
  table.AddRow({"throughput", StrFormat("%.1f queries/s", throughput_qps)});
  if (stalls.has_value()) {
    table.AddRow({"scroll stalls",
                  StrFormat("%lld", static_cast<long long>(*stalls))});
    table.AddRow({"mean stall", StrFormat("%.1f ms", *mean_stall_ms)});
  }
  table.AddRow({"mean session", StrFormat("%.1f s", mean_session_s)});
  table.AddRow({"mean interactions/user",
                StrFormat("%.0f", mean_interactions_per_user)});
  return table.ToString();
}

}  // namespace ideval
