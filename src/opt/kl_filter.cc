#include "opt/kl_filter.h"

#include <algorithm>

#include "engine/predicate.h"

namespace ideval {

KlQueryFilter::KlQueryFilter(TablePtr table, double threshold,
                             Options options, std::vector<size_t> sample_rows)
    : table_(std::move(table)),
      threshold_(threshold),
      options_(options),
      sample_rows_(std::move(sample_rows)) {}

Result<KlQueryFilter> KlQueryFilter::Make(const TablePtr& table,
                                          double threshold, Options options) {
  if (table == nullptr) {
    return Status::InvalidArgument("KlQueryFilter: null table");
  }
  if (table->num_rows() == 0) {
    return Status::InvalidArgument("KlQueryFilter: empty table");
  }
  if (threshold < 0.0) {
    return Status::InvalidArgument("KlQueryFilter: threshold must be >= 0");
  }
  if (options.sample_size <= 0) {
    return Status::InvalidArgument("KlQueryFilter: sample_size must be > 0");
  }
  // Deterministic uniform-stride sample.
  const size_t n = table->num_rows();
  const size_t want = std::min<size_t>(
      n, static_cast<size_t>(options.sample_size));
  std::vector<size_t> rows;
  rows.reserve(want);
  const double stride = static_cast<double>(n) / static_cast<double>(want);
  for (size_t i = 0; i < want; ++i) {
    rows.push_back(static_cast<size_t>(static_cast<double>(i) * stride));
  }
  return KlQueryFilter(table, threshold, options, std::move(rows));
}

Result<FixedHistogram> KlQueryFilter::Approximate(
    const HistogramQuery& q) const {
  IDEVAL_ASSIGN_OR_RETURN(
      CompiledPredicates preds,
      CompiledPredicates::Compile(*table_, q.predicates));
  IDEVAL_ASSIGN_OR_RETURN(const Column* col,
                          table_->ColumnByName(q.bin_column));
  if (col->type() == DataType::kString) {
    return Status::InvalidArgument("KL approximation over string column");
  }
  IDEVAL_ASSIGN_OR_RETURN(
      FixedHistogram hist,
      FixedHistogram::Make(q.bin_lo, q.bin_hi,
                           static_cast<size_t>(q.bins)));
  const bool is_int = col->type() == DataType::kInt64;
  for (size_t row : sample_rows_) {
    if (!preds.Matches(*table_, row)) continue;
    const double v = is_int ? static_cast<double>(col->int64_data()[row])
                            : col->double_data()[row];
    hist.Add(v);
  }
  return hist;
}

Result<bool> KlQueryFilter::ShouldIssue(const QueryGroup& group) {
  double max_divergence = 0.0;
  bool any_histogram = false;
  std::vector<std::pair<std::string, FixedHistogram>> approximations;

  for (const Query& q : group.queries) {
    const auto* h = std::get_if<HistogramQuery>(&q);
    if (h == nullptr) return true;  // Pass non-histogram groups through.
    any_histogram = true;
    IDEVAL_ASSIGN_OR_RETURN(FixedHistogram approx, Approximate(*h));
    auto ref = reference_.find(h->bin_column);
    if (ref == reference_.end()) {
      // Never seen this view: always issue.
      max_divergence = threshold_ + 1.0;
    } else {
      IDEVAL_ASSIGN_OR_RETURN(
          double kl, KlDivergence(approx, ref->second, options_.epsilon));
      max_divergence = std::max(max_divergence, kl);
    }
    approximations.emplace_back(h->bin_column, std::move(approx));
  }
  if (!any_histogram) return true;
  last_divergence_ = max_divergence;
  if (max_divergence <= threshold_) return false;
  for (auto& [name, hist] : approximations) {
    reference_.insert_or_assign(name, std::move(hist));
  }
  return true;
}

Result<std::vector<QueryGroup>> FilterQueryGroups(
    KlQueryFilter* filter, const std::vector<QueryGroup>& groups,
    int64_t* suppressed) {
  if (filter == nullptr) {
    return Status::InvalidArgument("FilterQueryGroups: null filter");
  }
  std::vector<QueryGroup> out;
  int64_t dropped = 0;
  for (const auto& g : groups) {
    IDEVAL_ASSIGN_OR_RETURN(bool issue, filter->ShouldIssue(g));
    if (issue) {
      out.push_back(g);
    } else {
      ++dropped;
    }
  }
  if (suppressed != nullptr) *suppressed = dropped;
  return out;
}

}  // namespace ideval
