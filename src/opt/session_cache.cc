#include "opt/session_cache.h"

namespace ideval {

SessionCache::SessionCache(Engine* engine, Options options)
    : engine_(engine), options_(options) {
  if (options_.capacity < 1) options_.capacity = 1;
}

Result<SessionCache::Execution> SessionCache::Execute(const Query& query) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("SessionCache has no engine");
  }
  const std::string key = QueryToString(query);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    Execution out;
    out.response = it->second.response;
    out.cache_hit = true;
    out.effective_time = options_.hit_cost;
    time_saved_ += it->second.response.ServerTime() - options_.hit_cost;
    return out;
  }
  ++misses_;
  IDEVAL_ASSIGN_OR_RETURN(QueryResponse response, engine_->Execute(query));
  if (static_cast<int64_t>(cache_.size()) >= options_.capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  cache_[key] = Entry{response, lru_.begin()};
  Execution out;
  out.response = std::move(response);
  out.cache_hit = false;
  out.effective_time = out.response.ServerTime();
  return out;
}

void SessionCache::Clear() {
  cache_.clear();
  lru_.clear();
}

double SessionCache::HitRate() const {
  const int64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace ideval
