#ifndef IDEVAL_OPT_SESSION_CACHE_H_
#define IDEVAL_OPT_SESSION_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/engine.h"

namespace ideval {

/// Session-aware result reuse (§2.4).
///
/// In interactive analysis consecutive queries are related: users jitter a
/// slider back and forth, revisit earlier brushes, or re-issue the same
/// viewport. Session-based systems (the paper cites Sesame's up-to-25x
/// gains) exploit this by answering repeated queries from the results of
/// previous ones instead of the backend. `SessionCache` implements the
/// exact-match tier of that idea over any `Engine`: results are keyed by
/// the canonical query text and served in near-zero time on a hit.
class SessionCache {
 public:
  struct Options {
    /// Maximum cached results (LRU beyond that).
    int64_t capacity = 256;
    /// Modelled cost of serving a cached result (client-side lookup).
    Duration hit_cost = Duration::Micros(500);
  };

  /// `engine` must outlive the cache.
  SessionCache(Engine* engine, Options options);
  explicit SessionCache(Engine* engine) : SessionCache(engine, Options()) {}

  /// Result of one cached execution.
  struct Execution {
    QueryResponse response;
    bool cache_hit = false;
    /// Simulated server-side time actually spent (hit_cost on hits, the
    /// engine's full time otherwise).
    Duration effective_time;
  };

  /// Executes `query`, serving from the session cache when an identical
  /// query was answered before.
  Result<Execution> Execute(const Query& query);

  /// Invalidates everything (e.g. data changed).
  void Clear();

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRate() const;

  /// Total backend time avoided by hits — the "gain" a Sesame-style system
  /// reports.
  Duration TimeSaved() const { return time_saved_; }

 private:
  struct Entry {
    QueryResponse response;
    std::list<std::string>::iterator lru_it;
  };

  Engine* engine_;
  Options options_;
  std::unordered_map<std::string, Entry> cache_;
  std::list<std::string> lru_;  // Front = most recent.
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  Duration time_saved_;
};

}  // namespace ideval

#endif  // IDEVAL_OPT_SESSION_CACHE_H_
