#ifndef IDEVAL_OPT_THROTTLE_H_
#define IDEVAL_OPT_THROTTLE_H_

#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "sim/query_scheduler.h"

namespace ideval {

/// Client-side rate limiter matching QIF to backend capacity (§3.1.2:
/// "there is a need to throttle the number of queries being sent to match
/// the backend capacity").
///
/// Passes an event only if at least `min_interval` has elapsed since the
/// last passed event. Stateless about content — it caps the rate, trading
/// result freshness granularity for backend health (Fig. 3's
/// "overwhelmed backend" quadrant).
class QifThrottler {
 public:
  explicit QifThrottler(Duration min_interval)
      : min_interval_(min_interval) {}

  /// True if an event at `t` passes; updates internal state when it does.
  bool Admit(SimTime t);

  /// Resets to pass the next event unconditionally.
  void Reset() { last_passed_.reset(); }

  Duration min_interval() const { return min_interval_; }

 private:
  Duration min_interval_;
  std::optional<SimTime> last_passed_;
};

/// Applies a throttler to a session, keeping only admitted groups.
std::vector<QueryGroup> ThrottleQueryGroups(
    QifThrottler* throttler, const std::vector<QueryGroup>& groups);

/// Trailing-edge debouncer: an event is emitted only after `quiet_period`
/// with no further events — i.e., when the user pauses. Useful on jittery
/// gestural devices where intermediate positions are noise (§2.3); the
/// cost is added latency of one quiet period.
///
/// Given the ordered issue times of a session, returns for each original
/// event whether it survives debouncing, and the (delayed) time at which
/// it fires.
struct DebouncedEvent {
  size_t source_index = 0;
  SimTime fire_time;
};

std::vector<DebouncedEvent> DebounceEventTimes(
    const std::vector<SimTime>& times, Duration quiet_period);

}  // namespace ideval

#endif  // IDEVAL_OPT_THROTTLE_H_
