#include "opt/throttle.h"

namespace ideval {

bool QifThrottler::Admit(SimTime t) {
  if (last_passed_.has_value() && t - *last_passed_ < min_interval_) {
    return false;
  }
  last_passed_ = t;
  return true;
}

std::vector<QueryGroup> ThrottleQueryGroups(
    QifThrottler* throttler, const std::vector<QueryGroup>& groups) {
  std::vector<QueryGroup> out;
  if (throttler == nullptr) return out;
  for (const auto& g : groups) {
    if (throttler->Admit(g.issue_time)) out.push_back(g);
  }
  return out;
}

std::vector<DebouncedEvent> DebounceEventTimes(
    const std::vector<SimTime>& times, Duration quiet_period) {
  std::vector<DebouncedEvent> out;
  if (times.empty()) return out;
  for (size_t i = 0; i + 1 < times.size(); ++i) {
    if (times[i + 1] - times[i] >= quiet_period) {
      out.push_back(DebouncedEvent{i, times[i] + quiet_period});
    }
  }
  out.push_back(
      DebouncedEvent{times.size() - 1, times.back() + quiet_period});
  return out;
}

}  // namespace ideval
