#ifndef IDEVAL_OPT_KL_FILTER_H_
#define IDEVAL_OPT_KL_FILTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "sim/query_scheduler.h"
#include "storage/table.h"

namespace ideval {

/// Client-side result-driven query suppression (§7.1, Algorithm 2).
///
/// Before sending a crossfilter query group to the backend, the filter
/// *approximates* each query's histogram over a small uniform sample of the
/// table (the paper points to hash/sampling/wavelet sketches for this) and
/// compares it against the approximation of the group it last let through
/// via Kullback–Leibler divergence. Groups whose every histogram diverges
/// by at most the threshold are suppressed: their results would look the
/// same to the user.
///
///   - threshold = 0.0 reproduces the paper's "KL>0" condition (issue only
///     when the approximate result set changes at all);
///   - threshold = 0.2 reproduces "KL>0.2".
class KlQueryFilter {
 public:
  struct Options {
    /// Uniform-stride sample size used for the approximation. Coarse on
    /// purpose: the sketch only has to detect *perceptible* result
    /// changes, and a small sample is what makes sub-pixel slider jitter
    /// map to an identical approximation (KL = 0) and get suppressed.
    int64_t sample_size = 250;
    /// Smoothing epsilon for the divergence (keeps empty bins finite).
    double epsilon = 1e-9;
  };

  /// Builds the sample over `table`. Errors on null/empty tables.
  static Result<KlQueryFilter> Make(const TablePtr& table, double threshold,
                                    Options options);
  static Result<KlQueryFilter> Make(const TablePtr& table, double threshold) {
    return Make(table, threshold, Options());
  }

  double threshold() const { return threshold_; }

  /// Decides whether `group` should reach the backend. When it returns
  /// true the group's approximations become the new reference. Non-
  /// histogram queries always pass (the optimization is defined on
  /// coordinated histogram views).
  Result<bool> ShouldIssue(const QueryGroup& group);

  /// Maximum divergence the last `ShouldIssue` computed (diagnostics).
  double last_divergence() const { return last_divergence_; }

 private:
  KlQueryFilter(TablePtr table, double threshold, Options options,
                std::vector<size_t> sample_rows);

  /// Approximate histogram of `q` over the sample.
  Result<FixedHistogram> Approximate(const HistogramQuery& q) const;

  TablePtr table_;
  double threshold_;
  Options options_;
  std::vector<size_t> sample_rows_;
  /// Reference approximations keyed by binned attribute.
  std::map<std::string, FixedHistogram> reference_;
  double last_divergence_ = 0.0;
};

/// Applies the filter to a whole session: returns only the groups that
/// should be issued (order preserved). `suppressed` (optional) receives
/// the number dropped.
Result<std::vector<QueryGroup>> FilterQueryGroups(
    KlQueryFilter* filter, const std::vector<QueryGroup>& groups,
    int64_t* suppressed = nullptr);

}  // namespace ideval

#endif  // IDEVAL_OPT_KL_FILTER_H_
