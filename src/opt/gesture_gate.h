#ifndef IDEVAL_OPT_GESTURE_GATE_H_
#define IDEVAL_OPT_GESTURE_GATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "device/device_model.h"

namespace ideval {

/// What the gate believes the user is doing at a given sample.
enum class GestureIntent {
  kIntentionalMove,  ///< Deliberate pointer motion: issue queries.
  kDwell,            ///< Holding position (possibly with jitter): suppress.
};

const char* GestureIntentToString(GestureIntent intent);

/// Per-sample classification result.
struct GestureLabel {
  SimTime time;
  GestureIntent intent = GestureIntent::kDwell;
};

/// Online gesture-intent classifier (§2.3).
///
/// Gestural devices cannot hold a point steady: sensor jitter produces
/// unintended, noisy, repeated queries. GestureDB's answer is to classify
/// the gesture and anticipate intent; this gate is the workload-side
/// version: it watches the pointer stream and lets query-triggering events
/// through only while the motion looks deliberate.
///
/// The classifier is a hysteresis filter over windowed displacement:
/// motion is *intentional* while the pointer's net displacement over the
/// trailing window beats `move_threshold` (jitter wanders but does not
/// travel), and flips back to *dwell* after the displacement stays under
/// `dwell_threshold` for `dwell_confirm` time. Hysteresis prevents the
/// gate from chattering at gesture boundaries.
///
/// Because `PointerSample` carries the behaviour model's ground-truth
/// `intended_motion` flag, the gate's precision/recall is directly
/// measurable — see `EvaluateGestureGate` and `bench_abl_gesture_gate`.
class GestureGate {
 public:
  struct Options {
    /// Trailing window over which net displacement is measured.
    Duration window = Duration::Millis(250);
    /// Net displacement (same units as the trace) that signals deliberate
    /// motion.
    double move_threshold = 40.0;
    /// Displacement under which motion is considered stopped.
    double dwell_threshold = 25.0;
    /// How long displacement must stay low before flipping to dwell.
    Duration dwell_confirm = Duration::Millis(120);
  };

  explicit GestureGate(Options options);
  GestureGate() : GestureGate(Options()) {}

  /// Feeds one sample; returns the current intent estimate.
  GestureIntent Observe(const PointerSample& sample);

  /// Resets to the initial (dwell) state.
  void Reset();

  GestureIntent current_intent() const { return intent_; }

  /// Classifies a whole trace (fresh state).
  std::vector<GestureLabel> Classify(const PointerTrace& trace);

 private:
  Options options_;
  GestureIntent intent_ = GestureIntent::kDwell;
  std::vector<PointerSample> window_;  // Trailing samples within `window`.
  SimTime low_since_;
  bool low_active_ = false;
};

/// Confusion-matrix evaluation of the gate against the behaviour model's
/// ground truth.
struct GestureGateReport {
  int64_t true_moves = 0;        ///< Ground-truth intentional samples.
  int64_t true_dwells = 0;
  int64_t passed_moves = 0;      ///< Intentional samples the gate passed.
  int64_t passed_dwells = 0;     ///< Jitter samples the gate let through.

  /// Of the samples the gate passed, how many were truly intentional.
  double Precision() const {
    const int64_t passed = passed_moves + passed_dwells;
    return passed == 0 ? 0.0
                       : static_cast<double>(passed_moves) /
                             static_cast<double>(passed);
  }
  /// Of the truly intentional samples, how many the gate passed.
  double Recall() const {
    return true_moves == 0 ? 0.0
                           : static_cast<double>(passed_moves) /
                                 static_cast<double>(true_moves);
  }
  /// Fraction of jitter samples suppressed.
  double NoiseSuppression() const {
    return true_dwells == 0
               ? 0.0
               : 1.0 - static_cast<double>(passed_dwells) /
                           static_cast<double>(true_dwells);
  }
};

/// Runs the gate over `trace` and scores it against `intended_motion`.
GestureGateReport EvaluateGestureGate(GestureGate* gate,
                                      const PointerTrace& trace);

}  // namespace ideval

#endif  // IDEVAL_OPT_GESTURE_GATE_H_
