#include "opt/gesture_gate.h"

#include <cmath>

namespace ideval {

const char* GestureIntentToString(GestureIntent intent) {
  switch (intent) {
    case GestureIntent::kIntentionalMove:
      return "move";
    case GestureIntent::kDwell:
      return "dwell";
  }
  return "unknown";
}

GestureGate::GestureGate(Options options) : options_(options) {}

void GestureGate::Reset() {
  intent_ = GestureIntent::kDwell;
  window_.clear();
  low_active_ = false;
}

GestureIntent GestureGate::Observe(const PointerSample& sample) {
  window_.push_back(sample);
  // Drop samples that left the trailing window.
  const SimTime cutoff = sample.time - options_.window;
  size_t first = 0;
  while (first < window_.size() && window_[first].time < cutoff) ++first;
  if (first > 0) {
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<long>(first));
  }
  if (window_.size() < 2) return intent_;

  // Net displacement across the window: jitter wanders around a point and
  // cancels out; deliberate motion travels.
  const double dx = window_.back().x - window_.front().x;
  const double dy = window_.back().y - window_.front().y;
  const double displacement = std::sqrt(dx * dx + dy * dy);

  if (intent_ == GestureIntent::kDwell) {
    if (displacement >= options_.move_threshold) {
      intent_ = GestureIntent::kIntentionalMove;
      low_active_ = false;
    }
    return intent_;
  }
  // Currently moving: require sustained low displacement to flip back.
  if (displacement <= options_.dwell_threshold) {
    if (!low_active_) {
      low_active_ = true;
      low_since_ = sample.time;
    } else if (sample.time - low_since_ >= options_.dwell_confirm) {
      intent_ = GestureIntent::kDwell;
      low_active_ = false;
    }
  } else {
    low_active_ = false;
  }
  return intent_;
}

std::vector<GestureLabel> GestureGate::Classify(const PointerTrace& trace) {
  Reset();
  std::vector<GestureLabel> labels;
  labels.reserve(trace.size());
  for (const PointerSample& s : trace) {
    labels.push_back(GestureLabel{s.time, Observe(s)});
  }
  return labels;
}

GestureGateReport EvaluateGestureGate(GestureGate* gate,
                                      const PointerTrace& trace) {
  GestureGateReport report;
  if (gate == nullptr) return report;
  gate->Reset();
  for (const PointerSample& s : trace) {
    const GestureIntent intent = gate->Observe(s);
    const bool passed = intent == GestureIntent::kIntentionalMove;
    if (s.intended_motion) {
      ++report.true_moves;
      report.passed_moves += passed;
    } else {
      ++report.true_dwells;
      report.passed_dwells += passed;
    }
  }
  return report;
}

}  // namespace ideval
