#include "serve/session.h"

namespace ideval {

namespace {
/// Cap on LCV bookkeeping entries per session; far above any plausible
/// in-flight window, just a leak guard for sessions that shed forever.
constexpr size_t kMaxRecentSubmits = 4096;
}  // namespace

ServeSession::ServeSession(uint64_t id, Duration qif_window)
    : id_(id), qif_window_(qif_window) {}

uint64_t ServeSession::RecordSubmit(SimTime now) {
  const uint64_t seq = next_seq_++;
  last_submit_ = now;
  ++counters_.groups_submitted;

  qif_submits_.push_back(now);
  const SimTime horizon = now - qif_window_;
  while (!qif_submits_.empty() && qif_submits_.front() < horizon) {
    qif_submits_.pop_front();
  }

  recent_submits_.emplace_back(seq, now);
  while (recent_submits_.size() > kMaxRecentSubmits) {
    recent_submits_.pop_front();
  }
  return seq;
}

double ServeSession::QifQps(SimTime now) {
  const SimTime horizon = now - qif_window_;
  while (!qif_submits_.empty() && qif_submits_.front() < horizon) {
    qif_submits_.pop_front();
  }
  return static_cast<double>(qif_submits_.size()) / qif_window_.seconds();
}

bool ServeSession::CheckLcvViolation(uint64_t seq, SimTime completion) {
  while (!recent_submits_.empty() && recent_submits_.front().first <= seq) {
    recent_submits_.pop_front();
  }
  // Entries are seq-ordered, so the front is the earliest newer
  // interaction; the group violates iff that interaction was issued
  // before this group's results came back.
  return !recent_submits_.empty() &&
         recent_submits_.front().second < completion;
}

ServeSession* SessionManager::Open(Duration qif_window) {
  const uint64_t id = next_id_++;
  sessions_.push_back(std::make_unique<ServeSession>(id, qif_window));
  index_[id] = sessions_.size() - 1;
  return sessions_.back().get();
}

ServeSession* SessionManager::Get(uint64_t id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : sessions_[it->second].get();
}

int64_t SessionManager::OpenCount() const {
  int64_t n = 0;
  for (const auto& s : sessions_) n += !s->closed();
  return n;
}

}  // namespace ideval
