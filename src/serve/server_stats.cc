#include "serve/server_stats.h"

#include "common/text_table.h"

namespace ideval {

SessionCounters& SessionCounters::operator+=(const SessionCounters& o) {
  groups_submitted += o.groups_submitted;
  groups_admitted += o.groups_admitted;
  groups_executed += o.groups_executed;
  groups_shed_stale += o.groups_shed_stale;
  groups_shed_coalesced += o.groups_shed_coalesced;
  groups_shed_throttled += o.groups_shed_throttled;
  groups_rejected += o.groups_rejected;
  queries_executed += o.queries_executed;
  queries_failed += o.queries_failed;
  cache_hits += o.cache_hits;
  lcv_violations += o.lcv_violations;
  return *this;
}

OnlineMetrics::OnlineMetrics(Duration qif_window)
    : window_(qif_window), latency_p50_(0.5), latency_p90_(0.9) {}

void OnlineMetrics::TrimWindows(SimTime now) {
  const SimTime horizon = now - window_;
  while (!submits_.empty() && submits_.front() < horizon) {
    submits_.pop_front();
  }
  while (!completions_.empty() && completions_.front().time < horizon) {
    window_query_sum_ -= completions_.front().queries;
    completions_.pop_front();
  }
}

void OnlineMetrics::RecordSubmit(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(submits_.size()) >= kMaxWindowEntries) {
    submits_.pop_front();
    ++truncations_;
  }
  submits_.push_back(now);
  TrimWindows(now);
}

void OnlineMetrics::RecordGroupComplete(SimTime now, Duration latency,
                                        Duration service, int64_t queries) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_ms_.Add(latency.millis());
  latency_p50_.Add(latency.millis());
  latency_p90_.Add(latency.millis());
  service_ms_.Add(service.millis());
  if (static_cast<int64_t>(completions_.size()) >= kMaxWindowEntries) {
    window_query_sum_ -= completions_.front().queries;
    completions_.pop_front();
    ++truncations_;
  }
  completions_.push_back({now, queries});
  window_query_sum_ += queries;
  TrimWindows(now);
}

void OnlineMetrics::RecordPhases(Duration scatter, Duration execute,
                                 Duration merge) {
  std::lock_guard<std::mutex> lock(mu_);
  scatter_ms_.Add(scatter.millis());
  execute_ms_.Add(execute.millis());
  merge_ms_.Add(merge.millis());
}

double OnlineMetrics::QifQps(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  TrimWindows(now);
  return static_cast<double>(submits_.size()) / window_.seconds();
}

void OnlineMetrics::FillSnapshot(ServerStatsSnapshot* snap, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  TrimWindows(now);
  snap->qif_qps =
      static_cast<double>(submits_.size()) / window_.seconds();
  snap->throughput_window_qps =
      static_cast<double>(window_query_sum_) / window_.seconds();
  snap->qif_window_truncations = truncations_;
  snap->latency_mean_ms = latency_ms_.mean();
  snap->latency_max_ms = latency_ms_.max();
  snap->latency_p50_ms = latency_p50_.Estimate();
  snap->latency_p90_ms = latency_p90_.Estimate();
  snap->service_mean_ms = service_ms_.mean();
  snap->scatter_mean_ms = scatter_ms_.mean();
  snap->execute_mean_ms = execute_ms_.mean();
  snap->merge_mean_ms = merge_ms_.mean();
  snap->merge_max_ms = merge_ms_.max();
}

std::string ServerStatsSnapshot::ToText() const {
  TextTable global({"metric", "value"});
  global.AddRow({"workers", StrFormat("%d", num_workers)});
  if (num_shards > 1) {
    global.AddRow({"shards / shard workers",
                   StrFormat("%d / %d", num_shards, shard_workers)});
  }
  global.AddRow({"policy (configured / effective)",
                 StrFormat("%s / %s",
                           AdmissionPolicyToString(configured_policy),
                           AdmissionPolicyToString(effective_policy))});
  global.AddCountRow("sessions", {sessions_open});
  global.AddRow({"uptime", StrFormat("%.2f s", uptime_s)});
  global.AddCountRow(
      "groups submitted / executed / shed / rejected / queued",
      {totals.groups_submitted, totals.groups_executed, totals.GroupsShed(),
       totals.groups_rejected, groups_queued});
  global.AddCountRow(
      "shed breakdown (stale / coalesced / throttled)",
      {totals.groups_shed_stale, totals.groups_shed_coalesced,
       totals.groups_shed_throttled});
  global.AddCountRow(
      "door verdicts (admitted / shed at door / rejected)",
      {totals.groups_admitted, totals.groups_shed_throttled,
       totals.groups_rejected});
  global.AddCountRow("queue depth (now / high-water)",
                     {groups_queued, queue_hwm});
  global.AddCountRow("queries executed / failed",
                     {totals.queries_executed, totals.queries_failed});
  global.AddCountRow("cache hits", {totals.cache_hits});
  if (result_cache_enabled) {
    global.AddRow(
        {"result cache (hit / miss / coalesced; hit rate)",
         StrFormat("%lld / %lld / %lld; %.1f%%",
                   static_cast<long long>(result_cache.hits),
                   static_cast<long long>(result_cache.misses),
                   static_cast<long long>(result_cache.coalesced),
                   100.0 * result_cache.HitRate())});
    global.AddCountRow(
        "result cache entries / bytes / evicted / invalidated",
        {result_cache.entries, result_cache.bytes, result_cache.evictions,
         result_cache.invalidations});
  }
  if (tracing_enabled) {
    global.AddCountRow(
        "trace buffer (live / capacity / recorded / dropped)",
        {trace_buffer.live, trace_buffer.capacity, trace_buffer.recorded,
         trace_buffer.dropped});
  }
  if (slow_log_enabled) {
    global.AddCountRow("slow queries logged", {slow_queries_logged});
  }
  if (net_enabled) {
    global.AddCountRow("net bytes sent / received",
                       {net.bytes_sent, net.bytes_received});
    global.AddCountRow("net frames sent / received",
                       {net.frames_sent, net.frames_received});
    global.AddCountRow("net connections (accepted / active)",
                       {net.connections_accepted, net.active_connections});
    global.AddCountRow("net write-queue shed / protocol errors",
                       {net.write_queue_shed, net.protocol_errors});
  }
  global.AddRow({"latency mean / p50 / p90 / max (ms)",
                 StrFormat("%.2f / %.2f / %.2f / %.2f", latency_mean_ms,
                           latency_p50_ms, latency_p90_ms, latency_max_ms)});
  global.AddRow({"mean service time", StrFormat("%.2f ms", service_mean_ms)});
  if (num_shards > 1) {
    global.AddRow(
        {"phase means (scatter / execute / merge; merge max)",
         StrFormat("%.3f / %.3f / %.3f ms; %.3f ms", scatter_mean_ms,
                   execute_mean_ms, merge_mean_ms, merge_max_ms)});
  }
  global.AddRow({"QIF (live window)", StrFormat("%.1f groups/s", qif_qps)});
  global.AddRow({"throughput (lifetime / window)",
                 StrFormat("%.1f / %.1f queries/s", throughput_qps,
                           throughput_window_qps)});
  global.AddRow({"LCV fraction", StrFormat("%.3f", lcv_fraction)});
  if (qif_window_truncations > 0) {
    global.AddCountRow("window truncations", {qif_window_truncations});
  }
  global.AddRow(
      {"load (offered / capacity / state)",
       StrFormat("%.1f / %.1f groups/s -> %s", load.offered_qps,
                 load.capacity_qps, LoadStateToString(load.state))});
  if (load.shard_exec_capacity_qps > 0.0 || load.merge_capacity_qps > 0.0) {
    global.AddRow({"capacity bounds (shard pool / merge stage)",
                   StrFormat("%.1f / %.1f groups/s",
                             load.shard_exec_capacity_qps,
                             load.merge_capacity_qps)});
  }

  std::string out = global.ToString();
  if (!sessions.empty()) {
    TextTable per({"session", "submitted", "admitted", "executed", "shed",
                   "rejected", "cache hits", "LCV", "queue hwm", "QIF"});
    for (const auto& row : sessions) {
      per.AddRow(
          {StrFormat("%llu", static_cast<unsigned long long>(row.session_id)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_submitted)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_admitted)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_executed)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.GroupsShed())),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_rejected)),
           StrFormat("%lld", static_cast<long long>(row.counters.cache_hits)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.lcv_violations)),
           StrFormat("%lld", static_cast<long long>(row.queue_hwm)),
           StrFormat("%.1f/s", row.qif_qps)});
    }
    out += "\n";
    out += per.ToString();
  }
  return out;
}

}  // namespace ideval
