#include "serve/server_stats.h"

#include "common/text_table.h"

namespace ideval {

SessionCounters& SessionCounters::operator+=(const SessionCounters& o) {
  groups_submitted += o.groups_submitted;
  groups_admitted += o.groups_admitted;
  groups_executed += o.groups_executed;
  groups_shed_stale += o.groups_shed_stale;
  groups_shed_coalesced += o.groups_shed_coalesced;
  groups_shed_throttled += o.groups_shed_throttled;
  groups_rejected += o.groups_rejected;
  queries_executed += o.queries_executed;
  queries_failed += o.queries_failed;
  cache_hits += o.cache_hits;
  lcv_violations += o.lcv_violations;
  return *this;
}

OnlineMetrics::OnlineMetrics(Duration qif_window)
    : window_(qif_window), latency_p50_(0.5), latency_p90_(0.9) {}

void OnlineMetrics::RecordSubmit(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  submits_.push_back(now);
  const SimTime horizon = now - window_;
  while (!submits_.empty() && submits_.front() < horizon) {
    submits_.pop_front();
  }
}

void OnlineMetrics::RecordGroupComplete(Duration latency, Duration service) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_ms_.Add(latency.millis());
  latency_p50_.Add(latency.millis());
  latency_p90_.Add(latency.millis());
  service_ms_.Add(service.millis());
}

void OnlineMetrics::RecordPhases(Duration scatter, Duration execute,
                                 Duration merge) {
  std::lock_guard<std::mutex> lock(mu_);
  scatter_ms_.Add(scatter.millis());
  execute_ms_.Add(execute.millis());
  merge_ms_.Add(merge.millis());
}

double OnlineMetrics::QifQps(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime horizon = now - window_;
  while (!submits_.empty() && submits_.front() < horizon) {
    submits_.pop_front();
  }
  return static_cast<double>(submits_.size()) / window_.seconds();
}

void OnlineMetrics::FillSnapshot(ServerStatsSnapshot* snap, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime horizon = now - window_;
  while (!submits_.empty() && submits_.front() < horizon) {
    submits_.pop_front();
  }
  snap->qif_qps =
      static_cast<double>(submits_.size()) / window_.seconds();
  snap->latency_mean_ms = latency_ms_.mean();
  snap->latency_max_ms = latency_ms_.max();
  snap->latency_p50_ms = latency_p50_.Estimate();
  snap->latency_p90_ms = latency_p90_.Estimate();
  snap->service_mean_ms = service_ms_.mean();
  snap->scatter_mean_ms = scatter_ms_.mean();
  snap->execute_mean_ms = execute_ms_.mean();
  snap->merge_mean_ms = merge_ms_.mean();
  snap->merge_max_ms = merge_ms_.max();
}

std::string ServerStatsSnapshot::ToText() const {
  TextTable global({"metric", "value"});
  global.AddRow({"workers", StrFormat("%d", num_workers)});
  if (num_shards > 1) {
    global.AddRow({"shards / shard workers",
                   StrFormat("%d / %d", num_shards, shard_workers)});
  }
  global.AddRow({"policy (configured / effective)",
                 StrFormat("%s / %s",
                           AdmissionPolicyToString(configured_policy),
                           AdmissionPolicyToString(effective_policy))});
  global.AddRow({"sessions", StrFormat("%lld",
                                       static_cast<long long>(sessions_open))});
  global.AddRow({"uptime", StrFormat("%.2f s", uptime_s)});
  global.AddRow(
      {"groups submitted / executed / shed / rejected / queued",
       StrFormat("%lld / %lld / %lld / %lld / %lld",
                 static_cast<long long>(totals.groups_submitted),
                 static_cast<long long>(totals.groups_executed),
                 static_cast<long long>(totals.GroupsShed()),
                 static_cast<long long>(totals.groups_rejected),
                 static_cast<long long>(groups_queued))});
  global.AddRow(
      {"shed breakdown (stale / coalesced / throttled)",
       StrFormat("%lld / %lld / %lld",
                 static_cast<long long>(totals.groups_shed_stale),
                 static_cast<long long>(totals.groups_shed_coalesced),
                 static_cast<long long>(totals.groups_shed_throttled))});
  global.AddRow(
      {"door verdicts (admitted / shed at door / rejected)",
       StrFormat("%lld / %lld / %lld",
                 static_cast<long long>(totals.groups_admitted),
                 static_cast<long long>(totals.groups_shed_throttled),
                 static_cast<long long>(totals.groups_rejected))});
  global.AddRow({"queue depth (now / high-water)",
                 StrFormat("%lld / %lld",
                           static_cast<long long>(groups_queued),
                           static_cast<long long>(queue_hwm))});
  global.AddRow({"queries executed / failed",
                 StrFormat("%lld / %lld",
                           static_cast<long long>(totals.queries_executed),
                           static_cast<long long>(totals.queries_failed))});
  global.AddRow({"cache hits",
                 StrFormat("%lld",
                           static_cast<long long>(totals.cache_hits))});
  if (result_cache_enabled) {
    global.AddRow(
        {"result cache (hit / miss / coalesced; hit rate)",
         StrFormat("%lld / %lld / %lld; %.1f%%",
                   static_cast<long long>(result_cache.hits),
                   static_cast<long long>(result_cache.misses),
                   static_cast<long long>(result_cache.coalesced),
                   100.0 * result_cache.HitRate())});
    global.AddRow(
        {"result cache entries / bytes / evicted / invalidated",
         StrFormat("%lld / %lld / %lld / %lld",
                   static_cast<long long>(result_cache.entries),
                   static_cast<long long>(result_cache.bytes),
                   static_cast<long long>(result_cache.evictions),
                   static_cast<long long>(result_cache.invalidations))});
  }
  if (tracing_enabled) {
    global.AddRow(
        {"trace buffer (live / capacity / recorded / dropped)",
         StrFormat("%lld / %lld / %lld / %lld",
                   static_cast<long long>(trace_buffer.live),
                   static_cast<long long>(trace_buffer.capacity),
                   static_cast<long long>(trace_buffer.recorded),
                   static_cast<long long>(trace_buffer.dropped))});
  }
  if (slow_log_enabled) {
    global.AddRow({"slow queries logged",
                   StrFormat("%lld",
                             static_cast<long long>(slow_queries_logged))});
  }
  global.AddRow({"latency mean / p50 / p90 / max (ms)",
                 StrFormat("%.2f / %.2f / %.2f / %.2f", latency_mean_ms,
                           latency_p50_ms, latency_p90_ms, latency_max_ms)});
  global.AddRow({"mean service time", StrFormat("%.2f ms", service_mean_ms)});
  if (num_shards > 1) {
    global.AddRow(
        {"phase means (scatter / execute / merge; merge max)",
         StrFormat("%.3f / %.3f / %.3f ms; %.3f ms", scatter_mean_ms,
                   execute_mean_ms, merge_mean_ms, merge_max_ms)});
  }
  global.AddRow({"QIF (live window)", StrFormat("%.1f groups/s", qif_qps)});
  global.AddRow({"throughput", StrFormat("%.1f queries/s", throughput_qps)});
  global.AddRow({"LCV fraction", StrFormat("%.3f", lcv_fraction)});
  global.AddRow(
      {"load (offered / capacity / state)",
       StrFormat("%.1f / %.1f groups/s -> %s", load.offered_qps,
                 load.capacity_qps, LoadStateToString(load.state))});
  if (load.shard_exec_capacity_qps > 0.0 || load.merge_capacity_qps > 0.0) {
    global.AddRow({"capacity bounds (shard pool / merge stage)",
                   StrFormat("%.1f / %.1f groups/s",
                             load.shard_exec_capacity_qps,
                             load.merge_capacity_qps)});
  }

  std::string out = global.ToString();
  if (!sessions.empty()) {
    TextTable per({"session", "submitted", "admitted", "executed", "shed",
                   "rejected", "cache hits", "LCV", "queue hwm", "QIF"});
    for (const auto& row : sessions) {
      per.AddRow(
          {StrFormat("%llu", static_cast<unsigned long long>(row.session_id)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_submitted)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_admitted)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_executed)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.GroupsShed())),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.groups_rejected)),
           StrFormat("%lld", static_cast<long long>(row.counters.cache_hits)),
           StrFormat("%lld",
                     static_cast<long long>(row.counters.lcv_violations)),
           StrFormat("%lld", static_cast<long long>(row.queue_hwm)),
           StrFormat("%.1f/s", row.qif_qps)});
    }
    out += "\n";
    out += per.ToString();
  }
  return out;
}

}  // namespace ideval
