#ifndef IDEVAL_SERVE_SERVER_H_
#define IDEVAL_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "obs/metrics_registry.h"
#include "obs/slow_query_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "serve/server_stats.h"
#include "serve/session.h"

namespace ideval {

/// Construction options for `QueryServer`.
struct ServerOptions {
  /// Worker threads executing queries. `Create` rejects values < 1.
  int num_workers = 4;
  /// Bounded per-session queue; a full queue means backpressure (FIFO /
  /// throttle) or shedding (skip-stale). `Create` rejects values < 1.
  int max_queue_per_session = 8;
  /// How session queues admit and drain work.
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  /// Minimum inter-group interval for `kThrottle`.
  Duration throttle_min_interval = Duration::Millis(100);
  /// Quiet period before a pending `kDebounce` group becomes runnable.
  Duration debounce_quiet = Duration::Millis(50);
  /// When true, the admission controller switches the effective policy to
  /// `kSkipStale` while the server is overloaded (Fig. 3 as a control
  /// loop) and rejects with backpressure past `reject_factor`.
  bool adaptive_admission = false;
  AdmissionOptions admission;
  /// Per-session exact-match result reuse (§2.4) — the baseline the
  /// shared cache below supersedes. Incompatible with a sharded backend
  /// (its miss path owns a single engine) and with `enable_shared_cache`;
  /// use the shared cache for either.
  bool enable_session_cache = false;
  int64_t session_cache_capacity = 256;
  /// Shared cross-session result cache (`serve/result_cache.h`): one
  /// invalidation-aware, sharded LRU above the backend — any session's
  /// execution serves every other session's equivalent query, and
  /// concurrent identical misses coalesce into one backend run. Works
  /// over both backends (it sits *above* `ShardedEngine`'s scatter/merge,
  /// lifting the session cache's single-engine restriction). Mutually
  /// exclusive with `enable_session_cache`.
  bool enable_shared_cache = false;
  int64_t shared_cache_bytes = 64 << 20;
  int shared_cache_shards = 16;
  /// Dedicated shard-executor threads for the sharded `Create` overload;
  /// 0 = one per shard. Ignored for an unsharded server.
  int shard_workers = 0;
  /// Per-query tracing (`obs/trace.h`): every submission gets a trace id
  /// and emits spans for admission, queue wait, cache lookup, execution,
  /// scatter/shard/merge into a bounded ring buffer exportable as a
  /// Perfetto timeline. Off by default; when off, every instrumentation
  /// site reduces to one null-pointer branch.
  bool enable_tracing = false;
  /// Ring capacity (span records); oldest spans are overwritten once
  /// full. `Create` rejects values < 1 when tracing is enabled.
  int64_t trace_buffer_spans = 1 << 16;
  /// Slow-query log threshold in milliseconds; negative disables the
  /// log. Executed groups at or above the threshold — or flagging an LCV
  /// violation — land in a bounded structured log, independent of
  /// `enable_tracing`.
  double slow_query_ms = -1.0;
  /// Registry-backed metrics (`obs/metrics_registry.h`): every terminal
  /// counter and the latency/service distributions also stream into
  /// named counters/histograms, scrapeable as Prometheus text or JSON.
  /// Off by default; when off, every site is one branch (the same
  /// discipline as tracing). After a drain the registry counters
  /// reconcile exactly with `ServerStatsSnapshot` totals — *if* this
  /// server is the registry's only writer; servers sharing one registry
  /// aggregate into the same series.
  bool enable_metrics = false;
  /// Registry to publish into; null means `MetricsRegistry::Global()`.
  /// Tests and embedded multi-server processes pass their own.
  MetricsRegistry* metrics_registry = nullptr;
  /// Background stats poller period in milliseconds; <= 0 disables it.
  /// When > 0 a `StatsPoller` thread snapshots the server every period
  /// into a `TimeSeriesRing` (`timeseries()`) — QIF, windowed
  /// throughput, LCV, queue depth, shed/reject rates, cache hit rate,
  /// trace drops — the per-second series behind `BENCH_serve.json`.
  double stats_poll_ms = 0.0;
  /// Ring capacity in samples once the poller is on (default ten
  /// minutes at 1 s resolution). `Create` rejects values < 1 when the
  /// poller is enabled.
  int64_t stats_ring_samples = 600;
};

/// What happened to one submission at the server door.
enum class SubmitDisposition {
  kEnqueued,   ///< Admitted into the session queue.
  kCoalesced,  ///< Admitted, replacing older pending group(s) (debounce).
  kThrottled,  ///< Shed at the door by the throttle policy.
  kRejected,   ///< Backpressure: queue full or hard overload.
};

const char* SubmitDispositionToString(SubmitDisposition d);

struct SubmitOutcome {
  uint64_t seq = 0;  ///< Per-session submission sequence number.
  SubmitDisposition disposition = SubmitDisposition::kEnqueued;
  LoadAssessment load;  ///< Control-loop view at submission time.
};

/// A concurrent interactive query server over an `Engine`.
///
/// The simulated `QueryScheduler` replays the execution-delay cascade of
/// Fig. 2 on a virtual clock; `QueryServer` is the same serving problem
/// under genuine concurrency: a fixed worker pool executes real queries
/// over real wall time, per-client sessions have isolated bounded queues,
/// and the paper's drain policies (§7.1) plus throttling/debouncing
/// (§3.1.2) act as live admission policies. An `AdmissionController`
/// watches live QIF vs. backend service rate and — in adaptive mode —
/// switches to shedding or rejects with backpressure when interaction
/// outpaces execution (Fig. 3's "overwhelmed backend" quadrant).
///
/// Groups of one session execute one at a time in submission order
/// (sessions model a single frontend connection), but any number of
/// sessions execute in parallel across the worker pool.
///
/// With a sharded backend (the `ShardedEngine` overload of `Create`), a
/// dispatched group goes through three phases instead of one: *scatter*
/// (each query is planned into per-shard subtasks and fanned out to a
/// dedicated shard-worker pool), *execute* (partials run concurrently on
/// the shards), and *merge* (the group worker combines partials into the
/// response an unsharded engine would have produced) — only then does the
/// session see a completion. `OnlineMetrics` attributes service time to
/// the three phases, and the admission controller's capacity estimate
/// accounts for the shard pool and the merge stage separately.
///
/// With the shared result cache (`ServerOptions::enable_shared_cache`),
/// every query of every session funnels through one `ResultCache` layered
/// above the backend: hits and coalesced waits skip the backend entirely,
/// so repeated crossfilter interactions cost a map lookup instead of a
/// scan, and the admission controller's service-time EWMA shrinks on hits
/// — its capacity estimate (and therefore the saturation knee) rises on
/// cache-friendly workloads with no extra plumbing. Over a sharded
/// backend the cache's miss path scatters and merges a single query
/// (`ExecuteOneSharded`); the per-phase attribution then collapses into
/// the `execute` phase since the backend runs inside the cache.
///
/// All public methods are thread-safe.
class QueryServer {
 public:
  /// Validates `options`, creates the server, and starts the worker pool.
  /// `engine` must outlive the server, have all tables registered, and is
  /// used read-only.
  static Result<std::unique_ptr<QueryServer>> Create(const Engine* engine,
                                                     ServerOptions options);

  /// Sharded variant: groups scatter across `sharded`'s shards and merge
  /// before completing. `sharded` must outlive the server, have all
  /// tables partitioned/replicated, and is used read-only. Rejects
  /// `enable_session_cache` (see `ServerOptions`); the shared cache is
  /// the supported result reuse over a sharded backend.
  static Result<std::unique_ptr<QueryServer>> Create(
      const ShardedEngine* sharded, ServerOptions options);

  /// Stops the workers (queued-but-unstarted groups are abandoned; call
  /// `Drain` first for a clean shutdown).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Opens an isolated session and returns its id.
  uint64_t OpenSession();

  /// Marks a session closed: future submissions fail, pending work still
  /// drains, stats are retained.
  Status CloseSession(uint64_t session_id);

  /// Submits one coordinated query group on behalf of `session_id`. The
  /// returned outcome says whether it was admitted, shed, or pushed back.
  /// Errors only on unknown/closed sessions or empty groups.
  Result<SubmitOutcome> Submit(uint64_t session_id,
                               std::vector<Query> queries);

  /// As above, with a terminal-state callback: invoked exactly once for
  /// every *admitted* group (disposition `kEnqueued` / `kCoalesced`) when
  /// it reaches its terminal state — executed (with per-query results
  /// captured) or shed after admission (stale / coalesced). Door verdicts
  /// (`kThrottled` / `kRejected`) are fully described by the returned
  /// outcome and never invoke the callback, so a networked caller can
  /// answer those synchronously and wait for exactly one completion per
  /// admitted group. The callback runs under the server lock — on a
  /// worker thread or inside a later `Submit` of the same session — and
  /// must not call back into this server (see `GroupCompletionFn`).
  Result<SubmitOutcome> Submit(uint64_t session_id,
                               std::vector<Query> queries,
                               GroupCompletionFn on_complete);

  /// Blocks until every admitted group has finished executing.
  void Drain();

  /// Stops the worker pool. Idempotent.
  void Stop();

  /// Consistent point-in-time stats (prunes sliding windows, hence
  /// non-const).
  ServerStatsSnapshot Snapshot();

  /// The shared result cache, or null when `enable_shared_cache` is off.
  /// `Clear` / `InvalidateTable` / `Stats` are safe on a live server;
  /// invalidate inside the same quiesced window as any backend mutation
  /// (see `Engine::ClearCaches`'s quiesce contract).
  ResultCache* result_cache() { return result_cache_.get(); }
  const ResultCache* result_cache() const { return result_cache_.get(); }

  /// The span ring buffer, or null when `enable_tracing` is off.
  /// `Snapshot` / `Stats` / `ExportChromeTrace` are safe on a live
  /// server.
  TraceBuffer* trace_buffer() { return trace_.get(); }
  const TraceBuffer* trace_buffer() const { return trace_.get(); }

  /// The slow-query log, or null when `slow_query_ms` is negative.
  const SlowQueryLog* slow_query_log() const { return slow_log_.get(); }

  /// The registry this server publishes into, or null when
  /// `enable_metrics` is off. Scrape with `ExpositionText` /
  /// `ExpositionJson`.
  MetricsRegistry* metrics_registry() { return mreg_; }
  const MetricsRegistry* metrics_registry() const { return mreg_; }

  /// The poller-filled per-period sample ring, or null when
  /// `stats_poll_ms` <= 0.
  const TimeSeriesRing* timeseries() const { return timeseries_.get(); }

  /// Builds one `StatsSample` from a fresh snapshot — what the poller
  /// pushes every period. Public so benches can stamp a final sample at
  /// drain time regardless of period phase. Rates-per-second fields are
  /// deltas against the previous call; call from one thread at a time
  /// (the poller, or the bench after the poller stopped).
  StatsSample SampleStats();

  const ServerOptions& options() const { return options_; }

 private:
  QueryServer(const Engine* engine, const ShardedEngine* sharded,
              ServerOptions options);

  /// Option checks shared by both `Create` overloads.
  static Status ValidateOptions(const ServerOptions& options);

  void WorkerLoop();

  /// One planned partial waiting for (or being run by) a shard worker.
  /// The pointed-to group state lives on the dispatching group worker's
  /// stack; it stays valid until that worker has observed completion
  /// under `done_mu`.
  struct ShardTask {
    const Engine* engine = nullptr;
    const Query* query = nullptr;
    /// Slot for the partial result and its wall execution time.
    std::optional<Result<QueryResponse>>* result = nullptr;
    Duration* wall = nullptr;
    // Group-completion bookkeeping (guarded by *done_mu).
    std::mutex* done_mu = nullptr;
    std::condition_variable* done_cv = nullptr;
    int* remaining = nullptr;
    /// Tracing (disabled context when tracing is off): the shard worker
    /// emits a kShardExec span under `parent_span` on lane `lane`.
    TraceContext trace;
    uint64_t parent_span = 0;
    int32_t shard = 0;
    int32_t lane = 0;
  };

  void ShardWorkerLoop();

  /// Per-group tally of the scatter/execute/merge pipeline.
  struct GroupOutcome {
    int64_t executed = 0;  ///< Queries whose merged response is OK.
    int64_t failed = 0;    ///< Plan, partial, or merge failures.
    Duration scatter;      ///< Plan + fan-out.
    Duration execute;      ///< Fan-out done -> last partial done.
    Duration merge;        ///< Partial-combine wall time.
    Duration shard_exec_mean;  ///< Mean partial wall time (capacity feed).
  };

  /// Runs one admitted group through the sharded pipeline, emitting
  /// scatter/shard/merge spans under `trace`'s root when enabled. Called
  /// by a group worker outside the server lock. When `capture` is
  /// non-null it is resized to the group size and each query's merged
  /// result lands in its submission-order slot (failures stay empty) —
  /// the completion-callback result path.
  GroupOutcome ExecuteGroupSharded(
      const std::vector<Query>& queries, const TraceContext& trace,
      std::vector<std::optional<QueryResultData>>* capture);

  /// Scatters, executes, and merges a single query on the sharded
  /// backend, returning the merged response: the shared cache's miss path
  /// over `sharded_`. Per-shard spans parent under `parent_span_id`.
  /// Called outside every lock (the shard pool has its own).
  Result<QueryResponse> ExecuteOneSharded(const Query& query,
                                          const TraceContext& trace,
                                          uint64_t parent_span_id);

  /// Emits the instant kAdmission span for a submission and, when the
  /// verdict is terminal (shed or rejected at the door), closes the root
  /// group span too. No-op when tracing is off.
  void TraceAdmission(const TraceContext& trace, const SubmitOutcome& out,
                      SimTime now, int64_t queue_depth);

  /// Wall-clock time since server start, as a `SimTime` so the metric
  /// stack's types apply to live timestamps too.
  SimTime Now() const;
  std::chrono::steady_clock::time_point ToSteady(SimTime t) const;

  /// Picks the next dispatchable session (round-robin, honoring per
  /// -session serialization and debounce quiet periods). Returns null if
  /// nothing is runnable; `*deadline` is set when work becomes runnable
  /// at a known future time. Caller holds `mu_`.
  ServeSession* PickSession(SimTime now, SimTime* deadline,
                            bool* has_deadline);

  /// Pops the next group of `session` per the effective policy, shedding
  /// stale ones with accounting. Caller holds `mu_`.
  PendingGroup PopGroup(ServeSession* session);

  const Engine* engine_;            ///< Unsharded backend (or null).
  const ShardedEngine* sharded_;    ///< Sharded backend (or null).
  ServerOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Workers wait for runnable work.
  std::condition_variable idle_cv_;   ///< Drain waits for quiescence.
  SessionManager sessions_;           ///< Guarded by mu_.
  AdmissionController controller_;    ///< Guarded by mu_.
  AdmissionPolicy effective_policy_;  ///< Guarded by mu_.
  size_t rr_cursor_ = 0;              ///< Round-robin start. Guarded by mu_.
  int64_t in_flight_ = 0;             ///< Groups being executed right now.
  bool stop_ = false;

  /// Registry handles for the hot-path sites. All null when
  /// `enable_metrics` is off, so each site costs one branch; when on,
  /// each increment is one relaxed atomic — no lock is ever taken on the
  /// serve path for metrics.
  struct HotMetrics {
    Counter* submitted = nullptr;
    Counter* admitted = nullptr;
    Counter* executed = nullptr;
    Counter* shed_stale = nullptr;
    Counter* shed_coalesced = nullptr;
    Counter* shed_throttled = nullptr;
    Counter* rejected = nullptr;
    Counter* queries_executed = nullptr;
    Counter* queries_failed = nullptr;
    Counter* cache_hits = nullptr;
    Counter* lcv_violations = nullptr;
    Histogram* latency_ms = nullptr;
    Histogram* service_ms = nullptr;
  };
  /// Gauges refreshed from every `Snapshot()` (so a scrape after a
  /// snapshot — or the poller's periodic one — sees current values).
  struct GaugeMetrics {
    Gauge* qif_qps = nullptr;
    Gauge* throughput_window_qps = nullptr;
    Gauge* queue_depth = nullptr;
    Gauge* lcv_fraction = nullptr;
    Gauge* load_factor = nullptr;
    Gauge* sessions_open = nullptr;
    Gauge* cache_hit_rate = nullptr;
    Gauge* trace_dropped = nullptr;
  };

  /// Registers the serve metric family into `mreg_`. Constructor-only.
  void RegisterMetrics();
  /// Pushes `snap`'s instantaneous values into the gauges.
  void UpdateGauges(const ServerStatsSnapshot& snap);

  OnlineMetrics metrics_;  ///< Internally synchronized.
  MetricsRegistry* mreg_ = nullptr;  ///< Null when metrics are off.
  HotMetrics hot_;
  GaugeMetrics gauges_;
  /// Poller state (null unless `stats_poll_ms` > 0). The poller thread
  /// is the only `SampleStats` caller while running; `poll_prev_` is its
  /// private delta baseline.
  std::unique_ptr<TimeSeriesRing> timeseries_;
  std::unique_ptr<StatsPoller> poller_;
  StatsSample poll_prev_;
  /// Shared cache above the backend (null unless enabled) and the backend
  /// callable its misses execute. Both internally synchronized.
  std::unique_ptr<ResultCache> result_cache_;
  ResultCache::TracedBackend cache_backend_;
  /// Tracing backend (null unless `enable_tracing`) and slow-query log
  /// (null unless `slow_query_ms >= 0`). Both internally synchronized.
  std::unique_ptr<TraceBuffer> trace_;
  std::unique_ptr<SlowQueryLog> slow_log_;
  std::vector<std::thread> workers_;

  // --- Shard-executor pool (sharded servers only). ---
  std::mutex shard_mu_;
  std::condition_variable shard_cv_;
  std::deque<ShardTask> shard_queue_;  ///< Guarded by shard_mu_.
  bool shard_stop_ = false;            ///< Guarded by shard_mu_.
  std::vector<std::thread> shard_threads_;
};

}  // namespace ideval

#endif  // IDEVAL_SERVE_SERVER_H_
