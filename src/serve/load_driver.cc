#include "serve/load_driver.h"

#include <chrono>
#include <thread>

namespace ideval {

Status ReplayClients(
    const std::vector<std::vector<QueryGroup>>& clients,
    double time_compression,
    const std::function<void(size_t, const QueryGroup&)>& submit) {
  if (time_compression <= 0.0) {
    return Status::InvalidArgument("time_compression must be > 0");
  }
  if (!submit) {
    return Status::InvalidArgument("ReplayClients: null submit callback");
  }
  for (const auto& groups : clients) {
    for (size_t i = 1; i < groups.size(); ++i) {
      if (groups[i].issue_time < groups[i - 1].issue_time) {
        return Status::InvalidArgument(
            "client groups must be sorted by issue time");
      }
    }
  }
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (size_t ci = 0; ci < clients.size(); ++ci) {
    threads.emplace_back([&, ci] {
      for (const QueryGroup& group : clients[ci]) {
        const auto target =
            epoch + std::chrono::microseconds(static_cast<int64_t>(
                        static_cast<double>(group.issue_time.micros()) /
                        time_compression));
        std::this_thread::sleep_until(target);
        submit(ci, group);
      }
    });
  }
  for (auto& t : threads) t.join();
  return Status::OK();
}

Result<LoadReport> RunLoadDriver(
    QueryServer* server, const std::vector<std::vector<QueryGroup>>& clients,
    LoadDriverOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("RunLoadDriver: null server");
  }

  LoadReport report;
  report.clients.resize(clients.size());
  for (auto& c : report.clients) c.session_id = server->OpenSession();

  const auto epoch = std::chrono::steady_clock::now();
  IDEVAL_RETURN_NOT_OK(ReplayClients(
      clients, options.time_compression,
      [&](size_t ci, const QueryGroup& group) {
        ClientLoadResult& tally = report.clients[ci];
        auto outcome = server->Submit(tally.session_id, group.queries);
        ++tally.submitted;
        if (!outcome.ok()) return;  // Closed session etc.; keep going.
        switch (outcome->disposition) {
          case SubmitDisposition::kEnqueued:
            ++tally.enqueued;
            break;
          case SubmitDisposition::kCoalesced:
            ++tally.coalesced;
            break;
          case SubmitDisposition::kThrottled:
            ++tally.throttled;
            break;
          case SubmitDisposition::kRejected:
            ++tally.rejected;
            break;
        }
      }));
  if (options.drain) server->Drain();
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - epoch)
          .count();
  report.snapshot = server->Snapshot();
  return report;
}

}  // namespace ideval
