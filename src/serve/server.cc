#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/text_table.h"

namespace ideval {

const char* SubmitDispositionToString(SubmitDisposition d) {
  switch (d) {
    case SubmitDisposition::kEnqueued:
      return "enqueued";
    case SubmitDisposition::kCoalesced:
      return "coalesced";
    case SubmitDisposition::kThrottled:
      return "throttled";
    case SubmitDisposition::kRejected:
      return "rejected";
  }
  return "unknown";
}

Status QueryServer::ValidateOptions(const ServerOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be >= 1, got %d", options.num_workers));
  }
  if (options.max_queue_per_session < 1) {
    return Status::InvalidArgument(
        StrFormat("max_queue_per_session must be >= 1, got %d",
                  options.max_queue_per_session));
  }
  if (options.throttle_min_interval < Duration::Zero()) {
    return Status::InvalidArgument("throttle_min_interval must be >= 0");
  }
  if (options.debounce_quiet < Duration::Zero()) {
    return Status::InvalidArgument("debounce_quiet must be >= 0");
  }
  if (options.admission.window <= Duration::Zero()) {
    return Status::InvalidArgument("admission window must be > 0");
  }
  if (options.enable_session_cache && options.session_cache_capacity < 1) {
    return Status::InvalidArgument("session_cache_capacity must be >= 1");
  }
  if (options.enable_shared_cache && options.enable_session_cache) {
    return Status::InvalidArgument(
        "enable_shared_cache and enable_session_cache are mutually "
        "exclusive; the shared cache supersedes the per-session one");
  }
  if (options.enable_shared_cache && options.shared_cache_bytes < 1) {
    return Status::InvalidArgument("shared_cache_bytes must be >= 1");
  }
  if (options.enable_shared_cache && options.shared_cache_shards < 1) {
    return Status::InvalidArgument("shared_cache_shards must be >= 1");
  }
  if (options.shard_workers < 0) {
    return Status::InvalidArgument(
        StrFormat("shard_workers must be >= 0, got %d",
                  options.shard_workers));
  }
  if (options.enable_tracing && options.trace_buffer_spans < 1) {
    return Status::InvalidArgument(
        StrFormat("trace_buffer_spans must be >= 1, got %lld",
                  static_cast<long long>(options.trace_buffer_spans)));
  }
  if (options.stats_poll_ms > 0.0 && options.stats_ring_samples < 1) {
    return Status::InvalidArgument(
        StrFormat("stats_ring_samples must be >= 1, got %lld",
                  static_cast<long long>(options.stats_ring_samples)));
  }
  return Status::OK();
}

Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const Engine* engine, ServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("QueryServer needs an engine");
  }
  IDEVAL_RETURN_NOT_OK(ValidateOptions(options));
  auto server = std::unique_ptr<QueryServer>(
      new QueryServer(engine, /*sharded=*/nullptr, std::move(options)));
  server->workers_.reserve(
      static_cast<size_t>(server->options_.num_workers));
  for (int i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  // The poller starts last, once the server is fully serveable.
  if (server->poller_ != nullptr) server->poller_->Start();
  return server;
}

Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const ShardedEngine* sharded, ServerOptions options) {
  if (sharded == nullptr) {
    return Status::InvalidArgument("QueryServer needs a sharded engine");
  }
  IDEVAL_RETURN_NOT_OK(ValidateOptions(options));
  if (options.enable_session_cache) {
    return Status::InvalidArgument(
        "session cache is incompatible with a sharded backend; use "
        "enable_shared_cache, which layers above the scatter/merge");
  }
  auto server = std::unique_ptr<QueryServer>(
      new QueryServer(/*engine=*/nullptr, sharded, std::move(options)));
  const int shard_pool = server->options_.shard_workers > 0
                             ? server->options_.shard_workers
                             : sharded->num_shards();
  server->shard_threads_.reserve(static_cast<size_t>(shard_pool));
  for (int i = 0; i < shard_pool; ++i) {
    server->shard_threads_.emplace_back(
        [s = server.get()] { s->ShardWorkerLoop(); });
  }
  server->workers_.reserve(
      static_cast<size_t>(server->options_.num_workers));
  for (int i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  if (server->poller_ != nullptr) server->poller_->Start();
  return server;
}

QueryServer::QueryServer(const Engine* engine, const ShardedEngine* sharded,
                         ServerOptions options)
    : engine_(engine),
      sharded_(sharded),
      options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      controller_(sharded == nullptr
                      ? AdmissionController(options_.num_workers,
                                            options_.admission)
                      : AdmissionController(
                            options_.num_workers, sharded->num_shards(),
                            options_.shard_workers > 0
                                ? options_.shard_workers
                                : sharded->num_shards(),
                            options_.admission)),
      effective_policy_(options_.policy),
      metrics_(options_.admission.window) {
  if (options_.enable_shared_cache) {
    ResultCacheOptions copts;
    copts.byte_budget = options_.shared_cache_bytes;
    copts.num_shards = options_.shared_cache_shards;
    result_cache_ = std::make_unique<ResultCache>(copts);
    cache_backend_ =
        sharded_ != nullptr
            ? ResultCache::TracedBackend(
                  [this](const Query& q, const TraceContext& trace,
                         uint64_t parent) {
                    return ExecuteOneSharded(q, trace, parent);
                  })
            : ResultCache::TracedBackend(
                  [this](const Query& q, const TraceContext&, uint64_t) {
                    return engine_->Execute(q);
                  });
  }
  if (options_.enable_tracing) {
    TraceOptions topts;
    topts.capacity_spans = options_.trace_buffer_spans;
    trace_ = std::make_unique<TraceBuffer>(topts);
    // Share the server's epoch so span timestamps line up with `Now()`.
    trace_->set_epoch(epoch_);
  }
  if (options_.slow_query_ms >= 0.0) {
    SlowQueryLogOptions sopts;
    sopts.threshold = Duration::MillisF(options_.slow_query_ms);
    slow_log_ = std::make_unique<SlowQueryLog>(sopts);
  }
  if (options_.enable_metrics) {
    mreg_ = options_.metrics_registry != nullptr
                ? options_.metrics_registry
                : &MetricsRegistry::Global();
    RegisterMetrics();
  }
  if (options_.stats_poll_ms > 0.0) {
    timeseries_ =
        std::make_unique<TimeSeriesRing>(options_.stats_ring_samples);
    poller_ = std::make_unique<StatsPoller>(
        Duration::MillisF(options_.stats_poll_ms),
        [this] { return SampleStats(); }, timeseries_.get());
  }
}

void QueryServer::RegisterMetrics() {
  hot_.submitted = mreg_->RegisterCounter(
      "ideval_serve_groups_submitted_total",
      "Query groups submitted (admitted or not)");
  hot_.admitted = mreg_->RegisterCounter(
      "ideval_serve_groups_admitted_total",
      "Query groups past the admission door into a session queue");
  hot_.executed = mreg_->RegisterCounter(
      "ideval_serve_groups_executed_total",
      "Query groups that ran to completion");
  hot_.shed_stale = mreg_->RegisterCounter(
      "ideval_serve_groups_shed_stale_total",
      "Groups shed as stale (skip-stale dispatch or overflow)");
  hot_.shed_coalesced = mreg_->RegisterCounter(
      "ideval_serve_groups_shed_coalesced_total",
      "Groups superseded by a newer debounced submission");
  hot_.shed_throttled = mreg_->RegisterCounter(
      "ideval_serve_groups_shed_throttled_total",
      "Groups shed at the door by the throttle policy");
  hot_.rejected = mreg_->RegisterCounter(
      "ideval_serve_groups_rejected_total",
      "Groups pushed back (queue full or hard overload)");
  hot_.queries_executed = mreg_->RegisterCounter(
      "ideval_serve_queries_executed_total",
      "Successful queries inside executed groups");
  hot_.queries_failed = mreg_->RegisterCounter(
      "ideval_serve_queries_failed_total",
      "Failed queries inside executed groups");
  hot_.cache_hits = mreg_->RegisterCounter(
      "ideval_serve_cache_hits_total",
      "Queries answered by the session or shared result cache");
  hot_.lcv_violations = mreg_->RegisterCounter(
      "ideval_serve_lcv_violations_total",
      "Executed groups that finished after a newer submission (LCV)");
  hot_.latency_ms = mreg_->RegisterHistogram(
      "ideval_serve_group_latency_ms",
      "Perceived latency of executed groups, submit to done (ms)");
  hot_.service_ms = mreg_->RegisterHistogram(
      "ideval_serve_group_service_ms",
      "Backend busy time of executed groups, dispatch to done (ms)");
  gauges_.qif_qps = mreg_->RegisterGauge(
      "ideval_serve_qif_qps", "Offered load over the sliding window");
  gauges_.throughput_window_qps = mreg_->RegisterGauge(
      "ideval_serve_throughput_window_qps",
      "Executed queries per second over the sliding window");
  gauges_.queue_depth = mreg_->RegisterGauge(
      "ideval_serve_queue_depth", "Groups pending across all sessions");
  gauges_.lcv_fraction = mreg_->RegisterGauge(
      "ideval_serve_lcv_fraction", "LCV violations / executed groups");
  gauges_.load_factor = mreg_->RegisterGauge(
      "ideval_serve_load_factor", "Offered / capacity (Fig. 3 ratio)");
  gauges_.sessions_open = mreg_->RegisterGauge(
      "ideval_serve_sessions_open", "Currently open sessions");
  gauges_.cache_hit_rate = mreg_->RegisterGauge(
      "ideval_serve_cache_hit_rate",
      "Shared result cache hit rate (-1 when the cache is off)");
  gauges_.trace_dropped = mreg_->RegisterGauge(
      "ideval_serve_trace_dropped",
      "Spans overwritten in the trace ring (0 when tracing is off)");
}

void QueryServer::UpdateGauges(const ServerStatsSnapshot& snap) {
  if (gauges_.qif_qps == nullptr) return;
  gauges_.qif_qps->Set(snap.qif_qps);
  gauges_.throughput_window_qps->Set(snap.throughput_window_qps);
  gauges_.queue_depth->Set(static_cast<double>(snap.groups_queued));
  gauges_.lcv_fraction->Set(snap.lcv_fraction);
  gauges_.load_factor->Set(snap.load.load_factor);
  gauges_.sessions_open->Set(static_cast<double>(snap.sessions_open));
  gauges_.cache_hit_rate->Set(
      snap.result_cache_enabled ? snap.result_cache.HitRate() : -1.0);
  gauges_.trace_dropped->Set(
      snap.tracing_enabled ? static_cast<double>(snap.trace_buffer.dropped)
                           : 0.0);
}

QueryServer::~QueryServer() { Stop(); }

SimTime QueryServer::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return SimTime::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

std::chrono::steady_clock::time_point QueryServer::ToSteady(SimTime t) const {
  return epoch_ + std::chrono::microseconds(t.micros());
}

uint64_t QueryServer::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Open(options_.admission.window);
  if (options_.enable_session_cache) {
    SessionCache::Options copts;
    copts.capacity = options_.session_cache_capacity;
    // The cache borrows the engine for misses; it never mutates tables,
    // so the const_cast only widens access back to the read-only Execute.
    s->set_cache(std::make_unique<SessionCache>(
        const_cast<Engine*>(engine_), copts));
  }
  return s->id();
}

Status QueryServer::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Get(session_id);
  if (s == nullptr) {
    return Status::NotFound(
        StrFormat("no session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  s->set_closed(true);
  return Status::OK();
}

void QueryServer::TraceAdmission(const TraceContext& trace,
                                 const SubmitOutcome& out, SimTime now,
                                 int64_t queue_depth) {
  if (!trace.enabled()) return;
  RecordSpan(trace, SpanKind::kAdmission, trace.buffer->NewSpanId(),
             trace.root_span_id, now.micros(), now.micros(),
             static_cast<uint32_t>(out.disposition),
             static_cast<int64_t>(out.load.state), queue_depth,
             static_cast<int64_t>(out.load.load_factor * 1000.0));
  // A door shed is the group's terminal state: close the root span too.
  if (out.disposition == SubmitDisposition::kThrottled ||
      out.disposition == SubmitDisposition::kRejected) {
    const GroupTerminal terminal =
        out.disposition == SubmitDisposition::kThrottled
            ? GroupTerminal::kShedThrottled
            : GroupTerminal::kRejected;
    RecordSpan(trace, SpanKind::kGroup, trace.root_span_id,
               /*parent_span_id=*/0, now.micros(), now.micros(),
               static_cast<uint32_t>(terminal));
  }
}

namespace {

/// Builds the terminal report for a group shed after admission and hands
/// it to the group's callback, if any. Caller holds the server lock (the
/// callback contract, see `GroupCompletionFn`).
void NotifyShed(PendingGroup* group, uint64_t session_id,
                GroupTerminal terminal, SimTime now) {
  if (!group->on_complete) return;
  GroupCompletion done;
  done.session_id = session_id;
  done.seq = group->seq;
  done.terminal = terminal;
  done.latency = now - group->submit_time;
  group->on_complete(std::move(done));
  group->on_complete = nullptr;
}

}  // namespace

Result<SubmitOutcome> QueryServer::Submit(uint64_t session_id,
                                          std::vector<Query> queries) {
  return Submit(session_id, std::move(queries), nullptr);
}

Result<SubmitOutcome> QueryServer::Submit(uint64_t session_id,
                                          std::vector<Query> queries,
                                          GroupCompletionFn on_complete) {
  if (queries.empty()) {
    return Status::InvalidArgument("Submit: empty query group");
  }
  const SimTime now = Now();
  metrics_.RecordSubmit(now);

  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Get(session_id);
  if (s == nullptr) {
    return Status::NotFound(
        StrFormat("no session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  if (s->closed()) {
    return Status::FailedPrecondition(
        StrFormat("session %llu is closed",
                  static_cast<unsigned long long>(session_id)));
  }

  SubmitOutcome out;
  out.seq = s->RecordSubmit(now);
  if (hot_.submitted != nullptr) hot_.submitted->Increment();
  controller_.OnSubmit(now);
  out.load = controller_.Assess(now);
  if (options_.adaptive_admission) {
    // Fig. 3 as a control loop: shed stale work while overwhelmed, go
    // back to the configured policy once execution catches up.
    effective_policy_ = out.load.state == LoadState::kOverloaded
                            ? AdmissionPolicy::kSkipStale
                            : options_.policy;
  }

  // The trace handle the group carries through its whole pipeline; a
  // disabled (null-buffer) context when tracing is off.
  const TraceContext trace = MakeTraceContext(trace_.get(), session_id);

  if (out.load.reject) {
    ++s->counters().groups_rejected;
    if (hot_.rejected != nullptr) hot_.rejected->Increment();
    out.disposition = SubmitDisposition::kRejected;
    TraceAdmission(trace, out, now,
                   static_cast<int64_t>(s->queue().size()));
    return out;
  }

  SessionCounters& c = s->counters();
  const size_t cap = static_cast<size_t>(options_.max_queue_per_session);
  switch (effective_policy_) {
    case AdmissionPolicy::kThrottle:
      if (s->last_admitted().has_value() &&
          now - *s->last_admitted() < options_.throttle_min_interval) {
        ++c.groups_shed_throttled;
        if (hot_.shed_throttled != nullptr) hot_.shed_throttled->Increment();
        out.disposition = SubmitDisposition::kThrottled;
        TraceAdmission(trace, out, now,
                       static_cast<int64_t>(s->queue().size()));
        return out;
      }
      if (s->queue().size() >= cap) {
        ++c.groups_rejected;
        if (hot_.rejected != nullptr) hot_.rejected->Increment();
        out.disposition = SubmitDisposition::kRejected;
        TraceAdmission(trace, out, now,
                       static_cast<int64_t>(s->queue().size()));
        return out;
      }
      s->set_last_admitted(now);
      break;
    case AdmissionPolicy::kDebounce:
      // Newest-wins coalescing: anything still pending is superseded.
      if (!s->queue().empty()) {
        for (PendingGroup& old : s->queue()) {
          // Terminal state for the superseded groups: their root spans
          // close here, never having reached a worker.
          RecordSpan(old.trace, SpanKind::kGroup, old.trace.root_span_id,
                     /*parent_span_id=*/0, old.submit_time.micros(),
                     now.micros(),
                     static_cast<uint32_t>(GroupTerminal::kShedCoalesced));
          NotifyShed(&old, session_id, GroupTerminal::kShedCoalesced, now);
        }
        c.groups_shed_coalesced +=
            static_cast<int64_t>(s->queue().size());
        if (hot_.shed_coalesced != nullptr) {
          hot_.shed_coalesced->Increment(
              static_cast<int64_t>(s->queue().size()));
        }
        s->queue().clear();
        out.disposition = SubmitDisposition::kCoalesced;
      }
      break;
    case AdmissionPolicy::kFifo:
      if (s->queue().size() >= cap) {
        ++c.groups_rejected;
        if (hot_.rejected != nullptr) hot_.rejected->Increment();
        out.disposition = SubmitDisposition::kRejected;
        TraceAdmission(trace, out, now,
                       static_cast<int64_t>(s->queue().size()));
        return out;
      }
      break;
    case AdmissionPolicy::kSkipStale:
      if (s->queue().size() >= cap) {
        // Shed the stalest pending group instead of pushing back.
        PendingGroup& victim = s->queue().front();
        RecordSpan(victim.trace, SpanKind::kGroup,
                   victim.trace.root_span_id, /*parent_span_id=*/0,
                   victim.submit_time.micros(), now.micros(),
                   static_cast<uint32_t>(GroupTerminal::kShedStale));
        NotifyShed(&victim, session_id, GroupTerminal::kShedStale, now);
        s->queue().pop_front();
        ++c.groups_shed_stale;
        if (hot_.shed_stale != nullptr) hot_.shed_stale->Increment();
      }
      break;
  }

  PendingGroup g;
  g.seq = out.seq;
  g.submit_time = now;
  g.trace = trace;
  g.queries = std::move(queries);
  g.on_complete = std::move(on_complete);
  s->queue().push_back(std::move(g));
  ++c.groups_admitted;
  if (hot_.admitted != nullptr) hot_.admitted->Increment();
  s->NoteQueueDepth(static_cast<int64_t>(s->queue().size()));
  TraceAdmission(trace, out, now, static_cast<int64_t>(s->queue().size()));
  work_cv_.notify_all();
  return out;
}

ServeSession* QueryServer::PickSession(SimTime now, SimTime* deadline,
                                       bool* has_deadline) {
  *has_deadline = false;
  const auto& all = sessions_.sessions();
  const size_t n = all.size();
  if (n == 0) return nullptr;
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (rr_cursor_ + k) % n;
    ServeSession* s = all[i].get();
    if (s->busy() || s->queue().empty()) continue;
    if (effective_policy_ == AdmissionPolicy::kDebounce) {
      const SimTime runnable_at = s->last_submit() + options_.debounce_quiet;
      if (now < runnable_at) {
        if (!*has_deadline || runnable_at < *deadline) {
          *deadline = runnable_at;
          *has_deadline = true;
        }
        continue;
      }
    }
    rr_cursor_ = (i + 1) % n;
    return s;
  }
  return nullptr;
}

PendingGroup QueryServer::PopGroup(ServeSession* session) {
  std::deque<PendingGroup>& q = session->queue();
  if (effective_policy_ == AdmissionPolicy::kSkipStale) {
    // Jump to the newest pending group; everything older is stale.
    if (q.size() > 1) {
      const SimTime now = Now();
      for (size_t i = 0; i + 1 < q.size(); ++i) {
        RecordSpan(q[i].trace, SpanKind::kGroup, q[i].trace.root_span_id,
                   /*parent_span_id=*/0, q[i].submit_time.micros(),
                   now.micros(),
                   static_cast<uint32_t>(GroupTerminal::kShedStale));
        NotifyShed(&q[i], session->id(), GroupTerminal::kShedStale, now);
      }
    }
    session->counters().groups_shed_stale +=
        static_cast<int64_t>(q.size()) - 1;
    if (hot_.shed_stale != nullptr) {
      hot_.shed_stale->Increment(static_cast<int64_t>(q.size()) - 1);
    }
    PendingGroup g = std::move(q.back());
    q.clear();
    return g;
  }
  PendingGroup g = std::move(q.front());
  q.pop_front();
  return g;
}

void QueryServer::ShardWorkerLoop() {
  std::unique_lock<std::mutex> lock(shard_mu_);
  for (;;) {
    shard_cv_.wait(lock,
                   [this] { return shard_stop_ || !shard_queue_.empty(); });
    // Drain before exiting so a group worker blocked on its partials is
    // never stranded by shutdown.
    if (shard_queue_.empty()) return;
    ShardTask task = shard_queue_.front();
    shard_queue_.pop_front();
    lock.unlock();

    const SimTime t0 = Now();
    Result<QueryResponse> r = task.engine->Execute(*task.query);
    const Duration wall = Now() - t0;
    if (task.trace.enabled()) {
      RecordSpan(task.trace, SpanKind::kShardExec,
                 task.trace.buffer->NewSpanId(), task.parent_span,
                 t0.micros(), (t0 + wall).micros(),
                 static_cast<uint32_t>(task.lane), task.shard,
                 r.ok() ? r->stats.blocks_scanned : 0,
                 r.ok() ? r->stats.blocks_pruned : 0);
    }
    {
      // Notify under the lock: the instant `remaining` hits zero the
      // dispatching worker may wake and destroy the group state, so no
      // touch of task.* may happen after the decrement outside done_mu.
      std::lock_guard<std::mutex> done(*task.done_mu);
      task.result->emplace(std::move(r));
      *task.wall = wall;
      if (--*task.remaining == 0) task.done_cv->notify_one();
    }
    lock.lock();
  }
}

QueryServer::GroupOutcome QueryServer::ExecuteGroupSharded(
    const std::vector<Query>& queries, const TraceContext& trace,
    std::vector<std::optional<QueryResultData>>* capture) {
  GroupOutcome out;
  if (capture != nullptr) capture->resize(queries.size());
  const SimTime t0 = Now();
  // Allocated up front so shard workers can parent their spans under the
  // execute window before it is recorded.
  const uint64_t execute_span_id =
      trace.enabled() ? trace.buffer->NewSpanId() : 0;

  // Plan every query into per-shard subtasks. Plan failures fail the
  // query immediately; its partials never reach the shard pool.
  struct PlannedQuery {
    const Query* query = nullptr;
    size_t query_index = 0;  ///< Submission-order slot in `capture`.
    ShardedEngine::ShardPlan plan;
    size_t first_slot = 0;  ///< Index of its first partial in the slots.
  };
  std::vector<PlannedQuery> planned;
  planned.reserve(queries.size());
  size_t total_subtasks = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& query = queries[qi];
    auto plan = sharded_->Plan(query);
    if (!plan.ok()) {
      ++out.failed;
      continue;
    }
    PlannedQuery pq;
    pq.query = &query;
    pq.query_index = qi;
    pq.plan = std::move(*plan);
    pq.first_slot = total_subtasks;
    total_subtasks += pq.plan.subtasks.size();
    planned.push_back(std::move(pq));
  }

  // Group completion state, on this worker's stack. Shard workers hold
  // pointers into it until the last decrement under done_mu, after which
  // the wait below returns and the state may be destroyed.
  std::vector<std::optional<Result<QueryResponse>>> slots(total_subtasks);
  std::vector<Duration> walls(total_subtasks);
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = static_cast<int>(total_subtasks);

  {
    std::lock_guard<std::mutex> lock(shard_mu_);
    for (const PlannedQuery& pq : planned) {
      for (size_t i = 0; i < pq.plan.subtasks.size(); ++i) {
        const auto& sub = pq.plan.subtasks[i];
        ShardTask task;
        task.engine = sharded_->shard(sub.shard);
        task.query = &sub.query;
        task.result = &slots[pq.first_slot + i];
        task.wall = &walls[pq.first_slot + i];
        task.done_mu = &done_mu;
        task.done_cv = &done_cv;
        task.remaining = &remaining;
        task.trace = trace;
        task.parent_span = execute_span_id;
        task.shard = static_cast<int32_t>(sub.shard);
        task.lane = static_cast<int32_t>(pq.first_slot + i);
        shard_queue_.push_back(task);
      }
    }
  }
  shard_cv_.notify_all();
  const SimTime t1 = Now();  // Scatter done: all partials queued.
  RecordSpan(trace, SpanKind::kScatter,
             trace.enabled() ? trace.buffer->NewSpanId() : 0,
             trace.root_span_id, t0.micros(), t1.micros(), /*detail=*/0,
             static_cast<int64_t>(total_subtasks),
             static_cast<int64_t>(planned.size()), out.failed);

  {
    std::unique_lock<std::mutex> done(done_mu);
    done_cv.wait(done, [&remaining] { return remaining == 0; });
  }
  const SimTime t2 = Now();  // Execute done: last partial finished.
  if (trace.enabled()) {
    // The execute window's attrs aggregate the partials' work stats
    // (slots are still intact here; the merge below consumes them).
    int64_t tuples = 0, scanned = 0, pruned = 0;
    for (const auto& slot : slots) {
      if (!slot->ok()) continue;
      tuples += (*slot)->stats.tuples_scanned;
      scanned += (*slot)->stats.blocks_scanned;
      pruned += (*slot)->stats.blocks_pruned;
    }
    RecordSpan(trace, SpanKind::kExecute, execute_span_id,
               trace.root_span_id, t1.micros(), t2.micros(), /*detail=*/0,
               tuples, scanned, pruned);
  }

  // Merge each query's partials into the response an unsharded engine
  // would have produced.
  for (const PlannedQuery& pq : planned) {
    std::vector<QueryResponse> partials;
    partials.reserve(pq.plan.subtasks.size());
    bool partial_failed = false;
    for (size_t i = 0; i < pq.plan.subtasks.size(); ++i) {
      auto& slot = slots[pq.first_slot + i];
      if (!slot->ok()) {
        partial_failed = true;
        break;
      }
      partials.push_back(std::move(**slot));
    }
    if (partial_failed) {
      ++out.failed;
      continue;
    }
    auto merged = sharded_->Merge(*pq.query, pq.plan, std::move(partials));
    if (merged.ok()) {
      ++out.executed;
      if (capture != nullptr) {
        (*capture)[pq.query_index] = std::move(merged->data);
      }
    } else {
      ++out.failed;
    }
  }
  const SimTime t3 = Now();
  RecordSpan(trace, SpanKind::kMerge,
             trace.enabled() ? trace.buffer->NewSpanId() : 0,
             trace.root_span_id, t2.micros(), t3.micros(), /*detail=*/0,
             out.executed, out.failed);

  out.scatter = t1 - t0;
  out.execute = t2 - t1;
  out.merge = t3 - t2;
  if (total_subtasks > 0) {
    Duration sum;
    for (const Duration& w : walls) sum = sum + w;
    out.shard_exec_mean =
        Duration::Micros(sum.micros() / static_cast<int64_t>(total_subtasks));
  }
  return out;
}

Result<QueryResponse> QueryServer::ExecuteOneSharded(
    const Query& query, const TraceContext& trace,
    uint64_t parent_span_id) {
  Span scatter(trace, SpanKind::kScatter, parent_span_id);
  IDEVAL_ASSIGN_OR_RETURN(ShardedEngine::ShardPlan plan,
                          sharded_->Plan(query));
  const size_t n = plan.subtasks.size();
  std::vector<std::optional<Result<QueryResponse>>> slots(n);
  std::vector<Duration> walls(n);
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = static_cast<int>(n);

  {
    std::lock_guard<std::mutex> lock(shard_mu_);
    for (size_t i = 0; i < n; ++i) {
      const auto& sub = plan.subtasks[i];
      ShardTask task;
      task.engine = sharded_->shard(sub.shard);
      task.query = &sub.query;
      task.result = &slots[i];
      task.wall = &walls[i];
      task.done_mu = &done_mu;
      task.done_cv = &done_cv;
      task.remaining = &remaining;
      task.trace = trace;
      task.parent_span = parent_span_id;
      task.shard = static_cast<int32_t>(sub.shard);
      task.lane = static_cast<int32_t>(i);
      shard_queue_.push_back(task);
    }
  }
  shard_cv_.notify_all();
  scatter.SetAttrs(static_cast<int64_t>(n), 1, 0);
  scatter.End();
  {
    std::unique_lock<std::mutex> done(done_mu);
    done_cv.wait(done, [&remaining] { return remaining == 0; });
  }

  std::vector<QueryResponse> partials;
  partials.reserve(n);
  for (auto& slot : slots) {
    IDEVAL_RETURN_NOT_OK(slot->status());
    partials.push_back(std::move(**slot));
  }
  Span merge(trace, SpanKind::kMerge, parent_span_id);
  auto merged = sharded_->Merge(query, plan, std::move(partials));
  merge.SetAttrs(merged.ok() ? 1 : 0, merged.ok() ? 0 : 1);
  return merged;
}

void QueryServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) return;
    SimTime deadline;
    bool has_deadline = false;
    ServeSession* s = PickSession(Now(), &deadline, &has_deadline);
    if (s == nullptr) {
      if (has_deadline) {
        work_cv_.wait_until(lock, ToSteady(deadline));
      } else {
        work_cv_.wait(lock);
      }
      continue;
    }
    PendingGroup group = PopGroup(s);
    s->set_busy(true);
    ++in_flight_;
    lock.unlock();

    // --- Execution, outside the server lock. The busy flag serializes
    // all access to this session's cache.
    const SimTime start = Now();
    // The wait the user felt before any work began: submit -> dispatch.
    RecordSpan(group.trace, SpanKind::kQueueWait,
               group.trace.enabled() ? group.trace.buffer->NewSpanId() : 0,
               group.trace.root_span_id, group.submit_time.micros(),
               start.micros());
    int64_t executed = 0;
    int64_t failed = 0;
    int64_t hits = 0;
    // Result capture is keyed off the completion callback: the classic
    // fire-and-forget path never copies or holds result payloads.
    const bool capture = static_cast<bool>(group.on_complete);
    std::vector<std::optional<QueryResultData>> results;
    if (capture) results.reserve(group.queries.size());
    GroupOutcome sharded_out;
    if (result_cache_ != nullptr) {
      // Shared cache above either backend: one lookup per query; misses
      // run the backend (single-flight) inside the cache.
      for (const Query& query : group.queries) {
        auto r = result_cache_->Execute(query, cache_backend_, group.trace,
                                        group.trace.root_span_id);
        if (r.ok()) {
          ++executed;
          if (r->outcome != CacheOutcome::kMiss) ++hits;
          // Copy, not move: the cache retains its entry for later hits.
          if (capture) results.emplace_back(r->response.data);
        } else {
          ++failed;
          if (capture) results.emplace_back(std::nullopt);
        }
      }
    } else if (sharded_ != nullptr) {
      sharded_out = ExecuteGroupSharded(group.queries, group.trace,
                                        capture ? &results : nullptr);
      executed = sharded_out.executed;
      failed = sharded_out.failed;
    } else {
      for (const Query& query : group.queries) {
        Span exec(group.trace, SpanKind::kExecute,
                  group.trace.root_span_id);
        if (s->cache() != nullptr) {
          auto r = s->cache()->Execute(query);
          if (r.ok()) {
            ++executed;
            hits += r->cache_hit;
            exec.SetAttrs(r->response.stats.tuples_scanned,
                          r->response.stats.blocks_scanned,
                          r->response.stats.blocks_pruned);
            if (capture) results.emplace_back(r->response.data);
          } else {
            ++failed;
            if (capture) results.emplace_back(std::nullopt);
          }
        } else {
          auto r = engine_->Execute(query);
          if (r.ok()) {
            ++executed;
            exec.SetAttrs(r->stats.tuples_scanned, r->stats.blocks_scanned,
                          r->stats.blocks_pruned);
            if (capture) results.emplace_back(std::move(r->data));
          } else {
            ++failed;
            if (capture) results.emplace_back(std::nullopt);
          }
        }
      }
    }
    const SimTime finish = Now();
    metrics_.RecordGroupComplete(finish, finish - group.submit_time,
                                 finish - start, executed);
    if (hot_.latency_ms != nullptr) {
      hot_.latency_ms->Record((finish - group.submit_time).millis());
      hot_.service_ms->Record((finish - start).millis());
    }
    // With the shared cache the backend runs inside the cache, so phase
    // attribution collapses into `execute` even over a sharded backend.
    if (sharded_ != nullptr && result_cache_ == nullptr) {
      metrics_.RecordPhases(sharded_out.scatter, sharded_out.execute,
                            sharded_out.merge);
    } else {
      metrics_.RecordPhases(Duration::Zero(), finish - start,
                            Duration::Zero());
    }

    lock.lock();
    SessionCounters& c = s->counters();
    ++c.groups_executed;
    c.queries_executed += executed;
    c.queries_failed += failed;
    c.cache_hits += hits;
    const bool lcv = s->CheckLcvViolation(group.seq, finish);
    if (lcv) {
      ++c.lcv_violations;
    }
    if (hot_.executed != nullptr) {
      hot_.executed->Increment();
      hot_.queries_executed->Increment(executed);
      hot_.queries_failed->Increment(failed);
      hot_.cache_hits->Increment(hits);
      if (lcv) hot_.lcv_violations->Increment();
    }
    // The group reached its terminal state: close the root span opened at
    // Submit, and offer the interaction to the slow-query log.
    RecordSpan(group.trace, SpanKind::kGroup, group.trace.root_span_id,
               /*parent_span_id=*/0, group.submit_time.micros(),
               finish.micros(),
               static_cast<uint32_t>(GroupTerminal::kExecuted) |
                   (lcv ? kGroupLcvBit : 0u),
               executed, failed, hits);
    if (slow_log_ != nullptr) {
      SlowQueryRecord rec;
      rec.trace_id = group.trace.trace_id;
      rec.session_id = s->id();
      rec.seq = group.seq;
      rec.submit_us = group.submit_time.micros();
      rec.queue_ms = (start - group.submit_time).millis();
      rec.service_ms = (finish - start).millis();
      rec.latency_ms = (finish - group.submit_time).millis();
      rec.queries_ok = executed;
      rec.queries_failed = failed;
      rec.cache_hits = hits;
      rec.lcv = lcv;
      slow_log_->MaybeRecord(rec);
    }
    if (sharded_ != nullptr && result_cache_ == nullptr) {
      controller_.OnCompleteSharded(finish, finish - start,
                                    sharded_out.shard_exec_mean,
                                    sharded_out.merge);
    } else {
      // Cache hits complete in microseconds, so on cache-friendly
      // workloads the service EWMA shrinks and the capacity estimate
      // rises — admission control sees the cache as extra throughput.
      controller_.OnComplete(finish, finish - start);
    }
    if (group.on_complete) {
      GroupCompletion done;
      done.session_id = s->id();
      done.seq = group.seq;
      done.terminal = GroupTerminal::kExecuted;
      done.lcv = lcv;
      done.queries_executed = executed;
      done.queries_failed = failed;
      done.cache_hits = hits;
      done.queue_wait = start - group.submit_time;
      done.service = finish - start;
      done.latency = finish - group.submit_time;
      done.results = std::move(results);
      group.on_complete(std::move(done));
    }
    s->set_busy(false);
    --in_flight_;
    if (!s->queue().empty()) work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    if (in_flight_ > 0) return false;
    for (const auto& s : sessions_.sessions()) {
      if (!s->queue().empty()) return false;
    }
    return true;
  });
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  // Poller first: its callback snapshots the server, so it must be gone
  // before any serving state is torn down.
  if (poller_ != nullptr) poller_->Stop();
  work_cv_.notify_all();
  // Group workers first: any in-flight sharded group still needs the
  // shard pool to finish its partials before its worker can exit.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(shard_mu_);
    shard_stop_ = true;
  }
  shard_cv_.notify_all();
  for (auto& w : shard_threads_) {
    if (w.joinable()) w.join();
  }
}

ServerStatsSnapshot QueryServer::Snapshot() {
  const SimTime now = Now();
  ServerStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.num_workers = options_.num_workers;
    snap.num_shards = sharded_ != nullptr ? sharded_->num_shards() : 1;
    snap.shard_workers = static_cast<int>(shard_threads_.size());
    snap.configured_policy = options_.policy;
    snap.effective_policy = effective_policy_;
    snap.sessions_open = sessions_.OpenCount();
    snap.uptime_s = now.seconds();
    for (const auto& s : sessions_.sessions()) {
      SessionStatsRow row;
      row.session_id = s->id();
      row.counters = s->counters();
      row.qif_qps = s->QifQps(now);
      row.queued = static_cast<int64_t>(s->queue().size());
      row.queue_hwm = s->queue_hwm();
      snap.totals += row.counters;
      snap.groups_queued += row.queued;
      snap.queue_hwm = std::max(snap.queue_hwm, row.queue_hwm);
      snap.sessions.push_back(std::move(row));
    }
    snap.load = controller_.Assess(now);
  }
  if (result_cache_ != nullptr) {
    snap.result_cache_enabled = true;
    snap.result_cache = result_cache_->Stats();
  }
  if (trace_ != nullptr) {
    snap.tracing_enabled = true;
    snap.trace_buffer = trace_->Stats();
  }
  if (slow_log_ != nullptr) {
    snap.slow_log_enabled = true;
    snap.slow_queries_logged = slow_log_->logged();
  }
  metrics_.FillSnapshot(&snap, now);
  snap.throughput_qps =
      snap.uptime_s > 0.0
          ? static_cast<double>(snap.totals.queries_executed) / snap.uptime_s
          : 0.0;
  snap.lcv_fraction =
      snap.totals.groups_executed > 0
          ? static_cast<double>(snap.totals.lcv_violations) /
                static_cast<double>(snap.totals.groups_executed)
          : 0.0;
  if (mreg_ != nullptr) UpdateGauges(snap);
  return snap;
}

StatsSample QueryServer::SampleStats() {
  const ServerStatsSnapshot snap = Snapshot();
  StatsSample s;
  s.t_s = snap.uptime_s;
  s.qif_qps = snap.qif_qps;
  s.throughput_window_qps = snap.throughput_window_qps;
  s.queue_depth = snap.groups_queued;
  s.lcv_fraction = snap.lcv_fraction;
  s.load_factor = snap.load.load_factor;
  s.load_state = static_cast<int32_t>(snap.load.state);
  s.cache_hit_rate =
      snap.result_cache_enabled ? snap.result_cache.HitRate() : -1.0;
  s.trace_dropped = snap.tracing_enabled ? snap.trace_buffer.dropped : 0;
  s.latency_p50_ms = snap.latency_p50_ms;
  s.latency_p90_ms = snap.latency_p90_ms;
  s.submitted = snap.totals.groups_submitted;
  s.executed = snap.totals.groups_executed;
  s.shed = snap.totals.GroupsShed();
  s.rejected = snap.totals.groups_rejected;
  // Per-second rates from the cumulative deltas against the previous
  // sample (zero on the first, and whenever the clock has not advanced).
  const double dt = s.t_s - poll_prev_.t_s;
  if (dt > 0.0 && poll_prev_.t_s > 0.0) {
    s.shed_per_s = static_cast<double>(s.shed - poll_prev_.shed) / dt;
    s.reject_per_s =
        static_cast<double>(s.rejected - poll_prev_.rejected) / dt;
  }
  poll_prev_ = s;
  return s;
}

}  // namespace ideval
