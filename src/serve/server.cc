#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/text_table.h"

namespace ideval {

const char* SubmitDispositionToString(SubmitDisposition d) {
  switch (d) {
    case SubmitDisposition::kEnqueued:
      return "enqueued";
    case SubmitDisposition::kCoalesced:
      return "coalesced";
    case SubmitDisposition::kThrottled:
      return "throttled";
    case SubmitDisposition::kRejected:
      return "rejected";
  }
  return "unknown";
}

Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const Engine* engine, ServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("QueryServer needs an engine");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be >= 1, got %d", options.num_workers));
  }
  if (options.max_queue_per_session < 1) {
    return Status::InvalidArgument(
        StrFormat("max_queue_per_session must be >= 1, got %d",
                  options.max_queue_per_session));
  }
  if (options.throttle_min_interval < Duration::Zero()) {
    return Status::InvalidArgument("throttle_min_interval must be >= 0");
  }
  if (options.debounce_quiet < Duration::Zero()) {
    return Status::InvalidArgument("debounce_quiet must be >= 0");
  }
  if (options.admission.window <= Duration::Zero()) {
    return Status::InvalidArgument("admission window must be > 0");
  }
  if (options.enable_session_cache && options.session_cache_capacity < 1) {
    return Status::InvalidArgument("session_cache_capacity must be >= 1");
  }
  auto server = std::unique_ptr<QueryServer>(
      new QueryServer(engine, std::move(options)));
  server->workers_.reserve(
      static_cast<size_t>(server->options_.num_workers));
  for (int i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

QueryServer::QueryServer(const Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      controller_(options_.num_workers, options_.admission),
      effective_policy_(options_.policy),
      metrics_(options_.admission.window) {}

QueryServer::~QueryServer() { Stop(); }

SimTime QueryServer::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return SimTime::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

std::chrono::steady_clock::time_point QueryServer::ToSteady(SimTime t) const {
  return epoch_ + std::chrono::microseconds(t.micros());
}

uint64_t QueryServer::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Open(options_.admission.window);
  if (options_.enable_session_cache) {
    SessionCache::Options copts;
    copts.capacity = options_.session_cache_capacity;
    // The cache borrows the engine for misses; it never mutates tables,
    // so the const_cast only widens access back to the read-only Execute.
    s->set_cache(std::make_unique<SessionCache>(
        const_cast<Engine*>(engine_), copts));
  }
  return s->id();
}

Status QueryServer::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Get(session_id);
  if (s == nullptr) {
    return Status::NotFound(
        StrFormat("no session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  s->set_closed(true);
  return Status::OK();
}

Result<SubmitOutcome> QueryServer::Submit(uint64_t session_id,
                                          std::vector<Query> queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("Submit: empty query group");
  }
  const SimTime now = Now();
  metrics_.RecordSubmit(now);

  std::lock_guard<std::mutex> lock(mu_);
  ServeSession* s = sessions_.Get(session_id);
  if (s == nullptr) {
    return Status::NotFound(
        StrFormat("no session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  if (s->closed()) {
    return Status::FailedPrecondition(
        StrFormat("session %llu is closed",
                  static_cast<unsigned long long>(session_id)));
  }

  SubmitOutcome out;
  out.seq = s->RecordSubmit(now);
  controller_.OnSubmit(now);
  out.load = controller_.Assess(now);
  if (options_.adaptive_admission) {
    // Fig. 3 as a control loop: shed stale work while overwhelmed, go
    // back to the configured policy once execution catches up.
    effective_policy_ = out.load.state == LoadState::kOverloaded
                            ? AdmissionPolicy::kSkipStale
                            : options_.policy;
  }

  if (out.load.reject) {
    ++s->counters().groups_rejected;
    out.disposition = SubmitDisposition::kRejected;
    return out;
  }

  SessionCounters& c = s->counters();
  const size_t cap = static_cast<size_t>(options_.max_queue_per_session);
  switch (effective_policy_) {
    case AdmissionPolicy::kThrottle:
      if (s->last_admitted().has_value() &&
          now - *s->last_admitted() < options_.throttle_min_interval) {
        ++c.groups_shed_throttled;
        out.disposition = SubmitDisposition::kThrottled;
        return out;
      }
      if (s->queue().size() >= cap) {
        ++c.groups_rejected;
        out.disposition = SubmitDisposition::kRejected;
        return out;
      }
      s->set_last_admitted(now);
      break;
    case AdmissionPolicy::kDebounce:
      // Newest-wins coalescing: anything still pending is superseded.
      if (!s->queue().empty()) {
        c.groups_shed_coalesced +=
            static_cast<int64_t>(s->queue().size());
        s->queue().clear();
        out.disposition = SubmitDisposition::kCoalesced;
      }
      break;
    case AdmissionPolicy::kFifo:
      if (s->queue().size() >= cap) {
        ++c.groups_rejected;
        out.disposition = SubmitDisposition::kRejected;
        return out;
      }
      break;
    case AdmissionPolicy::kSkipStale:
      if (s->queue().size() >= cap) {
        // Shed the stalest pending group instead of pushing back.
        s->queue().pop_front();
        ++c.groups_shed_stale;
      }
      break;
  }

  PendingGroup g;
  g.seq = out.seq;
  g.submit_time = now;
  g.queries = std::move(queries);
  s->queue().push_back(std::move(g));
  work_cv_.notify_all();
  return out;
}

ServeSession* QueryServer::PickSession(SimTime now, SimTime* deadline,
                                       bool* has_deadline) {
  *has_deadline = false;
  const auto& all = sessions_.sessions();
  const size_t n = all.size();
  if (n == 0) return nullptr;
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (rr_cursor_ + k) % n;
    ServeSession* s = all[i].get();
    if (s->busy() || s->queue().empty()) continue;
    if (effective_policy_ == AdmissionPolicy::kDebounce) {
      const SimTime runnable_at = s->last_submit() + options_.debounce_quiet;
      if (now < runnable_at) {
        if (!*has_deadline || runnable_at < *deadline) {
          *deadline = runnable_at;
          *has_deadline = true;
        }
        continue;
      }
    }
    rr_cursor_ = (i + 1) % n;
    return s;
  }
  return nullptr;
}

PendingGroup QueryServer::PopGroup(ServeSession* session) {
  std::deque<PendingGroup>& q = session->queue();
  if (effective_policy_ == AdmissionPolicy::kSkipStale) {
    // Jump to the newest pending group; everything older is stale.
    session->counters().groups_shed_stale +=
        static_cast<int64_t>(q.size()) - 1;
    PendingGroup g = std::move(q.back());
    q.clear();
    return g;
  }
  PendingGroup g = std::move(q.front());
  q.pop_front();
  return g;
}

void QueryServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) return;
    SimTime deadline;
    bool has_deadline = false;
    ServeSession* s = PickSession(Now(), &deadline, &has_deadline);
    if (s == nullptr) {
      if (has_deadline) {
        work_cv_.wait_until(lock, ToSteady(deadline));
      } else {
        work_cv_.wait(lock);
      }
      continue;
    }
    PendingGroup group = PopGroup(s);
    s->set_busy(true);
    ++in_flight_;
    lock.unlock();

    // --- Execution, outside the server lock. The busy flag serializes
    // all access to this session's cache.
    const SimTime start = Now();
    int64_t executed = 0;
    int64_t failed = 0;
    int64_t hits = 0;
    for (const Query& query : group.queries) {
      if (s->cache() != nullptr) {
        auto r = s->cache()->Execute(query);
        if (r.ok()) {
          ++executed;
          hits += r->cache_hit;
        } else {
          ++failed;
        }
      } else {
        auto r = engine_->Execute(query);
        if (r.ok()) {
          ++executed;
        } else {
          ++failed;
        }
      }
    }
    const SimTime finish = Now();
    metrics_.RecordGroupComplete(finish - group.submit_time, finish - start);

    lock.lock();
    SessionCounters& c = s->counters();
    ++c.groups_executed;
    c.queries_executed += executed;
    c.queries_failed += failed;
    c.cache_hits += hits;
    if (s->CheckLcvViolation(group.seq, finish)) {
      ++c.lcv_violations;
    }
    controller_.OnComplete(finish, finish - start);
    s->set_busy(false);
    --in_flight_;
    if (!s->queue().empty()) work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    if (in_flight_ > 0) return false;
    for (const auto& s : sessions_.sessions()) {
      if (!s->queue().empty()) return false;
    }
    return true;
  });
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerStatsSnapshot QueryServer::Snapshot() {
  const SimTime now = Now();
  ServerStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.num_workers = options_.num_workers;
    snap.configured_policy = options_.policy;
    snap.effective_policy = effective_policy_;
    snap.sessions_open = sessions_.OpenCount();
    snap.uptime_s = now.seconds();
    for (const auto& s : sessions_.sessions()) {
      SessionStatsRow row;
      row.session_id = s->id();
      row.counters = s->counters();
      row.qif_qps = s->QifQps(now);
      row.queued = static_cast<int64_t>(s->queue().size());
      snap.totals += row.counters;
      snap.groups_queued += row.queued;
      snap.sessions.push_back(std::move(row));
    }
    snap.load = controller_.Assess(now);
  }
  metrics_.FillSnapshot(&snap, now);
  snap.throughput_qps =
      snap.uptime_s > 0.0
          ? static_cast<double>(snap.totals.queries_executed) / snap.uptime_s
          : 0.0;
  snap.lcv_fraction =
      snap.totals.groups_executed > 0
          ? static_cast<double>(snap.totals.lcv_violations) /
                static_cast<double>(snap.totals.groups_executed)
          : 0.0;
  return snap;
}

}  // namespace ideval
