#ifndef IDEVAL_SERVE_SESSION_H_
#define IDEVAL_SERVE_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/query.h"
#include "obs/trace.h"
#include "opt/session_cache.h"
#include "serve/server_stats.h"

namespace ideval {

/// Terminal report for one *admitted* group, delivered through the
/// optional completion callback of `QueryServer::Submit`. `Submit`'s
/// return value only says what happened at the door; this is the other
/// half — what eventually became of a group that made it past the door.
/// The socket front-end (`src/net/net_server.h`) turns these into
/// response frames; in-process callers (tests, the load driver) never pay
/// for them because the callback and the result capture are both opt-in.
struct GroupCompletion {
  uint64_t session_id = 0;
  uint64_t seq = 0;  ///< Per-session submission sequence number.
  /// `kExecuted`, `kShedStale`, or `kShedCoalesced`. Door verdicts
  /// (throttled/rejected) never produce a completion — they are returned
  /// synchronously from `Submit`.
  GroupTerminal terminal = GroupTerminal::kExecuted;
  bool lcv = false;  ///< Executed groups: finished after a newer submit.
  int64_t queries_executed = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  Duration queue_wait;  ///< Admit -> dispatch (zero for sheds).
  Duration service;     ///< Dispatch -> done (zero for sheds).
  Duration latency;     ///< Submit -> terminal state.
  /// Per-query result payloads in submission order, filled only for
  /// executed groups with a callback installed (capture is keyed off the
  /// callback's presence, so callback-free submissions never copy
  /// results). A failed query leaves its slot empty.
  std::vector<std::optional<QueryResultData>> results;
};

/// Invoked exactly once per admitted group at its terminal state. Runs
/// under the server lock — on a worker thread (executed and dispatch-time
/// sheds) or inside a later `Submit` call (admission-time sheds) — so it
/// must be fast and must not call back into the `QueryServer`.
using GroupCompletionFn = std::function<void(GroupCompletion&&)>;

/// A query group admitted into a session queue, waiting for a worker.
struct PendingGroup {
  uint64_t seq = 0;  ///< Per-session submission sequence number.
  SimTime submit_time;
  /// Per-group trace handle (disabled when tracing is off). The root
  /// group span stays open while the group is pending; whoever gives the
  /// group its terminal state (worker, shed, coalesce) closes it.
  TraceContext trace;
  std::vector<Query> queries;
  /// Terminal-state callback (null for the classic fire-and-forget
  /// submission path). See `GroupCompletionFn`.
  GroupCompletionFn on_complete;
};

/// One client's server-side state: a bounded request queue, live QIF
/// window, LCV bookkeeping, counters, and an optional exact-match result
/// cache (§2.4 session reuse).
///
/// Thread safety: all fields except `cache` are guarded by the owning
/// `QueryServer`'s lock. `cache` is touched only by the worker that holds
/// this session's `busy` flag; the flag itself is flipped under the server
/// lock, which establishes the necessary happens-before edges.
class ServeSession {
 public:
  ServeSession(uint64_t id, Duration qif_window);

  uint64_t id() const { return id_; }

  /// Records a submission attempt at `now` and returns its sequence
  /// number. Feeds the QIF window and the LCV successor index whether or
  /// not the group is later admitted — the user interacted either way.
  uint64_t RecordSubmit(SimTime now);

  /// Live sliding-window QIF of this session.
  double QifQps(SimTime now);

  /// Issue-before-complete check (§7.2, live): true iff a newer
  /// submission than `seq` happened before `completion`. Prunes
  /// bookkeeping for sequences <= `seq`.
  bool CheckLcvViolation(uint64_t seq, SimTime completion);

  std::deque<PendingGroup>& queue() { return queue_; }
  SessionCounters& counters() { return counters_; }
  const SessionCounters& counters() const { return counters_; }

  /// Records the queue depth after an admission so the snapshot can show
  /// each session's high-water mark, not just its instantaneous depth.
  void NoteQueueDepth(int64_t depth) {
    if (depth > queue_hwm_) queue_hwm_ = depth;
  }
  int64_t queue_hwm() const { return queue_hwm_; }

  bool busy() const { return busy_; }
  void set_busy(bool b) { busy_ = b; }
  bool closed() const { return closed_; }
  void set_closed(bool c) { closed_ = c; }
  SimTime last_submit() const { return last_submit_; }
  std::optional<SimTime> last_admitted() const { return last_admitted_; }
  void set_last_admitted(SimTime t) { last_admitted_ = t; }

  SessionCache* cache() { return cache_.get(); }
  void set_cache(std::unique_ptr<SessionCache> cache) {
    cache_ = std::move(cache);
  }

 private:
  uint64_t id_;
  Duration qif_window_;
  uint64_t next_seq_ = 0;
  std::deque<PendingGroup> queue_;
  bool busy_ = false;
  bool closed_ = false;
  SimTime last_submit_;
  std::optional<SimTime> last_admitted_;  // Throttle state.
  std::deque<SimTime> qif_submits_;
  /// (seq, submit time) of recent submissions, for the LCV successor
  /// lookup. Bounded: pruned on every completion and capped.
  std::deque<std::pair<uint64_t, SimTime>> recent_submits_;
  int64_t queue_hwm_ = 0;
  SessionCounters counters_;
  std::unique_ptr<SessionCache> cache_;
};

/// Hands out sessions with isolated queues and stable ids. Externally
/// synchronized by the owning `QueryServer`.
class SessionManager {
 public:
  /// Creates a session and returns it (owned by the manager).
  ServeSession* Open(Duration qif_window);

  /// Looks up a session; null if the id was never issued.
  ServeSession* Get(uint64_t id);

  /// All sessions in creation order (round-robin dispatch iterates this).
  const std::vector<std::unique_ptr<ServeSession>>& sessions() const {
    return sessions_;
  }

  int64_t OpenCount() const;

 private:
  uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<ServeSession>> sessions_;
  std::unordered_map<uint64_t, size_t> index_;
};

}  // namespace ideval

#endif  // IDEVAL_SERVE_SESSION_H_
