#include "serve/admission.h"

#include <algorithm>

namespace ideval {

const char* AdmissionPolicyToString(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kSkipStale:
      return "skip";
    case AdmissionPolicy::kDebounce:
      return "debounce";
    case AdmissionPolicy::kThrottle:
      return "throttle";
  }
  return "unknown";
}

const char* LoadStateToString(LoadState state) {
  switch (state) {
    case LoadState::kIdle:
      return "idle";
    case LoadState::kUnderloaded:
      return "underloaded";
    case LoadState::kSaturated:
      return "saturated";
    case LoadState::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

AdmissionController::AdmissionController(int num_workers,
                                         AdmissionOptions options)
    : num_workers_(std::max(1, num_workers)), options_(options) {}

void AdmissionController::OnSubmit(SimTime now) {
  submit_window_.push_back(now);
  const SimTime horizon = now - options_.window;
  while (!submit_window_.empty() && submit_window_.front() < horizon) {
    submit_window_.pop_front();
  }
}

void AdmissionController::OnComplete(SimTime now, Duration service_time) {
  (void)now;
  const double s = std::max(0.0, service_time.seconds());
  if (completions_ == 0) {
    service_ewma_s_ = s;
  } else {
    service_ewma_s_ = options_.service_ewma_alpha * s +
                      (1.0 - options_.service_ewma_alpha) * service_ewma_s_;
  }
  ++completions_;
}

Duration AdmissionController::MeanServiceTime() const {
  return completions_ == 0 ? Duration::Zero()
                           : Duration::Seconds(service_ewma_s_);
}

LoadAssessment AdmissionController::Assess(SimTime now) {
  const SimTime horizon = now - options_.window;
  while (!submit_window_.empty() && submit_window_.front() < horizon) {
    submit_window_.pop_front();
  }

  LoadAssessment a;
  a.offered_qps = static_cast<double>(submit_window_.size()) /
                  options_.window.seconds();
  if (completions_ > 0 && service_ewma_s_ > 0.0) {
    a.capacity_qps = static_cast<double>(num_workers_) / service_ewma_s_;
  }
  if (submit_window_.empty()) {
    a.state = LoadState::kIdle;
    return a;
  }
  if (a.capacity_qps <= 0.0) {
    // No completions yet: assume the backend keeps up until proven slow.
    a.state = LoadState::kUnderloaded;
    return a;
  }
  a.load_factor = a.offered_qps / a.capacity_qps;
  if (a.load_factor < options_.underload_factor) {
    a.state = LoadState::kUnderloaded;
  } else if (a.load_factor <= options_.overload_factor) {
    a.state = LoadState::kSaturated;
  } else {
    a.state = LoadState::kOverloaded;
    a.reject = a.load_factor > options_.reject_factor;
  }
  return a;
}

}  // namespace ideval
