#include "serve/admission.h"

#include <algorithm>

namespace ideval {

const char* AdmissionPolicyToString(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kSkipStale:
      return "skip";
    case AdmissionPolicy::kDebounce:
      return "debounce";
    case AdmissionPolicy::kThrottle:
      return "throttle";
  }
  return "unknown";
}

const char* LoadStateToString(LoadState state) {
  switch (state) {
    case LoadState::kIdle:
      return "idle";
    case LoadState::kUnderloaded:
      return "underloaded";
    case LoadState::kSaturated:
      return "saturated";
    case LoadState::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

AdmissionController::AdmissionController(int num_workers,
                                         AdmissionOptions options)
    : num_workers_(std::max(1, num_workers)), options_(options) {}

AdmissionController::AdmissionController(int num_workers, int num_shards,
                                         int shard_workers,
                                         AdmissionOptions options)
    : num_workers_(std::max(1, num_workers)),
      num_shards_(std::max(1, num_shards)),
      shard_workers_(std::max(1, shard_workers)),
      options_(options) {}

void AdmissionController::OnSubmit(SimTime now) {
  submit_window_.push_back(now);
  const SimTime horizon = now - options_.window;
  while (!submit_window_.empty() && submit_window_.front() < horizon) {
    submit_window_.pop_front();
  }
}

double AdmissionController::Ewma(double prev, double sample) const {
  if (completions_ == 0) return sample;
  return options_.service_ewma_alpha * sample +
         (1.0 - options_.service_ewma_alpha) * prev;
}

void AdmissionController::OnComplete(SimTime now, Duration service_time) {
  (void)now;
  const double s = std::max(0.0, service_time.seconds());
  service_ewma_s_ = Ewma(service_ewma_s_, s);
  ++completions_;
}

void AdmissionController::OnCompleteSharded(SimTime now,
                                            Duration service_time,
                                            Duration shard_exec_mean,
                                            Duration merge_time) {
  (void)now;
  const double s = std::max(0.0, service_time.seconds());
  const double e = std::max(0.0, shard_exec_mean.seconds());
  const double m = std::max(0.0, merge_time.seconds());
  service_ewma_s_ = Ewma(service_ewma_s_, s);
  shard_exec_ewma_s_ = Ewma(shard_exec_ewma_s_, e);
  merge_ewma_s_ = Ewma(merge_ewma_s_, m);
  ++completions_;
}

Duration AdmissionController::MeanServiceTime() const {
  return completions_ == 0 ? Duration::Zero()
                           : Duration::Seconds(service_ewma_s_);
}

LoadAssessment AdmissionController::Assess(SimTime now) {
  const SimTime horizon = now - options_.window;
  while (!submit_window_.empty() && submit_window_.front() < horizon) {
    submit_window_.pop_front();
  }

  LoadAssessment a;
  a.offered_qps = static_cast<double>(submit_window_.size()) /
                  options_.window.seconds();
  if (completions_ > 0 && service_ewma_s_ > 0.0) {
    // Group workers hold a group for its full scatter+execute+merge wall
    // time, so this is the group-stage bound in both modes.
    a.capacity_qps = static_cast<double>(num_workers_) / service_ewma_s_;
    if (num_shards_ > 1) {
      // Each group consumes num_shards partial executions of the shard
      // pool: capacity ≈ K × a single shard's rate, normalized per group.
      if (shard_exec_ewma_s_ > 0.0) {
        a.shard_exec_capacity_qps =
            static_cast<double>(shard_workers_) /
            (static_cast<double>(num_shards_) * shard_exec_ewma_s_);
        a.capacity_qps = std::min(a.capacity_qps, a.shard_exec_capacity_qps);
      }
      // Merges run serially on the group workers — the stage that caps
      // scale-out no matter how many shards are added.
      if (merge_ewma_s_ > 0.0) {
        a.merge_capacity_qps =
            static_cast<double>(num_workers_) / merge_ewma_s_;
      }
    }
  }
  if (submit_window_.empty()) {
    a.state = LoadState::kIdle;
    return a;
  }
  if (a.capacity_qps <= 0.0) {
    // No completions yet: assume the backend keeps up until proven slow.
    a.state = LoadState::kUnderloaded;
    return a;
  }
  a.load_factor = a.offered_qps / a.capacity_qps;
  if (a.load_factor < options_.underload_factor) {
    a.state = LoadState::kUnderloaded;
  } else if (a.load_factor <= options_.overload_factor) {
    a.state = LoadState::kSaturated;
  } else {
    a.state = LoadState::kOverloaded;
    a.reject = a.load_factor > options_.reject_factor;
  }
  return a;
}

}  // namespace ideval
