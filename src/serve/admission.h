#ifndef IDEVAL_SERVE_ADMISSION_H_
#define IDEVAL_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/sim_time.h"

namespace ideval {

/// How a live session queue admits and drains requests when interaction
/// outpaces execution — the paper's drain policies (§7.1) plus the
/// client-side rate shapers of §3.1.2, applied at the server door.
enum class AdmissionPolicy {
  /// Every admitted group executes in arrival order; a full queue pushes
  /// back on the client (the raw cascade of Fig. 2, bounded by the cap).
  kFifo,
  /// When a worker frees up it jumps to the session's *newest* pending
  /// group; older pending groups are shed with accounting (Algorithm 1,
  /// "Skip"). A full queue sheds the oldest instead of rejecting.
  kSkipStale,
  /// Trailing-edge debounce: a new group replaces the session's still
  /// -pending one, and execution starts only after a quiet period with no
  /// newer submission — only the interaction the user settles on runs.
  kDebounce,
  /// Leading-edge throttle ported from `QifThrottler` (§3.1.2): a group
  /// arriving within `throttle_min_interval` of the last admitted one is
  /// shed at the door.
  kThrottle,
};

const char* AdmissionPolicyToString(AdmissionPolicy policy);

/// Quadrant of Fig. 3's QIF-vs-capacity chart the server currently sits
/// in, estimated online.
enum class LoadState {
  kIdle,         ///< No recent submissions.
  kUnderloaded,  ///< Offered load well under capacity.
  kSaturated,    ///< Offered load near capacity (the knee).
  kOverloaded,   ///< Interaction outpaces execution ("overwhelmed").
};

const char* LoadStateToString(LoadState state);

/// One admission decision's view of the control loop.
struct LoadAssessment {
  double offered_qps = 0.0;    ///< Live QIF × clients (sliding window).
  /// Sustainable group rate. Unsharded: workers / mean service time.
  /// Sharded: min of the group-worker bound and the shard-pool bound
  /// below. 0 = unknown (no completions yet).
  double capacity_qps = 0.0;
  /// Shard-pool execute bound: shard_workers / (num_shards × mean
  /// per-shard partial time) — "K × per-shard rate". 0 when unsharded or
  /// unknown.
  double shard_exec_capacity_qps = 0.0;
  /// Merge-stage bound: workers / mean merge time — where scatter-merge
  /// saturates even with infinite shards. 0 when unsharded or unknown.
  double merge_capacity_qps = 0.0;
  double load_factor = 0.0;    ///< offered / capacity; 0 when unknown.
  LoadState state = LoadState::kIdle;
  /// True when load is so far past capacity that new work should be
  /// rejected with backpressure rather than queued or shed.
  bool reject = false;
};

/// Tuning for the admission control loop.
struct AdmissionOptions {
  /// Sliding window for the offered-load (QIF) estimate.
  Duration window = Duration::Seconds(2.0);
  /// Offered/capacity ratio below which the server is "underloaded".
  double underload_factor = 0.7;
  /// Offered/capacity ratio above which the server is "overloaded".
  double overload_factor = 1.1;
  /// Offered/capacity ratio beyond which submissions are rejected outright.
  double reject_factor = 8.0;
  /// EWMA coefficient for the per-group service-time estimate.
  double service_ewma_alpha = 0.2;
};

/// Runtime control loop over Fig. 3: estimates the live Query Issuing
/// Frequency across all sessions and the backend's service rate, and
/// classifies the server into a quadrant so the `QueryServer` can switch
/// to a shedding policy (or reject with backpressure) when interaction
/// outpaces execution.
///
/// Thread safety: externally synchronized — the owning `QueryServer`
/// calls it under its own lock.
class AdmissionController {
 public:
  AdmissionController(int num_workers, AdmissionOptions options);

  /// Shard-aware construction: the server scatters each group into
  /// `num_shards` partials executed by `shard_workers` dedicated threads,
  /// so capacity is no longer just workers / service time — it is capped
  /// by the shard pool (shard_workers / (num_shards × per-shard time))
  /// and by the merge stage (workers / merge time). Requires
  /// num_shards >= 1 and shard_workers >= 1.
  AdmissionController(int num_workers, int num_shards, int shard_workers,
                      AdmissionOptions options);

  /// Records a submission at `now` (admitted or not — the user interacted
  /// either way, which is what QIF measures).
  void OnSubmit(SimTime now);

  /// Records a completed group and its wall service time.
  void OnComplete(SimTime now, Duration service_time);

  /// Shard-aware completion: also feeds the mean per-shard partial wall
  /// time and the merge wall time of the group, so `Assess` can tell a
  /// saturated shard pool from a saturated merge stage.
  void OnCompleteSharded(SimTime now, Duration service_time,
                         Duration shard_exec_mean, Duration merge_time);

  /// Classifies the current load (prunes the window to `now`).
  LoadAssessment Assess(SimTime now);

  /// Mean service time estimate (zero until the first completion).
  Duration MeanServiceTime() const;

  int num_shards() const { return num_shards_; }

 private:
  double Ewma(double prev, double sample) const;

  int num_workers_;
  int num_shards_ = 1;
  int shard_workers_ = 0;
  AdmissionOptions options_;
  std::deque<SimTime> submit_window_;
  double service_ewma_s_ = 0.0;
  double shard_exec_ewma_s_ = 0.0;
  double merge_ewma_s_ = 0.0;
  int64_t completions_ = 0;
};

}  // namespace ideval

#endif  // IDEVAL_SERVE_ADMISSION_H_
