#ifndef IDEVAL_SERVE_LOAD_DRIVER_H_
#define IDEVAL_SERVE_LOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "serve/server.h"
#include "sim/query_scheduler.h"

namespace ideval {

/// Load-driver tuning.
struct LoadDriverOptions {
  /// Wall time = trace time / time_compression. 1.0 replays in real time;
  /// tests and benches compress heavily so think-time-faithful sessions
  /// finish in milliseconds.
  double time_compression = 1.0;
  /// Drain the server (and include final stats) before returning.
  bool drain = true;
};

/// One client thread's submission tally.
struct ClientLoadResult {
  uint64_t session_id = 0;
  int64_t submitted = 0;
  int64_t enqueued = 0;
  int64_t coalesced = 0;
  int64_t throttled = 0;
  int64_t rejected = 0;
};

/// The whole replay: per-client tallies plus the server's final snapshot.
struct LoadReport {
  std::vector<ClientLoadResult> clients;
  ServerStatsSnapshot snapshot;
  double wall_seconds = 0.0;
};

/// The replay loop shared by the in-process and networked drivers: one OS
/// thread per client, each sleeping out its trace's inter-arrival times
/// (scaled by `time_compression`) and invoking `submit(client_index,
/// group)` at each issue time. `submit` is called concurrently from all
/// client threads and must be thread-safe. Validates that each client's
/// groups are sorted by nondecreasing issue time and that
/// `time_compression > 0`; blocks until every client finishes.
Status ReplayClients(
    const std::vector<std::vector<QueryGroup>>& clients,
    double time_compression,
    const std::function<void(size_t, const QueryGroup&)>& submit);

/// Replays trace-derived query groups against a live `QueryServer` from
/// one OS thread per client, sleeping out the trace's inter-arrival times
/// (scaled by `time_compression`) — the think-time-driven concurrent
/// clients IDEBench prescribes, as opposed to offline trace replay. Each
/// client gets its own server session; `clients[i]` must be sorted by
/// nondecreasing issue time. The networked variant of this driver lives
/// in `src/net/net_load_driver.h` and shares `ReplayClients`.
Result<LoadReport> RunLoadDriver(
    QueryServer* server, const std::vector<std::vector<QueryGroup>>& clients,
    LoadDriverOptions options);

}  // namespace ideval

#endif  // IDEVAL_SERVE_LOAD_DRIVER_H_
