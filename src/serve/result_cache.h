#ifndef IDEVAL_SERVE_RESULT_CACHE_H_
#define IDEVAL_SERVE_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "obs/trace.h"

namespace ideval {

/// Canonical cache key for a query: semantically equivalent queries render
/// to the same key so they collide in the result cache. Normalization is
/// conjunction-preserving only — it never changes what rows a query
/// matches:
///  - range predicates on the same column intersect into one conjunct
///    (`a >= 1 AND a >= 3` keys as `a >= 3`);
///  - `IN` lists are sorted and deduplicated;
///  - duplicate conjuncts collapse, and conjuncts sort into a canonical
///    order (predicate order is irrelevant under AND);
///  - a negative select offset keys as 0 and any negative limit as -1,
///    matching how the engine executes them.
std::string CanonicalQueryKey(const Query& query);

/// Approximate in-memory footprint of a cached response, for the cache's
/// byte budget (result payload + per-value overhead + struct headroom).
int64_t ApproxResponseBytes(const QueryResponse& response);

/// How one lookup through `ResultCache::Execute` was served.
enum class CacheOutcome {
  kHit,        ///< Served from a completed cache entry.
  kMiss,       ///< This caller executed the backend (and filled the cache).
  kCoalesced,  ///< Waited on a concurrent identical execution (single
               ///< flight): another caller's backend run served this one.
};

const char* CacheOutcomeToString(CacheOutcome outcome);

/// Point-in-time counters. `hits + misses + coalesced` equals the number
/// of completed `Execute` calls, which is how the serve tests reconcile
/// cache traffic against query submissions.
struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t coalesced = 0;
  /// Single-flight leaderships taken: callers that installed a flight and
  /// ran the backend themselves. Every miss is a leader execution
  /// (`leader_executions == misses` after quiescence), which is exactly
  /// what makes the leader path assertable: `coalesced` lookups rode a
  /// flight without bumping this, so `misses` alone can no longer be
  /// misread as "queries the backend saw".
  int64_t leader_executions = 0;
  int64_t evictions = 0;      ///< Entries dropped to fit the byte budget.
  int64_t invalidations = 0;  ///< Entries dropped by Clear/InvalidateTable.
  int64_t entries = 0;        ///< Live entries right now.
  int64_t bytes = 0;          ///< Approximate bytes held right now.

  int64_t Lookups() const { return hits + misses + coalesced; }
  double HitRate() const {
    const int64_t n = Lookups();
    return n > 0 ? static_cast<double>(hits + coalesced) /
                       static_cast<double>(n)
                 : 0.0;
  }
};

struct ResultCacheOptions {
  /// Total byte budget across all shards; entries are evicted LRU within
  /// their shard once its slice of the budget is exceeded.
  int64_t byte_budget = 64 << 20;
  /// Hash shards, each with its own mutex and LRU list. More shards =
  /// less lock contention between unrelated queries.
  int num_shards = 16;
};

/// A shared, invalidation-aware result cache for the live query server:
/// the cross-session promotion of `opt/session_cache.h`'s per-session
/// exact-match cache (ROADMAP's "cross-session result sharing" item).
///
///  - **Shared**: one cache above the backend; any session's execution
///    can serve any other session's identical (canonicalized) query.
///  - **Sharded**: entries are partitioned by key hash across
///    `num_shards` independent LRU shards, each behind its own mutex, so
///    concurrent sessions touching different queries do not contend.
///  - **Single-flight**: when N callers ask for the same missing key
///    concurrently, one executes the backend and the other N-1 block on
///    the in-flight execution and share its response (counted
///    `coalesced`) — a thundering herd of identical crossfilter queries
///    pays one scan.
///  - **Invalidation-aware**: `Clear` / `InvalidateTable` drop entries
///    and advance an epoch; an in-flight execution that started before an
///    invalidation completes normally for its waiters but does not
///    install a stale entry.
///
/// The cache stores whole `QueryResponse`s (data + work stats + modelled
/// times), so a hit replays the backend's exact response. Failed backend
/// executions propagate their status to every waiter and cache nothing.
///
/// Thread safety: all public methods are safe for concurrent callers. The
/// backend callable runs outside any cache lock and may itself block
/// (e.g. a scatter/merge over a shard pool).
class ResultCache {
 public:
  using Backend = std::function<Result<QueryResponse>(const Query&)>;
  /// Backend with trace plumbing: on a miss the cache passes its execute
  /// span's id down so a sharded backend can parent per-shard spans under
  /// the lookup that caused them.
  using TracedBackend = std::function<Result<QueryResponse>(
      const Query&, const TraceContext&, uint64_t parent_span_id)>;

  /// One serviced lookup: the response plus how it was obtained.
  struct Execution {
    QueryResponse response;
    CacheOutcome outcome = CacheOutcome::kMiss;
  };

  explicit ResultCache(ResultCacheOptions options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Serves `query` from the cache, an in-flight identical execution, or
  /// by running `backend(query)` (single flight). On a miss the original
  /// (non-canonicalized) query is what the backend executes.
  Result<Execution> Execute(const Query& query, const Backend& backend);

  /// As above, emitting a `kCacheLookup` span (outcome in its detail)
  /// under `parent_span_id`, and — on the leader path — a nested
  /// `kExecute` span around the backend run with the response's work
  /// stats attached. With a disabled `trace` this is the plain overload.
  Result<Execution> Execute(const Query& query, const TracedBackend& backend,
                            const TraceContext& trace,
                            uint64_t parent_span_id);

  /// Drops every entry and advances the epoch (in-flight executions will
  /// not install results). Call while quiescing the backend — e.g. around
  /// `Engine::ClearCaches` or after `Engine::RegisterTable`.
  void Clear();

  /// Drops entries whose query touches `table` and advances the epoch.
  /// The targeted form of `Clear` for a single-table refresh.
  void InvalidateTable(const std::string& table);

  /// Aggregated counters across all shards.
  ResultCacheStats Stats() const;

  const ResultCacheOptions& options() const { return options_; }

 private:
  /// A completed, cached response.
  struct Entry {
    QueryResponse response;
    int64_t bytes = 0;
    std::vector<std::string> tables;  ///< For table-level invalidation.
    std::list<std::string>::iterator lru_it;
  };

  /// A single-flight execution in progress. Waiters hold the shared_ptr,
  /// so the leader may erase the flight from the map before they wake.
  struct Flight {
    bool done = false;
    bool ok = false;
    Status error = Status::OK();
    QueryResponse response;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;  ///< Signals flight completions.
    std::unordered_map<std::string, Entry> entries;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
    std::list<std::string> lru;  ///< Front = most recently used.
    int64_t bytes = 0;
    uint64_t epoch = 0;  ///< Bumped by every invalidation.
    ResultCacheStats stats;  ///< hits/misses/coalesced/evictions/invalid.
  };

  Shard& ShardFor(const std::string& key);

  /// Inserts a completed response under `key`, evicting LRU entries until
  /// the shard fits its budget slice. Caller holds `shard.mu`.
  void Insert(Shard* shard, const std::string& key, const Query& query,
              const QueryResponse& response);

  ResultCacheOptions options_;
  int64_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ideval

#endif  // IDEVAL_SERVE_RESULT_CACHE_H_
