#ifndef IDEVAL_SERVE_SERVER_STATS_H_
#define IDEVAL_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/streaming_stats.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/result_cache.h"

namespace ideval {

/// Per-session group accounting. Every submitted group lands in exactly
/// one terminal bucket, so after a drain
///
///     submitted == executed + shed_stale + shed_coalesced
///                + shed_throttled + rejected
///
/// holds per session and (summed) globally. The door verdict is counted
/// separately: `admitted` is the groups that entered the queue, so
///
///     submitted == admitted + shed_throttled + rejected
///     admitted  == executed + shed_stale + shed_coalesced   (after drain)
///
/// — throttle/reject happen at the door, stale/coalesced sheds happen to
/// groups that were already admitted.
struct SessionCounters {
  int64_t groups_submitted = 0;
  int64_t groups_admitted = 0;  ///< Entered the queue (door verdict).
  int64_t groups_executed = 0;
  int64_t groups_shed_stale = 0;      ///< Skip-stale dispatch/overflow.
  int64_t groups_shed_coalesced = 0;  ///< Debounce replacement.
  int64_t groups_shed_throttled = 0;  ///< Throttle door shedding.
  int64_t groups_rejected = 0;        ///< Backpressure (queue full / load).
  int64_t queries_executed = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  int64_t lcv_violations = 0;

  int64_t GroupsShed() const {
    return groups_shed_stale + groups_shed_coalesced + groups_shed_throttled;
  }
  SessionCounters& operator+=(const SessionCounters& o);
};

/// One session's row in a stats snapshot.
struct SessionStatsRow {
  uint64_t session_id = 0;
  SessionCounters counters;
  double qif_qps = 0.0;   ///< Live sliding-window QIF of this session.
  int64_t queued = 0;     ///< Pending groups at snapshot time.
  int64_t queue_hwm = 0;  ///< Deepest the queue has ever been.
};

/// Socket front-end counters (`src/net/net_server.h`), folded into the
/// server snapshot when a `NetServer` is attached. Bytes/frames count
/// wire traffic as seen by the server; after every client has drained
/// and disconnected, `net_bytes_sent` equals the sum of client-side
/// bytes received (and vice versa) — a reconciliation the serve tests
/// assert exactly.
struct NetStatsSnapshot {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  int64_t connections_accepted = 0;
  int64_t active_connections = 0;  ///< Gauge: currently open sockets.
  /// Completion frames dropped because a connection's bounded write
  /// queue was full (the client got a small error frame instead).
  int64_t write_queue_shed = 0;
  /// Malformed/unknown frames answered with an error frame.
  int64_t protocol_errors = 0;
};

/// Consistent point-in-time view of a running `QueryServer`.
struct ServerStatsSnapshot {
  int num_workers = 0;
  /// Engine shards behind the server; 1 = unsharded.
  int num_shards = 1;
  /// Dedicated shard-executor threads (0 when unsharded).
  int shard_workers = 0;
  AdmissionPolicy configured_policy = AdmissionPolicy::kFifo;
  AdmissionPolicy effective_policy = AdmissionPolicy::kFifo;
  int64_t sessions_open = 0;
  double uptime_s = 0.0;

  /// Sum over all sessions (reconciles with the per-session rows by
  /// construction).
  SessionCounters totals;
  int64_t groups_queued = 0;  ///< Still pending at snapshot time.
  int64_t queue_hwm = 0;      ///< Deepest any session queue has been.

  // Wall-clock latency of executed groups, submit -> last query done.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Pure service time (dispatch -> done), the capacity denominator.
  double service_mean_ms = 0.0;
  // Per-phase attribution of the service time (sharded servers; for an
  // unsharded server scatter/merge are zero and execute == service).
  double scatter_mean_ms = 0.0;  ///< Plan + fan-out to the shard pool.
  double execute_mean_ms = 0.0;  ///< Fan-out done -> last partial done.
  double merge_mean_ms = 0.0;    ///< Partial-combine wall time.
  double merge_max_ms = 0.0;     ///< Worst merge (saturation indicator).

  double qif_qps = 0.0;         ///< Global offered load, sliding window.
  double throughput_qps = 0.0;  ///< Executed queries / uptime (lifetime).
  /// Executed queries per second over the live sliding window — the
  /// lifetime average hides saturation onset mid-run; this does not.
  double throughput_window_qps = 0.0;
  double lcv_fraction = 0.0;    ///< Violations / executed groups.
  /// Events dropped from the sliding windows because a burst hit
  /// `OnlineMetrics::kMaxWindowEntries`; nonzero means the windowed
  /// rates above are floors, not exact.
  int64_t qif_window_truncations = 0;

  /// Shared result cache counters (`enable_shared_cache` servers only).
  bool result_cache_enabled = false;
  ResultCacheStats result_cache;

  /// Trace-buffer occupancy (`enable_tracing` servers only).
  bool tracing_enabled = false;
  TraceBufferStats trace_buffer;
  /// Slow-query log size (`slow_query_ms >= 0` servers only).
  bool slow_log_enabled = false;
  int64_t slow_queries_logged = 0;

  /// Socket front-end counters (servers fronted by a `NetServer` only).
  bool net_enabled = false;
  NetStatsSnapshot net;

  LoadAssessment load;

  std::vector<SessionStatsRow> sessions;

  /// Renders the snapshot as aligned text tables (global battery plus a
  /// per-session breakdown).
  std::string ToText() const;
};

/// Thread-safe online accumulators for the server's latency/throughput
/// battery: Welford mean/variance and P² quantiles from
/// `common/streaming_stats` behind a mutex, plus the global QIF window.
/// O(1) state per metric — sessions never buffer per-query history.
class OnlineMetrics {
 public:
  /// Hard element cap on each sliding-window deque. Trimming by horizon
  /// alone lets one burst grow the deque without bound; past the cap the
  /// oldest event is dropped and counted as a truncation (the windowed
  /// rate becomes a floor instead of the process becoming an OOM).
  static constexpr int64_t kMaxWindowEntries = 8192;

  explicit OnlineMetrics(Duration qif_window);

  /// Records a submission (admitted or not) at `now`.
  void RecordSubmit(SimTime now);

  /// Records a group that completed at `now` with `queries` successful
  /// queries (feeds the windowed throughput alongside the latency
  /// battery).
  void RecordGroupComplete(SimTime now, Duration latency, Duration service,
                           int64_t queries);

  /// Attributes one completed group's service time to the scatter /
  /// execute / merge phases. An unsharded server records
  /// (0, service, 0) so `execute` always means "backend busy".
  void RecordPhases(Duration scatter, Duration execute, Duration merge);

  /// Global sliding-window QIF at `now`.
  double QifQps(SimTime now);

  /// Copies the latency/service estimators into `snap`.
  void FillSnapshot(ServerStatsSnapshot* snap, SimTime now);

 private:
  /// One timestamped completion in the throughput window.
  struct Completion {
    SimTime time;
    int64_t queries = 0;
  };

  /// Drops past-horizon (and, beyond the cap, excess) entries from both
  /// windows. Caller holds `mu_`.
  void TrimWindows(SimTime now);

  std::mutex mu_;
  Duration window_;
  std::deque<SimTime> submits_;
  std::deque<Completion> completions_;
  int64_t window_query_sum_ = 0;  ///< Sum of `completions_` queries.
  int64_t truncations_ = 0;       ///< Entries dropped by the element cap.
  StreamingMeanVar latency_ms_;
  P2Quantile latency_p50_;
  P2Quantile latency_p90_;
  StreamingMeanVar service_ms_;
  StreamingMeanVar scatter_ms_;
  StreamingMeanVar execute_ms_;
  StreamingMeanVar merge_ms_;
};

}  // namespace ideval

#endif  // IDEVAL_SERVE_SERVER_STATS_H_
