#include "serve/result_cache.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ideval {

namespace {

/// Conjunction-preserving predicate normalization; see `CanonicalQueryKey`.
std::vector<Predicate> NormalizePredicates(
    const std::vector<Predicate>& predicates) {
  // Intersect all range conjuncts per column (AND of ranges is their
  // intersection). std::map gives a deterministic column order.
  std::map<std::string, RangePredicate> ranges;
  std::vector<Predicate> rest;
  for (const Predicate& p : predicates) {
    if (const auto* r = std::get_if<RangePredicate>(&p)) {
      auto [it, inserted] = ranges.try_emplace(r->column, *r);
      if (!inserted) {
        it->second.lo = std::max(it->second.lo, r->lo);
        it->second.hi = std::min(it->second.hi, r->hi);
      }
    } else if (const auto* in = std::get_if<StringInPredicate>(&p)) {
      StringInPredicate norm = *in;
      std::sort(norm.values.begin(), norm.values.end());
      norm.values.erase(std::unique(norm.values.begin(), norm.values.end()),
                        norm.values.end());
      rest.push_back(std::move(norm));
    } else {
      rest.push_back(p);
    }
  }
  // Canonical conjunct order: ranges by column, then the rest sorted (and
  // deduplicated) by rendered text — predicate order is irrelevant under
  // AND, so equivalent reorderings collide.
  std::vector<Predicate> out;
  out.reserve(ranges.size() + rest.size());
  for (auto& [column, range] : ranges) out.push_back(range);
  std::sort(rest.begin(), rest.end(),
            [](const Predicate& a, const Predicate& b) {
              return PredicateToString(a) < PredicateToString(b);
            });
  std::string prev;
  for (Predicate& p : rest) {
    std::string text = PredicateToString(p);
    if (text == prev) continue;
    prev = std::move(text);
    out.push_back(std::move(p));
  }
  return out;
}

int64_t ValueBytes(const Value& v) {
  // Variant header plus string payload; numerics fit inline.
  return v.is_string() ? 32 + static_cast<int64_t>(v.str().size()) : 16;
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  if (const auto* s = std::get_if<SelectQuery>(&query)) {
    SelectQuery norm = *s;
    norm.predicates = NormalizePredicates(s->predicates);
    if (norm.offset < 0) norm.offset = 0;
    if (norm.limit < 0) norm.limit = -1;
    return QueryToString(Query(std::move(norm)));
  }
  if (const auto* h = std::get_if<HistogramQuery>(&query)) {
    HistogramQuery norm = *h;
    norm.predicates = NormalizePredicates(h->predicates);
    return QueryToString(Query(std::move(norm)));
  }
  return QueryToString(query);
}

int64_t ApproxResponseBytes(const QueryResponse& response) {
  int64_t bytes = 256;  // Response struct, stats, map/list node headroom.
  if (const auto* rows = std::get_if<RowSet>(&response.data)) {
    for (const auto& name : rows->column_names) {
      bytes += 32 + static_cast<int64_t>(name.size());
    }
    for (const auto& row : rows->rows) {
      bytes += 24;  // Row vector header.
      for (const auto& v : row) bytes += ValueBytes(v);
    }
  } else {
    const auto& hist = std::get<FixedHistogram>(response.data);
    bytes += 64 + static_cast<int64_t>(hist.num_bins()) * 8;
  }
  return bytes;
}

const char* CacheOutcomeToString(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

namespace {

std::vector<std::string> QueryTables(const Query& query) {
  if (const auto* s = std::get_if<SelectQuery>(&query)) return {s->table};
  if (const auto* h = std::get_if<HistogramQuery>(&query)) return {h->table};
  const auto& j = std::get<JoinPageQuery>(query);
  return {j.left_table, j.right_table};
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.byte_budget < 0) options_.byte_budget = 0;
  shard_budget_ = options_.byte_budget / options_.num_shards;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void ResultCache::Insert(Shard* shard, const std::string& key,
                         const Query& query, const QueryResponse& response) {
  const int64_t bytes = ApproxResponseBytes(response) +
                        static_cast<int64_t>(key.size());
  if (bytes > shard_budget_) return;  // Would evict everything; skip.
  while (shard->bytes + bytes > shard_budget_ && !shard->lru.empty()) {
    const std::string& victim = shard->lru.back();
    auto it = shard->entries.find(victim);
    shard->bytes -= it->second.bytes;
    shard->entries.erase(it);
    shard->lru.pop_back();
    ++shard->stats.evictions;
  }
  Entry entry;
  entry.response = response;
  entry.bytes = bytes;
  entry.tables = QueryTables(query);
  shard->lru.push_front(key);
  entry.lru_it = shard->lru.begin();
  shard->bytes += bytes;
  shard->entries.emplace(key, std::move(entry));
}

Result<ResultCache::Execution> ResultCache::Execute(const Query& query,
                                                    const Backend& backend) {
  return Execute(
      query,
      [&backend](const Query& q, const TraceContext&, uint64_t) {
        return backend(q);
      },
      TraceContext(), /*parent_span_id=*/0);
}

Result<ResultCache::Execution> ResultCache::Execute(
    const Query& query, const TracedBackend& backend,
    const TraceContext& trace, uint64_t parent_span_id) {
  // Covers the whole lookup: a coalesced caller's span is its wait on the
  // leader's flight; a hit's span is a map probe. Detail carries the
  // outcome (1 hit / 2 miss / 3 coalesced / 0 backend error).
  Span lookup(trace, SpanKind::kCacheLookup, parent_span_id);
  const std::string key = CanonicalQueryKey(query);
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto hit = shard.entries.find(key);
    if (hit != shard.entries.end()) {
      ++shard.stats.hits;
      // LRU touch: move to front.
      shard.lru.splice(shard.lru.begin(), shard.lru, hit->second.lru_it);
      Execution out;
      out.response = hit->second.response;
      out.outcome = CacheOutcome::kHit;
      lookup.SetDetail(1);
      return out;
    }
    auto flying = shard.flights.find(key);
    if (flying == shard.flights.end()) break;  // We become the leader.
    // Single flight: wait for the concurrent identical execution. The
    // shared cv wakes on any flight completing in this shard, so re-check.
    std::shared_ptr<Flight> flight = flying->second;
    shard.cv.wait(lock, [&flight] { return flight->done; });
    ++shard.stats.coalesced;
    if (!flight->ok) return flight->error;
    Execution out;
    out.response = flight->response;
    out.outcome = CacheOutcome::kCoalesced;
    lookup.SetDetail(3);
    return out;
  }

  auto flight = std::make_shared<Flight>();
  shard.flights.emplace(key, flight);
  ++shard.stats.leader_executions;
  const uint64_t epoch = shard.epoch;
  lock.unlock();

  // The backend runs outside every cache lock; it may block (e.g. on a
  // shard pool) without stalling other keys of this shard.
  Span exec(trace, SpanKind::kExecute, lookup.id());
  Result<QueryResponse> r = backend(query, trace, exec.id());
  if (r.ok()) {
    exec.SetAttrs(r->stats.tuples_scanned, r->stats.blocks_scanned,
                  r->stats.blocks_pruned);
  }
  exec.End();

  lock.lock();
  ++shard.stats.misses;
  flight->done = true;
  if (r.ok()) {
    flight->ok = true;
    flight->response = *r;
    // An invalidation during the flight means this result may describe a
    // table set that no longer exists; serve the waiters (they asked
    // before the invalidation) but do not install the entry.
    if (shard.epoch == epoch) Insert(&shard, key, query, *r);
  } else {
    flight->error = r.status();
  }
  shard.flights.erase(key);
  shard.cv.notify_all();
  if (!r.ok()) return r.status();
  Execution out;
  out.response = std::move(*r);
  out.outcome = CacheOutcome::kMiss;
  lookup.SetDetail(2);
  return out;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats.invalidations +=
        static_cast<int64_t>(shard->entries.size());
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
    ++shard->epoch;
  }
}

void ResultCache::InvalidateTable(const std::string& table) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      const auto& tables = it->second.tables;
      if (std::find(tables.begin(), tables.end(), table) == tables.end()) {
        ++it;
        continue;
      }
      shard->bytes -= it->second.bytes;
      shard->lru.erase(it->second.lru_it);
      it = shard->entries.erase(it);
      ++shard->stats.invalidations;
    }
    ++shard->epoch;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.coalesced += shard->stats.coalesced;
    total.leader_executions += shard->stats.leader_executions;
    total.evictions += shard->stats.evictions;
    total.invalidations += shard->stats.invalidations;
    total.entries += static_cast<int64_t>(shard->entries.size());
    total.bytes += shard->bytes;
  }
  return total;
}

}  // namespace ideval
