#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ideval {

Summary::Summary(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
  if (sorted_.empty()) return;
  for (double v : sorted_) sum_ += v;
  mean_ = sum_ / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (double v : sorted_) ss += (v - mean_) * (v - mean_);
  // Population standard deviation: these are full trace populations, not
  // samples from a larger trace.
  stddev_ = std::sqrt(ss / static_cast<double>(sorted_.size()));
}

double Summary::Quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[i] * (1.0 - frac) + sorted_[i + 1] * frac;
}

double Summary::CdfAt(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::string Summary::RangeMeanMedianString(int precision) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.*f, %.*f], %.*f, %.*f", precision, min(),
                precision, max(), precision, mean(), precision, median());
  return buf;
}

Result<FixedHistogram> FixedHistogram::Make(double lo, double hi,
                                            size_t bins) {
  if (bins < 1) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("histogram range must satisfy lo < hi");
  }
  return FixedHistogram(lo, hi, bins);
}

Result<FixedHistogram> FixedHistogram::FromCounts(double lo, double hi,
                                                  std::vector<double> counts) {
  IDEVAL_ASSIGN_OR_RETURN(FixedHistogram hist, Make(lo, hi, counts.size()));
  for (double c : counts) hist.total_ += c;
  hist.counts_ = std::move(counts);
  return hist;
}

void FixedHistogram::Add(double value, double weight) {
  const double w = bin_width();
  double idx = (value - lo_) / w;
  size_t bin;
  if (idx < 0.0) {
    bin = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<size_t>(idx);
  }
  counts_[bin] += weight;
  total_ += weight;
}

std::vector<double> FixedHistogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) {
    const double u = 1.0 / static_cast<double>(counts_.size());
    for (auto& v : out) v = u;
    return out;
  }
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

Result<double> HistogramQuantile(const FixedHistogram& hist, double q) {
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must be in [0, 1]");
  }
  if (hist.total() <= 0.0) {
    return Status::InvalidArgument("quantile of an empty histogram");
  }
  const double target = q * hist.total();
  double cum = 0.0;
  for (size_t b = 0; b < hist.num_bins(); ++b) {
    const double c = hist.count(b);
    if (cum + c >= target && c > 0.0) {
      // Interpolate linearly within the bin that crosses the target mass.
      const double frac = (target - cum) / c;
      return hist.BinLowerEdge(b) + frac * hist.bin_width();
    }
    cum += c;
  }
  return hist.hi();
}

Result<double> KlDivergence(const std::vector<double>& p,
                            const std::vector<double>& q, double epsilon) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("KL divergence requires equal lengths");
  }
  if (p.empty()) {
    return Status::InvalidArgument("KL divergence over empty distributions");
  }
  double psum = 0.0;
  double qsum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) {
      return Status::InvalidArgument("KL divergence weights must be >= 0");
    }
    psum += p[i];
    qsum += q[i];
  }
  const double n = static_cast<double>(p.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    // Epsilon-smoothed normalization keeps the divergence finite when a bin
    // is empty on one side (common while a brush slides past sparse bins).
    const double pi =
        (psum > 0.0 ? p[i] / psum : 1.0 / n) + epsilon;
    const double qi =
        (qsum > 0.0 ? q[i] / qsum : 1.0 / n) + epsilon;
    kl += pi * std::log(pi / qi);
  }
  return kl < 0.0 ? 0.0 : kl;  // Clamp tiny negative rounding residue.
}

Result<double> KlDivergence(const FixedHistogram& p, const FixedHistogram& q,
                            double epsilon) {
  if (p.num_bins() != q.num_bins()) {
    return Status::InvalidArgument(
        "KL divergence requires histograms with equal bin counts");
  }
  return KlDivergence(p.counts(), q.counts(), epsilon);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values, size_t points) {
  std::vector<CdfPoint> out;
  if (values.empty() || points == 0) return out;
  std::sort(values.begin(), values.end());
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t idx = static_cast<size_t>(
        frac * static_cast<double>(values.size()));
    if (idx == 0) idx = 1;
    out.push_back(CdfPoint{values[idx - 1], frac});
  }
  return out;
}

}  // namespace ideval
