#include "common/streaming_stats.h"

#include <algorithm>
#include <cmath>

namespace ideval {

void StreamingMeanVar::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StreamingMeanVar::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double StreamingMeanVar::stddev() const { return std::sqrt(variance()); }

void StreamingMeanVar::Merge(const StreamingMeanVar& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 1e-6, 1.0 - 1e-6)) {
  warmup_.reserve(5);
}

void P2Quantile::Add(double value) {
  ++count_;
  if (warmup_.size() < 5) {
    warmup_.push_back(value);
    if (warmup_.size() == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[static_cast<size_t>(i)] = warmup_[static_cast<size_t>(i)];
        positions_[static_cast<size_t>(i)] = i + 1;
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Find the cell k containing the observation and update extremes.
  size_t k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }
  for (size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions.
  for (size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double np = positions_[i] + sign;
      const double q_parab =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < q_parab && q_parab < heights_[i + 1]) {
        heights_[i] = q_parab;
      } else {
        // Linear fallback.
        const size_t j = sign > 0.0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::Estimate() const {
  if (warmup_.size() < 5) {
    if (warmup_.empty()) return 0.0;
    std::vector<double> sorted = warmup_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q_ * static_cast<double>(sorted.size() - 1);
    const size_t i = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= sorted.size()) return sorted.back();
    return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
  }
  return heights_[2];
}

ReservoirSampler::ReservoirSampler(size_t capacity, Rng rng)
    : capacity_(capacity == 0 ? 1 : capacity), rng_(std::move(rng)) {
  sample_.reserve(capacity_);
}

void ReservoirSampler::Add(double value) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  const int64_t j = rng_.UniformInt(0, seen_ - 1);
  if (j < static_cast<int64_t>(capacity_)) {
    sample_[static_cast<size_t>(j)] = value;
  }
}

}  // namespace ideval
