#ifndef IDEVAL_COMMON_RESULT_H_
#define IDEVAL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ideval {

/// Value-or-error, in the style of `arrow::Result<T>`.
///
/// A `Result<T>` holds either a `T` (status OK) or an error `Status`.
/// Accessing the value of an errored result is a programming error and
/// asserts in debug builds.
///
///     Result<Table> r = MakeMoviesTable(opts);
///     if (!r.ok()) return r.status();
///     Table t = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return my_table;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status:
  /// `return Status::InvalidArgument(...);`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the stored value. Requires `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Shorthand accessors mirroring std::optional.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result`-returning expression to `lhs`, or
/// propagates its error status.
#define IDEVAL_ASSIGN_OR_RETURN(lhs, expr)          \
  auto IDEVAL_CONCAT_(result_, __LINE__) = (expr);  \
  if (!IDEVAL_CONCAT_(result_, __LINE__).ok())      \
    return IDEVAL_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(IDEVAL_CONCAT_(result_, __LINE__)).ValueOrDie()

#define IDEVAL_CONCAT_INNER_(a, b) a##b
#define IDEVAL_CONCAT_(a, b) IDEVAL_CONCAT_INNER_(a, b)

}  // namespace ideval

#endif  // IDEVAL_COMMON_RESULT_H_
