#include "common/rng.h"

#include <cmath>

namespace ideval {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro
  // authors; guards against poor seeds such as 0.
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % range);
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  // Rejection-inversion sampler (Hörmann & Derflinger) is overkill here;
  // trace sizes are small, so inverse CDF over the harmonic weights is fine
  // for n up to a few thousand and a rejection loop beyond that.
  if (n <= 4096) {
    double total = 0.0;
    for (int64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(k, s);
    double u = NextDouble() * total;
    double acc = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(k, s);
      if (u <= acc) return k;
    }
    return n;
  }
  // Simple rejection against the continuous envelope x^-s.
  while (true) {
    const double u = NextDouble();
    const double x =
        std::pow((std::pow(static_cast<double>(n), 1.0 - s) - 1.0) * u + 1.0,
                 1.0 / (1.0 - s));
    const int64_t k = static_cast<int64_t>(x);
    if (k >= 1 && k <= n) return k;
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace ideval
