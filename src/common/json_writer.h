#ifndef IDEVAL_COMMON_JSON_WRITER_H_
#define IDEVAL_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ideval {

/// Minimal streaming JSON emitter for the machine-readable exports
/// (metrics exposition, `BENCH_*.json` perf trajectories). Handles comma
/// placement and string escaping; the caller handles structure. Not a
/// parser, not spec-pedantic about misuse — calls must nest correctly.
///
///     JsonWriter w;
///     w.BeginObject();
///     w.Key("name").String("serve");
///     w.Key("qps").Double(1234.5);
///     w.Key("series").BeginArray();
///     w.Int(1).Int(2);
///     w.EndArray();
///     w.EndObject();
///     std::string out = std::move(w).Finish();
///
/// Non-finite doubles render as `null`: JSON has no NaN/Inf, and a perf
/// series with a hole beats an export that no parser will load.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"name":`; the next value call supplies the value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON value verbatim (e.g. a nested export
  /// from another writer). The caller vouches for its validity.
  JsonWriter& Raw(const std::string& json);

  std::string Finish() && { return std::move(out_); }
  const std::string& str() const { return out_; }

  /// Escapes `value` for inclusion inside JSON double quotes.
  static std::string Escape(const std::string& value);

 private:
  /// Emits a separating comma when the current container already holds a
  /// value and the next token is not a key's own value.
  void BeforeValue();

  std::string out_;
  /// One entry per open container: whether it needs a comma before the
  /// next element.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace ideval

#endif  // IDEVAL_COMMON_JSON_WRITER_H_
