#ifndef IDEVAL_COMMON_RNG_H_
#define IDEVAL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ideval {

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// distributions used across the simulators.
///
/// All randomness in ideval flows from explicitly seeded `Rng` instances so
/// that every experiment — trace generation, device jitter, dataset
/// synthesis — is bit-reproducible across runs and platforms. The standard
/// library distributions are implementation-defined, so we implement our own
/// on top of the raw generator.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (cached spare value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double Exponential(double mean);

  /// Log-normal such that the underlying normal has parameters (mu, sigma).
  double LogNormal(double mu, double sigma);

  /// Zipf-distributed rank in [1, n] with exponent `s` (s >= 0).
  /// Uses inverse-CDF over precomputed weights for small n; rejection
  /// sampling otherwise.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Nonpositive weights are treated as zero; if all weights are zero the
  /// first index is returned.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// user / device / module its own stream without cross-coupling.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace ideval

#endif  // IDEVAL_COMMON_RNG_H_
