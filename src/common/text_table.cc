#include "common/text_table.h"

#include <cstdarg>
#include <cstdio>

namespace ideval {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

void TextTable::AddCountRow(const std::string& name,
                            std::initializer_list<int64_t> counts) {
  std::string joined;
  for (const int64_t c : counts) {
    if (!joined.empty()) joined += " / ";
    joined += StrFormat("%lld", static_cast<long long>(c));
  }
  AddRow({name, std::move(joined)});
}

std::string TextTable::ToString() const {
  // Compute column widths over header + rows.
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&widths](const std::vector<std::string>& row,
                              std::string* out) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out->append(cell);
      if (i + 1 < widths.size()) {
        out->append(widths[i] - cell.size() + 2, ' ');
      }
    }
    out->push_back('\n');
  };

  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  if (total >= 2) total -= 2;

  std::string out;
  render_row(header_, &out);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& r : rows_) {
    if (r.empty()) {
      out.append(total, '-');
      out.push_back('\n');
    } else {
      render_row(r, &out);
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return std::string();
  double frac = value / max_value;
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  const int n = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace ideval
