#ifndef IDEVAL_COMMON_TEXT_TABLE_H_
#define IDEVAL_COMMON_TEXT_TABLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ideval {

/// Column-aligned plain-text table used by every bench binary to print the
/// paper's tables and figure series in a stable, diff-able format.
///
///     TextTable t({"# tuples fetched", "12", "30", "58", "80"});
///     t.AddRow({"# users (event)", "15", "15", "15", "14"});
///     std::cout << t.ToString();
class TextTable {
 public:
  /// Creates a table with the given header row.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Appends a two-cell row: `name` and the counts joined with " / " —
  /// the dominant row shape in the server's stats battery
  /// ("submitted / executed / shed": 12 / 9 / 3).
  void AddCountRow(const std::string& name,
                   std::initializer_list<int64_t> counts);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with single-space-padded columns and a rule under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector = separator.
};

/// printf-style formatting into a std::string (vsnprintf under the hood).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 2);

/// Renders a sparkline-ish horizontal bar of `value` relative to `max_value`
/// using '#' characters, `width` wide — used for ASCII renderings of the
/// paper's figures.
std::string AsciiBar(double value, double max_value, int width = 40);

}  // namespace ideval

#endif  // IDEVAL_COMMON_TEXT_TABLE_H_
