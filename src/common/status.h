#ifndef IDEVAL_COMMON_STATUS_H_
#define IDEVAL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ideval {

/// Error category carried by a `Status`.
///
/// The set follows the usual database-systems idiom (RocksDB / Arrow):
/// a small closed enumeration that callers can branch on, plus a free-form
/// message for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without a value payload.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// message only on error. Functions in this codebase never throw across
/// public API boundaries; they return `Status` or `Result<T>` instead.
///
/// Typical use:
///
///     Status s = table.AppendRow(row);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff no error occurred.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>" for logging.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Mirrors the RocksDB/Arrow
/// RETURN_NOT_OK macro.
#define IDEVAL_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::ideval::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace ideval

#endif  // IDEVAL_COMMON_STATUS_H_
