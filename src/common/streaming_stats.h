#ifndef IDEVAL_COMMON_STREAMING_STATS_H_
#define IDEVAL_COMMON_STREAMING_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ideval {

/// Online mean/variance (Welford's algorithm). Long interactive sessions
/// produce unbounded metric streams (per-event latencies, intervals);
/// these accumulators keep O(1) state where `Summary` would buffer
/// everything.
class StreamingMeanVar {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than one sample.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel collection).
  void Merge(const StreamingMeanVar& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// P² (piecewise-parabolic) single-quantile estimator — O(1) space
/// estimation of a fixed quantile over a stream (Jain & Chlamtac 1985).
/// Used to report p50/p90 latency in never-ending sessions without
/// retaining every observation.
class P2Quantile {
 public:
  /// Estimates the `q`-quantile, q in (0, 1).
  explicit P2Quantile(double q);

  void Add(double value);

  int64_t count() const { return count_; }

  /// Current estimate. Exact until five samples have arrived; approximate
  /// thereafter.
  double Estimate() const;

 private:
  double q_;
  int64_t count_ = 0;
  std::array<double, 5> heights_{};   // Marker heights.
  std::array<double, 5> positions_{}; // Actual marker positions.
  std::array<double, 5> desired_{};   // Desired marker positions.
  std::array<double, 5> increments_{};
  std::vector<double> warmup_;        // First five samples.
};

/// Fixed-size uniform reservoir sample of a stream (Vitter's Algorithm R).
/// Backs sampling-based approximations over data that arrives as a stream
/// (e.g. trace events) rather than a table.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, Rng rng);

  void Add(double value);

  int64_t seen() const { return seen_; }
  const std::vector<double>& sample() const { return sample_; }

 private:
  size_t capacity_;
  Rng rng_;
  int64_t seen_ = 0;
  std::vector<double> sample_;
};

}  // namespace ideval

#endif  // IDEVAL_COMMON_STREAMING_STATS_H_
