#include "common/sim_time.h"

#include <cstdio>

namespace ideval {

std::string Duration::ToString() const {
  char buf[64];
  const double abs_us = micros_ < 0 ? -static_cast<double>(micros_)
                                    : static_cast<double>(micros_);
  if (abs_us < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  } else if (abs_us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", seconds());
  return buf;
}

}  // namespace ideval
