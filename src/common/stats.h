#ifndef IDEVAL_COMMON_STATS_H_
#define IDEVAL_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace ideval {

/// Descriptive statistics over a sample, computed once at construction.
///
/// Used everywhere a paper table reports range / mean / median (e.g.
/// Table 7 scroll-speed statistics) or a figure reports percentiles.
class Summary {
 public:
  /// Computes statistics over `values`. An empty sample yields all-zero
  /// statistics with `count() == 0`.
  explicit Summary(std::vector<double> values);

  size_t count() const { return sorted_.size(); }
  double min() const { return count() ? sorted_.front() : 0.0; }
  double max() const { return count() ? sorted_.back() : 0.0; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double median() const { return Quantile(0.5); }
  double sum() const { return sum_; }

  /// Linear-interpolation quantile, q in [0, 1].
  double Quantile(double q) const;

  /// Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;

  /// "[min, max], mean, median" rendering used by the Table 7 bench.
  std::string RangeMeanMedianString(int precision = 1) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi) with `bins` buckets.
///
/// This is both an analysis tool (Fig. 14 inter-arrival histograms) and the
/// *query result type* of the crossfilter case study (20-bin count
/// histograms per attribute, §7).
class FixedHistogram {
 public:
  /// Creates an empty histogram. Requires bins >= 1 and lo < hi.
  static Result<FixedHistogram> Make(double lo, double hi, size_t bins);

  /// Reconstitutes a histogram from already-bucketed counts (the wire
  /// decoder cannot replay `Add` calls). Same validity requirements as
  /// `Make`; the total is the sum of `counts`.
  static Result<FixedHistogram> FromCounts(double lo, double hi,
                                           std::vector<double> counts);

  /// Adds one observation; values outside [lo, hi) are clamped into the
  /// first/last bin so that totals are preserved (matching how UI
  /// histograms render out-of-range brushes).
  void Add(double value, double weight = 1.0);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t num_bins() const { return counts_.size(); }
  double bin_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  double total() const { return total_; }
  double count(size_t bin) const { return counts_[bin]; }
  const std::vector<double>& counts() const { return counts_; }

  /// Lower edge of bin `i`.
  double BinLowerEdge(size_t i) const {
    return lo_ + bin_width() * static_cast<double>(i);
  }

  /// Returns counts normalized to sum to 1. A histogram with zero total
  /// normalizes to the uniform distribution (so KL against it is finite).
  std::vector<double> Normalized() const;

  bool operator==(const FixedHistogram& other) const = default;

 private:
  FixedHistogram(double lo, double hi, size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0.0) {}

  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// The `q`-quantile read off a histogram's bucketed summary, with linear
/// interpolation inside the quantile's bin. This is how order statistics
/// merge across shards: exact aggregates (bin counts) combine by
/// addition, and any percentile derived from the merged histogram agrees
/// with the percentile of the unsharded histogram — and with the exact
/// data quantile to within one bin width. Requires q in [0, 1]; errors on
/// an empty histogram.
Result<double> HistogramQuantile(const FixedHistogram& hist, double q);

/// Kullback–Leibler divergence KL(p || q) between two discrete
/// distributions given as (possibly unnormalized) nonnegative weights of
/// equal length, with epsilon smoothing so the result is always finite.
///
/// Used by the KL query-suppression optimization of §7.1 (Algorithm 2): a
/// new crossfilter query is sent to the backend only if the estimated
/// result histogram diverges from the previous one by more than a
/// threshold.
Result<double> KlDivergence(const std::vector<double>& p,
                            const std::vector<double>& q,
                            double epsilon = 1e-9);

/// Convenience overload over histograms of identical shape.
Result<double> KlDivergence(const FixedHistogram& p, const FixedHistogram& q,
                            double epsilon = 1e-9);

/// One point of an empirical CDF: `fraction` of samples are <= `value`.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Empirical CDF evaluated at `points` evenly spaced quantiles — the form
/// in which Figs. 20 and 21 are reported.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values,
                                   size_t points = 20);

}  // namespace ideval

#endif  // IDEVAL_COMMON_STATS_H_
