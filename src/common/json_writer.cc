#include "common/json_writer.h"

#include <cmath>

#include "common/text_table.h"

namespace ideval {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  // %.17g round-trips any double but litters the export with noise
  // digits; %.6g is plenty for ms/qps-scale metrics and keeps diffs sane.
  out_ += StrFormat("%.6g", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ideval
