#ifndef IDEVAL_COMMON_SIM_TIME_H_
#define IDEVAL_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace ideval {

/// A span of simulated time with microsecond resolution.
///
/// All latencies, sensing intervals and session durations in ideval are
/// expressed in simulated time so that experiments are deterministic and
/// hardware-independent. `Duration` is a thin strong typedef over int64
/// microseconds with arithmetic and named constructors.
class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration MillisF(double ms) {
    return Duration(static_cast<int64_t>(ms * 1000.0));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr Duration operator+(Duration o) const {
    return Duration(micros_ + o.micros_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(micros_ - o.micros_);
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(micros_) * k));
  }
  constexpr Duration operator/(int64_t k) const {
    return Duration(micros_ / k);
  }
  Duration& operator+=(Duration o) {
    micros_ += o.micros_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    micros_ -= o.micros_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  /// "12.3ms" / "4.56s" style rendering for logs and bench tables.
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

/// A point on the simulated timeline (microseconds since session start).
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}

  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime FromMillis(double ms) {
    return SimTime(static_cast<int64_t>(ms * 1000.0));
  }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Origin() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr SimTime operator+(Duration d) const {
    return SimTime(micros_ + d.micros());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(micros_ - d.micros());
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration::Micros(micros_ - o.micros_);
  }
  SimTime& operator+=(Duration d) {
    micros_ += d.micros();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t us) : micros_(us) {}
  int64_t micros_;
};

}  // namespace ideval

#endif  // IDEVAL_COMMON_SIM_TIME_H_
