#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/text_table.h"

namespace ideval {

namespace {

const char* const kFirstNames[] = {
    "Ava",    "Noah",  "Mia",   "Liam",  "Zoe",    "Ethan", "Ivy",
    "Mason",  "Luna",  "Caleb", "Nora",  "Felix",  "Iris",  "Hugo",
    "Clara",  "Oscar", "Ruth",  "Jonas", "Elena",  "Marco", "Dara",
    "Kenji",  "Sofia", "Ravi",  "Anya",  "Tomas",  "Lena",  "Omar",
    "Priya",  "Viktor"};

const char* const kLastNames[] = {
    "Archer",   "Brooks",  "Castell", "Dawson",  "Ellison", "Fontaine",
    "Grayson",  "Holt",    "Ibarra",  "Jensen",  "Kovacs",  "Larsen",
    "Mercer",   "Novak",   "Okafor",  "Petrov",  "Quinn",   "Rhodes",
    "Sorensen", "Takeda",  "Ueda",    "Vance",   "Whitaker", "Xu",
    "Yamada",   "Zielinski"};

const char* const kGenres[] = {"Drama",    "Comedy", "Thriller", "Sci-Fi",
                               "Romance",  "Action", "Horror",   "Documentary",
                               "Animation", "Crime"};

const char* const kTitleAdjectives[] = {
    "Silent", "Crimson", "Forgotten", "Endless", "Broken",  "Golden",
    "Hidden", "Last",    "Burning",   "Distant", "Hollow",  "Electric",
    "Frozen", "Wandering", "Midnight", "Paper",  "Glass",   "Iron"};

const char* const kTitleNouns[] = {
    "Horizon", "Garden",  "Empire", "River",   "Machine", "Symphony",
    "Harbor",  "Letter",  "Winter", "Promise", "Shadow",  "Voyage",
    "Orchard", "Signal",  "Mirror", "Kingdom", "Arcade",  "Meridian"};

const char* const kPlotVerbs[] = {"discovers", "loses",   "inherits",
                                  "chases",    "betrays", "rescues",
                                  "forgets",   "rebuilds"};

const char* const kPlotObjects[] = {
    "a forgotten city",  "an impossible machine", "her estranged family",
    "the last archive",  "a rival's secret",      "an island that moves",
    "the final broadcast", "a door between worlds"};

const char* const kRoomTypes[] = {"Entire home/apt", "Private room",
                                  "Shared room", "Hotel room"};

template <size_t N>
const char* Pick(Rng* rng, const char* const (&arr)[N]) {
  return arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)];
}

}  // namespace

Result<TablePtr> MakeMoviesTable(const MoviesOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument("MakeMoviesTable: num_rows must be > 0");
  }
  Rng rng(options.seed);
  Schema schema({{"id", DataType::kInt64},
                 {"title", DataType::kString},
                 {"year", DataType::kInt64},
                 {"director", DataType::kString},
                 {"genre", DataType::kString},
                 {"plot", DataType::kString},
                 {"rating", DataType::kDouble},
                 {"poster", DataType::kString}});
  TableBuilder builder("imdb", schema);

  // "Top rated" list: ratings descend from ~9.3 with light noise, like the
  // IMDB top chart the paper scrolled through.
  for (int64_t i = 0; i < options.num_rows; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(options.num_rows);
    const double rating =
        9.3 - 2.5 * frac + rng.Uniform(-0.04, 0.04);
    const std::string title =
        StrFormat("The %s %s", Pick(&rng, kTitleAdjectives),
                  Pick(&rng, kTitleNouns));
    const std::string director = StrFormat(
        "%s %s", Pick(&rng, kFirstNames), Pick(&rng, kLastNames));
    // Genre popularity is Zipfian: a few genres dominate the top list.
    const char* genre =
        kGenres[rng.Zipf(static_cast<int64_t>(std::size(kGenres)), 1.1) - 1];
    const std::string plot =
        StrFormat("A %s %s %s.", Pick(&rng, kTitleAdjectives),
                  Pick(&rng, kTitleNouns), Pick(&rng, kPlotVerbs)) +
        std::string(" It ends with ") + Pick(&rng, kPlotObjects) + ".";
    const int64_t year = rng.UniformInt(1941, 2018);
    const std::string poster =
        StrFormat("https://img.example/poster/%06lld.jpg",
                  static_cast<long long>(i + 1));
    builder.MustAppendRow({Value(i + 1), Value(title), Value(year),
                           Value(director), Value(genre), Value(plot),
                           Value(rating), Value(poster)});
  }
  return std::move(builder).Finish();
}

Result<MovieJoinTables> SplitMoviesForJoin(const TablePtr& movies) {
  if (movies == nullptr) {
    return Status::InvalidArgument("SplitMoviesForJoin: null table");
  }
  IDEVAL_ASSIGN_OR_RETURN(const Column* id_col, movies->ColumnByName("id"));
  IDEVAL_ASSIGN_OR_RETURN(const Column* rating_col,
                          movies->ColumnByName("rating"));

  Schema ratings_schema(
      {{"id", DataType::kInt64}, {"rating", DataType::kDouble}});
  TableBuilder ratings_builder("imdbrating", ratings_schema);
  for (size_t r = 0; r < movies->num_rows(); ++r) {
    ratings_builder.MustAppendRow(
        {id_col->Get(r), rating_col->Get(r)});
  }

  std::vector<Field> movie_fields;
  std::vector<size_t> movie_cols;
  for (size_t c = 0; c < movies->schema().num_fields(); ++c) {
    const Field& f = movies->schema().field(c);
    if (f.name == "rating") continue;
    movie_fields.push_back(f);
    movie_cols.push_back(c);
  }
  TableBuilder movie_builder("movie", Schema(movie_fields));
  for (size_t r = 0; r < movies->num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(movie_cols.size());
    for (size_t c : movie_cols) row.push_back(movies->At(r, c));
    movie_builder.MustAppendRow(row);
  }

  MovieJoinTables out;
  IDEVAL_ASSIGN_OR_RETURN(out.ratings, std::move(ratings_builder).Finish());
  IDEVAL_ASSIGN_OR_RETURN(out.movies, std::move(movie_builder).Finish());
  return out;
}

Result<TablePtr> MakeRoadNetworkTable(const RoadNetworkOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument(
        "MakeRoadNetworkTable: num_rows must be > 0");
  }
  if (!(options.x_min < options.x_max) || !(options.y_min < options.y_max) ||
      !(options.z_min < options.z_max)) {
    return Status::InvalidArgument(
        "MakeRoadNetworkTable: degenerate value ranges");
  }
  Rng rng(options.seed);
  Schema schema({{"x", DataType::kDouble},
                 {"y", DataType::kDouble},
                 {"z", DataType::kDouble}});
  TableBuilder builder("dataroad", schema);
  Column* xs = builder.mutable_column(0);
  Column* ys = builder.mutable_column(1);
  Column* zs = builder.mutable_column(2);

  const double x_span = options.x_max - options.x_min;
  const double y_span = options.y_max - options.y_min;
  const double z_span = options.z_max - options.z_min;

  int64_t emitted = 0;
  while (emitted < options.num_rows) {
    // Start a new "road": pick an anchor, then random-walk along a heading
    // with small altitude drift. This yields the clumped marginal
    // distributions (towns, coastal flats) that make the 20-bin histograms
    // non-uniform, as in the UCI original.
    double x = options.x_min + x_span * rng.NextDouble();
    double y = options.y_min + y_span * rng.NextDouble();
    // Altitude anchored low near the "coast" (western x) and higher inland.
    double z = options.z_min +
               z_span * std::pow(rng.NextDouble(), 2.0) *
                   (0.4 + 0.6 * (x - options.x_min) / x_span);
    double heading = rng.Uniform(0.0, 2.0 * M_PI);
    const int64_t segment_len = std::max<int64_t>(
        8, static_cast<int64_t>(rng.Exponential(
               static_cast<double>(options.points_per_road))));
    for (int64_t i = 0; i < segment_len && emitted < options.num_rows; ++i) {
      xs->AppendDouble(std::clamp(x, options.x_min, options.x_max));
      ys->AppendDouble(std::clamp(y, options.y_min, options.y_max));
      zs->AppendDouble(std::clamp(z, options.z_min, options.z_max));
      ++emitted;
      heading += rng.Gaussian(0.0, 0.18);
      const double step = 2.2e-4 * (0.5 + rng.NextDouble());
      x += step * std::cos(heading) * (x_span / y_span);
      y += step * std::sin(heading);
      z += rng.Gaussian(0.0, 0.35);
      if (x < options.x_min || x > options.x_max || y < options.y_min ||
          y > options.y_max) {
        break;  // Road left the bounding box; start a new one.
      }
    }
  }
  return std::move(builder).Finish();
}

Result<std::vector<GeoCluster>> FindListingClusters(
    const TablePtr& listings, int k, double cell_degrees) {
  if (listings == nullptr) {
    return Status::InvalidArgument("FindListingClusters: null table");
  }
  if (k <= 0) {
    return Status::InvalidArgument("FindListingClusters: k must be > 0");
  }
  if (cell_degrees <= 0.0) {
    return Status::InvalidArgument(
        "FindListingClusters: cell_degrees must be > 0");
  }
  IDEVAL_ASSIGN_OR_RETURN(const Column* lat, listings->ColumnByName("lat"));
  IDEVAL_ASSIGN_OR_RETURN(const Column* lng, listings->ColumnByName("lng"));

  struct Cell {
    double lat_sum = 0.0;
    double lng_sum = 0.0;
    int64_t count = 0;
  };
  std::map<std::pair<int64_t, int64_t>, Cell> grid;
  const size_t n = listings->num_rows();
  for (size_t row = 0; row < n; ++row) {
    const double la = lat->GetDouble(row);
    const double lo = lng->GetDouble(row);
    Cell& cell = grid[{static_cast<int64_t>(std::floor(la / cell_degrees)),
                       static_cast<int64_t>(std::floor(lo / cell_degrees))}];
    cell.lat_sum += la;
    cell.lng_sum += lo;
    ++cell.count;
  }
  std::vector<GeoCluster> clusters;
  clusters.reserve(grid.size());
  for (const auto& [_, cell] : grid) {
    clusters.push_back(GeoCluster{
        cell.lat_sum / static_cast<double>(cell.count),
        cell.lng_sum / static_cast<double>(cell.count), cell.count});
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const GeoCluster& a, const GeoCluster& b) {
              return a.count > b.count;
            });
  if (static_cast<int>(clusters.size()) > k) {
    clusters.resize(static_cast<size_t>(k));
  }
  return clusters;
}

Result<TablePtr> MakeListingsTable(const ListingsOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument("MakeListingsTable: num_rows must be > 0");
  }
  if (options.num_cities <= 0) {
    return Status::InvalidArgument(
        "MakeListingsTable: num_cities must be > 0");
  }
  Rng rng(options.seed);
  Schema schema({{"id", DataType::kInt64},
                 {"lat", DataType::kDouble},
                 {"lng", DataType::kDouble},
                 {"price", DataType::kDouble},
                 {"guests", DataType::kInt64},
                 {"room_type", DataType::kString},
                 {"rating", DataType::kDouble},
                 {"min_nights", DataType::kInt64}});
  TableBuilder builder("listings", schema);

  // City centers with Zipfian popularity: most listings cluster in the top
  // few metros, which is what makes map zooming informative.
  struct City {
    double lat, lng, spread;
  };
  std::vector<City> cities;
  cities.reserve(static_cast<size_t>(options.num_cities));
  for (int i = 0; i < options.num_cities; ++i) {
    cities.push_back(City{rng.Uniform(options.lat_min, options.lat_max),
                          rng.Uniform(options.lng_min, options.lng_max),
                          rng.Uniform(0.05, 0.35)});
  }

  for (int64_t i = 0; i < options.num_rows; ++i) {
    const size_t c = static_cast<size_t>(
        rng.Zipf(options.num_cities, 1.0) - 1);
    const City& city = cities[c];
    const double lat =
        std::clamp(city.lat + rng.Gaussian(0.0, city.spread),
                   options.lat_min, options.lat_max);
    const double lng =
        std::clamp(city.lng + rng.Gaussian(0.0, city.spread * 1.3),
                   options.lng_min, options.lng_max);
    const double price = std::clamp(rng.LogNormal(4.3, 0.6), 10.0, 2000.0);
    const int64_t guests = rng.UniformInt(1, 8);
    const char* room = Pick(&rng, kRoomTypes);
    const double rating = std::clamp(rng.Gaussian(4.6, 0.35), 1.0, 5.0);
    const int64_t min_nights = 1 + rng.Zipf(14, 1.4) - 1;
    builder.MustAppendRow({Value(i + 1), Value(lat), Value(lng), Value(price),
                           Value(guests), Value(std::string(room)),
                           Value(rating), Value(min_nights)});
  }
  return std::move(builder).Finish();
}

}  // namespace ideval
