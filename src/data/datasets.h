#ifndef IDEVAL_DATA_DATASETS_H_
#define IDEVAL_DATA_DATASETS_H_

#include <cstdint>
#include <utility>

#include "common/result.h"
#include "storage/table.h"

namespace ideval {

/// Options for the §6 movie dataset (stand-in for the IMDB top-4000 dump).
///
/// The inertial-scrolling case study only exercises cardinality, tuple
/// width and LIMIT/OFFSET access, so a synthetic table with the same shape
/// (6 display attributes + id + poster URL, Zipfian genre skew, ratings
/// descending like a "top rated" list) preserves the workload.
struct MoviesOptions {
  int64_t num_rows = 4000;
  uint64_t seed = 61;  // §6.
};

/// Builds the "imdb" table: id:int64, title:string, year:int64,
/// director:string, genre:string, plot:string, rating:double,
/// poster:string.
Result<TablePtr> MakeMoviesTable(const MoviesOptions& options);

/// Splits a movies table into the two stream sources of §6's join query Q2:
/// "imdbrating"(id, rating) and "movie"(id, title, year, director, genre,
/// plot, poster).
struct MovieJoinTables {
  TablePtr ratings;
  TablePtr movies;
};
Result<MovieJoinTables> SplitMoviesForJoin(const TablePtr& movies);

/// Options for the §7 road-network dataset (stand-in for the UCI 3-D road
/// network of North Jutland).
///
/// Matches the original's cardinality (434,874 tuples) and value ranges
/// (x/longitude in [8.146, 11.26], y/latitude in [56.582, 57.774],
/// z/altitude in [-8.608, 137.361]); points are generated as random-walk
/// "roads" so that the spatial correlation — and therefore range-filter
/// selectivities and histogram shapes — resembles real road data rather
/// than uniform noise.
struct RoadNetworkOptions {
  int64_t num_rows = 434874;
  uint64_t seed = 71;  // §7.
  double x_min = 8.146;
  double x_max = 11.2616367163;
  double y_min = 56.582;
  double y_max = 57.774;
  double z_min = -8.608;
  double z_max = 137.361;
  /// Average number of points per generated road segment walk.
  int64_t points_per_road = 120;
};

/// Builds the "dataroad" table: x:double, y:double, z:double.
Result<TablePtr> MakeRoadNetworkTable(const RoadNetworkOptions& options);

/// Options for the §8 accommodation-listings dataset (stand-in for the
/// Airbnb search backend).
///
/// The composite-interface case study issues map-viewport + attribute
/// filters; listings are clustered around a handful of "cities" so that
/// zooming and dragging change result cardinalities the way a real booking
/// site does.
struct ListingsOptions {
  int64_t num_rows = 50000;
  uint64_t seed = 81;  // §8.
  int num_cities = 12;
  double lat_min = 27.7;
  double lat_max = 36.8;
  double lng_min = -91.1;
  double lng_max = -82.1;
};

/// Builds the "listings" table: id:int64, lat:double, lng:double,
/// price:double, guests:int64, room_type:string, rating:double,
/// min_nights:int64.
Result<TablePtr> MakeListingsTable(const ListingsOptions& options);

/// A geographic density cluster of listings ("city").
struct GeoCluster {
  double lat = 0.0;
  double lng = 0.0;
  int64_t count = 0;
};

/// Finds the `k` densest clusters in a listings-style table by counting
/// rows on a coarse grid (`cell_degrees` per cell) and returning the cell
/// centroids, densest first. Useful for deriving realistic destination
/// presets: vacation searches start where the inventory is.
Result<std::vector<GeoCluster>> FindListingClusters(
    const TablePtr& listings, int k, double cell_degrees = 0.5);

}  // namespace ideval

#endif  // IDEVAL_DATA_DATASETS_H_
