#include "widget/composite_interface.h"

#include <algorithm>

namespace ideval {

const char* WidgetKindToString(WidgetKind kind) {
  switch (kind) {
    case WidgetKind::kMap:
      return "map";
    case WidgetKind::kSlider:
      return "slider";
    case WidgetKind::kCheckbox:
      return "checkbox";
    case WidgetKind::kButton:
      return "button";
    case WidgetKind::kTextBox:
      return "text box";
  }
  return "unknown";
}

CompositeInterface::CompositeInterface(MapWidget map, Options options)
    : map_(map), options_(std::move(options)) {}

std::vector<Predicate> CompositeInterface::FilterPredicates() const {
  std::vector<Predicate> preds;
  if (price_range_.has_value()) {
    preds.push_back(
        RangePredicate{"price", price_range_->first, price_range_->second});
  }
  if (guests_.has_value()) {
    preds.push_back(RangePredicate{"guests", static_cast<double>(*guests_),
                                   8.0});  // "sleeps at least N".
  }
  if (room_types_.size() == 1) {
    preds.push_back(StringEqPredicate{"room_type", *room_types_.begin()});
  } else if (room_types_.size() > 1) {
    preds.push_back(StringInPredicate{
        "room_type",
        std::vector<std::string>(room_types_.begin(), room_types_.end())});
  }
  if (min_rating_.has_value()) {
    preds.push_back(RangePredicate{"rating", *min_rating_, 5.0});
  }
  if (max_min_nights_.has_value()) {
    preds.push_back(RangePredicate{
        "min_nights", 1.0, static_cast<double>(*max_min_nights_)});
  }
  // Dates have no listings column (availability lives in a separate
  // subsystem on the real site); they constrain the URL only.
  return preds;
}

int CompositeInterface::ActiveFilterConditions() const {
  int n = 0;
  if (dates_.has_value()) n += 2;        // checkin, checkout.
  if (price_range_.has_value()) n += 2;  // price_min, price_max.
  if (guests_.has_value()) n += 1;
  n += static_cast<int>(room_types_.size());
  if (min_rating_.has_value()) n += 1;
  if (max_min_nights_.has_value()) n += 1;
  return n;
}

CompositeRequest CompositeInterface::BuildRequest(SimTime t,
                                                  WidgetKind widget) {
  CompositeRequest r;
  r.time = t;
  r.widget = widget;
  r.query = map_.BuildQuery(options_.table, FilterPredicates());
  r.zoom_level = map_.zoom();
  r.bounds = map_.Viewport();
  r.num_filter_conditions = ActiveFilterConditions();
  return r;
}

CompositeRequest CompositeInterface::ZoomIn(SimTime t) {
  map_.ZoomIn();
  return BuildRequest(t, WidgetKind::kMap);
}

CompositeRequest CompositeInterface::ZoomOut(SimTime t) {
  map_.ZoomOut();
  return BuildRequest(t, WidgetKind::kMap);
}

CompositeRequest CompositeInterface::Drag(SimTime t, double dlat,
                                          double dlng) {
  map_.DragBy(dlat, dlng);
  return BuildRequest(t, WidgetKind::kMap);
}

CompositeRequest CompositeInterface::SetPriceRange(SimTime t, double lo,
                                                   double hi) {
  if (lo >= hi) {
    price_range_.reset();
  } else {
    price_range_ = {lo, hi};
  }
  return BuildRequest(t, WidgetKind::kSlider);
}

CompositeRequest CompositeInterface::ToggleRoomType(
    SimTime t, const std::string& room_type) {
  auto it = room_types_.find(room_type);
  if (it != room_types_.end()) {
    room_types_.erase(it);
  } else {
    room_types_.insert(room_type);
  }
  return BuildRequest(t, WidgetKind::kCheckbox);
}

CompositeRequest CompositeInterface::SetGuests(SimTime t, int64_t guests) {
  if (guests <= 0) {
    guests_.reset();
  } else {
    guests_ = guests;
  }
  return BuildRequest(t, WidgetKind::kButton);
}

CompositeRequest CompositeInterface::SetDates(SimTime t, int checkin_day,
                                              int nights) {
  if (nights <= 0) {
    dates_.reset();
  } else {
    dates_ = {checkin_day, nights};
  }
  return BuildRequest(t, WidgetKind::kButton);
}

CompositeRequest CompositeInterface::SetMinRating(SimTime t,
                                                  double min_rating) {
  if (min_rating <= 0.0) {
    min_rating_.reset();
  } else {
    min_rating_ = std::min(min_rating, 5.0);
  }
  return BuildRequest(t, WidgetKind::kSlider);
}

CompositeRequest CompositeInterface::SetMaxMinNights(SimTime t,
                                                     int64_t nights) {
  if (nights <= 0) {
    max_min_nights_.reset();
  } else {
    max_min_nights_ = nights;
  }
  return BuildRequest(t, WidgetKind::kSlider);
}

Result<CompositeRequest> CompositeInterface::SearchDestination(SimTime t,
                                                               size_t index) {
  if (index >= options_.destinations.size()) {
    return Status::OutOfRange("destination index out of range");
  }
  const auto& d = options_.destinations[index];
  map_.JumpTo(d.lat, d.lng, d.zoom);
  return BuildRequest(t, WidgetKind::kTextBox);
}

}  // namespace ideval
