#include "widget/map_widget.h"

#include <algorithm>
#include <cmath>

#include "common/text_table.h"

namespace ideval {

std::string TileId::ToString() const {
  return StrFormat("%d/%lld/%lld", zoom, static_cast<long long>(tx),
                   static_cast<long long>(ty));
}

MapWidget::MapWidget(double center_lat, double center_lng, int zoom,
                     Options options)
    : options_(options), center_lat_(center_lat), center_lng_(center_lng) {
  zoom_ = std::clamp(zoom, options_.min_zoom, options_.max_zoom);
}

GeoBounds MapWidget::Viewport() const {
  const double tile_lng_span = 360.0 / std::pow(2.0, zoom_);
  const double tile_lat_span = 180.0 / std::pow(2.0, zoom_);
  const double lng_span = tile_lng_span * options_.viewport_tiles_x;
  const double lat_span = tile_lat_span * options_.viewport_tiles_y;
  GeoBounds b;
  b.sw_lat = center_lat_ - lat_span / 2.0;
  b.ne_lat = center_lat_ + lat_span / 2.0;
  b.sw_lng = center_lng_ - lng_span / 2.0;
  b.ne_lng = center_lng_ + lng_span / 2.0;
  return b;
}

bool MapWidget::ZoomIn() {
  if (zoom_ >= options_.max_zoom) return false;
  ++zoom_;
  return true;
}

bool MapWidget::ZoomOut() {
  if (zoom_ <= options_.min_zoom) return false;
  --zoom_;
  return true;
}

void MapWidget::DragBy(double dlat, double dlng) {
  center_lat_ = std::clamp(center_lat_ + dlat, -85.0, 85.0);
  center_lng_ = std::clamp(center_lng_ + dlng, -180.0, 180.0);
}

void MapWidget::JumpTo(double lat, double lng, int zoom) {
  center_lat_ = std::clamp(lat, -85.0, 85.0);
  center_lng_ = std::clamp(lng, -180.0, 180.0);
  zoom_ = std::clamp(zoom, options_.min_zoom, options_.max_zoom);
}

SelectQuery MapWidget::BuildQuery(
    const std::string& table, std::vector<Predicate> extra_filters) const {
  const GeoBounds b = Viewport();
  SelectQuery q;
  q.table = table;
  q.predicates.push_back(RangePredicate{"lat", b.sw_lat, b.ne_lat});
  q.predicates.push_back(RangePredicate{"lng", b.sw_lng, b.ne_lng});
  for (auto& p : extra_filters) q.predicates.push_back(std::move(p));
  q.limit = options_.page_size;
  q.offset = 0;
  return q;
}

TileId MapWidget::TileAt(double lat, double lng, int zoom) {
  const double n = std::pow(2.0, zoom);
  TileId id;
  id.zoom = zoom;
  id.tx = static_cast<int64_t>(std::floor((lng + 180.0) / 360.0 * n));
  id.ty = static_cast<int64_t>(std::floor((90.0 - lat) / 180.0 * n));
  const int64_t max_t = static_cast<int64_t>(n) - 1;
  id.tx = std::clamp<int64_t>(id.tx, 0, max_t);
  id.ty = std::clamp<int64_t>(id.ty, 0, max_t);
  return id;
}

std::vector<TileId> MapWidget::VisibleTiles() const {
  const GeoBounds b = Viewport();
  const TileId sw = TileAt(b.sw_lat, b.sw_lng, zoom_);
  const TileId ne = TileAt(b.ne_lat, b.ne_lng, zoom_);
  std::vector<TileId> tiles;
  for (int64_t tx = std::min(sw.tx, ne.tx); tx <= std::max(sw.tx, ne.tx);
       ++tx) {
    for (int64_t ty = std::min(sw.ty, ne.ty); ty <= std::max(sw.ty, ne.ty);
         ++ty) {
      tiles.push_back(TileId{zoom_, tx, ty});
    }
  }
  return tiles;
}

}  // namespace ideval
