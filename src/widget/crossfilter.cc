#include "widget/crossfilter.h"

#include <algorithm>

#include "engine/query.h"

namespace ideval {

RangeSlider::RangeSlider(double domain_lo, double domain_hi, double track_px)
    : domain_lo_(domain_lo),
      domain_hi_(domain_hi),
      track_px_(track_px),
      selected_lo_(domain_lo),
      selected_hi_(domain_hi) {}

double RangeSlider::ValueAt(double x) const {
  const double clamped = std::clamp(x, 0.0, track_px_);
  return domain_lo_ + (domain_hi_ - domain_lo_) * (clamped / track_px_);
}

double RangeSlider::PixelAt(double value) const {
  const double clamped = std::clamp(value, domain_lo_, domain_hi_);
  return track_px_ * (clamped - domain_lo_) / (domain_hi_ - domain_lo_);
}

void RangeSlider::MoveHandlePx(bool lower, double x) {
  const double v = ValueAt(x);
  if (lower) {
    selected_lo_ = std::min(v, selected_hi_);
  } else {
    selected_hi_ = std::max(v, selected_lo_);
  }
}

void RangeSlider::Reset() {
  selected_lo_ = domain_lo_;
  selected_hi_ = domain_hi_;
}

CrossfilterView::CrossfilterView(TablePtr table,
                                 std::vector<std::string> attributes,
                                 std::vector<RangeSlider> sliders,
                                 int64_t bins)
    : table_(std::move(table)),
      attributes_(std::move(attributes)),
      sliders_(std::move(sliders)),
      bins_(bins) {}

Result<CrossfilterView> CrossfilterView::Make(
    const TablePtr& table, std::vector<std::string> attributes,
    int64_t bins) {
  if (table == nullptr) {
    return Status::InvalidArgument("CrossfilterView: null table");
  }
  if (attributes.size() < 2) {
    return Status::InvalidArgument(
        "CrossfilterView needs at least two attributes to coordinate");
  }
  if (bins <= 0) {
    return Status::InvalidArgument("CrossfilterView: bins must be > 0");
  }
  std::vector<RangeSlider> sliders;
  sliders.reserve(attributes.size());
  for (const auto& name : attributes) {
    IDEVAL_ASSIGN_OR_RETURN(const Column* col, table->ColumnByName(name));
    IDEVAL_ASSIGN_OR_RETURN(double lo, col->NumericMin());
    IDEVAL_ASSIGN_OR_RETURN(double hi, col->NumericMax());
    if (!(lo < hi)) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' has a degenerate domain");
    }
    sliders.emplace_back(lo, hi);
  }
  return CrossfilterView(table, std::move(attributes), std::move(sliders),
                         bins);
}

Query CrossfilterView::HistogramFor(size_t i) const {
  HistogramQuery q;
  q.table = table_->name();
  q.bin_column = attributes_[i];
  q.bin_lo = sliders_[i].domain_lo();
  q.bin_hi = sliders_[i].domain_hi();
  q.bins = bins_;
  for (size_t k = 0; k < attributes_.size(); ++k) {
    // Selections at the full domain still ship as predicates — that is
    // what the logged §7 SQL does (every WHERE clause lists x, y and z).
    q.predicates.push_back(RangePredicate{attributes_[k],
                                          sliders_[k].selected_lo(),
                                          sliders_[k].selected_hi()});
  }
  return q;
}

Result<QueryGroup> CrossfilterView::ApplySliderEvent(
    const SliderEvent& event) {
  if (event.slider_index < 0 ||
      static_cast<size_t>(event.slider_index) >= sliders_.size()) {
    return Status::OutOfRange("slider index out of range");
  }
  if (!(event.min_val <= event.max_val)) {
    return Status::InvalidArgument("slider event has min_val > max_val");
  }
  RangeSlider& s = sliders_[static_cast<size_t>(event.slider_index)];
  s.MoveHandlePx(true, s.PixelAt(event.min_val));
  s.MoveHandlePx(false, s.PixelAt(event.max_val));

  QueryGroup group;
  group.issue_time = event.time;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i == static_cast<size_t>(event.slider_index)) continue;
    group.queries.push_back(HistogramFor(i));
  }
  return group;
}

QueryGroup CrossfilterView::FullRefresh(SimTime t) const {
  QueryGroup group;
  group.issue_time = t;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    group.queries.push_back(HistogramFor(i));
  }
  return group;
}

}  // namespace ideval
