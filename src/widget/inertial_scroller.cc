#include "widget/inertial_scroller.h"

#include <algorithm>
#include <cmath>

namespace ideval {

InertialScroller::InertialScroller(ScrollerOptions options)
    : options_(options) {}

double InertialScroller::MaxScrollTopPx() const {
  const double total =
      static_cast<double>(options_.total_tuples) * options_.tuple_height_px;
  const double window =
      static_cast<double>(options_.visible_tuples) * options_.tuple_height_px;
  return std::max(0.0, total - window);
}

ScrollEvent InertialScroller::Emit(SimTime t, double delta_px) {
  const double before = scroll_top_px_;
  scroll_top_px_ =
      std::clamp(scroll_top_px_ + delta_px, 0.0, MaxScrollTopPx());
  ScrollEvent e;
  e.time = t;
  e.wheel_delta_px = scroll_top_px_ - before;  // Clamped actual movement.
  e.scroll_top_px = scroll_top_px_;
  e.top_tuple = top_tuple();
  e.tuples_delta = e.wheel_delta_px / options_.tuple_height_px;
  return e;
}

std::vector<ScrollEvent> InertialScroller::Flick(SimTime t,
                                                 double velocity_px_s) {
  std::vector<ScrollEvent> events;
  const double dt = options_.event_interval.seconds();
  if (!options_.inertial) {
    // Plain scrolling: constant small wheel deltas while the gesture lasts
    // (~0.4 s of notches), no glide afterwards. Fig. 7b's deltas are ~2–4
    // px per event.
    const double sign = velocity_px_s < 0.0 ? -1.0 : 1.0;
    const int notches = 24;
    SimTime now = t;
    for (int i = 0; i < notches; ++i) {
      events.push_back(Emit(now, sign * 3.0));
      now += options_.event_interval;
    }
    return events;
  }
  // Inertial: velocity decays exponentially; each interval contributes
  // v * dt pixels. Matches the accelerate-then-glide envelope of Fig. 7a.
  double v = velocity_px_s;
  SimTime now = t;
  while (std::abs(v) > options_.rest_velocity) {
    events.push_back(Emit(now, v * dt));
    v *= std::exp(-options_.inertia_decay * dt);
    now += options_.event_interval;
    // Stop early when pinned at a boundary.
    if ((scroll_top_px_ <= 0.0 && v < 0.0) ||
        (scroll_top_px_ >= MaxScrollTopPx() && v > 0.0)) {
      break;
    }
  }
  return events;
}

ScrollEvent InertialScroller::WheelNotch(SimTime t, double delta_px) {
  return Emit(t, delta_px);
}

void InertialScroller::JumpTo(double scroll_top_px) {
  scroll_top_px_ = std::clamp(scroll_top_px, 0.0, MaxScrollTopPx());
}

}  // namespace ideval
