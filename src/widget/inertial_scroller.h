#ifndef IDEVAL_WIDGET_INERTIAL_SCROLLER_H_
#define IDEVAL_WIDGET_INERTIAL_SCROLLER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace ideval {

/// One scroll/wheel event as logged by the §6 user study:
/// {timestamp, scrollTop, scrollNum, delta}.
struct ScrollEvent {
  SimTime time;
  double wheel_delta_px = 0.0;   ///< Accelerated scroll amount this event.
  double scroll_top_px = 0.0;    ///< Pixels scrolled from the top.
  int64_t top_tuple = 0;         ///< Index of the first visible tuple.
  double tuples_delta = 0.0;     ///< Tuples moved by this event (signed).
};

/// Configuration of the scrolling surface.
struct ScrollerOptions {
  /// Height of one rendered tuple. §6's pixel/tuple statistics (Table 7)
  /// relate as ~157 px per tuple (31,517 px/s max ≈ 200 tuples/s max).
  double tuple_height_px = 157.0;
  /// Number of tuples in the result list (4,000 in §6).
  int64_t total_tuples = 4000;
  /// Rows visible at once.
  int64_t visible_tuples = 6;
  /// Exponential decay rate of inertial velocity (1/s). Momentum scrolling
  /// glides to a stop instead of halting immediately.
  double inertia_decay = 2.2;
  /// Velocity below which the glide stops (px/s).
  double rest_velocity = 40.0;
  /// Event sensing interval while scrolling ("a scroll event is triggered
  /// every 15–20 ms", §6.2).
  Duration event_interval = Duration::Micros(17000);
  /// When false, wheel deltas are small and constant (plain scrolling,
  /// Fig. 7b); when true, flicks accelerate and glide (Fig. 7a).
  bool inertial = true;
};

/// Simulates an inertial (momentum) scrolling surface over a query result
/// list (§6).
///
/// The caller drives it with flicks (touch) or wheel notches (plain
/// scrolling); the scroller integrates velocity with exponential decay and
/// emits per-interval scroll events, clamping at list boundaries.
class InertialScroller {
 public:
  explicit InertialScroller(ScrollerOptions options);

  const ScrollerOptions& options() const { return options_; }
  double scroll_top_px() const { return scroll_top_px_; }
  int64_t top_tuple() const {
    return static_cast<int64_t>(scroll_top_px_ / options_.tuple_height_px);
  }

  /// Performs a flick at `t` with initial velocity `velocity_px_s`
  /// (negative = scroll back up). Returns the events emitted until the
  /// glide rests. In non-inertial mode the "flick" is a single fixed-delta
  /// wheel notch repeated while the (modelled) finger keeps turning:
  /// `velocity_px_s` then acts only as the sign and nominal speed.
  std::vector<ScrollEvent> Flick(SimTime t, double velocity_px_s);

  /// Emits one plain (non-inertial) wheel notch of `delta_px`.
  ScrollEvent WheelNotch(SimTime t, double delta_px);

  /// Jumps to an absolute position (e.g. after a backscroll correction).
  void JumpTo(double scroll_top_px);

  /// Largest scrollTop value (list fully scrolled).
  double MaxScrollTopPx() const;

 private:
  ScrollEvent Emit(SimTime t, double delta_px);

  ScrollerOptions options_;
  double scroll_top_px_ = 0.0;
};

}  // namespace ideval

#endif  // IDEVAL_WIDGET_INERTIAL_SCROLLER_H_
