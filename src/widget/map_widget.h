#ifndef IDEVAL_WIDGET_MAP_WIDGET_H_
#define IDEVAL_WIDGET_MAP_WIDGET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query.h"

namespace ideval {

/// Geographic bounding box (the `sw_lat..ne_lng` parameters of §8's
/// logged Airbnb URLs).
struct GeoBounds {
  double sw_lat = 0.0;
  double sw_lng = 0.0;
  double ne_lat = 0.0;
  double ne_lng = 0.0;

  double CenterLat() const { return (sw_lat + ne_lat) / 2.0; }
  double CenterLng() const { return (sw_lng + ne_lng) / 2.0; }
  double LatSpan() const { return ne_lat - sw_lat; }
  double LngSpan() const { return ne_lng - sw_lng; }
  bool Contains(double lat, double lng) const {
    return lat >= sw_lat && lat <= ne_lat && lng >= sw_lng && lng <= ne_lng;
  }
};

/// Slippy-map tile coordinate (equirectangular; adequate for workload
/// simulation — the paper's analyses only need zoom levels and viewport
/// movement, not projection fidelity).
struct TileId {
  int zoom = 0;
  int64_t tx = 0;
  int64_t ty = 0;

  bool operator==(const TileId&) const = default;
  std::string ToString() const;
};

struct TileIdHash {
  size_t operator()(const TileId& id) const {
    size_t h = std::hash<int>()(id.zoom);
    h = h * 1315423911u ^ std::hash<int64_t>()(id.tx);
    h = h * 2654435761u ^ std::hash<int64_t>()(id.ty);
    return h;
  }
};

/// A pannable, zoomable map viewport over a listings table (§8).
///
/// Zoom level semantics follow slippy maps: one tile covers 360/2^z
/// degrees of longitude; the viewport is ~2 tiles wide and ~1.4 tiles
/// tall, so each zoom-in halves the visible span ("one zoom action
/// triggers two predicate changes in the WHERE clause", §2.1).
class MapWidget {
 public:
  struct Options {
    double viewport_tiles_x = 2.0;
    double viewport_tiles_y = 1.4;
    int min_zoom = 3;
    int max_zoom = 18;
    /// Listings page size a viewport query returns.
    int64_t page_size = 18;
  };

  /// Creates a map centered on (lat, lng) at `zoom`.
  MapWidget(double center_lat, double center_lng, int zoom, Options options);
  MapWidget(double center_lat, double center_lng, int zoom)
      : MapWidget(center_lat, center_lng, zoom, Options()) {}

  int zoom() const { return zoom_; }
  double center_lat() const { return center_lat_; }
  double center_lng() const { return center_lng_; }

  /// Current viewport bounds.
  GeoBounds Viewport() const;

  /// Zooms in/out one level around the current center. Clamped to
  /// [min_zoom, max_zoom]; returns whether the level changed.
  bool ZoomIn();
  bool ZoomOut();

  /// Pans the center by (dlat, dlng) degrees.
  void DragBy(double dlat, double dlng);

  /// Jumps to a new center/zoom (e.g. after a destination search).
  void JumpTo(double lat, double lng, int zoom);

  /// The viewport query: listings inside the bounds plus the caller's
  /// extra filter predicates, paged.
  SelectQuery BuildQuery(const std::string& table,
                         std::vector<Predicate> extra_filters) const;

  /// Tiles covering the current viewport (unit of §8's prefetch model).
  std::vector<TileId> VisibleTiles() const;

  /// Tile containing (lat, lng) at `zoom`.
  static TileId TileAt(double lat, double lng, int zoom);

 private:
  Options options_;
  double center_lat_, center_lng_;
  int zoom_;
};

}  // namespace ideval

#endif  // IDEVAL_WIDGET_MAP_WIDGET_H_
