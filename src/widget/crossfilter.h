#ifndef IDEVAL_WIDGET_CROSSFILTER_H_
#define IDEVAL_WIDGET_CROSSFILTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sim/query_scheduler.h"
#include "storage/table.h"

namespace ideval {

/// One slider move as logged by §7: {timestamp, minVal, maxVal, sliderIdx}.
struct SliderEvent {
  SimTime time;
  double min_val = 0.0;
  double max_val = 0.0;
  int slider_index = 0;
};

/// A range slider mapping a pixel track to an attribute domain.
///
/// Device traces are in pixels; `ValueAt` converts a handle pixel position
/// to a domain value, clamped to the track.
class RangeSlider {
 public:
  /// Track of `track_px` pixels spanning [domain_lo, domain_hi].
  RangeSlider(double domain_lo, double domain_hi, double track_px = 400.0);

  double domain_lo() const { return domain_lo_; }
  double domain_hi() const { return domain_hi_; }
  double track_px() const { return track_px_; }

  /// Domain value of a handle at pixel `x` (clamped to the track).
  double ValueAt(double x) const;

  /// Pixel position of a domain value (clamped to the domain).
  double PixelAt(double value) const;

  /// Current selected range.
  double selected_lo() const { return selected_lo_; }
  double selected_hi() const { return selected_hi_; }

  /// Moves a handle: updates the min (`lower`=true) or max handle to the
  /// value at pixel `x`, keeping lo <= hi.
  void MoveHandlePx(bool lower, double x);

  /// Resets the selection to the full domain.
  void Reset();

 private:
  double domain_lo_, domain_hi_, track_px_;
  double selected_lo_, selected_hi_;
};

/// Coordinated-view crossfilter over `n` numeric attributes of one table
/// (§7, Fig. 12): each attribute has a 20-bin histogram and a range slider;
/// dragging slider `k` re-filters every *other* histogram.
class CrossfilterView {
 public:
  /// Builds sliders from the min/max of each named column. Errors if a
  /// column is missing or non-numeric.
  static Result<CrossfilterView> Make(const TablePtr& table,
                                      std::vector<std::string> attributes,
                                      int64_t bins = 20);

  size_t num_attributes() const { return attributes_.size(); }
  const std::string& attribute(size_t i) const { return attributes_[i]; }
  const RangeSlider& slider(size_t i) const { return sliders_[i]; }
  RangeSlider* mutable_slider(size_t i) { return &sliders_[i]; }

  /// Applies a slider event and returns the coordinated query group it
  /// triggers: one filtered histogram query per *other* attribute, with
  /// WHERE conjuncts from all current slider selections ("about 50(n-1)
  /// queries per second", §7.1).
  Result<QueryGroup> ApplySliderEvent(const SliderEvent& event);

  /// The query group refreshing every histogram (initial paint).
  QueryGroup FullRefresh(SimTime t) const;

 private:
  CrossfilterView(TablePtr table, std::vector<std::string> attributes,
                  std::vector<RangeSlider> sliders, int64_t bins);

  /// Histogram query for attribute `i` under the current selections.
  Query HistogramFor(size_t i) const;

  TablePtr table_;
  std::vector<std::string> attributes_;
  std::vector<RangeSlider> sliders_;
  int64_t bins_;
};

}  // namespace ideval

#endif  // IDEVAL_WIDGET_CROSSFILTER_H_
