#ifndef IDEVAL_WIDGET_COMPOSITE_INTERFACE_H_
#define IDEVAL_WIDGET_COMPOSITE_INTERFACE_H_

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/query.h"
#include "widget/map_widget.h"

namespace ideval {

/// The query-interface widget classes whose usage shares Table 9 reports.
enum class WidgetKind {
  kMap,
  kSlider,
  kCheckbox,
  kButton,
  kTextBox,
};

const char* WidgetKindToString(WidgetKind kind);

/// One interaction on the composite interface: which widget the user
/// touched and the (fully predicated) backend query it produced.
struct CompositeRequest {
  SimTime time;
  WidgetKind widget = WidgetKind::kMap;
  SelectQuery query;
  int zoom_level = 0;       ///< Map zoom at issue time (Fig. 18).
  GeoBounds bounds;         ///< Viewport at issue time (Fig. 19 / Table 10).
  int num_filter_conditions = 0;  ///< Active filter count (Fig. 20).
};

/// An Airbnb-style multi-widget search page (§8, Fig. 16): a map plus
/// price slider, guest stepper, room-type check boxes and a destination
/// text box. Every widget action re-issues the page query with the merged
/// filter state, tagged with the originating widget for Table 9.
class CompositeInterface {
 public:
  struct Options {
    std::string table = "listings";
    /// Destination presets the text box can search for
    /// (lat, lng, jump-to zoom).
    struct Destination {
      std::string name;
      double lat;
      double lng;
      int zoom;
    };
    std::vector<Destination> destinations;
  };

  CompositeInterface(MapWidget map, Options options);

  const MapWidget& map() const { return map_; }
  MapWidget* mutable_map() { return &map_; }

  /// Number of destination presets the text box can search for.
  size_t num_destinations() const { return options_.destinations.size(); }

  /// --- Widget actions; each returns the request it triggers. ---

  /// Map zoom in/out (no-op request if already at a zoom bound).
  CompositeRequest ZoomIn(SimTime t);
  CompositeRequest ZoomOut(SimTime t);

  /// Map drag by degrees.
  CompositeRequest Drag(SimTime t, double dlat, double dlng);

  /// Price slider (two bounds -> two filter conditions). `lo >= hi`
  /// clears the filter (handles dragged back to the track ends).
  CompositeRequest SetPriceRange(SimTime t, double lo, double hi);

  /// Room-type check boxes: toggles membership in a multi-select facet.
  /// Each selected type is one filter condition; empty = any.
  CompositeRequest ToggleRoomType(SimTime t, const std::string& room_type);

  /// Guest stepper buttons (one condition; 0 clears).
  CompositeRequest SetGuests(SimTime t, int64_t guests);

  /// Check-in/check-out date picker (two URL conditions; the listings
  /// table carries no availability calendar, so dates constrain the URL
  /// but not the executed query — as on the real site, availability is
  /// resolved by a separate subsystem). `nights <= 0` clears the dates.
  CompositeRequest SetDates(SimTime t, int checkin_day, int nights);

  /// Minimum-rating slider (one condition; <= 0 clears).
  CompositeRequest SetMinRating(SimTime t, double min_rating);

  /// Maximum minimum-nights slider (one condition; <= 0 clears).
  CompositeRequest SetMaxMinNights(SimTime t, int64_t nights);

  /// Destination text box: jumps the map to the `index`-th preset.
  Result<CompositeRequest> SearchDestination(SimTime t, size_t index);

  /// Number of currently-active attribute filter conditions, counted the
  /// way §8 counts URL filter parameters (each bound = 1): dates 2,
  /// price 2, guests 1, each room type 1, rating 1, min-nights 1. The
  /// four viewport bounds are reported separately in `CompositeRequest`.
  int ActiveFilterConditions() const;

 private:
  CompositeRequest BuildRequest(SimTime t, WidgetKind widget);
  std::vector<Predicate> FilterPredicates() const;

  MapWidget map_;
  Options options_;
  std::optional<std::pair<double, double>> price_range_;
  std::set<std::string> room_types_;
  std::optional<int64_t> guests_;
  std::optional<std::pair<int, int>> dates_;  ///< (checkin day, nights).
  std::optional<double> min_rating_;
  std::optional<int64_t> max_min_nights_;
};

}  // namespace ideval

#endif  // IDEVAL_WIDGET_COMPOSITE_INTERFACE_H_
