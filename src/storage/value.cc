#include "storage/value.h"

#include <cstdio>

namespace ideval {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  char buf[64];
  switch (type()) {
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int64()));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", dbl());
      return buf;
    case DataType::kString:
      return str();
  }
  return {};
}

}  // namespace ideval
