#ifndef IDEVAL_STORAGE_TABLE_H_
#define IDEVAL_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace ideval {

/// Zone maps for a whole table: one `ColumnZoneMap` per column (empty
/// min/max for string columns), all over the same `block_rows` blocking.
/// Built once per registration (`Table::BuildZoneMaps`); immutable after
/// build, so scans may read them concurrently without synchronization.
struct TableZoneMaps {
  int64_t block_rows = 0;
  size_t num_blocks = 0;
  std::vector<ColumnZoneMap> columns;  ///< Indexed like `Table::column`.
};

/// An immutable-after-build, column-oriented table.
///
/// Tables are built once by the dataset generators (`src/data/`) or by a
/// `TableBuilder`, then shared read-only across engines, widgets, and
/// benches via `std::shared_ptr<const Table>`.
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Borrow a column by name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Cell accessor. Requires valid indices.
  Value At(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Approximate width of one row in bytes (sum of per-column averages);
  /// feeds the disk engine's tuples-per-page layout.
  double AvgRowBytes() const;

  /// Builds per-block min/max zone maps over every numeric column.
  /// Requires `block_rows >= 1`. O(rows x numeric columns); engines call
  /// this once at table registration, not per query.
  TableZoneMaps BuildZoneMaps(int64_t block_rows) const;

  /// Renders rows [begin, end) as "v1 | v2 | ..." lines for debug output.
  std::string RowsToString(size_t begin, size_t end) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_;
};

using TablePtr = std::shared_ptr<const Table>;

/// Row-at-a-time builder for a `Table`.
///
///     TableBuilder b("movies", schema);
///     b.MustAppendRow({Value(1), Value(9.2), Value("The Shawshank ...")});
///     TablePtr t = std::move(b).Finish();
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema);

  /// Appends one row; errors on arity or type mismatch.
  Status AppendRow(const std::vector<Value>& row);

  /// `AppendRow` that asserts success — for generator code whose rows are
  /// correct by construction.
  void MustAppendRow(const std::vector<Value>& row);

  /// Direct access to a column being built (typed fast path for
  /// generators). Requires a valid index.
  Column* mutable_column(size_t i) { return &columns_[i]; }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// Validates column lengths and produces the immutable table.
  Result<TablePtr> Finish() &&;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace ideval

#endif  // IDEVAL_STORAGE_TABLE_H_
