#ifndef IDEVAL_STORAGE_VALUE_H_
#define IDEVAL_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace ideval {

/// Physical type of a column.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "int64" / "double" / "string".
const char* DataTypeToString(DataType type);

/// A single dynamically-typed cell value, used at the API boundary
/// (row construction, predicate literals). Hot loops operate on the typed
/// column vectors directly and never touch `Value`.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  DataType type() const {
    switch (data_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 widened to double. Requires a numeric value.
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64()) : dbl();
  }

  bool operator==(const Value& other) const = default;

  /// Rendering for debug output and CSV export.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace ideval

#endif  // IDEVAL_STORAGE_VALUE_H_
