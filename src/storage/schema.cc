#include "storage/schema.h"

namespace ideval {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ':';
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace ideval
