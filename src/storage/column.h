#ifndef IDEVAL_STORAGE_COLUMN_H_
#define IDEVAL_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace ideval {

/// Per-block min/max summary of one numeric column (a zone map). Index
/// `b` summarizes the `b`-th block of `block_rows` consecutive rows;
/// `min`/`max` are empty for string columns (no range pruning there).
/// Int64 values are widened to double, matching how `RangePredicate`
/// compares them.
struct ColumnZoneMap {
  std::vector<double> min;
  std::vector<double> max;

  size_t num_blocks() const { return min.size(); }
};

/// A typed column of values stored contiguously (columnar layout).
///
/// The execution engine reads the typed vectors directly for scan-heavy
/// operators (range filters, histogram builds) and falls back to `Get` for
/// row-at-a-time paths (LIMIT/OFFSET result materialization).
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(DataType type);

  /// Wraps existing data (takes ownership).
  explicit Column(std::vector<int64_t> data) : data_(std::move(data)) {}
  explicit Column(std::vector<double> data) : data_(std::move(data)) {}
  explicit Column(std::vector<std::string> data) : data_(std::move(data)) {}

  DataType type() const;

  size_t size() const;

  /// Appends a value; returns InvalidArgument on type mismatch.
  Status Append(const Value& value);

  /// Typed appends for builders / generators (no dispatch cost).
  void AppendInt64(int64_t v) { std::get<0>(data_).push_back(v); }
  void AppendDouble(double v) { std::get<1>(data_).push_back(v); }
  void AppendString(std::string v) {
    std::get<2>(data_).push_back(std::move(v));
  }

  /// Cell accessor with dynamic typing. Requires `row < size()`.
  Value Get(size_t row) const;

  /// Numeric view of a cell (int64 widened). Requires a numeric column.
  double GetDouble(size_t row) const;

  /// Typed borrows for hot loops. Require the matching type.
  const std::vector<int64_t>& int64_data() const {
    return std::get<0>(data_);
  }
  const std::vector<double>& double_data() const { return std::get<1>(data_); }
  const std::vector<std::string>& string_data() const {
    return std::get<2>(data_);
  }

  /// Approximate in-memory footprint of one cell, used by the disk engine's
  /// page-layout model (strings use their average length).
  double AvgCellBytes() const;

  /// Min/max over a numeric column; error on string columns or empty data.
  Result<double> NumericMin() const;
  Result<double> NumericMax() const;

  /// Per-block min/max summary of this column: entry `b` covers rows
  /// `[b * block_rows, min(size, (b+1) * block_rows))`. Scans use these as
  /// zone maps to skip blocks a range predicate cannot match. Requires
  /// `block_rows >= 1`; returns an empty summary for string columns.
  ColumnZoneMap BuildZoneMap(int64_t block_rows) const;

 private:
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
};

}  // namespace ideval

#endif  // IDEVAL_STORAGE_COLUMN_H_
