#include "storage/column.h"

#include <algorithm>

namespace ideval {

Column::Column(DataType type) {
  switch (type) {
    case DataType::kInt64:
      data_ = std::vector<int64_t>{};
      break;
    case DataType::kDouble:
      data_ = std::vector<double>{};
      break;
    case DataType::kString:
      data_ = std::vector<std::string>{};
      break;
  }
}

DataType Column::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

Status Column::Append(const Value& value) {
  if (value.type() != type()) {
    return Status::InvalidArgument(
        std::string("cannot append ") + DataTypeToString(value.type()) +
        " value to " + DataTypeToString(type()) + " column");
  }
  switch (type()) {
    case DataType::kInt64:
      AppendInt64(value.int64());
      break;
    case DataType::kDouble:
      AppendDouble(value.dbl());
      break;
    case DataType::kString:
      AppendString(value.str());
      break;
  }
  return Status::OK();
}

Value Column::Get(size_t row) const {
  switch (type()) {
    case DataType::kInt64:
      return Value(std::get<0>(data_)[row]);
    case DataType::kDouble:
      return Value(std::get<1>(data_)[row]);
    case DataType::kString:
      return Value(std::get<2>(data_)[row]);
  }
  return Value();
}

double Column::GetDouble(size_t row) const {
  if (type() == DataType::kInt64) {
    return static_cast<double>(std::get<0>(data_)[row]);
  }
  return std::get<1>(data_)[row];
}

double Column::AvgCellBytes() const {
  switch (type()) {
    case DataType::kInt64:
    case DataType::kDouble:
      return 8.0;
    case DataType::kString: {
      const auto& strs = std::get<2>(data_);
      if (strs.empty()) return 16.0;
      size_t total = 0;
      for (const auto& s : strs) total += s.size();
      // Payload plus a 16-byte varlen header, roughly matching how row
      // stores account for varchar cells.
      return static_cast<double>(total) / static_cast<double>(strs.size()) +
             16.0;
    }
  }
  return 8.0;
}

Result<double> Column::NumericMin() const {
  if (type() == DataType::kString) {
    return Status::InvalidArgument("NumericMin on string column");
  }
  if (size() == 0) return Status::InvalidArgument("NumericMin on empty column");
  if (type() == DataType::kInt64) {
    const auto& v = std::get<0>(data_);
    return static_cast<double>(*std::min_element(v.begin(), v.end()));
  }
  const auto& v = std::get<1>(data_);
  return *std::min_element(v.begin(), v.end());
}

ColumnZoneMap Column::BuildZoneMap(int64_t block_rows) const {
  ColumnZoneMap zm;
  if (type() == DataType::kString || block_rows < 1) return zm;
  const size_t n = size();
  const size_t stride = static_cast<size_t>(block_rows);
  const size_t blocks = (n + stride - 1) / stride;
  zm.min.reserve(blocks);
  zm.max.reserve(blocks);
  for (size_t begin = 0; begin < n; begin += stride) {
    const size_t end = std::min(n, begin + stride);
    double lo = GetDouble(begin);
    double hi = lo;
    if (type() == DataType::kInt64) {
      const auto& v = std::get<0>(data_);
      for (size_t i = begin + 1; i < end; ++i) {
        const double d = static_cast<double>(v[i]);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    } else {
      const auto& v = std::get<1>(data_);
      for (size_t i = begin + 1; i < end; ++i) {
        lo = std::min(lo, v[i]);
        hi = std::max(hi, v[i]);
      }
    }
    zm.min.push_back(lo);
    zm.max.push_back(hi);
  }
  return zm;
}

Result<double> Column::NumericMax() const {
  if (type() == DataType::kString) {
    return Status::InvalidArgument("NumericMax on string column");
  }
  if (size() == 0) return Status::InvalidArgument("NumericMax on empty column");
  if (type() == DataType::kInt64) {
    const auto& v = std::get<0>(data_);
    return static_cast<double>(*std::max_element(v.begin(), v.end()));
  }
  const auto& v = std::get<1>(data_);
  return *std::max_element(v.begin(), v.end());
}

}  // namespace ideval
