#ifndef IDEVAL_STORAGE_SCHEMA_H_
#define IDEVAL_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace ideval {

/// Name + type of one column.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;

  bool operator==(const Field&) const = default;
};

/// Ordered list of fields describing a `Table`.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True if a column named `name` exists.
  bool HasField(const std::string& name) const;

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace ideval

#endif  // IDEVAL_STORAGE_SCHEMA_H_
