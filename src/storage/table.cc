#include "storage/table.h"

#include <cassert>

namespace ideval {

Table::Table(std::string name, Schema schema, std::vector<Column> columns)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(std::move(columns)),
      num_rows_(columns_.empty() ? 0 : columns_[0].size()) {
  for (const auto& c : columns_) {
    assert(c.size() == num_rows_ && "ragged columns");
    (void)c;
  }
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  IDEVAL_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

double Table::AvgRowBytes() const {
  double bytes = 0.0;
  for (const auto& c : columns_) bytes += c.AvgCellBytes();
  return bytes;
}

TableZoneMaps Table::BuildZoneMaps(int64_t block_rows) const {
  TableZoneMaps zm;
  zm.block_rows = block_rows;
  if (block_rows >= 1) {
    zm.num_blocks = (num_rows_ + static_cast<size_t>(block_rows) - 1) /
                    static_cast<size_t>(block_rows);
  }
  zm.columns.reserve(columns_.size());
  for (const auto& c : columns_) zm.columns.push_back(c.BuildZoneMap(block_rows));
  return zm;
}

std::string Table::RowsToString(size_t begin, size_t end) const {
  std::string out;
  if (end > num_rows_) end = num_rows_;
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) out += " | ";
      out += columns_[c].Get(r).ToString();
    }
    out += '\n';
  }
  return out;
}

TableBuilder::TableBuilder(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.field(i).type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_.field(i).name + "'");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    IDEVAL_RETURN_NOT_OK(columns_[i].Append(row[i]));
  }
  return Status::OK();
}

void TableBuilder::MustAppendRow(const std::vector<Value>& row) {
  const Status s = AppendRow(row);
  assert(s.ok());
  (void)s;
}

Result<TablePtr> TableBuilder::Finish() && {
  const size_t rows = num_rows();
  for (const auto& c : columns_) {
    if (c.size() != rows) {
      return Status::Internal("ragged columns in TableBuilder::Finish");
    }
  }
  return TablePtr(std::make_shared<Table>(std::move(name_), std::move(schema_),
                                          std::move(columns_)));
}

}  // namespace ideval
