#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>

#include "common/json_writer.h"

namespace ideval {

TimeSeriesRing::TimeSeriesRing(int64_t capacity)
    : ring_(static_cast<size_t>(std::max<int64_t>(capacity, 1))) {}

void TimeSeriesRing::Push(const StatsSample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = sample;
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  ++pushed_;
}

std::vector<StatsSample> TimeSeriesRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StatsSample> out;
  out.reserve(count_);
  // Oldest live sample: next_ when wrapped, slot 0 otherwise.
  const size_t start = count_ == ring_.size() ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

int64_t TimeSeriesRing::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

std::string TimeSeriesRing::ToJson() const {
  JsonWriter w;
  w.BeginArray();
  for (const StatsSample& s : Snapshot()) {
    w.BeginObject();
    w.Key("t_s").Double(s.t_s);
    w.Key("qif_qps").Double(s.qif_qps);
    w.Key("throughput_window_qps").Double(s.throughput_window_qps);
    w.Key("shed_per_s").Double(s.shed_per_s);
    w.Key("reject_per_s").Double(s.reject_per_s);
    w.Key("queue_depth").Int(s.queue_depth);
    w.Key("lcv_fraction").Double(s.lcv_fraction);
    w.Key("load_factor").Double(s.load_factor);
    w.Key("load_state").Int(s.load_state);
    w.Key("cache_hit_rate").Double(s.cache_hit_rate);
    w.Key("trace_dropped").Int(s.trace_dropped);
    w.Key("latency_p50_ms").Double(s.latency_p50_ms);
    w.Key("latency_p90_ms").Double(s.latency_p90_ms);
    w.Key("submitted").Int(s.submitted);
    w.Key("executed").Int(s.executed);
    w.Key("shed").Int(s.shed);
    w.Key("rejected").Int(s.rejected);
    w.EndObject();
  }
  w.EndArray();
  return std::move(w).Finish();
}

StatsPoller::StatsPoller(Duration period, std::function<StatsSample()> sample,
                         TimeSeriesRing* ring)
    : period_(period), sample_(std::move(sample)), ring_(ring) {}

void StatsPoller::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void StatsPoller::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

bool StatsPoller::running() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return thread_.joinable();
}

int64_t StatsPoller::polls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return polls_;
}

void StatsPoller::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::microseconds(period_.micros()),
                 [this] { return stop_; });
    if (stop_) return;
    // Sample outside the lock: the callback snapshots the server, which
    // may take longer than a period under load, and must never block
    // Stop.
    lock.unlock();
    const StatsSample sample = sample_();
    ring_->Push(sample);
    lock.lock();
    ++polls_;
  }
}

}  // namespace ideval
