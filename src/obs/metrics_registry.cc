#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/json_writer.h"
#include "common/text_table.h"

namespace ideval {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Renders a bucket bound the way Prometheus does: shortest exact-enough
/// decimal, no trailing zeros ("0.25", "4", "1024").
std::string BoundToString(double bound) {
  std::string s = StrFormat("%.6g", bound);
  return s;
}

}  // namespace

void Gauge::Set(double v) {
  bits_.store(DoubleBits(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::string name, HistogramOptions options)
    : name_(std::move(name)),
      buckets_(static_cast<size_t>(std::max(options.num_bounds, 1)) + 1) {
  const int n = std::max(options.num_bounds, 1);
  bounds_.reserve(static_cast<size_t>(n));
  double bound = options.first_bound;
  for (int i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

void Histogram::Record(double value) {
  // Linear scan over <= ~20 bounds beats a branchy binary search at this
  // size and keeps the hot path trivially predictable.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, DoubleBits(BitsDouble(old) + value), std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

const char* MetricTypeToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [entry_name, entry] : shard.entries) {
    if (entry_name == name) return entry.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [entry_name, entry] : shard.entries) {
    if (entry_name == name) {
      return entry->type == MetricType::kCounter ? entry->counter.get()
                                                 : nullptr;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kCounter;
  entry->help = help;
  entry->counter = std::make_unique<Counter>(name);
  Counter* out = entry->counter.get();
  shard.entries.emplace_back(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [entry_name, entry] : shard.entries) {
    if (entry_name == name) {
      return entry->type == MetricType::kGauge ? entry->gauge.get()
                                               : nullptr;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kGauge;
  entry->help = help;
  entry->gauge = std::make_unique<Gauge>(name);
  Gauge* out = entry->gauge.get();
  shard.entries.emplace_back(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              HistogramOptions options) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [entry_name, entry] : shard.entries) {
    if (entry_name == name) {
      return entry->type == MetricType::kHistogram ? entry->histogram.get()
                                                   : nullptr;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kHistogram;
  entry->help = help;
  entry->histogram = std::make_unique<Histogram>(name, options);
  Histogram* out = entry->histogram.get();
  shard.entries.emplace_back(name, std::move(entry));
  return out;
}

Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  Entry* e = FindEntry(name);
  return e != nullptr && e->type == MetricType::kCounter ? e->counter.get()
                                                         : nullptr;
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  Entry* e = FindEntry(name);
  return e != nullptr && e->type == MetricType::kGauge ? e->gauge.get()
                                                       : nullptr;
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  Entry* e = FindEntry(name);
  return e != nullptr && e->type == MetricType::kHistogram
             ? e->histogram.get()
             : nullptr;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, entry] : shard.entries) {
      MetricSnapshot snap;
      snap.name = name;
      snap.help = entry->help;
      snap.type = entry->type;
      switch (entry->type) {
        case MetricType::kCounter:
          snap.value = static_cast<double>(entry->counter->value());
          break;
        case MetricType::kGauge:
          snap.value = entry->gauge->value();
          break;
        case MetricType::kHistogram:
          snap.value = entry->histogram->sum();
          snap.bounds = entry->histogram->bounds();
          snap.bucket_counts = entry->histogram->BucketCounts();
          snap.count = entry->histogram->count();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ExpositionText() const {
  std::string out;
  for (const MetricSnapshot& m : Snapshot()) {
    out += StrFormat("# HELP %s %s\n", m.name.c_str(), m.help.c_str());
    out += StrFormat("# TYPE %s %s\n", m.name.c_str(),
                     MetricTypeToString(m.type));
    switch (m.type) {
      case MetricType::kCounter:
        out += StrFormat("%s %lld\n", m.name.c_str(),
                         static_cast<long long>(m.value));
        break;
      case MetricType::kGauge:
        out += StrFormat("%s %.6g\n", m.name.c_str(), m.value);
        break;
      case MetricType::kHistogram: {
        // Prometheus buckets are cumulative: each `le` series counts
        // every observation at or below its bound.
        int64_t cumulative = 0;
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          cumulative += m.bucket_counts[i];
          out += StrFormat("%s_bucket{le=\"%s\"} %lld\n", m.name.c_str(),
                           BoundToString(m.bounds[i]).c_str(),
                           static_cast<long long>(cumulative));
        }
        cumulative += m.bucket_counts.back();
        out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", m.name.c_str(),
                         static_cast<long long>(cumulative));
        out += StrFormat("%s_sum %.6g\n", m.name.c_str(), m.value);
        out += StrFormat("%s_count %lld\n", m.name.c_str(),
                         static_cast<long long>(m.count));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExpositionJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics").BeginArray();
  for (const MetricSnapshot& m : Snapshot()) {
    w.BeginObject();
    w.Key("name").String(m.name);
    w.Key("type").String(MetricTypeToString(m.type));
    w.Key("help").String(m.help);
    switch (m.type) {
      case MetricType::kCounter:
        w.Key("value").Int(static_cast<int64_t>(m.value));
        break;
      case MetricType::kGauge:
        w.Key("value").Double(m.value);
        break;
      case MetricType::kHistogram: {
        w.Key("count").Int(m.count);
        w.Key("sum").Double(m.value);
        w.Key("bounds").BeginArray();
        for (const double b : m.bounds) w.Double(b);
        w.EndArray();
        w.Key("buckets").BeginArray();
        for (const int64_t c : m.bucket_counts) w.Int(c);
        w.EndArray();
        break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Finish();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ideval
