#ifndef IDEVAL_OBS_METRICS_REGISTRY_H_
#define IDEVAL_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ideval {

/// A monotonically increasing counter. `Increment` is one relaxed
/// fetch-add — safe from any thread, no lock, no allocation, so it can sit
/// directly on the serve hot path (the same discipline as `TraceBuffer`:
/// instrumentation must never become the bottleneck it measures).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins instantaneous value (queue depth, hit rate, load
/// factor). Stored as the double's bit pattern in an atomic u64 so `Set`
/// and `value` are lock-free on every platform we build for.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v);
  double value() const;

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<uint64_t> bits_{0};
};

/// Bucket layout for a `Histogram`: `num_bounds` geometric upper bounds
/// starting at `first_bound` and growing by `growth` per bucket, plus an
/// implicit +Inf overflow bucket. The default (0.25ms .. ~54s at 2x)
/// covers everything from a cache hit to a pathological stall.
struct HistogramOptions {
  double first_bound = 0.25;
  double growth = 2.0;
  int num_bounds = 18;
};

/// A log-bucketed histogram with Prometheus `le` semantics: bucket `i`
/// counts observations `<= bounds[i]`, the final bucket is +Inf.
/// `Record` is a short loop over <= `num_bounds` comparisons plus two
/// relaxed atomics — fixed-size, allocation-free, concurrent-safe.
///
/// Exposition counts are cumulative (each `le` bucket includes all
/// smaller ones), matching what a Prometheus scraper expects; `Snapshot`
/// reports per-bucket counts for programmatic use.
class Histogram {
 public:
  Histogram(std::string name, HistogramOptions options);

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Upper bounds, excluding the +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index `bounds().size()` is the
  /// +Inf overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::vector<double> bounds_;              ///< Immutable after construction.
  std::vector<std::atomic<int64_t>> buckets_;  ///< bounds.size() + 1 slots.
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  ///< Double bits, CAS-accumulated.
};

enum class MetricType : uint8_t { kCounter = 0, kGauge, kHistogram };

const char* MetricTypeToString(MetricType type);

/// One metric's state at snapshot time, for exposition and tests.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  /// Counter/gauge value, or the histogram sum.
  double value = 0.0;
  /// Histogram only: upper bounds and matching per-bucket counts (one
  /// extra trailing count for +Inf), plus the total observation count.
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
};

/// A process-wide registry of named metrics. Registration (rare, startup)
/// takes a sharded lock and allocates; the returned handles are stable
/// for the registry's lifetime and recording through them never locks the
/// registry — the serve hot path holds raw `Counter*`/`Histogram*` and
/// pays only the atomic op.
///
/// Names are Prometheus-style (`ideval_serve_groups_submitted_total`);
/// variants that a labeled system would express as labels (shed reasons,
/// cache outcomes) are separate metrics here — the registry stays
/// allocation-free at scrape-for-scrape parity without a label parser.
///
/// Re-registering an existing name with the same type returns the same
/// handle (so independent subsystems can share a metric); a type conflict
/// returns null.
///
/// Thread safety: all methods are safe for concurrent callers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(const std::string& name, const std::string& help);
  Gauge* RegisterGauge(const std::string& name, const std::string& help);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               HistogramOptions options = {});

  /// Looks a metric up by name; null if absent or a different type.
  Counter* FindCounter(const std::string& name) const;
  Gauge* FindGauge(const std::string& name) const;
  Histogram* FindHistogram(const std::string& name) const;

  /// Every registered metric, sorted by name (exposition is diff-able).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus text exposition format, version 0.0.4: `# HELP` /
  /// `# TYPE` headers, `_bucket{le="..."}` cumulative histogram series
  /// with `_sum` and `_count`.
  std::string ExpositionText() const;

  /// The same snapshot as one JSON object:
  /// `{"metrics":[{"name":...,"type":...,"value":...}, ...]}`.
  std::string ExpositionJson() const;

  /// The process-wide registry most callers want; dedicated instances
  /// (tests, embedded servers) can own their own.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mu;
    /// name -> entry; pointer-stable (node-based would also do, but the
    /// entries themselves are unique_ptr-held so rehash is safe).
    std::vector<std::pair<std::string, std::unique_ptr<Entry>>> entries;
  };

  static constexpr int kNumShards = 8;

  Shard& ShardFor(const std::string& name) const;
  Entry* FindEntry(const std::string& name) const;

  mutable Shard shards_[kNumShards];
};

}  // namespace ideval

#endif  // IDEVAL_OBS_METRICS_REGISTRY_H_
