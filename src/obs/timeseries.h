#ifndef IDEVAL_OBS_TIMESERIES_H_
#define IDEVAL_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_time.h"

namespace ideval {

/// One periodic sample of a live server: the time-sliced view IDEBench
/// argues interactive benchmarks must report instead of end-of-run means.
/// Plain numbers only — the obs layer stays independent of the serve
/// structs; the sampling callback does the translation.
struct StatsSample {
  double t_s = 0.0;  ///< Seconds since server start.

  // Windowed rates (the moving picture of Fig. 3's quadrant walk).
  double qif_qps = 0.0;               ///< Offered load, sliding window.
  double throughput_window_qps = 0.0; ///< Completed load, sliding window.
  double shed_per_s = 0.0;            ///< Groups shed since last sample.
  double reject_per_s = 0.0;          ///< Groups rejected since last sample.

  // Instantaneous state.
  int64_t queue_depth = 0;
  double lcv_fraction = 0.0;
  double load_factor = 0.0;
  int32_t load_state = 0;  ///< `LoadState` as an int.
  double cache_hit_rate = -1.0;  ///< -1 = no result cache configured.
  int64_t trace_dropped = 0;     ///< 0 when tracing is off.

  // Latency battery at sample time (streaming estimates).
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;

  // Lifetime cumulative counts (rates above derive from their deltas).
  int64_t submitted = 0;
  int64_t executed = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
};

/// A bounded ring of `StatsSample`s — the server's recent history at
/// poller resolution. Preallocated, overwrite-oldest, mutex-guarded (the
/// poller writes once per period; contention is not a concern the way it
/// is for the hot-path registry).
///
/// Thread safety: all methods are safe for concurrent callers.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(int64_t capacity);

  void Push(const StatsSample& sample);

  /// Live samples, oldest first.
  std::vector<StatsSample> Snapshot() const;

  /// Samples ever pushed (>= live count once the ring has wrapped).
  int64_t pushed() const;

  int64_t capacity() const { return static_cast<int64_t>(ring_.size()); }

  /// The live samples as a JSON array of objects (one key per
  /// `StatsSample` field), oldest first — the `series.samples` block of
  /// the BENCH JSON schema.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<StatsSample> ring_;  ///< Fixed capacity, preallocated.
  size_t next_ = 0;                ///< Next write slot.
  size_t count_ = 0;               ///< Live samples (<= ring_.size()).
  int64_t pushed_ = 0;
};

/// A background thread that calls `sample()` every `period` and pushes
/// the result into a `TimeSeriesRing`. Start/Stop are idempotent; Stop
/// joins, so after it returns the callback will never run again — the
/// owning server stops the poller before tearing anything down.
class StatsPoller {
 public:
  StatsPoller(Duration period, std::function<StatsSample()> sample,
              TimeSeriesRing* ring);

  StatsPoller(const StatsPoller&) = delete;
  StatsPoller& operator=(const StatsPoller&) = delete;

  ~StatsPoller() { Stop(); }

  void Start();
  void Stop();

  bool running() const;
  int64_t polls() const;

 private:
  void Loop();

  const Duration period_;
  const std::function<StatsSample()> sample_;
  TimeSeriesRing* const ring_;

  /// Serializes Start/Stop against each other (the join happens under
  /// it), so concurrent lifecycle calls cannot leak or double-start the
  /// thread. Never held by the poll loop.
  mutable std::mutex lifecycle_mu_;
  std::thread thread_;  ///< Guarded by lifecycle_mu_.

  /// Loop-side state: the wait predicate and the poll count.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  ///< Guarded by mu_.
  int64_t polls_ = 0;  ///< Guarded by mu_.
};

}  // namespace ideval

#endif  // IDEVAL_OBS_TIMESERIES_H_
