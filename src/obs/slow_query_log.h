#ifndef IDEVAL_OBS_SLOW_QUERY_LOG_H_
#define IDEVAL_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace ideval {

/// One executed group that crossed the slow threshold (or violated the
/// latency constraint). The queue/service split says *where* the time
/// went — the question the end-to-end percentiles cannot answer.
struct SlowQueryRecord {
  uint64_t trace_id = 0;  ///< 0 when tracing is off (the log still works).
  uint64_t session_id = 0;
  uint64_t seq = 0;       ///< Per-session submission sequence number.
  int64_t submit_us = 0;  ///< Submission time, µs since server start.
  double queue_ms = 0.0;    ///< Submit -> dispatched to a worker.
  double service_ms = 0.0;  ///< Dispatch -> last query done.
  double latency_ms = 0.0;  ///< Submit -> done (queue + service).
  int64_t queries_ok = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  bool lcv = false;  ///< Completed after a newer submission (§7.2).
};

struct SlowQueryLogOptions {
  /// Groups with latency >= this are logged.
  Duration threshold = Duration::Millis(100);
  /// LCV violations are logged even when faster than the threshold: a
  /// late-contradicting frame is interesting at any latency.
  bool always_log_lcv = true;
  /// Bounded: once full the oldest entry is evicted (newest-N).
  int64_t capacity = 256;
};

/// A bounded, structured log of the worst interactions a server served.
/// Thread-safe; the common case (fast group, no violation) takes one
/// mutex acquisition only when the log is enabled at all.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Logs `record` iff it crosses the threshold or (optionally) flags an
  /// LCV violation. Returns whether it was kept.
  bool MaybeRecord(const SlowQueryRecord& record);

  /// Entries oldest-first.
  std::vector<SlowQueryRecord> Snapshot() const;

  int64_t logged() const;
  int64_t evicted() const;

  /// Renders the log as an aligned text table, slowest entries last.
  std::string ToText() const;

  const SlowQueryLogOptions& options() const { return options_; }

 private:
  SlowQueryLogOptions options_;
  mutable std::mutex mu_;
  std::deque<SlowQueryRecord> entries_;
  int64_t logged_ = 0;
  int64_t evicted_ = 0;
};

}  // namespace ideval

#endif  // IDEVAL_OBS_SLOW_QUERY_LOG_H_
