#include "obs/slow_query_log.h"

#include "common/text_table.h"

namespace ideval {

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options) : options_(options) {
  if (options_.capacity < 1) options_.capacity = 1;
}

bool SlowQueryLog::MaybeRecord(const SlowQueryRecord& record) {
  const bool slow = record.latency_ms >= options_.threshold.millis();
  const bool lcv_worthy = options_.always_log_lcv && record.lcv;
  if (!slow && !lcv_worthy) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(entries_.size()) >= options_.capacity) {
    entries_.pop_front();
    ++evicted_;
  }
  entries_.push_back(record);
  ++logged_;
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

int64_t SlowQueryLog::logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logged_;
}

int64_t SlowQueryLog::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::string SlowQueryLog::ToText() const {
  TextTable table({"session", "seq", "trace", "submit (s)", "queue (ms)",
                   "service (ms)", "latency (ms)", "ok/fail", "hits",
                   "LCV"});
  for (const SlowQueryRecord& r : Snapshot()) {
    table.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(r.session_id)),
         StrFormat("%llu", static_cast<unsigned long long>(r.seq)),
         r.trace_id > 0
             ? StrFormat("%llu", static_cast<unsigned long long>(r.trace_id))
             : std::string("-"),
         StrFormat("%.3f", static_cast<double>(r.submit_us) / 1e6),
         StrFormat("%.2f", r.queue_ms), StrFormat("%.2f", r.service_ms),
         StrFormat("%.2f", r.latency_ms),
         StrFormat("%lld/%lld", static_cast<long long>(r.queries_ok),
                   static_cast<long long>(r.queries_failed)),
         StrFormat("%lld", static_cast<long long>(r.cache_hits)),
         r.lcv ? "yes" : "no"});
  }
  return table.ToString();
}

}  // namespace ideval
