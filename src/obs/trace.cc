#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "common/text_table.h"

namespace ideval {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kGroup:
      return "group";
    case SpanKind::kAdmission:
      return "admission";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kCacheLookup:
      return "cache_lookup";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kScatter:
      return "scatter";
    case SpanKind::kShardExec:
      return "shard_exec";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kNetRecv:
      return "net_recv";
    case SpanKind::kNetSend:
      return "net_send";
  }
  return "unknown";
}

const char* GroupTerminalToString(GroupTerminal terminal) {
  switch (terminal) {
    case GroupTerminal::kExecuted:
      return "executed";
    case GroupTerminal::kShedThrottled:
      return "shed_throttled";
    case GroupTerminal::kRejected:
      return "rejected";
    case GroupTerminal::kShedCoalesced:
      return "shed_coalesced";
    case GroupTerminal::kShedStale:
      return "shed_stale";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.capacity_spans < options_.num_shards) {
    options_.capacity_spans = options_.num_shards;
  }
  const size_t per_shard = static_cast<size_t>(
      options_.capacity_spans / options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(per_shard);
    shards_.push_back(std::move(shard));
  }
}

int64_t TraceBuffer::NowMicros() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
      .count();
}

void TraceBuffer::Record(const SpanRecord& record) {
  Shard& shard = *shards_[record.trace_id % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.recorded;
  if (shard.count == shard.ring.size()) {
    ++shard.dropped;  // The slot at `next` holds the oldest record.
  } else {
    ++shard.count;
  }
  shard.ring[shard.next] = record;
  shard.next = (shard.next + 1) % shard.ring.size();
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Oldest live record sits at `next` when full, at 0 otherwise.
    const size_t n = shard->ring.size();
    const size_t first =
        shard->count == n ? shard->next : 0;
    for (size_t i = 0; i < shard->count; ++i) {
      out.push_back(shard->ring[(first + i) % n]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return out;
}

TraceBufferStats TraceBuffer::Stats() const {
  TraceBufferStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.recorded += shard->recorded;
    stats.dropped += shard->dropped;
    stats.live += static_cast<int64_t>(shard->count);
    stats.capacity += static_cast<int64_t>(shard->ring.size());
  }
  return stats;
}

std::string TraceBuffer::ChromeTraceJson() const {
  return ideval::ChromeTraceJson(Snapshot());
}

Status TraceBuffer::ExportChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceContext MakeTraceContext(TraceBuffer* buffer, uint64_t session_id) {
  TraceContext ctx;
  if (buffer == nullptr) return ctx;
  ctx.buffer = buffer;
  ctx.trace_id = buffer->NewTraceId();
  ctx.root_span_id = buffer->NewSpanId();
  ctx.session_id = session_id;
  return ctx;
}

Span::Span(const TraceContext& ctx, SpanKind kind, uint64_t parent_span_id,
           int64_t start_us)
    : buffer_(ctx.buffer) {
  if (buffer_ == nullptr) return;
  record_.trace_id = ctx.trace_id;
  record_.span_id = buffer_->NewSpanId();
  record_.parent_span_id = parent_span_id;
  record_.session_id = ctx.session_id;
  record_.kind = kind;
  record_.start_us = start_us >= 0 ? start_us : buffer_->NowMicros();
}

Span::Span(Span&& other) noexcept
    : buffer_(other.buffer_), record_(other.record_) {
  other.buffer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    buffer_ = other.buffer_;
    record_ = other.record_;
    other.buffer_ = nullptr;
  }
  return *this;
}

void Span::End(int64_t end_us) {
  if (buffer_ == nullptr) return;
  record_.end_us = end_us >= 0 ? end_us : buffer_->NowMicros();
  if (record_.end_us < record_.start_us) record_.end_us = record_.start_us;
  buffer_->Record(record_);
  buffer_ = nullptr;
}

void RecordSpan(const TraceContext& ctx, SpanKind kind, uint64_t span_id,
                uint64_t parent_span_id, int64_t start_us, int64_t end_us,
                uint32_t detail, int64_t attr0, int64_t attr1,
                int64_t attr2) {
  if (!ctx.enabled()) return;
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = span_id;
  rec.parent_span_id = parent_span_id;
  rec.session_id = ctx.session_id;
  rec.kind = kind;
  rec.detail = detail;
  rec.start_us = start_us;
  rec.end_us = end_us < start_us ? start_us : end_us;
  rec.attr0 = attr0;
  rec.attr1 = attr1;
  rec.attr2 = attr2;
  ctx.buffer->Record(rec);
}

namespace {

/// Disposition names for kAdmission spans; mirrors the server's
/// `SubmitDisposition` order (obs cannot depend on serve).
const char* DispositionName(uint32_t d) {
  switch (d) {
    case 0:
      return "enqueued";
    case 1:
      return "coalesced";
    case 2:
      return "throttled";
    case 3:
      return "rejected";
  }
  return "unknown";
}

/// Outcome names for kCacheLookup spans (0 = backend error).
const char* CacheOutcomeName(uint32_t d) {
  switch (d) {
    case 1:
      return "hit";
    case 2:
      return "miss";
    case 3:
      return "coalesced";
  }
  return "error";
}

/// Track ids within one session's process: the pipeline stages nest on
/// one track; each concurrent shard partial gets its own lane track.
constexpr int64_t kPipelineTid = 0;
constexpr int64_t kShardLaneBase = 100;

int64_t SpanTid(const SpanRecord& s) {
  if (s.kind == SpanKind::kShardExec) {
    return kShardLaneBase + static_cast<int64_t>(s.detail);
  }
  return kPipelineTid;
}

void AppendCommon(std::string* out, const SpanRecord& s, int64_t tid) {
  *out += StrFormat(
      "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":%llu,"
      "\"tid\":%lld,\"ts\":%lld,\"dur\":%lld,\"args\":{"
      "\"trace_id\":%llu,\"span_id\":%llu,\"parent_span_id\":%llu",
      SpanKindToString(s.kind),
      static_cast<unsigned long long>(s.session_id),
      static_cast<long long>(tid), static_cast<long long>(s.start_us),
      static_cast<long long>(s.end_us - s.start_us),
      static_cast<unsigned long long>(s.trace_id),
      static_cast<unsigned long long>(s.span_id),
      static_cast<unsigned long long>(s.parent_span_id));
}

void AppendKindArgs(std::string* out, const SpanRecord& s) {
  switch (s.kind) {
    case SpanKind::kGroup:
      *out += StrFormat(
          ",\"terminal\":\"%s\",\"lcv\":%s,\"queries_ok\":%lld,"
          "\"queries_failed\":%lld,\"cache_hits\":%lld",
          GroupTerminalToString(
              static_cast<GroupTerminal>(s.detail & 0xffu)),
          (s.detail & kGroupLcvBit) != 0 ? "true" : "false",
          static_cast<long long>(s.attr0), static_cast<long long>(s.attr1),
          static_cast<long long>(s.attr2));
      break;
    case SpanKind::kAdmission:
      *out += StrFormat(
          ",\"disposition\":\"%s\",\"load_state\":%lld,"
          "\"queue_depth\":%lld,\"load_factor\":%.3f",
          DispositionName(s.detail), static_cast<long long>(s.attr0),
          static_cast<long long>(s.attr1),
          static_cast<double>(s.attr2) / 1000.0);
      break;
    case SpanKind::kQueueWait:
      *out += StrFormat(",\"queue_depth\":%lld",
                        static_cast<long long>(s.attr0));
      break;
    case SpanKind::kCacheLookup:
      *out += StrFormat(",\"outcome\":\"%s\"", CacheOutcomeName(s.detail));
      break;
    case SpanKind::kExecute:
      *out += StrFormat(
          ",\"tuples_scanned\":%lld,\"blocks_scanned\":%lld,"
          "\"blocks_pruned\":%lld",
          static_cast<long long>(s.attr0), static_cast<long long>(s.attr1),
          static_cast<long long>(s.attr2));
      break;
    case SpanKind::kScatter:
      *out += StrFormat(
          ",\"subtasks\":%lld,\"planned\":%lld,\"plan_failed\":%lld",
          static_cast<long long>(s.attr0), static_cast<long long>(s.attr1),
          static_cast<long long>(s.attr2));
      break;
    case SpanKind::kShardExec:
      *out += StrFormat(
          ",\"shard\":%lld,\"blocks_scanned\":%lld,\"blocks_pruned\":%lld",
          static_cast<long long>(s.attr0), static_cast<long long>(s.attr1),
          static_cast<long long>(s.attr2));
      break;
    case SpanKind::kMerge:
      *out += StrFormat(",\"merged\":%lld,\"failed\":%lld",
                        static_cast<long long>(s.attr0),
                        static_cast<long long>(s.attr1));
      break;
    case SpanKind::kNetRecv:
    case SpanKind::kNetSend:
      *out += StrFormat(
          ",\"opcode\":%lld,\"bytes\":%lld,\"request_id\":%lld",
          static_cast<long long>(s.detail), static_cast<long long>(s.attr0),
          static_cast<long long>(s.attr1));
      break;
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name every (process, thread) track so Perfetto shows "session N" /
  // "pipeline" / "shard lane K" instead of bare ids.
  std::set<uint64_t> pids;
  std::set<std::pair<uint64_t, int64_t>> tids;
  for (const SpanRecord& s : spans) {
    pids.insert(s.session_id);
    tids.insert({s.session_id, SpanTid(s)});
  }
  for (uint64_t pid : pids) {
    out += StrFormat(
        "%s{\"ph\":\"M\",\"pid\":%llu,\"name\":\"process_name\","
        "\"args\":{\"name\":\"session %llu\"}}",
        first ? "" : ",", static_cast<unsigned long long>(pid),
        static_cast<unsigned long long>(pid));
    first = false;
  }
  for (const auto& [pid, tid] : tids) {
    std::string name =
        tid == kPipelineTid
            ? std::string("pipeline")
            : StrFormat("shard lane %lld",
                        static_cast<long long>(tid - kShardLaneBase));
    out += StrFormat(
        "%s{\"ph\":\"M\",\"pid\":%llu,\"tid\":%lld,"
        "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
        first ? "" : ",", static_cast<unsigned long long>(pid),
        static_cast<long long>(tid), name.c_str());
    first = false;
  }
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    AppendCommon(&out, s, SpanTid(s));
    AppendKindArgs(&out, s);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace ideval
