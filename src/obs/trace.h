#ifndef IDEVAL_OBS_TRACE_H_
#define IDEVAL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ideval {

/// What one span covers in the serve pipeline. The paper's frontend
/// metrics (LCV, QIF) are derived quantities; these spans are the
/// per-interaction timeline they derive from — where a group sat in the
/// queue, whether the cache coalesced it, which shard straggled.
enum class SpanKind : uint8_t {
  kGroup = 0,     ///< Root: submission -> terminal (executed or shed).
  kAdmission,     ///< Instant: the door verdict (disposition in `detail`).
  kQueueWait,     ///< Admitted -> dispatched to a group worker.
  kCacheLookup,   ///< One `ResultCache::Execute` (outcome in `detail`).
  kExecute,       ///< Backend busy: one query's scan/aggregate wall time.
  kScatter,       ///< Sharded: plan + fan-out to the shard pool.
  kShardExec,     ///< Sharded: one partial on one shard engine.
  kMerge,         ///< Sharded: partial-combine wall time.
  kNetRecv,       ///< Socket front-end: one request frame decoded.
  kNetSend,       ///< Socket front-end: one response frame written.
};

const char* SpanKindToString(SpanKind kind);

/// Terminal state of a `kGroup` root span, in `SpanRecord::detail`'s low
/// byte. Bit 8 (`kGroupLcvBit`) flags a late-contradicting-visualization
/// violation on an executed group.
enum class GroupTerminal : uint32_t {
  kExecuted = 0,
  kShedThrottled = 1,
  kRejected = 2,
  kShedCoalesced = 3,  ///< Superseded by a newer debounced submission.
  kShedStale = 4,      ///< Skip-stale shed (overflow or at dispatch).
};

inline constexpr uint32_t kGroupLcvBit = 1u << 8;

const char* GroupTerminalToString(GroupTerminal terminal);

/// One fixed-size span record. No strings, no heap: recording a span is a
/// struct copy into a preallocated ring, so the hot path never allocates.
///
/// `detail` and `attr0..2` are kind-specific:
///
///   kind         | detail                  | attr0..attr2
///   -------------|-------------------------|----------------------------
///   kGroup       | GroupTerminal | LCV bit | ok, failed, cache hits
///   kAdmission   | disposition (0..3)      | load state, queue depth,
///                |                         |   load factor (x1000)
///   kQueueWait   | —                       | queue depth at admit
///   kCacheLookup | outcome (1 hit, 2 miss, | —
///                |   3 coalesced, 0 error) |
///   kExecute     | —                       | tuples scanned,
///                |                         |   blocks scanned/pruned
///   kScatter     | —                       | subtasks, planned, failed
///   kShardExec   | lane                    | shard, blocks scanned/pruned
///   kMerge       | —                       | merged, failed
///   kNetRecv     | opcode                  | bytes, request id
///   kNetSend     | opcode                  | bytes, request id
struct SpanRecord {
  uint64_t trace_id = 0;        ///< Shared by every span of one group.
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root.
  uint64_t session_id = 0;
  SpanKind kind = SpanKind::kGroup;
  uint32_t detail = 0;
  int64_t start_us = 0;  ///< Microseconds since the buffer epoch.
  int64_t end_us = 0;
  int64_t attr0 = 0;
  int64_t attr1 = 0;
  int64_t attr2 = 0;
};

struct TraceOptions {
  /// Total span capacity across all shards; once full the oldest records
  /// are overwritten (newest-N retention) and `dropped` counts the loss.
  int64_t capacity_spans = 1 << 16;
  /// Ring shards, each behind its own mutex. Spans shard by trace id, so
  /// concurrent sessions do not contend and one trace stays together.
  int num_shards = 8;
};

struct TraceBufferStats {
  int64_t recorded = 0;  ///< Spans ever accepted.
  int64_t dropped = 0;   ///< Spans overwritten by newer ones.
  int64_t live = 0;      ///< Spans currently held.
  int64_t capacity = 0;  ///< Maximum live spans.
};

/// A lock-sharded, bounded ring buffer of span records — the always-
/// compiled tracing backend. Tracing off means no buffer exists at all;
/// every instrumentation site guards on a null `TraceContext::buffer`, so
/// the disabled cost is one branch.
///
/// Thread safety: all methods are safe for concurrent callers.
class TraceBuffer {
 public:
  explicit TraceBuffer(TraceOptions options);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Re-anchors timestamps; the owning server passes its own epoch so
  /// span times line up with its `SimTime` clock.
  void set_epoch(std::chrono::steady_clock::time_point epoch) {
    epoch_ = epoch;
  }

  /// Microseconds since the epoch (the span timestamp domain).
  int64_t NowMicros() const;

  uint64_t NewTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copies `record` into its trace's ring shard, overwriting the oldest
  /// record there when full.
  void Record(const SpanRecord& record);

  /// Every live span, ordered by (start, span id).
  std::vector<SpanRecord> Snapshot() const;

  TraceBufferStats Stats() const;

  /// Renders the live spans as Chrome trace-event JSON; see
  /// `ChromeTraceJson`.
  std::string ChromeTraceJson() const;

  /// Writes `ChromeTraceJson()` to `path` (openable in ui.perfetto.dev or
  /// chrome://tracing).
  Status ExportChromeTrace(const std::string& path) const;

  const TraceOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> ring;  ///< Fixed capacity, preallocated.
    size_t next = 0;               ///< Next write slot.
    size_t count = 0;              ///< Live records (<= ring.size()).
    int64_t recorded = 0;
    int64_t dropped = 0;
  };

  TraceOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The per-query-group trace handle, carried from submission through
/// admission, queue wait, cache lookup, shard execution, and merge. A
/// default-constructed (null-buffer) context disables every span it is
/// handed to.
struct TraceContext {
  TraceBuffer* buffer = nullptr;
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;  ///< The kGroup span every stage nests under.
  uint64_t session_id = 0;

  bool enabled() const { return buffer != nullptr; }
};

/// Makes an enabled context with fresh trace/root ids, or a disabled one
/// when `buffer` is null.
TraceContext MakeTraceContext(TraceBuffer* buffer, uint64_t session_id);

/// RAII span for work that starts and ends on one thread: starts at
/// construction, records itself at `End` (or destruction). On a disabled
/// context every method is a no-op behind one branch.
class Span {
 public:
  Span() = default;

  /// Starts a span under `parent_span_id` at `start_us` (now if < 0).
  Span(const TraceContext& ctx, SpanKind kind, uint64_t parent_span_id,
       int64_t start_us = -1);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;

  ~Span() { End(); }

  bool enabled() const { return buffer_ != nullptr; }
  uint64_t id() const { return record_.span_id; }

  void SetDetail(uint32_t detail) { record_.detail = detail; }
  void SetAttrs(int64_t a0, int64_t a1 = 0, int64_t a2 = 0) {
    record_.attr0 = a0;
    record_.attr1 = a1;
    record_.attr2 = a2;
  }

  /// Records the span, ending at `end_us` (now if < 0). Idempotent.
  void End(int64_t end_us = -1);

 private:
  TraceBuffer* buffer_ = nullptr;
  SpanRecord record_;
};

/// Records an already-timed span in one call — for spans whose start and
/// end were observed on different threads (the root group span, queue
/// waits) or that must be closed retroactively (shed groups). No-op on a
/// disabled context.
void RecordSpan(const TraceContext& ctx, SpanKind kind, uint64_t span_id,
                uint64_t parent_span_id, int64_t start_us, int64_t end_us,
                uint32_t detail = 0, int64_t attr0 = 0, int64_t attr1 = 0,
                int64_t attr2 = 0);

/// Renders spans as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// envelope of "X" complete events, timestamps in microseconds). Sessions
/// map to processes and pipeline stages nest on one track per session;
/// concurrent shard partials get per-lane tracks so slices never overlap.
/// The output opens directly in ui.perfetto.dev or chrome://tracing.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace ideval

#endif  // IDEVAL_OBS_TRACE_H_
