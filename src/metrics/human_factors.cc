#include "metrics/human_factors.h"

namespace ideval {

namespace {

/// Counts contiguous event bursts: a new burst starts after a gap larger
/// than `gap`.
template <typename Event>
int64_t CountBursts(const std::vector<Event>& events, Duration gap) {
  if (events.empty()) return 0;
  int64_t bursts = 1;
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].time - events[i - 1].time > gap) ++bursts;
  }
  return bursts;
}

}  // namespace

HumanFactors ComputeScrollHumanFactors(const ScrollTrace& trace) {
  HumanFactors out;
  out.task_completion_time = trace.session_duration;
  out.num_interactions =
      CountBursts(trace.events, Duration::Millis(100));
  out.task_outputs = static_cast<int64_t>(trace.selections.size());
  return out;
}

HumanFactors ComputeCrossfilterHumanFactors(const CrossfilterTrace& trace) {
  HumanFactors out;
  out.task_completion_time = trace.session_duration;
  out.num_interactions = static_cast<int64_t>(trace.events.size());
  out.task_outputs = CountBursts(trace.events, Duration::Millis(400));
  return out;
}

HumanFactors ComputeExploreHumanFactors(const ExploreTrace& trace) {
  HumanFactors out;
  out.task_completion_time = trace.session_duration;
  out.num_interactions = static_cast<int64_t>(trace.phases.size());
  for (const auto& phase : trace.phases) {
    if (phase.request.widget == WidgetKind::kMap) ++out.task_outputs;
  }
  return out;
}

}  // namespace ideval
