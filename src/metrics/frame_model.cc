#include "metrics/frame_model.h"

#include <algorithm>
#include <map>
#include <set>

namespace ideval {

Result<FrameReport> AnalyzeFrames(const std::vector<QueryTimeline>& timelines,
                                  const FrameModelOptions& options) {
  if (options.fps <= 0.0) {
    return Status::InvalidArgument("fps must be positive");
  }
  FrameReport report;
  const double frame_us = 1e6 / options.fps;

  // Frame index -> (results delivered, distinct groups) in that frame.
  struct FrameCell {
    int64_t results = 0;
    std::set<int64_t> groups;
  };
  std::map<int64_t, FrameCell> frames;
  SimTime first = SimTime::Max();
  SimTime last = SimTime::Origin();
  Duration delay_total;
  for (const auto& t : timelines) {
    if (t.skipped) continue;
    ++report.results_arrived;
    const double at_us = static_cast<double>(t.client_receive.micros());
    const int64_t frame = static_cast<int64_t>(at_us / frame_us) + 1;
    FrameCell& cell = frames[frame];
    ++cell.results;
    cell.groups.insert(t.group_id);
    const SimTime tick = SimTime::FromMicros(
        static_cast<int64_t>(static_cast<double>(frame) * frame_us));
    delay_total += tick - t.client_receive;
    first = std::min(first, t.client_receive);
    last = std::max(last, tick);
  }
  if (report.results_arrived == 0) return report;

  report.frames_with_updates = static_cast<int64_t>(frames.size());
  for (const auto& [_, cell] : frames) {
    if (cell.groups.size() > 1) report.coalesced_results += cell.results;
  }
  report.mean_display_delay = delay_total / report.results_arrived;
  const Duration span = last - first;
  if (span > Duration::Zero()) {
    report.effective_update_hz =
        static_cast<double>(report.frames_with_updates) / span.seconds();
  }
  return report;
}

}  // namespace ideval
