#include "metrics/frontend_metrics.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace ideval {

Result<QifStats> ComputeQif(const std::vector<SimTime>& issue_times) {
  QifStats out;
  out.queries = static_cast<int64_t>(issue_times.size());
  if (issue_times.empty()) return out;
  for (size_t i = 1; i < issue_times.size(); ++i) {
    if (issue_times[i] < issue_times[i - 1]) {
      return Status::InvalidArgument("issue times must be nondecreasing");
    }
    out.intervals_ms.push_back(
        (issue_times[i] - issue_times[i - 1]).millis());
  }
  out.span = issue_times.back() - issue_times.front();
  if (out.span > Duration::Zero()) {
    out.qif = static_cast<double>(out.queries) / out.span.seconds();
  }
  return out;
}

std::vector<SimTime> IssueTimes(const std::vector<QueryTimeline>& timelines) {
  std::vector<SimTime> out;
  out.reserve(timelines.size());
  for (const auto& t : timelines) {
    if (!t.skipped) out.push_back(t.issue_time);
  }
  std::sort(out.begin(), out.end());
  return out;
}

LcvStats ComputeCrossfilterLcv(const std::vector<QueryTimeline>& timelines) {
  LcvStats out;
  // Next *interaction* time per group: the issue time of the next group
  // (skipped or not — the user interacted either way).
  // Build group_id -> next interaction issue time.
  std::vector<std::pair<int64_t, SimTime>> group_issues;
  for (const auto& t : timelines) {
    if (group_issues.empty() || group_issues.back().first != t.group_id) {
      group_issues.emplace_back(t.group_id, t.issue_time);
    }
  }
  std::unordered_map<int64_t, SimTime> next_map;
  for (size_t i = 0; i + 1 < group_issues.size(); ++i) {
    next_map[group_issues[i].first] = group_issues[i + 1].second;
  }

  for (const auto& t : timelines) {
    if (t.skipped) continue;
    auto it = next_map.find(t.group_id);
    if (it == next_map.end()) continue;  // Last interaction: no successor.
    ++out.queries_considered;
    if (t.client_receive > it->second) {
      ++out.violations;
      out.overshoot_ms.push_back((t.client_receive - it->second).millis());
    }
  }
  return out;
}

Summary PerceivedLatencySummary(const std::vector<QueryTimeline>& timelines) {
  std::vector<double> ms;
  ms.reserve(timelines.size());
  for (const auto& t : timelines) {
    if (t.skipped) continue;
    ms.push_back(t.PerceivedLatency().millis());
  }
  return Summary(std::move(ms));
}

LatencyBreakdownMeans MeanLatencyBreakdown(
    const std::vector<QueryTimeline>& timelines) {
  LatencyBreakdownMeans out;
  int64_t n = 0;
  Duration network, scheduling, execution, post_agg, rendering, perceived;
  for (const auto& t : timelines) {
    if (t.skipped) continue;
    ++n;
    network += t.network_latency;
    scheduling += t.scheduling_latency;
    execution += t.execution_latency;
    post_agg += t.post_aggregation_latency;
    rendering += t.rendering_latency;
    perceived += t.PerceivedLatency();
  }
  if (n == 0) return out;
  out.network = network / n;
  out.scheduling = scheduling / n;
  out.execution = execution / n;
  out.post_aggregation = post_agg / n;
  out.rendering = rendering / n;
  out.perceived = perceived / n;
  return out;
}

double ComputeThroughput(const std::vector<QueryTimeline>& timelines) {
  SimTime first = SimTime::Max();
  SimTime last = SimTime::Origin();
  int64_t n = 0;
  for (const auto& t : timelines) {
    if (t.skipped) continue;
    ++n;
    first = std::min(first, t.issue_time);
    last = std::max(last, t.exec_end);
  }
  if (n == 0 || last <= first) return 0.0;
  return static_cast<double>(n) / (last - first).seconds();
}

}  // namespace ideval
