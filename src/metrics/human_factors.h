#ifndef IDEVAL_METRICS_HUMAN_FACTORS_H_
#define IDEVAL_METRICS_HUMAN_FACTORS_H_

#include <cstdint>

#include "common/sim_time.h"
#include "workload/crossfilter_task.h"
#include "workload/explore_task.h"
#include "workload/scroll_task.h"

namespace ideval {

/// Quantitative human-factor measurements computed from a session trace
/// (§3.2.2). Qualitative factors (feedback, design studies, focus groups)
/// and ability-dependent ones (insights) require real humans; these are
/// the ones a trace determines mechanically:
///
///   - task completion time — how long the session took;
///   - number of interactions — the user-effort proxy systems like Icarus
///     and Facetor report (§3.2.2 warns completion time alone is a weak
///     proxy for effort: prefer interactions when comparable).
struct HumanFactors {
  Duration task_completion_time;
  /// Distinct user inputs: flicks/corrections are approximated by glide
  /// episodes for scrolling, slider events for crossfiltering, widget
  /// actions for composite exploration.
  int64_t num_interactions = 0;
  /// Task-specific output count (selections made, brushes applied,
  /// queries issued) for effort-per-outcome normalization.
  int64_t task_outputs = 0;

  /// Interactions per output — lower is less user effort per achieved
  /// result (the Facetor-style operator-count comparison).
  double InteractionsPerOutput() const {
    return task_outputs == 0 ? 0.0
                             : static_cast<double>(num_interactions) /
                                   static_cast<double>(task_outputs);
  }
};

/// §6 scroll session: interactions = glide episodes (contiguous event
/// bursts) + corrective backscrolls; outputs = selections.
HumanFactors ComputeScrollHumanFactors(const ScrollTrace& trace);

/// §7 crossfilter session: interactions = slider events; outputs = the
/// number of distinct slider adjustments (event bursts).
HumanFactors ComputeCrossfilterHumanFactors(const CrossfilterTrace& trace);

/// §8 composite session: interactions = widget actions; outputs = map
/// viewport queries (the results the user actually examined).
HumanFactors ComputeExploreHumanFactors(const ExploreTrace& trace);

}  // namespace ideval

#endif  // IDEVAL_METRICS_HUMAN_FACTORS_H_
