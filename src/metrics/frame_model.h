#ifndef IDEVAL_METRICS_FRAME_MODEL_H_
#define IDEVAL_METRICS_FRAME_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sim/query_scheduler.h"

namespace ideval {

/// Frontend frame model (§3.1.2). The display refreshes at a fixed rate;
/// results arriving between ticks cannot be shown until the next frame,
/// and several results landing inside one frame interval are *coalesced*
/// into a single repaint. This captures the paper's observation that the
/// frontend frame rate bounds useful result delivery: "even if the user
/// issues queries at a high rate, they are limited in the amount of
/// information they can process, so progressively presenting them with
/// results is adequate".
struct FrameModelOptions {
  /// Display refresh rate.
  double fps = 60.0;
};

/// What a frame-locked frontend actually displays for a session.
struct FrameReport {
  int64_t results_arrived = 0;    ///< Executed queries' results.
  int64_t frames_with_updates = 0;  ///< Repaints actually performed.
  /// Results folded into a repaint together with results of a *different*
  /// interaction (query group) — updates the user never saw individually.
  /// (Queries of one coordinated-view group always land together and are
  /// not counted: they are one logical update.)
  int64_t coalesced_results = 0;
  /// Mean delay from result arrival to its displaying frame tick.
  Duration mean_display_delay;
  /// Repaints per second over the active span.
  double effective_update_hz = 0.0;

  /// Fraction of render work saved by repainting per frame instead of per
  /// result (0 when every result got its own frame).
  double RenderSavings() const {
    return results_arrived == 0
               ? 0.0
               : 1.0 - static_cast<double>(frames_with_updates) /
                           static_cast<double>(results_arrived);
  }
};

/// Buckets the executed timelines' client-receive instants into frame
/// ticks and reports coalescing behaviour. Errors if fps <= 0.
Result<FrameReport> AnalyzeFrames(const std::vector<QueryTimeline>& timelines,
                                  const FrameModelOptions& options);

}  // namespace ideval

#endif  // IDEVAL_METRICS_FRAME_MODEL_H_
