#ifndef IDEVAL_METRICS_THRESHOLDS_H_
#define IDEVAL_METRICS_THRESHOLDS_H_

#include "common/sim_time.h"

namespace ideval {

/// Perceptual-latency thresholds from the studies §3.1.1 surveys. These
/// anchor what "interactive" means per task; spending resources below a
/// threshold the user cannot perceive is wasted (§3.1.2).

/// Liu & Heer: an added 500 ms delay in visual analytics is noticeable and
/// measurably harms exploration behaviour.
inline constexpr Duration kVisualAnalysisNoticeableDelay =
    Duration::Millis(500);

/// Nelson et al.: head-mounted displays tolerate ~50 ms added delay best;
/// total time, not delay, dominates sickness scores beyond that.
inline constexpr Duration kHeadMountedDelayBudget = Duration::Millis(50);

/// Pavlovych & Gutwin: mouse target-acquisition accuracy drops above
/// 50 ms latency; tracking accuracy above 110 ms.
inline constexpr Duration kTargetAcquisitionLatencyLimit =
    Duration::Millis(50);
inline constexpr Duration kTargetTrackingLatencyLimit = Duration::Millis(110);

/// Jota et al.: direct-touch users can discriminate ~20 ms latency
/// differences but nothing below.
inline constexpr Duration kTouchPerceivableDifference = Duration::Millis(20);

/// The sub-second bar §7.2 uses for "interactive" backend performance.
inline constexpr Duration kInteractiveLatencyBudget = Duration::Seconds(1.0);

}  // namespace ideval

#endif  // IDEVAL_METRICS_THRESHOLDS_H_
