#ifndef IDEVAL_METRICS_FRONTEND_METRICS_H_
#define IDEVAL_METRICS_FRONTEND_METRICS_H_

#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "sim/query_scheduler.h"

namespace ideval {

/// --- Query Issuing Frequency (QIF), §3.1.2 ---
///
/// Queries issued per second by a device/interface combination. High-frame-
/// rate devices can flood a slow backend (Fig. 3); QIF should be measured
/// per system per device and matched to backend capacity.
struct QifStats {
  int64_t queries = 0;
  Duration span;
  /// Queries per second over the active span.
  double qif = 0.0;
  /// Inter-arrival intervals (ms) between consecutive issues — the series
  /// Fig. 14 histograms.
  std::vector<double> intervals_ms;
};

/// Computes QIF over issue timestamps (must be nondecreasing).
Result<QifStats> ComputeQif(const std::vector<SimTime>& issue_times);

/// Issue timestamps of the executed (non-skipped) queries in `timelines`.
std::vector<SimTime> IssueTimes(const std::vector<QueryTimeline>& timelines);

/// --- Latency Constraint Violation (LCV), §3.1.2 ---
///
/// Counts perceived delays: the zero-latency rule is violated whenever the
/// user interacts again before the previous query's results have returned
/// (Fig. 2), and those delays cascade through the backend queue.
struct LcvStats {
  int64_t queries_considered = 0;
  int64_t violations = 0;
  /// Violating queries' completion overshoot past the next interaction.
  std::vector<double> overshoot_ms;

  double ViolationFraction() const {
    return queries_considered == 0
               ? 0.0
               : static_cast<double>(violations) /
                     static_cast<double>(queries_considered);
  }
};

/// Computes LCV over a crossfilter session (§7.2 definition): an executed
/// query violates if its results reach the client after the user's next
/// interaction was issued. Skipped queries are excluded. The last group
/// (no successor interaction) is judged against `session_end` when
/// provided, else excluded.
LcvStats ComputeCrossfilterLcv(const std::vector<QueryTimeline>& timelines);

/// Perceived-latency summary over executed queries (render_end −
/// issue_time), for Fig. 13-style reporting.
Summary PerceivedLatencySummary(const std::vector<QueryTimeline>& timelines);

/// Mean server-side latency components over executed queries — one value
/// per stage of §3.1.1's latency decomposition.
struct LatencyBreakdownMeans {
  Duration network;
  Duration scheduling;
  Duration execution;
  Duration post_aggregation;
  Duration rendering;
  Duration perceived;
};

LatencyBreakdownMeans MeanLatencyBreakdown(
    const std::vector<QueryTimeline>& timelines);

/// Backend throughput: executed queries per second of session span.
double ComputeThroughput(const std::vector<QueryTimeline>& timelines);

}  // namespace ideval

#endif  // IDEVAL_METRICS_FRONTEND_METRICS_H_
