#include "engine/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/text_table.h"

namespace ideval {

namespace {

/// Modelled coordination cost of combining partial results: ~10 ns per
/// merged cell (bin or row value), the cheap-but-not-free merge stage that
/// eventually saturates scale-out (the DICE observation reproduced by
/// `bench_abl_scaleout`).
Duration MergeCost(int64_t cells) {
  return Duration::Seconds(static_cast<double>(cells) * 10e-9);
}

/// Copies rows [begin, end) of `column` into a new column.
Column SliceColumn(const Column& column, int64_t begin, int64_t end) {
  const size_t b = static_cast<size_t>(begin);
  const size_t e = static_cast<size_t>(end);
  switch (column.type()) {
    case DataType::kInt64: {
      const auto& v = column.int64_data();
      return Column(std::vector<int64_t>(v.begin() + b, v.begin() + e));
    }
    case DataType::kDouble: {
      const auto& v = column.double_data();
      return Column(std::vector<double>(v.begin() + b, v.begin() + e));
    }
    case DataType::kString: {
      const auto& v = column.string_data();
      return Column(std::vector<std::string>(v.begin() + b, v.begin() + e));
    }
  }
  return Column(column.type());  // Unreachable.
}

/// Builds the chunk table holding rows [begin, end) of `table`, under the
/// same name and schema.
TablePtr SliceTable(const Table& table, int64_t begin, int64_t end) {
  std::vector<Column> columns;
  columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns.push_back(SliceColumn(table.column(c), begin, end));
  }
  return std::make_shared<Table>(table.name(), table.schema(),
                                 std::move(columns));
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(std::move(options)) {
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Engine>(options_.engine_options));
  }
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    ShardedEngineOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        StrFormat("num_shards must be >= 1, got %d", options.num_shards));
  }
  return std::unique_ptr<ShardedEngine>(new ShardedEngine(std::move(options)));
}

Status ShardedEngine::PartitionTable(const TablePtr& table) {
  if (table == nullptr) {
    return Status::InvalidArgument("PartitionTable: null table");
  }
  if (table->num_rows() == 0) {
    return Status::InvalidArgument("PartitionTable: empty table '" +
                                   table->name() + "'");
  }
  if (tables_.count(table->name()) != 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already registered");
  }
  const int64_t rows = static_cast<int64_t>(table->num_rows());
  const int64_t k = num_shards();
  TableInfo info;
  info.partitioned = true;
  info.bounds.resize(static_cast<size_t>(k) + 1);
  for (int64_t s = 0; s <= k; ++s) {
    // Contiguous near-equal chunks; preserves global row order.
    info.bounds[static_cast<size_t>(s)] = rows * s / k;
  }
  for (int64_t s = 0; s < k; ++s) {
    IDEVAL_RETURN_NOT_OK(shards_[static_cast<size_t>(s)]->RegisterTable(
        SliceTable(*table, info.bounds[static_cast<size_t>(s)],
                   info.bounds[static_cast<size_t>(s) + 1])));
  }
  tables_[table->name()] = std::move(info);
  return Status::OK();
}

Status ShardedEngine::ReplicateTable(const TablePtr& table) {
  if (table == nullptr) {
    return Status::InvalidArgument("ReplicateTable: null table");
  }
  if (tables_.count(table->name()) != 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already registered");
  }
  for (auto& shard : shards_) {
    IDEVAL_RETURN_NOT_OK(shard->RegisterTable(table));
  }
  tables_[table->name()] = TableInfo{};
  return Status::OK();
}

const ShardedEngine::TableInfo* ShardedEngine::FindTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

int ShardedEngine::NextRoundRobinShard() const {
  return static_cast<int>(
      rr_cursor_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(shards_.size()));
}

Result<ShardedEngine::ShardPlan> ShardedEngine::PlanSelect(
    const SelectQuery& query) const {
  const TableInfo* info = FindTable(query.table);
  if (info == nullptr) {
    return Status::NotFound("table '" + query.table + "' is not registered");
  }
  ShardPlan plan;
  if (!info->partitioned) {
    plan.subtasks.push_back({NextRoundRobinShard(), Query(query)});
    return plan;
  }
  // Every shard returns its first offset+limit matches; the merge step
  // applies the global OFFSET over the shard-order concatenation.
  SelectQuery sub = query;
  sub.offset = 0;
  const int64_t offset = std::max<int64_t>(0, query.offset);
  sub.limit = query.limit < 0 ? -1 : offset + query.limit;
  for (int s = 0; s < num_shards(); ++s) {
    plan.subtasks.push_back({s, Query(sub)});
  }
  return plan;
}

Result<ShardedEngine::ShardPlan> ShardedEngine::PlanHistogram(
    const HistogramQuery& query) const {
  const TableInfo* info = FindTable(query.table);
  if (info == nullptr) {
    return Status::NotFound("table '" + query.table + "' is not registered");
  }
  ShardPlan plan;
  if (!info->partitioned) {
    plan.subtasks.push_back({NextRoundRobinShard(), Query(query)});
    return plan;
  }
  // Bins are fixed by the query, so every shard builds the same-shaped
  // partial histogram over its chunk.
  for (int s = 0; s < num_shards(); ++s) {
    plan.subtasks.push_back({s, Query(query)});
  }
  return plan;
}

Result<ShardedEngine::ShardPlan> ShardedEngine::PlanJoinPage(
    const JoinPageQuery& query) const {
  const TableInfo* left = FindTable(query.left_table);
  if (left == nullptr) {
    return Status::NotFound("table '" + query.left_table +
                            "' is not registered");
  }
  const TableInfo* right = FindTable(query.right_table);
  if (right == nullptr) {
    return Status::NotFound("table '" + query.right_table +
                            "' is not registered");
  }
  if (right->partitioned) {
    return Status::InvalidArgument(
        "join probe side '" + query.right_table +
        "' is partitioned; a sharded join needs it replicated "
        "(ShardedEngine::ReplicateTable) so no cross-shard match is lost");
  }
  ShardPlan plan;
  if (!left->partitioned || query.limit < 0 || query.offset < 0) {
    // Replicated-only joins run on one shard; invalid pages are routed
    // there too so the engine's own validation reports the error.
    plan.subtasks.push_back({NextRoundRobinShard(), Query(query)});
    return plan;
  }
  // The left page is positional, so it maps onto the shards whose
  // contiguous chunks overlap [offset, offset+limit).
  const int64_t page_begin = query.offset;
  const int64_t page_end = query.offset + query.limit;
  for (int s = 0; s < num_shards(); ++s) {
    const int64_t chunk_begin = left->bounds[static_cast<size_t>(s)];
    const int64_t chunk_end = left->bounds[static_cast<size_t>(s) + 1];
    const int64_t lo = std::max(page_begin, chunk_begin);
    const int64_t hi = std::min(page_end, chunk_end);
    if (lo >= hi) continue;
    JoinPageQuery sub = query;
    sub.offset = lo - chunk_begin;
    sub.limit = hi - lo;
    plan.subtasks.push_back({s, Query(sub)});
  }
  if (plan.subtasks.empty()) {
    // Page past the end (or LIMIT 0): an empty-page probe on one shard
    // still produces the correctly-shaped empty row set.
    JoinPageQuery sub = query;
    sub.offset = 0;
    sub.limit = 0;
    plan.subtasks.push_back({0, Query(sub)});
  }
  return plan;
}

Result<ShardedEngine::ShardPlan> ShardedEngine::Plan(
    const Query& query) const {
  if (const auto* s = std::get_if<SelectQuery>(&query)) {
    return PlanSelect(*s);
  }
  if (const auto* h = std::get_if<HistogramQuery>(&query)) {
    return PlanHistogram(*h);
  }
  return PlanJoinPage(std::get<JoinPageQuery>(query));
}

Result<QueryResponse> ShardedEngine::Merge(
    const Query& query, const ShardPlan& plan,
    std::vector<QueryResponse> partials) const {
  if (partials.size() != plan.subtasks.size()) {
    return Status::InvalidArgument(
        StrFormat("Merge: %zu partials for %zu subtasks", partials.size(),
                  plan.subtasks.size()));
  }
  if (partials.empty()) {
    return Status::InvalidArgument("Merge: empty plan");
  }
  if (partials.size() == 1) {
    return std::move(partials[0]);
  }

  QueryResponse merged;
  // Partials run in parallel on independent shards: the modelled execution
  // time of the scatter is the slowest partial, work counters are the
  // total work actually performed across shards.
  for (const QueryResponse& p : partials) {
    merged.stats += p.stats;
    merged.execution_time = std::max(merged.execution_time, p.execution_time);
    merged.post_aggregation_time =
        std::max(merged.post_aggregation_time, p.post_aggregation_time);
  }

  if (std::holds_alternative<HistogramQuery>(query)) {
    const auto& q = std::get<HistogramQuery>(query);
    IDEVAL_ASSIGN_OR_RETURN(
        FixedHistogram hist,
        FixedHistogram::Make(q.bin_lo, q.bin_hi,
                             static_cast<size_t>(q.bins)));
    for (const QueryResponse& p : partials) {
      const auto& part = std::get<FixedHistogram>(p.data);
      if (part.num_bins() != hist.num_bins()) {
        return Status::Internal("Merge: partial histogram shape mismatch");
      }
      // Bin-center adds with the partial count as weight: pure count
      // addition, so integer-valued bins merge bitwise-exactly.
      for (size_t b = 0; b < part.num_bins(); ++b) {
        hist.Add(part.BinLowerEdge(b) + 0.5 * part.bin_width(),
                 part.count(b));
      }
    }
    merged.post_aggregation_time += MergeCost(
        static_cast<int64_t>(partials.size()) *
        static_cast<int64_t>(hist.num_bins()));
    merged.stats.groups_built = static_cast<int64_t>(hist.num_bins());
    merged.stats.rows_output = static_cast<int64_t>(hist.num_bins());
    merged.stats.bytes_output = static_cast<double>(hist.num_bins()) * 16.0;
    merged.data = std::move(hist);
    return merged;
  }

  // Row sets (select / join page): shards hold contiguous row ranges, so
  // concatenation in subtask (= shard) order restores global row order.
  RowSet rows;
  rows.column_names = std::get<RowSet>(partials[0].data).column_names;
  int64_t concat_rows = 0;
  for (QueryResponse& p : partials) {
    auto& part = std::get<RowSet>(p.data);
    concat_rows += static_cast<int64_t>(part.rows.size());
    for (auto& row : part.rows) {
      rows.rows.push_back(std::move(row));
    }
  }
  if (const auto* sel = std::get_if<SelectQuery>(&query)) {
    // Subtasks fetched offset+limit matches each; apply the global page.
    const int64_t offset = std::max<int64_t>(0, sel->offset);
    const size_t drop = static_cast<size_t>(
        std::min<int64_t>(offset, static_cast<int64_t>(rows.rows.size())));
    rows.rows.erase(rows.rows.begin(),
                    rows.rows.begin() + static_cast<int64_t>(drop));
    if (sel->limit >= 0 &&
        static_cast<int64_t>(rows.rows.size()) > sel->limit) {
      rows.rows.resize(static_cast<size_t>(sel->limit));
    }
  }
  merged.post_aggregation_time += MergeCost(
      concat_rows * static_cast<int64_t>(rows.column_names.size()));
  merged.stats.rows_output = static_cast<int64_t>(rows.rows.size());
  merged.stats.bytes_output =
      static_cast<double>(rows.rows.size() * rows.column_names.size()) * 24.0;
  merged.data = std::move(rows);
  return merged;
}

Result<QueryResponse> ShardedEngine::Execute(const Query& query) const {
  IDEVAL_ASSIGN_OR_RETURN(ShardPlan plan, Plan(query));
  std::vector<QueryResponse> partials;
  partials.reserve(plan.subtasks.size());
  for (const Subtask& task : plan.subtasks) {
    IDEVAL_ASSIGN_OR_RETURN(QueryResponse partial,
                            shard(task.shard)->Execute(task.query));
    partials.push_back(std::move(partial));
  }
  return Merge(query, plan, std::move(partials));
}

}  // namespace ideval
