#include "engine/engine.h"

#include <algorithm>
#include <unordered_map>

namespace ideval {

const char* EngineProfileToString(EngineProfile profile) {
  switch (profile) {
    case EngineProfile::kDiskRowStore:
      return "disk-row-store";
    case EngineProfile::kInMemoryColumnStore:
      return "in-memory-column-store";
  }
  return "unknown";
}

Engine::Engine(EngineOptions options) : options_(options) {
  if (options_.cost_model.has_value()) {
    cost_model_ = *options_.cost_model;
  } else if (options_.profile == EngineProfile::kDiskRowStore) {
    cost_model_ = CostModel::DiskRowStore();
  } else {
    cost_model_ = CostModel::InMemoryColumnStore();
  }
  if (options_.profile == EngineProfile::kDiskRowStore) {
    buffer_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  }
}

Status Engine::RegisterTable(TablePtr table) {
  if (table == nullptr) {
    return Status::InvalidArgument("RegisterTable: null table");
  }
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  if (options_.enable_zone_maps) {
    if (options_.zone_map_block_rows < 1) {
      return Status::InvalidArgument("zone_map_block_rows must be >= 1");
    }
    zone_maps_[name] = table->BuildZoneMaps(options_.zone_map_block_rows);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

const TableZoneMaps* Engine::ZoneMapsFor(const std::string& name) const {
  auto it = zone_maps_.find(name);
  return it != zone_maps_.end() ? &it->second : nullptr;
}

Result<TablePtr> Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' is not registered");
  }
  return it->second;
}

void Engine::ClearCaches() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (buffer_pool_ != nullptr) buffer_pool_->Clear();
  blocks_scanned_total_.store(0, std::memory_order_relaxed);
  blocks_pruned_total_.store(0, std::memory_order_relaxed);
}

void Engine::ChargePages(const Table& table, int64_t first_row,
                         int64_t tuples, QueryWorkStats* stats) const {
  if (buffer_pool_ == nullptr || tuples <= 0) return;
  const int64_t per_page = cost_model_.TuplesPerPage(table.AvgRowBytes());
  const int64_t first_page = first_row / per_page;
  const int64_t last_page = (first_row + tuples - 1) / per_page;
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (int64_t p = first_page; p <= last_page; ++p) {
    ++stats->pages_requested;
    if (!buffer_pool_->Access(PageId{table.name(), p})) {
      ++stats->pages_missed;
    }
  }
}

void Engine::FinalizeTimes(QueryResponse* response) const {
  response->execution_time = cost_model_.ExecutionTime(response->stats);
  response->post_aggregation_time =
      cost_model_.PostAggregationTime(response->stats);
}

Result<QueryResponse> Engine::Execute(const Query& query) const {
  Result<QueryResponse> r = [&] {
    if (const auto* s = std::get_if<SelectQuery>(&query)) {
      return ExecuteSelect(*s);
    }
    if (const auto* h = std::get_if<HistogramQuery>(&query)) {
      return ExecuteHistogram(*h);
    }
    return ExecuteJoinPage(std::get<JoinPageQuery>(query));
  }();
  if (r.ok()) RecordPruning(r->stats);
  return r;
}

Result<QueryResponse> Engine::ExecuteSelect(const SelectQuery& query) const {
  IDEVAL_ASSIGN_OR_RETURN(TablePtr table, GetTable(query.table));
  IDEVAL_ASSIGN_OR_RETURN(
      CompiledPredicates preds,
      CompiledPredicates::Compile(*table, query.predicates));

  // Resolve projection.
  std::vector<size_t> proj;
  RowSet rows;
  if (query.columns.empty()) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      proj.push_back(c);
      rows.column_names.push_back(table->schema().field(c).name);
    }
  } else {
    for (const auto& name : query.columns) {
      IDEVAL_ASSIGN_OR_RETURN(size_t idx, table->schema().FieldIndex(name));
      proj.push_back(idx);
      rows.column_names.push_back(name);
    }
  }

  QueryResponse response;
  QueryWorkStats& stats = response.stats;
  const int64_t n = static_cast<int64_t>(table->num_rows());
  const int64_t offset = std::max<int64_t>(0, query.offset);
  const int64_t limit = query.limit < 0 ? n : query.limit;

  // A LIMIT/OFFSET scan with no predicates visits offset+limit tuples
  // (how a row store without a positional index pages through results);
  // with predicates it must scan until `offset+limit` matches are found.
  // With zone maps the scan walks blocks and skips any block whose
  // min/max summary is disjoint from a range conjunct — skipped blocks
  // hold no matches, so LIMIT/OFFSET match order is unaffected. Without
  // zone maps the whole table is one block and the loop degrades to the
  // plain row scan with identical accounting.
  int64_t matched = 0;
  const double out_bytes_per_row =
      static_cast<double>(proj.size()) * 24.0;  // Rough wire width.
  const TableZoneMaps* zm = ZoneMapsFor(query.table);
  const bool prune =
      zm != nullptr && preds.has_range_predicates() && zm->num_blocks > 0;
  const int64_t block_rows = prune ? zm->block_rows : n;
  // Pages are charged per contiguous run of visited blocks, so a scan
  // that prunes nothing charges exactly the pages of the unpruned loop.
  int64_t run_begin = -1;
  auto flush_run = [&](int64_t run_end) {
    if (run_begin >= 0) {
      ChargePages(*table, run_begin, run_end - run_begin, &stats);
    }
    run_begin = -1;
  };
  // LIMIT 0 is a shape probe: no rows, no scan.
  bool done = limit <= 0;
  for (int64_t begin = 0; begin < n && !done; begin += block_rows) {
    const int64_t end = std::min(n, begin + block_rows);
    if (prune &&
        !preds.MayMatchBlock(*zm, static_cast<size_t>(begin / block_rows))) {
      ++stats.blocks_pruned;
      flush_run(begin);
      continue;
    }
    if (prune) ++stats.blocks_scanned;
    if (run_begin < 0) run_begin = begin;
    int64_t row = begin;
    for (; row < end; ++row) {
      ++stats.tuples_scanned;
      stats.predicates_evaluated +=
          static_cast<int64_t>(preds.num_predicates());
      if (!preds.Matches(*table, static_cast<size_t>(row))) continue;
      ++matched;
      if (matched <= offset) continue;
      std::vector<Value> out;
      out.reserve(proj.size());
      for (size_t c : proj) {
        out.push_back(table->At(static_cast<size_t>(row), c));
      }
      rows.rows.push_back(std::move(out));
      if (static_cast<int64_t>(rows.rows.size()) >= limit) {
        ++row;
        done = true;
        break;
      }
    }
    if (done) flush_run(row);
  }
  if (!done) flush_run(n);
  stats.tuples_matched = matched;
  stats.rows_output = static_cast<int64_t>(rows.rows.size());
  stats.bytes_output = out_bytes_per_row * static_cast<double>(
                                               stats.rows_output);
  response.data = std::move(rows);
  FinalizeTimes(&response);
  return response;
}

Result<QueryResponse> Engine::ExecuteHistogram(
    const HistogramQuery& query) const {
  IDEVAL_ASSIGN_OR_RETURN(TablePtr table, GetTable(query.table));
  IDEVAL_ASSIGN_OR_RETURN(
      CompiledPredicates preds,
      CompiledPredicates::Compile(*table, query.predicates));
  IDEVAL_ASSIGN_OR_RETURN(const Column* bin_col,
                          table->ColumnByName(query.bin_column));
  if (bin_col->type() == DataType::kString) {
    return Status::InvalidArgument("histogram over string column '" +
                                   query.bin_column + "'");
  }
  if (query.bins <= 0) {
    return Status::InvalidArgument("histogram bins must be > 0");
  }
  IDEVAL_ASSIGN_OR_RETURN(
      FixedHistogram hist,
      FixedHistogram::Make(query.bin_lo, query.bin_hi,
                           static_cast<size_t>(query.bins)));

  QueryResponse response;
  QueryWorkStats& stats = response.stats;
  const int64_t n = static_cast<int64_t>(table->num_rows());
  const bool is_int = bin_col->type() == DataType::kInt64;
  // Hot loop: borrow raw column storage once (immutable table). Zone maps
  // skip whole blocks whose min/max range is disjoint from a range
  // conjunct — those rows cannot match, so the histogram is bitwise
  // identical to the full scan; only the work (and modelled time) drops.
  const int64_t* int_vals = is_int ? bin_col->int64_data().data() : nullptr;
  const double* dbl_vals = is_int ? nullptr : bin_col->double_data().data();
  const TableZoneMaps* zm = ZoneMapsFor(query.table);
  const bool prune =
      zm != nullptr && preds.has_range_predicates() && zm->num_blocks > 0;
  const int64_t block_rows = prune ? zm->block_rows : n;
  int64_t matched = 0;
  int64_t scanned = 0;
  int64_t run_begin = -1;
  auto flush_run = [&](int64_t run_end) {
    if (run_begin >= 0) {
      ChargePages(*table, run_begin, run_end - run_begin, &stats);
    }
    run_begin = -1;
  };
  for (int64_t begin = 0; begin < n; begin += block_rows) {
    const int64_t end = std::min(n, begin + block_rows);
    if (prune &&
        !preds.MayMatchBlock(*zm, static_cast<size_t>(begin / block_rows))) {
      ++stats.blocks_pruned;
      flush_run(begin);
      continue;
    }
    if (prune) ++stats.blocks_scanned;
    if (run_begin < 0) run_begin = begin;
    for (int64_t row = begin; row < end; ++row) {
      if (!preds.Matches(static_cast<size_t>(row))) continue;
      ++matched;
      const double v = is_int ? static_cast<double>(int_vals[row])
                              : dbl_vals[row];
      hist.Add(v);
    }
    scanned += end - begin;
  }
  flush_run(n);
  stats.tuples_matched = matched;
  stats.tuples_scanned = scanned;
  stats.predicates_evaluated =
      scanned * static_cast<int64_t>(preds.num_predicates());
  stats.groups_built = static_cast<int64_t>(hist.num_bins());
  stats.rows_output = static_cast<int64_t>(hist.num_bins());
  stats.bytes_output = static_cast<double>(hist.num_bins()) * 16.0;
  response.data = std::move(hist);
  FinalizeTimes(&response);
  return response;
}

Result<QueryResponse> Engine::ExecuteJoinPage(
    const JoinPageQuery& query) const {
  IDEVAL_ASSIGN_OR_RETURN(TablePtr left, GetTable(query.left_table));
  IDEVAL_ASSIGN_OR_RETURN(TablePtr right, GetTable(query.right_table));
  IDEVAL_ASSIGN_OR_RETURN(size_t left_key,
                          left->schema().FieldIndex(query.join_column));
  IDEVAL_ASSIGN_OR_RETURN(size_t right_key,
                          right->schema().FieldIndex(query.join_column));
  if (left->schema().field(left_key).type != DataType::kInt64 ||
      right->schema().field(right_key).type != DataType::kInt64) {
    return Status::InvalidArgument("join key must be int64 in both tables");
  }
  if (query.limit < 0 || query.offset < 0) {
    return Status::InvalidArgument("join page limit/offset must be >= 0");
  }

  QueryResponse response;
  QueryWorkStats& stats = response.stats;

  // Page of the left side.
  const int64_t n_left = static_cast<int64_t>(left->num_rows());
  const int64_t begin = std::min(query.offset, n_left);
  const int64_t end = std::min(query.offset + query.limit, n_left);
  stats.tuples_scanned += end > 0 ? end : 0;  // Scan-to-offset cost.
  ChargePages(*left, 0, end, &stats);

  // Build a hash table over the page keys (small side), then probe the
  // right table sequentially — the streaming-join shape of §6's Q2.
  std::unordered_map<int64_t, size_t> page_keys;
  page_keys.reserve(static_cast<size_t>(end - begin));
  const auto& left_keys = left->column(left_key).int64_data();
  for (int64_t r = begin; r < end; ++r) {
    page_keys.emplace(left_keys[static_cast<size_t>(r)],
                      static_cast<size_t>(r));
  }
  stats.hash_build_rows = end - begin;

  RowSet rows;
  for (size_t c = 0; c < left->num_columns(); ++c) {
    rows.column_names.push_back(left->schema().field(c).name);
  }
  for (size_t c = 0; c < right->num_columns(); ++c) {
    if (c == right_key) continue;  // Key appears once.
    rows.column_names.push_back(right->schema().field(c).name);
  }

  const auto& right_keys = right->column(right_key).int64_data();
  const size_t n_right = right->num_rows();
  std::vector<std::pair<size_t, size_t>> matches;  // (left row, right row).
  for (size_t r = 0; r < n_right; ++r) {
    ++stats.hash_probe_rows;
    auto it = page_keys.find(right_keys[r]);
    if (it != page_keys.end()) matches.emplace_back(it->second, r);
  }
  stats.tuples_scanned += static_cast<int64_t>(n_right);
  ChargePages(*right, 0, static_cast<int64_t>(n_right), &stats);

  // Keep left (display) order.
  std::sort(matches.begin(), matches.end());
  for (const auto& [lr, rr] : matches) {
    std::vector<Value> out;
    out.reserve(rows.column_names.size());
    for (size_t c = 0; c < left->num_columns(); ++c) out.push_back(left->At(lr, c));
    for (size_t c = 0; c < right->num_columns(); ++c) {
      if (c == right_key) continue;
      out.push_back(right->At(rr, c));
    }
    rows.rows.push_back(std::move(out));
  }
  stats.tuples_matched = static_cast<int64_t>(rows.rows.size());
  stats.rows_output = static_cast<int64_t>(rows.rows.size());
  stats.bytes_output =
      static_cast<double>(rows.rows.size() * rows.column_names.size()) * 24.0;
  response.data = std::move(rows);
  FinalizeTimes(&response);
  return response;
}

}  // namespace ideval
