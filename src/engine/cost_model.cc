#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ideval {

CostModel CostModel::DiskRowStore() {
  CostModel m;
  m.query_startup = Duration::Micros(1500);
  m.scan_per_tuple_us = 0.45;
  m.eval_per_predicate_us = 0.08;
  m.group_per_tuple_us = 0.15;
  m.group_finalize_us = 5.0;
  m.join_build_per_row_us = 0.5;
  m.join_probe_per_row_us = 0.4;
  m.output_per_row_us = 2.0;
  m.page_miss_cost = Duration::Micros(150);
  m.page_hit_cost = Duration::Micros(1);
  return m;
}

CostModel CostModel::InMemoryColumnStore() {
  CostModel m;
  m.query_startup = Duration::Micros(200);
  m.scan_per_tuple_us = 0.01;
  m.eval_per_predicate_us = 0.006;
  m.group_per_tuple_us = 0.008;
  m.group_finalize_us = 1.0;
  m.join_build_per_row_us = 0.1;
  m.join_probe_per_row_us = 0.08;
  m.output_per_row_us = 0.5;
  // In-memory engine never touches the buffer pool; page costs unused.
  return m;
}

Duration CostModel::ExecutionTime(const QueryWorkStats& stats) const {
  double us = 0.0;
  us += scan_per_tuple_us * static_cast<double>(stats.tuples_scanned);
  us += eval_per_predicate_us *
        static_cast<double>(stats.predicates_evaluated);
  us += group_per_tuple_us * static_cast<double>(stats.tuples_matched) *
        (stats.groups_built > 0 ? 1.0 : 0.0);
  us += join_build_per_row_us * static_cast<double>(stats.hash_build_rows);
  us += join_probe_per_row_us * static_cast<double>(stats.hash_probe_rows);
  Duration t = query_startup + Duration::Micros(static_cast<int64_t>(us));
  const int64_t hits = stats.pages_requested - stats.pages_missed;
  t += page_miss_cost * static_cast<double>(stats.pages_missed);
  t += page_hit_cost * static_cast<double>(hits > 0 ? hits : 0);
  return t;
}

Duration CostModel::PostAggregationTime(const QueryWorkStats& stats) const {
  double us = group_finalize_us * static_cast<double>(stats.groups_built);
  us += output_per_row_us * static_cast<double>(stats.rows_output);
  return Duration::Micros(static_cast<int64_t>(us));
}

Duration CostModel::NetworkTime(const QueryWorkStats& stats) const {
  const double transfer_us =
      network_bytes_per_us > 0.0 ? stats.bytes_output / network_bytes_per_us
                                 : 0.0;
  return network_request +
         Duration::Micros(static_cast<int64_t>(transfer_us));
}

Duration CostModel::RenderTime(const QueryWorkStats& stats) const {
  double us = 0.0;
  if (stats.groups_built > 0) {
    us += render_per_bin_us * static_cast<double>(stats.groups_built);
  } else {
    us += render_per_row_us * static_cast<double>(stats.rows_output);
  }
  return Duration::Micros(static_cast<int64_t>(us));
}

int64_t CostModel::TuplesPerPage(double avg_row_bytes) const {
  const double usable = page_size_bytes * page_fill_factor;
  const double per_row = std::max(avg_row_bytes, 1.0);
  return std::max<int64_t>(1, static_cast<int64_t>(usable / per_row));
}

}  // namespace ideval
