#ifndef IDEVAL_ENGINE_SHARDED_ENGINE_H_
#define IDEVAL_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "storage/table.h"

namespace ideval {

/// Construction options for `ShardedEngine`.
struct ShardedEngineOptions {
  /// Independent `Engine` instances the data is spread over. 1 is a
  /// degenerate but valid configuration (everything routes to one shard).
  int num_shards = 2;
  /// Per-shard engine configuration (profile, buffer pool, cost model).
  EngineOptions engine_options;
};

/// Horizontal scale-out over K independent single-node `Engine`s.
///
/// The paper's Fig. 3 guideline — keep query issuing frequency under
/// backend capacity — caps at a single engine's knee. `ShardedEngine`
/// pushes the knee out by *range-partitioning* each large table into K
/// contiguous row chunks, one per shard, so that one interactive query
/// fans out into K partial queries that scan 1/K of the data each. Range
/// (rather than hash) partitioning preserves global row order, which is
/// what makes LIMIT/OFFSET pagination and display-ordered joins merge
/// *exactly* (see below); for the scan-everything histogram workload the
/// two schemes do the same work.
///
/// The class deliberately separates planning, execution, and merging:
///
///   1. `Plan` rewrites one client query into per-shard subtasks
///      (adjusting LIMIT/OFFSET to each shard's chunk);
///   2. the caller executes each subtask on its shard — serially via
///      `Execute`, or concurrently on its own workers (the `QueryServer`
///      scatter stage does this);
///   3. `Merge` combines the partial `QueryResponse`s into one response
///      that is indistinguishable from an unsharded execution.
///
/// Merge semantics per query type:
///  - `HistogramQuery`: partial histograms share bin edges; merged bin
///    counts are the sums — COUNT/SUM/MIN/MAX-style aggregates merge
///    exactly (bitwise, for counts below 2^53). Derived order statistics
///    (e.g. quantiles read off the merged histogram via
///    `HistogramQuantile`) are exact to within one bin width — the
///    "bucketed summary" route to mergeable percentiles.
///  - `SelectQuery`: each shard returns its first `offset+limit` matches;
///    concatenating in shard order reproduces the global match order, so
///    dropping `offset` rows and keeping `limit` is exact.
///  - `JoinPageQuery`: the positional left page is split across the shards
///    whose chunks overlap it; the probe side must be *replicated*
///    (registered in full on every shard) so no cross-shard match is
///    lost. Exact when the page's join keys are unique (the §6 Q2 id-join
///    shape): the single-node engine dedups repeated page keys globally,
///    which a split page can only do per shard.
///
/// Modelled time: partials execute in parallel, so the merged
/// `execution_time` is the max over partials; the merge itself is charged
/// to `post_aggregation_time` in proportion to the cells touched.
///
/// Thread safety: once all tables are registered, `Plan`, `Merge`, and
/// `Execute` are safe for any number of concurrent callers (shard
/// engines are used read-only; the round-robin cursor is atomic).
/// `PartitionTable` / `ReplicateTable` must not race with queries.
class ShardedEngine {
 public:
  /// Validates `options` and creates the (empty) shard engines.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      ShardedEngineOptions options);

  /// Splits `table` into `num_shards` contiguous row chunks and registers
  /// one chunk per shard under the table's own name. Chunk sizes differ by
  /// at most one row. Errors on duplicates or empty tables.
  Status PartitionTable(const TablePtr& table);

  /// Registers the full `table` on every shard (no copy — shards share the
  /// immutable table). Required for tables that serve as a join probe
  /// side; also the right choice for small dimension tables.
  Status ReplicateTable(const TablePtr& table);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Borrows shard `i`'s engine. Requires 0 <= i < num_shards().
  const Engine* shard(int i) const { return shards_[static_cast<size_t>(i)].get(); }

  /// Zone-map pruning totals summed over every shard (per-query pruning
  /// stats already merge through `QueryWorkStats::operator+=` in `Merge`;
  /// this is the engine-lifetime aggregate for benches and reports).
  ScanPruneTotals PruneTotals() const {
    ScanPruneTotals totals;
    for (const auto& s : shards_) {
      const ScanPruneTotals t = s->PruneTotals();
      totals.blocks_scanned += t.blocks_scanned;
      totals.blocks_pruned += t.blocks_pruned;
    }
    return totals;
  }

  /// One per-shard partial query of a scatter plan.
  struct Subtask {
    int shard = 0;
    Query query;
  };

  /// The scatter plan for one client query: which shards run what.
  /// Subtasks are ordered by shard index; `Merge` relies on that order.
  struct ShardPlan {
    std::vector<Subtask> subtasks;
  };

  /// Rewrites `query` into per-shard subtasks. Errors on unknown tables
  /// and on joins whose probe side is partitioned (replicate it instead).
  Result<ShardPlan> Plan(const Query& query) const;

  /// Combines partial responses (one per `plan` subtask, same order) into
  /// the response an unsharded engine would have produced.
  Result<QueryResponse> Merge(const Query& query, const ShardPlan& plan,
                              std::vector<QueryResponse> partials) const;

  /// Convenience: `Plan`, execute every subtask serially on its shard,
  /// `Merge`. The reference path for correctness tests; concurrent callers
  /// are fine.
  Result<QueryResponse> Execute(const Query& query) const;

 private:
  /// Where a registered table lives.
  struct TableInfo {
    bool partitioned = false;
    /// Global first row of each shard's chunk plus a trailing total;
    /// size num_shards+1. Empty for replicated tables.
    std::vector<int64_t> bounds;
  };

  explicit ShardedEngine(ShardedEngineOptions options);

  const TableInfo* FindTable(const std::string& name) const;

  /// Shard index for single-shard routing (replicated-only queries),
  /// rotated for balance.
  int NextRoundRobinShard() const;

  Result<ShardPlan> PlanSelect(const SelectQuery& query) const;
  Result<ShardPlan> PlanHistogram(const HistogramQuery& query) const;
  Result<ShardPlan> PlanJoinPage(const JoinPageQuery& query) const;

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::map<std::string, TableInfo> tables_;
  mutable std::atomic<uint32_t> rr_cursor_{0};
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_SHARDED_ENGINE_H_
