#include "engine/progressive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "engine/predicate.h"

namespace ideval {

Result<double> HistogramMse(const FixedHistogram& estimate,
                            const FixedHistogram& exact) {
  if (estimate.num_bins() != exact.num_bins()) {
    return Status::InvalidArgument(
        "MSE requires histograms with equal bin counts");
  }
  const std::vector<double> p = estimate.Normalized();
  const std::vector<double> q = exact.Normalized();
  double mse = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    mse += (p[i] - q[i]) * (p[i] - q[i]);
  }
  return mse / static_cast<double>(p.size());
}

double ScoredAccuracy(double mse, Duration wait, Duration half_life) {
  const double error_term = std::exp(-mse);
  const double hl = std::max(1e-9, half_life.seconds());
  const double time_term = std::exp(-std::max(0.0, wait.seconds()) / hl);
  return error_term * time_term;
}

Result<std::vector<ProgressiveStep>> RunProgressiveHistogram(
    const TablePtr& table, const HistogramQuery& query,
    const ProgressiveOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("RunProgressiveHistogram: null table");
  }
  if (query.bins <= 0) {
    return Status::InvalidArgument("histogram bins must be > 0");
  }
  std::vector<double> fractions = options.fractions;
  for (size_t i = 0; i < fractions.size(); ++i) {
    if (fractions[i] <= 0.0 || fractions[i] > 1.0) {
      return Status::InvalidArgument("fractions must lie in (0, 1]");
    }
    if (i > 0 && fractions[i] <= fractions[i - 1]) {
      return Status::InvalidArgument("fractions must be increasing");
    }
  }
  if (fractions.empty() || fractions.back() < 1.0) {
    fractions.push_back(1.0);
  }

  IDEVAL_ASSIGN_OR_RETURN(
      CompiledPredicates preds,
      CompiledPredicates::Compile(*table, query.predicates));
  IDEVAL_ASSIGN_OR_RETURN(const Column* bin_col,
                          table->ColumnByName(query.bin_column));
  if (bin_col->type() == DataType::kString) {
    return Status::InvalidArgument("histogram over string column");
  }
  IDEVAL_ASSIGN_OR_RETURN(
      FixedHistogram running,
      FixedHistogram::Make(query.bin_lo, query.bin_hi,
                           static_cast<size_t>(query.bins)));

  const size_t n = table->num_rows();
  const bool is_int = bin_col->type() == DataType::kInt64;
  const int64_t* int_vals = is_int ? bin_col->int64_data().data() : nullptr;
  const double* dbl_vals = is_int ? nullptr : bin_col->double_data().data();

  // Visit rows in a fixed coprime-stride permutation: each prefix of the
  // visit order is a near-uniform sample of the table, which is what makes
  // the early estimates unbiased.
  const size_t stride = [&] {
    size_t s = (n / 2) | 1;  // Odd, near n/2.
    while (std::gcd(s, n) != 1) s += 2;
    return s;
  }();

  std::vector<ProgressiveStep> steps;
  steps.reserve(fractions.size());
  size_t visited = 0;
  size_t cursor = 0;
  Duration elapsed;
  QueryWorkStats cumulative;
  for (double fraction : fractions) {
    const size_t target =
        std::min(n, static_cast<size_t>(std::ceil(fraction *
                                                  static_cast<double>(n))));
    QueryWorkStats step_stats;
    while (visited < target) {
      if (preds.Matches(cursor)) {
        const double v = is_int ? static_cast<double>(int_vals[cursor])
                                : dbl_vals[cursor];
        running.Add(v);
        ++step_stats.tuples_matched;
      }
      ++step_stats.tuples_scanned;
      cursor = (cursor + stride) % n;
      ++visited;
    }
    step_stats.predicates_evaluated =
        step_stats.tuples_scanned *
        static_cast<int64_t>(preds.num_predicates());
    step_stats.groups_built = static_cast<int64_t>(running.num_bins());
    elapsed += options.cost_model.ExecutionTime(step_stats) +
               options.cost_model.PostAggregationTime(step_stats);
    cumulative += step_stats;

    ProgressiveStep step;
    step.fraction = fraction;
    step.estimate = running;
    step.available_at = elapsed;
    steps.push_back(std::move(step));
  }

  // Fill in accuracy against the exact (final) histogram.
  const FixedHistogram& exact = steps.back().estimate;
  for (auto& step : steps) {
    IDEVAL_ASSIGN_OR_RETURN(step.mse_vs_exact,
                            HistogramMse(step.estimate, exact));
  }
  return steps;
}

}  // namespace ideval
