#ifndef IDEVAL_ENGINE_PROGRESSIVE_H_
#define IDEVAL_ENGINE_PROGRESSIVE_H_

#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "storage/table.h"

namespace ideval {

/// One refinement step of a progressive (online-aggregation style) query.
struct ProgressiveStep {
  /// Fraction of the table consumed so far (cumulative).
  double fraction = 0.0;
  /// Histogram estimate from the sample seen so far.
  FixedHistogram estimate{*FixedHistogram::Make(0.0, 1.0, 1)};
  /// Modelled time at which this estimate becomes available (cumulative).
  Duration available_at;
  /// Mean squared error of the normalized estimate against the exact
  /// normalized result — the accuracy metric Incvisage-style evaluations
  /// report per iteration (§3.2.2).
  double mse_vs_exact = 0.0;
};

/// Options for progressive execution.
struct ProgressiveOptions {
  /// Cumulative sample fractions at which estimates are emitted; must be
  /// increasing in (0, 1]. The default doubles the sample per step, the
  /// usual online-aggregation schedule.
  std::vector<double> fractions = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
  /// Cost model pricing each step's incremental scan.
  CostModel cost_model = CostModel::InMemoryColumnStore();
};

/// Executes `query` progressively over `table`: rows are consumed in a
/// shuffled-stride order (so every prefix is an unbiased sample) and an
/// estimate is emitted at each requested fraction, priced by the cost
/// model. This implements the old-contract inversion §3.2.2 describes:
/// strict latency, approximate answers whose accuracy improves over time.
///
/// The final step is always the exact answer (fraction 1.0 is appended if
/// missing), so callers can treat the last element as ground truth.
Result<std::vector<ProgressiveStep>> RunProgressiveHistogram(
    const TablePtr& table, const HistogramQuery& query,
    const ProgressiveOptions& options);

/// Mean squared error between two histograms' normalized distributions.
/// Errors if the bin counts differ.
Result<double> HistogramMse(const FixedHistogram& estimate,
                            const FixedHistogram& exact);

/// Incvisage-style *scored accuracy*: the error of the answer the user
/// accepted, weighted by how long they waited for it — earlier good
/// answers score higher. Returns exp(-error) * exp(-wait / half_life),
/// in (0, 1].
double ScoredAccuracy(double mse, Duration wait, Duration half_life);

}  // namespace ideval

#endif  // IDEVAL_ENGINE_PROGRESSIVE_H_
