#ifndef IDEVAL_ENGINE_COST_MODEL_H_
#define IDEVAL_ENGINE_COST_MODEL_H_

#include "common/sim_time.h"
#include "engine/query.h"

namespace ideval {

/// Converts execution work counters into deterministic simulated time.
///
/// The paper compares a disk-based row store (PostgreSQL) against an
/// in-memory column store (MemSQL) on an i5-4590. We reproduce the two
/// *regimes* — hundreds of milliseconds vs tens of milliseconds for the
/// 434k-tuple crossfilter histogram — with a calibrated linear cost model
/// over the counters the executor actually produced. Using modelled rather
/// than wall-clock time keeps every experiment bit-reproducible and
/// hardware-independent (see DESIGN.md substitution table).
///
/// Calibration anchors (crossfilter histogram over 434,874 tuples with
/// three range predicates):
///   - Disk profile  : ~330 ms  (paper: violated queries 150–500 ms)
///   - Memory profile: ~25 ms   (paper: 10–50 ms)
struct CostModel {
  /// Fixed per-query startup (parse, plan, admission).
  Duration query_startup = Duration::Micros(200);

  /// Scan cost per tuple visited (tuple deform, visibility checks).
  double scan_per_tuple_us = 0.02;

  /// Additional cost per predicate evaluation.
  double eval_per_predicate_us = 0.01;

  /// Aggregation cost per matched tuple entering the hash/group table.
  double group_per_tuple_us = 0.01;

  /// Finalization cost per output group/bin.
  double group_finalize_us = 1.0;

  /// Hash-join build / probe costs per row.
  double join_build_per_row_us = 0.1;
  double join_probe_per_row_us = 0.08;

  /// Output materialization cost per result row.
  double output_per_row_us = 0.5;

  /// Disk page layout and I/O. `page_size_bytes / avg_row_bytes` rows fit
  /// per page; only the disk profile requests pages.
  double page_size_bytes = 8192.0;
  double page_fill_factor = 0.9;
  Duration page_miss_cost = Duration::Micros(150);  ///< Physical read.
  Duration page_hit_cost = Duration::Micros(1);     ///< Buffer-pool hit.

  /// Client-server hop: fixed request latency plus response transfer.
  Duration network_request = Duration::Micros(150);
  double network_bytes_per_us = 100.0;  ///< ~100 MB/s link.

  /// Frontend rendering cost per output row (DOM node build: §6's movie
  /// cards with posters) and per histogram bin (SVG bars, §7).
  double render_per_row_us = 600.0;
  double render_per_bin_us = 40.0;

  /// PostgreSQL-like profile: interpreted row store, buffer-pool pages,
  /// milliseconds-scale planning.
  static CostModel DiskRowStore();

  /// MemSQL-like profile: compiled vectorized column scans, no paging.
  static CostModel InMemoryColumnStore();

  /// Execution time for the given work counters (scan + eval + aggregation
  /// + join + paging), excluding network and rendering.
  Duration ExecutionTime(const QueryWorkStats& stats) const;

  /// Post-aggregation time: group finalize + output materialization
  /// (ranking/binning/summarizing before presentation, §3.1.1).
  Duration PostAggregationTime(const QueryWorkStats& stats) const;

  /// Round-trip network time for the result size in `stats`.
  Duration NetworkTime(const QueryWorkStats& stats) const;

  /// Frontend rendering time for the result shape in `stats`.
  Duration RenderTime(const QueryWorkStats& stats) const;

  /// Rows per disk page for a table whose rows average `avg_row_bytes`.
  int64_t TuplesPerPage(double avg_row_bytes) const;
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_COST_MODEL_H_
