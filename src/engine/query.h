#ifndef IDEVAL_ENGINE_QUERY_H_
#define IDEVAL_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.h"
#include "engine/predicate.h"
#include "storage/value.h"

namespace ideval {

/// §6's Q1: `SELECT <columns> FROM <table> [WHERE ...] LIMIT n OFFSET m`.
///
/// The table is assumed pre-sorted in display order (the movie list is
/// "top rated"), so LIMIT/OFFSET is positional — exactly the lazy-loading
/// access pattern of scrolling interfaces.
struct SelectQuery {
  std::string table;
  std::vector<std::string> columns;  ///< Empty = all columns.
  std::vector<Predicate> predicates;
  int64_t limit = -1;   ///< -1 = no limit.
  int64_t offset = 0;

  bool operator==(const SelectQuery&) const = default;
};

/// §7's crossfilter query: a filtered 20-bin COUNT histogram over one
/// attribute, i.e.
///
///     SELECT ROUND((y - lo) / ((hi - lo) / bins)), COUNT(*)
///     FROM dataroad WHERE <ranges on x, y, z> GROUP BY 1 ORDER BY 1
struct HistogramQuery {
  std::string table;
  std::string bin_column;
  double bin_lo = 0.0;
  double bin_hi = 1.0;
  int64_t bins = 20;
  std::vector<Predicate> predicates;

  bool operator==(const HistogramQuery&) const = default;
};

/// §6's Q2: streaming-style join of a LIMIT/OFFSET page of the left table
/// to the right table on an equality key:
///
///     SELECT ... FROM (SELECT id, rating FROM imdbrating
///                      LIMIT n OFFSET m) tmp
///     INNER JOIN movie ON tmp.id = movie.id
struct JoinPageQuery {
  std::string left_table;   ///< Paged side (e.g. "imdbrating").
  std::string right_table;  ///< Probe side (e.g. "movie").
  std::string join_column;  ///< Key present in both tables.
  int64_t limit = 100;
  int64_t offset = 0;

  bool operator==(const JoinPageQuery&) const = default;
};

/// Any query the engines accept.
using Query = std::variant<SelectQuery, HistogramQuery, JoinPageQuery>;

/// Renders a query as SQL-ish text for logs and traces.
std::string QueryToString(const Query& query);

/// Materialized rows (row-major) for select/join queries.
struct RowSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;

  bool operator==(const RowSet&) const = default;
};

/// Result payload: rows or a histogram.
using QueryResultData = std::variant<RowSet, FixedHistogram>;

/// Work counters accumulated during execution; input to the cost model and
/// the backend-centric metrics of §3.1.1.
struct QueryWorkStats {
  int64_t tuples_scanned = 0;   ///< Tuples the scan visited.
  int64_t tuples_matched = 0;   ///< Tuples surviving all predicates.
  int64_t predicates_evaluated = 0;
  /// Zone-map accounting (zero unless the engine scanned with zone maps):
  /// blocks the scan visited vs. blocks skipped because their min/max
  /// range cannot satisfy a range predicate. Pruned blocks contribute
  /// nothing to `tuples_scanned` or the page counters, which is how the
  /// cost model charges only visited blocks.
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  int64_t pages_requested = 0;  ///< Disk-profile page lookups.
  int64_t pages_missed = 0;     ///< Buffer-pool misses (physical reads).
  int64_t groups_built = 0;     ///< Histogram bins touched.
  int64_t hash_build_rows = 0;  ///< Join build-side size.
  int64_t hash_probe_rows = 0;  ///< Join probe count.
  int64_t rows_output = 0;
  double bytes_output = 0.0;

  QueryWorkStats& operator+=(const QueryWorkStats& o);
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_QUERY_H_
