#ifndef IDEVAL_ENGINE_PREDICATE_H_
#define IDEVAL_ENGINE_PREDICATE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace ideval {

/// Inclusive numeric range filter `lo <= column <= hi` — the predicate form
/// every slider, map viewport edge, and zoom level compiles to (§2.1: "one
/// zoom action triggers two predicate changes in the WHERE clause").
struct RangePredicate {
  std::string column;
  double lo = 0.0;
  double hi = 0.0;

  bool operator==(const RangePredicate&) const = default;
};

/// Equality filter on a string column (check boxes, room-type facets).
struct StringEqPredicate {
  std::string column;
  std::string value;

  bool operator==(const StringEqPredicate&) const = default;
};

/// Set-membership filter on a string column (`column IN (v1, v2, ...)`):
/// what multi-select facet check boxes compile to.
struct StringInPredicate {
  std::string column;
  std::vector<std::string> values;

  bool operator==(const StringInPredicate&) const = default;
};

/// One WHERE-clause conjunct.
using Predicate =
    std::variant<RangePredicate, StringEqPredicate, StringInPredicate>;

/// Returns the column a predicate filters on.
const std::string& PredicateColumn(const Predicate& predicate);

/// Renders a predicate as SQL-ish text ("x >= 8.146 AND x <= 11.26").
std::string PredicateToString(const Predicate& predicate);

/// A conjunction of predicates compiled against a table: resolves column
/// names to raw column storage once, then evaluates row-at-a-time with no
/// per-row lookups or variant dispatch (this is the hot path of every
/// scan; the experiment benches execute tens of thousands of full-table
/// scans).
///
/// The compiled object borrows the table's column storage: the table must
/// outlive it and must not be mutated while it is in use (tables are
/// immutable after build, so this holds by construction).
class CompiledPredicates {
 public:
  /// Compiles `predicates` against `table`'s schema. Errors if a column is
  /// missing or a range predicate targets a string column.
  static Result<CompiledPredicates> Compile(
      const Table& table, const std::vector<Predicate>& predicates);

  /// True if row `row` satisfies every conjunct.
  bool Matches(size_t row) const {
    for (const auto& r : ranges_) {
      const double v = r.int64_data != nullptr
                           ? static_cast<double>(r.int64_data[row])
                           : r.double_data[row];
      if (v < r.lo || v > r.hi) return false;
    }
    for (const auto& eq : string_eqs_) {
      if ((*eq.data)[row] != eq.value) return false;
    }
    for (const auto& in : string_ins_) {
      const std::string& cell = (*in.data)[row];
      bool found = false;
      for (const auto& v : in.values) {
        if (cell == v) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// Back-compat overload; `table` must be the table compiled against.
  bool Matches(const Table& table, size_t row) const {
    (void)table;
    return Matches(row);
  }

  size_t num_predicates() const {
    return ranges_.size() + string_eqs_.size() + string_ins_.size();
  }

  /// True iff at least one conjunct is a numeric range — the only kind
  /// zone maps can prune on.
  bool has_range_predicates() const { return !ranges_.empty(); }

  /// Zone-map block test: false iff some range conjunct's [lo, hi] is
  /// disjoint from block `block`'s min/max summary in `zone_maps`, i.e.
  /// no row of the block can match and the scan may skip it outright.
  /// `zone_maps` must summarize the table this was compiled against.
  bool MayMatchBlock(const TableZoneMaps& zone_maps, size_t block) const {
    for (const auto& r : ranges_) {
      const ColumnZoneMap& zm = zone_maps.columns[r.column];
      if (zm.min.empty()) continue;  // No summary for this column.
      if (zm.min[block] > r.hi || zm.max[block] < r.lo) return false;
    }
    return true;
  }

 private:
  struct CompiledRange {
    const int64_t* int64_data = nullptr;  ///< Set iff column is int64.
    const double* double_data = nullptr;  ///< Set iff column is double.
    double lo = 0.0, hi = 0.0;
    size_t column = 0;  ///< Column index, for zone-map lookups.
  };
  struct CompiledStringEq {
    const std::vector<std::string>* data = nullptr;
    std::string value;
  };
  struct CompiledStringIn {
    const std::vector<std::string>* data = nullptr;
    std::vector<std::string> values;
  };

  std::vector<CompiledRange> ranges_;
  std::vector<CompiledStringEq> string_eqs_;
  std::vector<CompiledStringIn> string_ins_;
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_PREDICATE_H_
