#include "engine/query.h"

#include "common/text_table.h"

namespace ideval {

namespace {

std::string PredicatesToString(const std::vector<Predicate>& predicates) {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i) out += " AND ";
    out += PredicateToString(predicates[i]);
  }
  return out;
}

}  // namespace

std::string QueryToString(const Query& query) {
  if (const auto* s = std::get_if<SelectQuery>(&query)) {
    std::string cols = "*";
    if (!s->columns.empty()) {
      cols.clear();
      for (size_t i = 0; i < s->columns.size(); ++i) {
        if (i) cols += ", ";
        cols += s->columns[i];
      }
    }
    std::string out =
        StrFormat("SELECT %s FROM %s", cols.c_str(), s->table.c_str());
    if (!s->predicates.empty()) {
      out += " WHERE " + PredicatesToString(s->predicates);
    }
    if (s->limit >= 0) {
      out += StrFormat(" LIMIT %lld", static_cast<long long>(s->limit));
    }
    if (s->offset > 0) {
      out += StrFormat(" OFFSET %lld", static_cast<long long>(s->offset));
    }
    return out;
  }
  if (const auto* h = std::get_if<HistogramQuery>(&query)) {
    std::string out = StrFormat(
        "SELECT ROUND((%s - %g) / ((%g - %g) / %lld)), COUNT(*) FROM %s",
        h->bin_column.c_str(), h->bin_lo, h->bin_hi, h->bin_lo,
        static_cast<long long>(h->bins), h->table.c_str());
    if (!h->predicates.empty()) {
      out += " WHERE " + PredicatesToString(h->predicates);
    }
    out += " GROUP BY 1 ORDER BY 1";
    return out;
  }
  const auto& j = std::get<JoinPageQuery>(query);
  return StrFormat(
      "SELECT * FROM (SELECT * FROM %s LIMIT %lld OFFSET %lld) tmp "
      "INNER JOIN %s ON tmp.%s = %s.%s",
      j.left_table.c_str(), static_cast<long long>(j.limit),
      static_cast<long long>(j.offset), j.right_table.c_str(),
      j.join_column.c_str(), j.right_table.c_str(), j.join_column.c_str());
}

QueryWorkStats& QueryWorkStats::operator+=(const QueryWorkStats& o) {
  tuples_scanned += o.tuples_scanned;
  tuples_matched += o.tuples_matched;
  predicates_evaluated += o.predicates_evaluated;
  blocks_scanned += o.blocks_scanned;
  blocks_pruned += o.blocks_pruned;
  pages_requested += o.pages_requested;
  pages_missed += o.pages_missed;
  groups_built += o.groups_built;
  hash_build_rows += o.hash_build_rows;
  hash_probe_rows += o.hash_probe_rows;
  rows_output += o.rows_output;
  bytes_output += o.bytes_output;
  return *this;
}

}  // namespace ideval
