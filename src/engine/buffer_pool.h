#ifndef IDEVAL_ENGINE_BUFFER_POOL_H_
#define IDEVAL_ENGINE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace ideval {

/// Page identifier: (table, page number).
struct PageId {
  std::string table;
  int64_t page = 0;

  bool operator==(const PageId&) const = default;
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<std::string>()(id.table) * 1315423911u ^
           std::hash<int64_t>()(id.page);
  }
};

/// LRU buffer pool used by the disk engine profile.
///
/// The pool tracks *which* pages are resident; it does not hold data —
/// tables live in memory and the pool only determines whether a page access
/// is charged as a physical read (miss) or a cache hit by the cost model.
/// This mirrors how PostgreSQL's shared_buffers affects latency without
/// simulating bytes.
class BufferPool {
 public:
  /// Creates a pool holding up to `capacity_pages` pages (>= 1).
  explicit BufferPool(int64_t capacity_pages);

  /// Touches a page: returns true on hit, false on miss. A miss admits the
  /// page, evicting the least-recently-used page when full.
  bool Access(const PageId& id);

  /// True if the page is currently resident (no LRU update).
  bool Contains(const PageId& id) const;

  /// Drops all pages (e.g. to model a cold start).
  void Clear();

  int64_t capacity_pages() const { return capacity_; }
  int64_t resident_pages() const { return static_cast<int64_t>(map_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

  /// hits / (hits + misses); 0 when no accesses were made.
  double HitRate() const;

 private:
  int64_t capacity_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_BUFFER_POOL_H_
