#include "engine/predicate.h"

#include "common/text_table.h"

namespace ideval {

const std::string& PredicateColumn(const Predicate& predicate) {
  if (const auto* r = std::get_if<RangePredicate>(&predicate)) {
    return r->column;
  }
  if (const auto* eq = std::get_if<StringEqPredicate>(&predicate)) {
    return eq->column;
  }
  return std::get<StringInPredicate>(predicate).column;
}

std::string PredicateToString(const Predicate& predicate) {
  if (const auto* r = std::get_if<RangePredicate>(&predicate)) {
    return StrFormat("%s >= %g AND %s <= %g", r->column.c_str(), r->lo,
                     r->column.c_str(), r->hi);
  }
  if (const auto* eq = std::get_if<StringEqPredicate>(&predicate)) {
    return StrFormat("%s = '%s'", eq->column.c_str(), eq->value.c_str());
  }
  const auto& in = std::get<StringInPredicate>(predicate);
  std::string out = in.column + " IN (";
  for (size_t i = 0; i < in.values.size(); ++i) {
    if (i) out += ", ";
    out += "'" + in.values[i] + "'";
  }
  out += ")";
  return out;
}

Result<CompiledPredicates> CompiledPredicates::Compile(
    const Table& table, const std::vector<Predicate>& predicates) {
  CompiledPredicates out;
  for (const auto& p : predicates) {
    if (const auto* r = std::get_if<RangePredicate>(&p)) {
      IDEVAL_ASSIGN_OR_RETURN(size_t idx,
                              table.schema().FieldIndex(r->column));
      const DataType type = table.schema().field(idx).type;
      if (type == DataType::kString) {
        return Status::InvalidArgument("range predicate on string column '" +
                                       r->column + "'");
      }
      CompiledRange compiled;
      if (type == DataType::kInt64) {
        compiled.int64_data = table.column(idx).int64_data().data();
      } else {
        compiled.double_data = table.column(idx).double_data().data();
      }
      compiled.lo = r->lo;
      compiled.hi = r->hi;
      compiled.column = idx;
      out.ranges_.push_back(compiled);
    } else if (const auto* eq = std::get_if<StringEqPredicate>(&p)) {
      IDEVAL_ASSIGN_OR_RETURN(size_t idx,
                              table.schema().FieldIndex(eq->column));
      if (table.schema().field(idx).type != DataType::kString) {
        return Status::InvalidArgument(
            "string-equality predicate on non-string column '" + eq->column +
            "'");
      }
      out.string_eqs_.push_back(
          CompiledStringEq{&table.column(idx).string_data(), eq->value});
    } else {
      const auto& in = std::get<StringInPredicate>(p);
      IDEVAL_ASSIGN_OR_RETURN(size_t idx,
                              table.schema().FieldIndex(in.column));
      if (table.schema().field(idx).type != DataType::kString) {
        return Status::InvalidArgument(
            "string-membership predicate on non-string column '" +
            in.column + "'");
      }
      if (in.values.empty()) {
        return Status::InvalidArgument(
            "string-membership predicate needs at least one value");
      }
      out.string_ins_.push_back(
          CompiledStringIn{&table.column(idx).string_data(), in.values});
    }
  }
  return out;
}

}  // namespace ideval
