#ifndef IDEVAL_ENGINE_ENGINE_H_
#define IDEVAL_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/buffer_pool.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "storage/table.h"

namespace ideval {

/// Which backend regime the engine models (§7: PostgreSQL vs MemSQL).
enum class EngineProfile {
  /// Disk-based interpreted row store with a buffer pool.
  kDiskRowStore,
  /// In-memory compiled column store.
  kInMemoryColumnStore,
};

const char* EngineProfileToString(EngineProfile profile);

/// Construction options.
struct EngineOptions {
  EngineProfile profile = EngineProfile::kInMemoryColumnStore;
  /// Buffer pool capacity for the disk profile, in pages. The default
  /// (16384 pages = 128 MB at 8 KB pages) mirrors PostgreSQL's stock
  /// shared_buffers.
  int64_t buffer_pool_pages = 16384;
  /// Overrides the profile's calibrated cost model when set.
  std::optional<CostModel> cost_model;
};

/// Everything the backend returns for one query: the data, the work
/// counters, and the modelled server-side time components.
struct QueryResponse {
  QueryResultData data;
  QueryWorkStats stats;
  Duration execution_time;        ///< Scan/eval/join/paging.
  Duration post_aggregation_time; ///< Group finalize + materialization.

  /// execution + post-aggregation (server total, excluding queueing and
  /// network which the scheduler adds).
  Duration ServerTime() const {
    return execution_time + post_aggregation_time;
  }
};

/// A single-node query engine over registered in-memory tables.
///
/// The engine *actually executes* relational operators (range filters,
/// histogram group-by, paged hash joins) so that results are real and
/// data-dependent; simulated time comes from the `CostModel` applied to
/// the work the operators performed. `Execute` is deterministic.
///
/// Thread safety: once all tables are registered, `Execute` may be called
/// concurrently from any number of threads — tables are immutable and the
/// only mutable execution state (the disk profile's buffer pool) is guarded
/// internally. `RegisterTable` and `ClearCaches` must not race with
/// `Execute`.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Registers a table under its own name. Errors on duplicates. Not safe
  /// to call concurrently with `Execute`.
  Status RegisterTable(TablePtr table);

  /// Executes any supported query. Safe for concurrent callers.
  Result<QueryResponse> Execute(const Query& query) const;

  EngineProfile profile() const { return options_.profile; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Buffer pool (disk profile only; null for the memory profile). Reading
  /// its counters while queries execute concurrently is racy — quiesce
  /// first.
  const BufferPool* buffer_pool() const { return buffer_pool_.get(); }

  /// Drops buffer-pool state to model a cold start. Not safe to call
  /// concurrently with `Execute`.
  void ClearCaches();

  /// Borrows a registered table.
  Result<TablePtr> GetTable(const std::string& name) const;

 private:
  Result<QueryResponse> ExecuteSelect(const SelectQuery& query) const;
  Result<QueryResponse> ExecuteHistogram(const HistogramQuery& query) const;
  Result<QueryResponse> ExecuteJoinPage(const JoinPageQuery& query) const;

  /// Charges buffer-pool page accesses for visiting `tuples` consecutive
  /// tuples of `table` starting at row `first_row`. Serialized internally
  /// so concurrent queries contend on the pool like real backend workers.
  void ChargePages(const Table& table, int64_t first_row, int64_t tuples,
                   QueryWorkStats* stats) const;

  void FinalizeTimes(QueryResponse* response) const;

  EngineOptions options_;
  CostModel cost_model_;
  std::map<std::string, TablePtr> tables_;
  mutable std::mutex pool_mu_;  ///< Guards buffer_pool_ contents.
  std::unique_ptr<BufferPool> buffer_pool_;
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_ENGINE_H_
