#ifndef IDEVAL_ENGINE_ENGINE_H_
#define IDEVAL_ENGINE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/buffer_pool.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "storage/table.h"

namespace ideval {

/// Which backend regime the engine models (§7: PostgreSQL vs MemSQL).
enum class EngineProfile {
  /// Disk-based interpreted row store with a buffer pool.
  kDiskRowStore,
  /// In-memory compiled column store.
  kInMemoryColumnStore,
};

const char* EngineProfileToString(EngineProfile profile);

/// Construction options.
struct EngineOptions {
  EngineProfile profile = EngineProfile::kInMemoryColumnStore;
  /// Buffer pool capacity for the disk profile, in pages. The default
  /// (16384 pages = 128 MB at 8 KB pages) mirrors PostgreSQL's stock
  /// shared_buffers.
  int64_t buffer_pool_pages = 16384;
  /// Overrides the profile's calibrated cost model when set.
  std::optional<CostModel> cost_model;
  /// Build per-block min/max zone maps at `RegisterTable` and let
  /// `ExecuteSelect` / `ExecuteHistogram` skip blocks whose summarized
  /// range cannot satisfy a range predicate. Results stay bitwise
  /// identical to an unpruned scan; only the work counters (and therefore
  /// the modelled time and page charges) shrink. Off by default so
  /// existing calibrated workloads keep their exact cost accounting.
  bool enable_zone_maps = false;
  /// Rows per zone-map block. 4096 tracks common columnar block sizes.
  int64_t zone_map_block_rows = 4096;
};

/// Cumulative zone-map pruning effect across all queries an engine has
/// executed since construction or the last `ClearCaches`.
struct ScanPruneTotals {
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;

  double PrunedFraction() const {
    const int64_t total = blocks_scanned + blocks_pruned;
    return total > 0 ? static_cast<double>(blocks_pruned) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Everything the backend returns for one query: the data, the work
/// counters, and the modelled server-side time components.
struct QueryResponse {
  QueryResultData data;
  QueryWorkStats stats;
  Duration execution_time;        ///< Scan/eval/join/paging.
  Duration post_aggregation_time; ///< Group finalize + materialization.

  /// execution + post-aggregation (server total, excluding queueing and
  /// network which the scheduler adds).
  Duration ServerTime() const {
    return execution_time + post_aggregation_time;
  }
};

/// A single-node query engine over registered in-memory tables.
///
/// The engine *actually executes* relational operators (range filters,
/// histogram group-by, paged hash joins) so that results are real and
/// data-dependent; simulated time comes from the `CostModel` applied to
/// the work the operators performed. `Execute` is deterministic.
///
/// Thread safety: once all tables are registered, `Execute` may be called
/// concurrently from any number of threads — tables are immutable and the
/// only mutable execution state (the disk profile's buffer pool) is guarded
/// internally. `RegisterTable` and `ClearCaches` must not race with
/// `Execute`.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Registers a table under its own name and — with
  /// `EngineOptions::enable_zone_maps` — builds its per-block min/max
  /// zone maps. Errors on duplicates. Not safe to call concurrently with
  /// `Execute`; callers serving live traffic must quiesce first (see
  /// `ClearCaches`) and invalidate any result cache layered above the
  /// engine, since a new table changes what queries can mean.
  Status RegisterTable(TablePtr table);

  /// Executes any supported query. Safe for concurrent callers.
  Result<QueryResponse> Execute(const Query& query) const;

  EngineProfile profile() const { return options_.profile; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Buffer pool (disk profile only; null for the memory profile). Reading
  /// its counters while queries execute concurrently is racy — quiesce
  /// first.
  const BufferPool* buffer_pool() const { return buffer_pool_.get(); }

  /// Drops ephemeral execution state to model a cold start: clears the
  /// buffer pool and resets the cumulative `PruneTotals` counters. Zone
  /// maps themselves survive — they are derived from immutable table data
  /// (on-disk metadata in a real system), not a cache of query results.
  ///
  /// Quiesce contract: not safe to call concurrently with `Execute`. The
  /// caller must first drain every in-flight query (e.g.
  /// `QueryServer::Drain`), and any result cache layered above this
  /// engine must be invalidated in the same quiesced window — a cached
  /// response carries page-charge timings from the pre-clear pool state.
  void ClearCaches();

  /// Borrows a registered table.
  Result<TablePtr> GetTable(const std::string& name) const;

  /// Zone maps for a registered table; null when zone maps are disabled
  /// or the table is unknown. Immutable once built.
  const TableZoneMaps* ZoneMapsFor(const std::string& name) const;

  /// Cumulative pruning counters since construction or `ClearCaches`.
  /// Safe to read concurrently with `Execute` (monotonic atomics), though
  /// a concurrent read is naturally a moving target.
  ScanPruneTotals PruneTotals() const {
    return ScanPruneTotals{
        blocks_scanned_total_.load(std::memory_order_relaxed),
        blocks_pruned_total_.load(std::memory_order_relaxed)};
  }

 private:
  Result<QueryResponse> ExecuteSelect(const SelectQuery& query) const;
  Result<QueryResponse> ExecuteHistogram(const HistogramQuery& query) const;
  Result<QueryResponse> ExecuteJoinPage(const JoinPageQuery& query) const;

  /// Charges buffer-pool page accesses for visiting `tuples` consecutive
  /// tuples of `table` starting at row `first_row`. Serialized internally
  /// so concurrent queries contend on the pool like real backend workers.
  void ChargePages(const Table& table, int64_t first_row, int64_t tuples,
                   QueryWorkStats* stats) const;

  void FinalizeTimes(QueryResponse* response) const;

  /// Folds a finished scan's block counters into the engine totals.
  void RecordPruning(const QueryWorkStats& stats) const {
    if (stats.blocks_scanned == 0 && stats.blocks_pruned == 0) return;
    blocks_scanned_total_.fetch_add(stats.blocks_scanned,
                                    std::memory_order_relaxed);
    blocks_pruned_total_.fetch_add(stats.blocks_pruned,
                                   std::memory_order_relaxed);
  }

  EngineOptions options_;
  CostModel cost_model_;
  std::map<std::string, TablePtr> tables_;
  /// Zone maps per registered table; populated by `RegisterTable` when
  /// enabled, read-only afterwards (same lifecycle as `tables_`).
  std::map<std::string, TableZoneMaps> zone_maps_;
  mutable std::mutex pool_mu_;  ///< Guards buffer_pool_ contents.
  std::unique_ptr<BufferPool> buffer_pool_;
  mutable std::atomic<int64_t> blocks_scanned_total_{0};
  mutable std::atomic<int64_t> blocks_pruned_total_{0};
};

}  // namespace ideval

#endif  // IDEVAL_ENGINE_ENGINE_H_
