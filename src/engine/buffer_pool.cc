#include "engine/buffer_pool.h"

namespace ideval {

BufferPool::BufferPool(int64_t capacity_pages)
    : capacity_(capacity_pages < 1 ? 1 : capacity_pages) {}

bool BufferPool::Access(const PageId& id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (static_cast<int64_t>(map_.size()) >= capacity_) {
    const PageId& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(id);
  map_[id] = lru_.begin();
  return false;
}

bool BufferPool::Contains(const PageId& id) const {
  return map_.find(id) != map_.end();
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

double BufferPool::HitRate() const {
  const int64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace ideval
