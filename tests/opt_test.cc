#include <gtest/gtest.h>

#include "data/datasets.h"
#include "opt/kl_filter.h"
#include "opt/session_cache.h"
#include "opt/throttle.h"
#include "widget/crossfilter.h"

namespace ideval {
namespace {

// ------------------------------ KlQueryFilter ------------------------------

class KlFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RoadNetworkOptions opts;
    opts.num_rows = 20000;
    road_ = MakeRoadNetworkTable(opts).ValueOrDie();
    view_ = std::make_unique<CrossfilterView>(
        CrossfilterView::Make(road_, {"x", "y", "z"}).ValueOrDie());
  }

  QueryGroup GroupAt(double hi_fraction, SimTime t) {
    // Brush x's upper handle to `hi_fraction` of the domain.
    const RangeSlider& sx = view_->slider(0);
    SliderEvent e;
    e.time = t;
    e.slider_index = 0;
    e.min_val = sx.domain_lo();
    e.max_val = sx.domain_lo() +
                (sx.domain_hi() - sx.domain_lo()) * hi_fraction;
    return view_->ApplySliderEvent(e).ValueOrDie();
  }

  TablePtr road_;
  std::unique_ptr<CrossfilterView> view_;
};

TEST_F(KlFilterTest, MakeValidates) {
  EXPECT_FALSE(KlQueryFilter::Make(nullptr, 0.0).ok());
  EXPECT_FALSE(KlQueryFilter::Make(road_, -1.0).ok());
  KlQueryFilter::Options opts;
  opts.sample_size = 0;
  EXPECT_FALSE(KlQueryFilter::Make(road_, 0.0, opts).ok());
  EXPECT_TRUE(KlQueryFilter::Make(road_, 0.0).ok());
}

TEST_F(KlFilterTest, FirstGroupAlwaysIssues) {
  auto filter = KlQueryFilter::Make(road_, 0.0);
  ASSERT_TRUE(filter.ok());
  auto issue = filter->ShouldIssue(GroupAt(1.0, SimTime::Origin()));
  ASSERT_TRUE(issue.ok());
  EXPECT_TRUE(*issue);
}

TEST_F(KlFilterTest, IdenticalGroupSuppressedAtZeroThreshold) {
  auto filter = KlQueryFilter::Make(road_, 0.0);
  ASSERT_TRUE(filter.ok());
  QueryGroup g = GroupAt(1.0, SimTime::Origin());
  ASSERT_TRUE(*filter->ShouldIssue(g));
  // Identical selection again: approximate result set cannot change.
  auto again = filter->ShouldIssue(g);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_DOUBLE_EQ(filter->last_divergence(), 0.0);
}

TEST_F(KlFilterTest, LargeBrushChangeIssues) {
  auto filter = KlQueryFilter::Make(road_, 0.2);
  ASSERT_TRUE(filter.ok());
  ASSERT_TRUE(*filter->ShouldIssue(GroupAt(1.0, SimTime::Origin())));
  // Cutting the x range in half changes y/z histograms a lot.
  auto issue = filter->ShouldIssue(GroupAt(0.3, SimTime::FromMillis(20)));
  ASSERT_TRUE(issue.ok());
  EXPECT_TRUE(*issue);
  EXPECT_GT(filter->last_divergence(), 0.2);
}

TEST_F(KlFilterTest, HigherThresholdSuppressesMore) {
  // Sweep a fine brush; count how many groups each threshold lets through.
  auto count_issued = [&](double threshold) {
    auto view = CrossfilterView::Make(road_, {"x", "y", "z"}).ValueOrDie();
    auto filter = KlQueryFilter::Make(road_, threshold).ValueOrDie();
    int64_t issued = 0;
    const RangeSlider& sx = view.slider(0);
    for (int i = 0; i < 60; ++i) {
      SliderEvent e;
      e.time = SimTime::FromMillis(i * 20.0);
      e.slider_index = 0;
      e.min_val = sx.domain_lo();
      e.max_val = sx.domain_hi() -
                  (sx.domain_hi() - sx.domain_lo()) * 0.008 * i;
      QueryGroup g = view.ApplySliderEvent(e).ValueOrDie();
      if (*filter.ShouldIssue(g)) ++issued;
    }
    return issued;
  };
  const int64_t kl0 = count_issued(0.0);
  const int64_t kl02 = count_issued(0.2);
  const int64_t kl1 = count_issued(1.0);
  EXPECT_GE(kl0, kl02);
  EXPECT_GT(kl02, 0);
  EXPECT_GE(kl02, kl1);
  EXPECT_LT(kl1, 10);
}

TEST_F(KlFilterTest, FilterQueryGroupsCountsSuppressed) {
  auto filter = KlQueryFilter::Make(road_, 0.0);
  ASSERT_TRUE(filter.ok());
  QueryGroup g = GroupAt(1.0, SimTime::Origin());
  std::vector<QueryGroup> groups = {g, g, g};
  int64_t suppressed = 0;
  auto out = FilterQueryGroups(&*filter, groups, &suppressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(suppressed, 2);
  EXPECT_FALSE(FilterQueryGroups(nullptr, groups).ok());
}

TEST_F(KlFilterTest, NonHistogramGroupsPassThrough) {
  auto filter = KlQueryFilter::Make(road_, 10.0);
  ASSERT_TRUE(filter.ok());
  QueryGroup g;
  SelectQuery s;
  s.table = "dataroad";
  g.queries.push_back(s);
  auto issue = filter->ShouldIssue(g);
  ASSERT_TRUE(issue.ok());
  EXPECT_TRUE(*issue);
}

// ------------------------------- Throttler -------------------------------

TEST(ThrottlerTest, EnforcesMinInterval) {
  QifThrottler throttler(Duration::Millis(100));
  EXPECT_TRUE(throttler.Admit(SimTime::FromMillis(0)));
  EXPECT_FALSE(throttler.Admit(SimTime::FromMillis(50)));
  EXPECT_FALSE(throttler.Admit(SimTime::FromMillis(99)));
  EXPECT_TRUE(throttler.Admit(SimTime::FromMillis(100)));
  EXPECT_TRUE(throttler.Admit(SimTime::FromMillis(250)));
  throttler.Reset();
  EXPECT_TRUE(throttler.Admit(SimTime::FromMillis(251)));
}

TEST(ThrottlerTest, ThrottleQueryGroupsCapsRate) {
  std::vector<QueryGroup> groups;
  for (int i = 0; i < 100; ++i) {
    QueryGroup g;
    g.issue_time = SimTime::FromMillis(i * 20.0);  // 50 Hz.
    groups.push_back(g);
  }
  QifThrottler throttler(Duration::Millis(100));  // Cap at 10 Hz.
  auto kept = ThrottleQueryGroups(&throttler, groups);
  EXPECT_EQ(kept.size(), 20u);
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_GE(kept[i].issue_time - kept[i - 1].issue_time,
              Duration::Millis(100));
  }
  EXPECT_TRUE(ThrottleQueryGroups(nullptr, groups).empty());
}

// ------------------------------- Debouncer -------------------------------

TEST(DebounceTest, KeepsOnlyPauses) {
  // Bursts at 0,10,20ms then a pause, then 200,210ms then end.
  std::vector<SimTime> times = {
      SimTime::FromMillis(0),   SimTime::FromMillis(10),
      SimTime::FromMillis(20),  SimTime::FromMillis(200),
      SimTime::FromMillis(210)};
  auto out = DebounceEventTimes(times, Duration::Millis(50));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].source_index, 2u);  // Last event before the pause.
  EXPECT_EQ(out[0].fire_time, SimTime::FromMillis(70));
  EXPECT_EQ(out[1].source_index, 4u);  // Final event always fires.
  EXPECT_EQ(out[1].fire_time, SimTime::FromMillis(260));
}

TEST(DebounceTest, EmptyInput) {
  EXPECT_TRUE(DebounceEventTimes({}, Duration::Millis(50)).empty());
}

TEST(DebounceTest, SingleEventFires) {
  auto out = DebounceEventTimes({SimTime::FromMillis(5)},
                                Duration::Millis(50));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].fire_time, SimTime::FromMillis(55));
}

// ------------------------------ SessionCache ------------------------------

class SessionCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RoadNetworkOptions opts;
    opts.num_rows = 20000;
    road_ = MakeRoadNetworkTable(opts).ValueOrDie();
    EngineOptions eopts;
    eopts.profile = EngineProfile::kDiskRowStore;
    engine_ = std::make_unique<Engine>(eopts);
    ASSERT_TRUE(engine_->RegisterTable(road_).ok());
  }

  Query Hist(double x_hi) {
    HistogramQuery q;
    q.table = "dataroad";
    q.bin_column = "y";
    q.bin_lo = 56.582;
    q.bin_hi = 57.774;
    q.bins = 20;
    q.predicates = {RangePredicate{"x", 8.146, x_hi}};
    return q;
  }

  TablePtr road_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SessionCacheTest, RepeatedQueryHitsAndSavesTime) {
  SessionCache cache(engine_.get());
  auto first = cache.Execute(Hist(10.0));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = cache.Execute(Hist(10.0));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // Sesame-style gain: the hit is orders of magnitude cheaper.
  EXPECT_LT(second->effective_time.micros(),
            first->effective_time.micros() / 10);
  EXPECT_GT(cache.TimeSaved(), Duration::Zero());
  // And returns identical data.
  EXPECT_EQ(std::get<FixedHistogram>(first->response.data),
            std::get<FixedHistogram>(second->response.data));
  EXPECT_NEAR(cache.HitRate(), 0.5, 1e-12);
}

TEST_F(SessionCacheTest, DifferentPredicatesMiss) {
  SessionCache cache(engine_.get());
  ASSERT_TRUE(cache.Execute(Hist(10.0)).ok());
  auto other = cache.Execute(Hist(9.0));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->cache_hit);
  EXPECT_EQ(cache.hits(), 0);
}

TEST_F(SessionCacheTest, CapacityEvicts) {
  SessionCache::Options opts;
  opts.capacity = 2;
  SessionCache cache(engine_.get(), opts);
  ASSERT_TRUE(cache.Execute(Hist(9.0)).ok());
  ASSERT_TRUE(cache.Execute(Hist(9.5)).ok());
  ASSERT_TRUE(cache.Execute(Hist(10.0)).ok());  // Evicts Hist(9.0).
  auto evicted = cache.Execute(Hist(9.0));
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->cache_hit);
}

TEST_F(SessionCacheTest, ClearAndNullEngine) {
  SessionCache cache(engine_.get());
  ASSERT_TRUE(cache.Execute(Hist(10.0)).ok());
  cache.Clear();
  auto after = cache.Execute(Hist(10.0));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);

  SessionCache broken(nullptr);
  EXPECT_FALSE(broken.Execute(Hist(10.0)).ok());
}

TEST_F(SessionCacheTest, CrossfilterJitterBenefitsFromReuse) {
  // A user wiggling a slider back and forth re-issues earlier queries;
  // the session cache should convert a meaningful share into hits.
  SessionCache cache(engine_.get());
  for (int pass = 0; pass < 3; ++pass) {
    for (double hi : {9.0, 9.5, 10.0, 9.5, 9.0}) {
      ASSERT_TRUE(cache.Execute(Hist(hi)).ok());
    }
  }
  EXPECT_GT(cache.HitRate(), 0.7);
}

}  // namespace
}  // namespace ideval
