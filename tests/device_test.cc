#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "device/device_model.h"
#include "device/klm.h"

namespace ideval {
namespace {

PointerTrace StraightLineTrace(DeviceType type, uint64_t seed,
                               Duration span) {
  DeviceModel device(type, Rng(seed));
  auto path = [](SimTime t) -> std::pair<double, double> {
    return {t.millis(), 0.0};  // 1 px/ms straight drag.
  };
  return device.SamplePath(path, SimTime::Origin(),
                           SimTime::Origin() + span);
}

TEST(DeviceSpecTest, AllDevicesHaveSaneSpecs) {
  for (DeviceType type :
       {DeviceType::kMouse, DeviceType::kTouchTrackpad,
        DeviceType::kTouchTablet, DeviceType::kLeapMotion}) {
    const DeviceSpec spec = DeviceModel::Spec(type);
    EXPECT_GT(spec.sensing_rate_hz, 10.0);
    EXPECT_GT(spec.jitter_std, 0.0);
    EXPECT_GT(spec.fitts_b, 0.0);
    EXPECT_STRNE(DeviceTypeToString(type), "unknown");
  }
}

TEST(DeviceSpecTest, OnlyLeapEmitsWhenStill) {
  EXPECT_FALSE(DeviceModel::Spec(DeviceType::kMouse).emits_when_still);
  EXPECT_FALSE(DeviceModel::Spec(DeviceType::kTouchTablet).emits_when_still);
  EXPECT_TRUE(DeviceModel::Spec(DeviceType::kLeapMotion).emits_when_still);
}

TEST(DeviceModelTest, SampleRateNearNominal) {
  const auto trace =
      StraightLineTrace(DeviceType::kMouse, 1, Duration::Seconds(10.0));
  const double rate = static_cast<double>(trace.size()) / 10.0;
  EXPECT_NEAR(rate, 60.0, 12.0);
}

TEST(DeviceModelTest, JitterOrderingMatchesFig11) {
  // Residual noise around the intended path: leap >> touch > mouse.
  auto residual_std = [](DeviceType type) {
    DeviceModel device(type, Rng(42));
    auto path = [](SimTime) -> std::pair<double, double> {
      return {100.0, 50.0};  // Intend to hold still while "moving".
    };
    auto trace = device.SamplePath(path, SimTime::Origin(),
                                   SimTime::Origin() + Duration::Seconds(20));
    std::vector<double> xs;
    for (const auto& s : trace) xs.push_back(s.x);
    return Summary(xs).stddev();
  };
  const double mouse = residual_std(DeviceType::kMouse);
  const double touch = residual_std(DeviceType::kTouchTablet);
  const double leap = residual_std(DeviceType::kLeapMotion);
  EXPECT_LT(mouse, touch);
  EXPECT_GT(leap, touch * 2.0);
}

TEST(DeviceModelTest, LeapIntervalsTighterThanMouse) {
  // Fig. 14: leap-motion inter-sample intervals concentrate at 20–25 ms;
  // mouse/touch have a broader bell.
  auto interval_cv = [](DeviceType type) {
    DeviceModel device(type, Rng(7));
    std::vector<double> intervals;
    for (int i = 0; i < 2000; ++i) {
      intervals.push_back(device.NextSampleInterval().millis());
    }
    Summary s(intervals);
    return s.stddev() / s.mean();
  };
  EXPECT_LT(interval_cv(DeviceType::kLeapMotion),
            interval_cv(DeviceType::kMouse) / 2.0);
}

TEST(DeviceModelTest, DwellSilencesFrictionDevices) {
  auto moving_never = [](SimTime) { return false; };
  auto path = [](SimTime) -> std::pair<double, double> {
    return {200.0, 0.0};
  };
  const SimTime end = SimTime::Origin() + Duration::Seconds(10);

  DeviceModel mouse(DeviceType::kMouse, Rng(5));
  auto mouse_trace =
      mouse.SamplePath(path, SimTime::Origin(), end, moving_never);
  const int64_t mouse_events = CountMotionEvents(
      mouse_trace, DeviceModel::Spec(DeviceType::kMouse).motion_threshold);

  DeviceModel leap(DeviceType::kLeapMotion, Rng(5));
  auto leap_trace =
      leap.SamplePath(path, SimTime::Origin(), end, moving_never);
  const int64_t leap_events = CountMotionEvents(
      leap_trace, DeviceModel::Spec(DeviceType::kLeapMotion).motion_threshold);

  // The mouse at rest produces almost no events; the Leap keeps firing
  // (§2.3 unintended queries).
  EXPECT_LT(mouse_events, 40);
  EXPECT_GT(leap_events, 300);
}

TEST(FittsLawTest, MonotoneInDistanceAndDifficulty) {
  DeviceModel device(DeviceType::kMouse, Rng(1));
  const Duration near = device.FittsMovementTime(50.0, 10.0);
  const Duration far = device.FittsMovementTime(500.0, 10.0);
  const Duration tiny_target = device.FittsMovementTime(500.0, 2.0);
  EXPECT_LT(near, far);
  EXPECT_LT(far, tiny_target);
  // Degenerate inputs stay finite and positive.
  EXPECT_GT(device.FittsMovementTime(0.0, 10.0), Duration::Zero());
  EXPECT_GT(device.FittsMovementTime(100.0, 0.0), Duration::Zero());
}

TEST(FittsLawTest, GestureSlowerThanMouse) {
  DeviceModel mouse(DeviceType::kMouse, Rng(1));
  DeviceModel leap(DeviceType::kLeapMotion, Rng(1));
  EXPECT_GT(leap.FittsMovementTime(300.0, 8.0),
            mouse.FittsMovementTime(300.0, 8.0));
}

TEST(CountMotionEventsTest, ThresholdFilters) {
  PointerTrace trace;
  for (int i = 0; i < 10; ++i) {
    PointerSample s;
    s.time = SimTime::FromMillis(i * 10.0);
    s.x = static_cast<double>(i) * 0.4;  // 0.4 px steps.
    trace.push_back(s);
  }
  // Steps below threshold accumulate until they clear it.
  EXPECT_EQ(CountMotionEvents(trace, 1.0), 3);
  EXPECT_EQ(CountMotionEvents(trace, 0.3), 9);
  EXPECT_EQ(CountMotionEvents({}, 1.0), 0);
}

// ----------------------------------- KLM -----------------------------------

TEST(KlmTest, ParsesOperators) {
  auto ops = ParseKlm("M P B K D H");
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops->size(), 6u);
  EXPECT_EQ((*ops)[0], KlmOp::kMental);
  EXPECT_EQ((*ops)[3], KlmOp::kKeystroke);
  EXPECT_FALSE(ParseKlm("MPX").ok());
}

TEST(KlmTest, EstimateSumsOperators) {
  KlmParams p = KlmParams::ForDevice(DeviceType::kMouse);
  auto mk = KlmEstimate("M", p);
  auto mkk = KlmEstimate("MK", p);
  ASSERT_TRUE(mk.ok());
  ASSERT_TRUE(mkk.ok());
  EXPECT_EQ(*mkk - *mk, p.keystroke);
  // Empty sequence is zero time.
  EXPECT_EQ(*KlmEstimate("", p), Duration::Zero());
}

TEST(KlmTest, PointingUsesDeviceFitts) {
  // The same P operator takes longer on a gestural device.
  auto mouse = KlmEstimate("P", DeviceType::kMouse);
  auto leap = KlmEstimate("P", DeviceType::kLeapMotion);
  ASSERT_TRUE(mouse.ok());
  ASSERT_TRUE(leap.ok());
  EXPECT_GT(*leap, *mouse);
}

TEST(KlmTest, StandardSequencesAreSane) {
  // A slider adjustment takes a few seconds; a button press well under one
  // plus pointing; typing scales with characters.
  auto slider = KlmEstimate(KlmSequenceForSliderAdjust(), DeviceType::kMouse);
  ASSERT_TRUE(slider.ok());
  EXPECT_GT(*slider, Duration::Seconds(1.5));
  EXPECT_LT(*slider, Duration::Seconds(6.0));

  auto search5 =
      KlmEstimate(KlmSequenceForTextSearch(5), DeviceType::kMouse);
  auto search10 =
      KlmEstimate(KlmSequenceForTextSearch(10), DeviceType::kMouse);
  ASSERT_TRUE(search5.ok());
  ASSERT_TRUE(search10.ok());
  EXPECT_EQ(*search10 - *search5,
            KlmParams::ForDevice(DeviceType::kMouse).keystroke * 5.0);
}

TEST(KlmTest, SliderKlmConsistentWithBehaviourModel) {
  // The KLM estimate for one slider adjustment should be in the same
  // ballpark as the Fitts-timed move + dwell the crossfilter task model
  // uses — the cross-validation §4.1.3 asks simulations to do.
  auto klm = KlmEstimate(KlmSequenceForSliderAdjust(), DeviceType::kMouse);
  ASSERT_TRUE(klm.ok());
  DeviceModel mouse(DeviceType::kMouse, Rng(3));
  const Duration fitts = mouse.FittsMovementTime(200.0, 8.0);
  // KLM (with its mental operator) should exceed the raw movement time but
  // stay within one order of magnitude.
  EXPECT_GT(*klm, fitts);
  EXPECT_LT(*klm, fitts * 20.0);
}

TEST(DeviceModelTest, DeterministicGivenSeed) {
  const auto a =
      StraightLineTrace(DeviceType::kLeapMotion, 99, Duration::Seconds(2));
  const auto b =
      StraightLineTrace(DeviceType::kLeapMotion, 99, Duration::Seconds(2));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
  }
}

}  // namespace
}  // namespace ideval
