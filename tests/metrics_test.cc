#include <gtest/gtest.h>

#include "metrics/frame_model.h"
#include "metrics/frontend_metrics.h"
#include "metrics/human_factors.h"
#include "metrics/thresholds.h"

namespace ideval {
namespace {

QueryTimeline MakeTimeline(int64_t group, double issue_ms, double receive_ms,
                           double render_ms_after = 5.0,
                           bool skipped = false) {
  QueryTimeline t;
  t.group_id = group;
  t.skipped = skipped;
  t.issue_time = SimTime::FromMillis(issue_ms);
  t.backend_arrival = t.issue_time + Duration::MillisF(0.2);
  t.exec_start = t.backend_arrival;
  t.exec_end = SimTime::FromMillis(receive_ms) - Duration::MillisF(0.2);
  t.client_receive = SimTime::FromMillis(receive_ms);
  t.render_end = t.client_receive + Duration::MillisF(render_ms_after);
  t.network_latency = Duration::MillisF(0.4);
  t.scheduling_latency = Duration::Zero();
  t.execution_latency = t.exec_end - t.exec_start;
  t.post_aggregation_latency = Duration::Zero();
  t.rendering_latency = Duration::MillisF(render_ms_after);
  return t;
}

// --------------------------------- QIF ---------------------------------

TEST(QifTest, ComputesRateAndIntervals) {
  std::vector<SimTime> times;
  for (int i = 0; i <= 50; ++i) times.push_back(SimTime::FromMillis(i * 20));
  auto qif = ComputeQif(times);
  ASSERT_TRUE(qif.ok());
  EXPECT_EQ(qif->queries, 51);
  EXPECT_NEAR(qif->qif, 51.0, 1.5);  // ~50 queries per second (§2.2).
  ASSERT_EQ(qif->intervals_ms.size(), 50u);
  EXPECT_DOUBLE_EQ(qif->intervals_ms[0], 20.0);
}

TEST(QifTest, RejectsUnsorted) {
  EXPECT_FALSE(ComputeQif({SimTime::FromMillis(10), SimTime::FromMillis(5)})
                   .ok());
}

TEST(QifTest, EmptyAndSingle) {
  auto empty = ComputeQif({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->queries, 0);
  auto one = ComputeQif({SimTime::FromMillis(5)});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->queries, 1);
  EXPECT_DOUBLE_EQ(one->qif, 0.0);
}

TEST(QifTest, IssueTimesSkipsSkipped) {
  std::vector<QueryTimeline> timelines = {
      MakeTimeline(0, 0.0, 10.0),
      MakeTimeline(1, 20.0, 30.0, 5.0, /*skipped=*/true),
      MakeTimeline(2, 40.0, 50.0)};
  EXPECT_EQ(IssueTimes(timelines).size(), 2u);
}

// --------------------------------- LCV ---------------------------------

TEST(LcvTest, ViolationWhenResultsArriveAfterNextInteraction) {
  // Group 0 issued at 0 ms, next interaction at 20 ms:
  //   - results at 15 ms: fine.
  //   - results at 120 ms: violation (Fig. 2).
  std::vector<QueryTimeline> fine = {MakeTimeline(0, 0.0, 15.0),
                                     MakeTimeline(1, 20.0, 35.0)};
  LcvStats s1 = ComputeCrossfilterLcv(fine);
  EXPECT_EQ(s1.queries_considered, 1);  // Last group has no successor.
  EXPECT_EQ(s1.violations, 0);

  std::vector<QueryTimeline> late = {MakeTimeline(0, 0.0, 120.0),
                                     MakeTimeline(1, 20.0, 140.0)};
  LcvStats s2 = ComputeCrossfilterLcv(late);
  EXPECT_EQ(s2.violations, 1);
  ASSERT_EQ(s2.overshoot_ms.size(), 1u);
  EXPECT_NEAR(s2.overshoot_ms[0], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(s2.ViolationFraction(), 1.0);
}

TEST(LcvTest, SkippedQueriesExcludedButStillCountAsInteractions) {
  // Group 1 was skipped, but the user *did* interact at 20 ms, so group 0
  // is judged against that moment.
  std::vector<QueryTimeline> timelines = {
      MakeTimeline(0, 0.0, 120.0),
      MakeTimeline(1, 20.0, 0.0, 0.0, /*skipped=*/true),
      MakeTimeline(2, 40.0, 160.0)};
  LcvStats s = ComputeCrossfilterLcv(timelines);
  // Only group 0 is considered (group 2 has no successor interaction and
  // group 1 was never executed), and it violates against the 20 ms issue.
  EXPECT_EQ(s.queries_considered, 1);
  EXPECT_EQ(s.violations, 1);
}

TEST(LcvTest, MultiQueryGroupsCountPerQuery) {
  std::vector<QueryTimeline> timelines;
  QueryTimeline a = MakeTimeline(0, 0.0, 30.0);
  QueryTimeline b = MakeTimeline(0, 0.0, 15.0);
  b.query_index = 1;
  timelines.push_back(a);
  timelines.push_back(b);
  timelines.push_back(MakeTimeline(1, 20.0, 50.0));
  LcvStats s = ComputeCrossfilterLcv(timelines);
  EXPECT_EQ(s.queries_considered, 2);
  EXPECT_EQ(s.violations, 1);  // Only the 30 ms query misses the 20 ms mark.
}

TEST(LcvTest, EmptyInput) {
  LcvStats s = ComputeCrossfilterLcv({});
  EXPECT_EQ(s.queries_considered, 0);
  EXPECT_DOUBLE_EQ(s.ViolationFraction(), 0.0);
}

// ------------------------- Breakdown / throughput -------------------------

TEST(BreakdownTest, MeansOverExecutedQueries) {
  std::vector<QueryTimeline> timelines = {
      MakeTimeline(0, 0.0, 10.0, 4.0),
      MakeTimeline(1, 20.0, 40.0, 8.0),
      MakeTimeline(2, 50.0, 60.0, 6.0, /*skipped=*/true)};
  auto means = MeanLatencyBreakdown(timelines);
  EXPECT_DOUBLE_EQ(means.rendering.millis(), 6.0);
  EXPECT_GT(means.perceived, Duration::Zero());
  EXPECT_DOUBLE_EQ(means.network.millis(), 0.4);
}

TEST(BreakdownTest, EmptyIsZero) {
  auto means = MeanLatencyBreakdown({});
  EXPECT_EQ(means.perceived, Duration::Zero());
}

TEST(PerceivedSummaryTest, ExcludesSkipped) {
  std::vector<QueryTimeline> timelines = {
      MakeTimeline(0, 0.0, 10.0, 5.0),
      MakeTimeline(1, 0.0, 10.0, 5.0, /*skipped=*/true)};
  Summary s = PerceivedLatencySummary(timelines);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
}

TEST(ThroughputTest, QueriesPerSecond) {
  std::vector<QueryTimeline> timelines;
  for (int i = 0; i < 10; ++i) {
    timelines.push_back(MakeTimeline(i, i * 100.0, i * 100.0 + 50.0));
  }
  // 10 queries, last exec_end ≈ 949.8 ms.
  EXPECT_NEAR(ComputeThroughput(timelines), 10.0 / 0.9498, 0.2);
  EXPECT_DOUBLE_EQ(ComputeThroughput({}), 0.0);
}

// ----------------------------- Human factors -----------------------------

TEST(HumanFactorsTest, ScrollSessionMetrics) {
  ScrollUserParams user;
  user.seed = 404;
  ScrollTaskOptions opts;
  opts.scroller.total_tuples = 1500;
  auto trace = GenerateScrollTrace(user, opts);
  ASSERT_TRUE(trace.ok());
  const HumanFactors hf = ComputeScrollHumanFactors(*trace);
  EXPECT_EQ(hf.task_completion_time, trace->session_duration);
  // Interactions = glide bursts: more than selections, fewer than raw
  // events.
  EXPECT_GT(hf.num_interactions,
            static_cast<int64_t>(trace->selections.size()));
  EXPECT_LT(hf.num_interactions,
            static_cast<int64_t>(trace->events.size()));
  EXPECT_EQ(hf.task_outputs,
            static_cast<int64_t>(trace->selections.size()));
  if (hf.task_outputs > 0) {
    EXPECT_GT(hf.InteractionsPerOutput(), 1.0);
  }
}

TEST(HumanFactorsTest, ExploreSessionMetrics) {
  CompositeInterface::Options copts;
  copts.destinations = {{"A", 33.5, -86.8, 12}, {"B", 33.7, -84.4, 12}};
  CompositeInterface ui(MapWidget(32.0, -86.0, 11), std::move(copts));
  ExploreUserParams user;
  user.seed = 405;
  user.min_session = Duration::Seconds(300);
  auto trace = GenerateExploreTrace(user, &ui);
  ASSERT_TRUE(trace.ok());
  const HumanFactors hf = ComputeExploreHumanFactors(*trace);
  EXPECT_EQ(hf.num_interactions,
            static_cast<int64_t>(trace->phases.size()));
  EXPECT_GT(hf.task_outputs, 0);
  EXPECT_LE(hf.task_outputs, hf.num_interactions);
}

TEST(HumanFactorsTest, EmptyTraceIsZero) {
  ScrollTrace empty;
  const HumanFactors hf = ComputeScrollHumanFactors(empty);
  EXPECT_EQ(hf.num_interactions, 0);
  EXPECT_EQ(hf.task_outputs, 0);
  EXPECT_DOUBLE_EQ(hf.InteractionsPerOutput(), 0.0);
}

// ------------------------------ Frame model ------------------------------

TEST(FrameModelTest, CoalescesResultsWithinOneFrame) {
  // Three results inside one 60 Hz frame (16.67 ms), one in the next.
  std::vector<QueryTimeline> timelines = {
      MakeTimeline(0, 0.0, 2.0), MakeTimeline(1, 0.0, 5.0),
      MakeTimeline(2, 0.0, 9.0), MakeTimeline(3, 0.0, 20.0)};
  FrameModelOptions opts;
  auto report = AnalyzeFrames(timelines, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results_arrived, 4);
  EXPECT_EQ(report->frames_with_updates, 2);
  EXPECT_EQ(report->coalesced_results, 3);
  EXPECT_NEAR(report->RenderSavings(), 0.5, 1e-9);
  // Every result waits for its frame tick: delay in (0, 16.7] ms.
  EXPECT_GT(report->mean_display_delay, Duration::Zero());
  EXPECT_LE(report->mean_display_delay, Duration::MillisF(16.7));
}

TEST(FrameModelTest, HigherFpsReducesDelayAndCoalescing) {
  std::vector<QueryTimeline> timelines;
  for (int i = 0; i < 50; ++i) {
    timelines.push_back(MakeTimeline(i, i * 8.0, i * 8.0 + 5.0));
  }
  FrameModelOptions slow;
  slow.fps = 30.0;
  FrameModelOptions fast;
  fast.fps = 120.0;
  auto slow_report = AnalyzeFrames(timelines, slow);
  auto fast_report = AnalyzeFrames(timelines, fast);
  ASSERT_TRUE(slow_report.ok());
  ASSERT_TRUE(fast_report.ok());
  EXPECT_GT(slow_report->coalesced_results, fast_report->coalesced_results);
  EXPECT_GT(slow_report->mean_display_delay,
            fast_report->mean_display_delay);
  EXPECT_GE(slow_report->RenderSavings(), fast_report->RenderSavings());
}

TEST(FrameModelTest, SkippedAndEmptyInputs) {
  FrameModelOptions opts;
  auto empty = AnalyzeFrames({}, opts);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->results_arrived, 0);
  EXPECT_DOUBLE_EQ(empty->RenderSavings(), 0.0);

  std::vector<QueryTimeline> skipped = {
      MakeTimeline(0, 0.0, 5.0, 5.0, /*skipped=*/true)};
  auto only_skipped = AnalyzeFrames(skipped, opts);
  ASSERT_TRUE(only_skipped.ok());
  EXPECT_EQ(only_skipped->results_arrived, 0);

  opts.fps = 0.0;
  EXPECT_FALSE(AnalyzeFrames({}, opts).ok());
}

// ------------------------------- Thresholds -------------------------------

TEST(ThresholdsTest, OrderingSane) {
  EXPECT_LT(kTouchPerceivableDifference, kTargetAcquisitionLatencyLimit);
  EXPECT_LT(kTargetAcquisitionLatencyLimit, kTargetTrackingLatencyLimit);
  EXPECT_LT(kTargetTrackingLatencyLimit, kVisualAnalysisNoticeableDelay);
  EXPECT_LT(kVisualAnalysisNoticeableDelay, kInteractiveLatencyBudget);
}

}  // namespace
}  // namespace ideval
