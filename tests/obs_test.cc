#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/slow_query_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace ideval {
namespace {

TEST(TraceEnumsTest, NamesRoundTrip) {
  EXPECT_STREQ(SpanKindToString(SpanKind::kGroup), "group");
  EXPECT_STREQ(SpanKindToString(SpanKind::kAdmission), "admission");
  EXPECT_STREQ(SpanKindToString(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(SpanKindToString(SpanKind::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(SpanKindToString(SpanKind::kExecute), "execute");
  EXPECT_STREQ(SpanKindToString(SpanKind::kScatter), "scatter");
  EXPECT_STREQ(SpanKindToString(SpanKind::kShardExec), "shard_exec");
  EXPECT_STREQ(SpanKindToString(SpanKind::kMerge), "merge");
  EXPECT_STREQ(GroupTerminalToString(GroupTerminal::kExecuted), "executed");
  EXPECT_STREQ(GroupTerminalToString(GroupTerminal::kShedStale),
               "shed_stale");
}

TEST(TraceBufferTest, DisabledContextIsFreeAndSafe) {
  const TraceContext off = MakeTraceContext(nullptr, /*session_id=*/7);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.trace_id, 0u);
  EXPECT_EQ(off.root_span_id, 0u);
  // Every instrumentation call must be a no-op, not a crash.
  Span span(off, SpanKind::kExecute, /*parent_span_id=*/0);
  EXPECT_FALSE(span.enabled());
  EXPECT_EQ(span.id(), 0u);
  span.SetDetail(1);
  span.SetAttrs(1, 2, 3);
  span.End();
  RecordSpan(off, SpanKind::kGroup, 1, 0, 0, 10);
}

TEST(TraceBufferTest, SpanLifecycleRecordsOnEnd) {
  TraceBuffer buffer(TraceOptions{});
  const TraceContext ctx = MakeTraceContext(&buffer, /*session_id=*/3);
  ASSERT_TRUE(ctx.enabled());
  EXPECT_GT(ctx.trace_id, 0u);
  EXPECT_GT(ctx.root_span_id, 0u);
  {
    Span span(ctx, SpanKind::kExecute, ctx.root_span_id);
    EXPECT_GT(span.id(), 0u);
    span.SetAttrs(100, 5, 2);
    EXPECT_EQ(buffer.Stats().recorded, 0);  // Not recorded until End.
  }  // Destructor ends it.
  EXPECT_EQ(buffer.Stats().recorded, 1);

  // End is idempotent; a moved-from span does not double-record.
  Span a(ctx, SpanKind::kMerge, ctx.root_span_id);
  Span b = std::move(a);
  b.End();
  b.End();
  a.End();
  EXPECT_EQ(buffer.Stats().recorded, 2);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, ctx.trace_id);
    EXPECT_EQ(s.session_id, 3u);
    EXPECT_EQ(s.parent_span_id, ctx.root_span_id);
    EXPECT_GE(s.end_us, s.start_us);
  }
  EXPECT_EQ(spans[0].attr0, 100);
  EXPECT_EQ(spans[0].attr1, 5);
  EXPECT_EQ(spans[0].attr2, 2);
}

TEST(TraceBufferTest, RingOverflowKeepsNewestAndCountsDrops) {
  TraceOptions opts;
  opts.capacity_spans = 8;
  opts.num_shards = 1;  // One ring, so retention order is deterministic.
  TraceBuffer buffer(opts);
  const TraceContext ctx = MakeTraceContext(&buffer, /*session_id=*/1);
  for (int i = 0; i < 20; ++i) {
    RecordSpan(ctx, SpanKind::kExecute, buffer.NewSpanId(),
               ctx.root_span_id, /*start_us=*/i * 10,
               /*end_us=*/i * 10 + 5);
  }
  const TraceBufferStats stats = buffer.Stats();
  EXPECT_EQ(stats.recorded, 20);
  EXPECT_EQ(stats.dropped, 12);
  EXPECT_EQ(stats.live, 8);
  EXPECT_EQ(stats.capacity, 8);
  // The survivors are exactly the newest 8 (starts 120..190).
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_us, 120 + static_cast<int64_t>(i) * 10);
  }
}

TEST(TraceBufferTest, CapacityClampsToShardCount) {
  TraceOptions opts;
  opts.capacity_spans = 2;  // Fewer than shards.
  opts.num_shards = 8;
  TraceBuffer buffer(opts);
  EXPECT_GE(buffer.Stats().capacity, 8);
}

TEST(TraceBufferTest, ConcurrentSpansStayConsistent) {
  // The property test: many threads trace concurrently; afterwards every
  // span id is unique, every parent resolves within its own trace, and
  // nothing was lost (the buffer is big enough that drops cannot occur).
  constexpr int kThreads = 8;
  constexpr int kTracesPerThread = 50;
  TraceOptions opts;
  opts.capacity_spans = kThreads * kTracesPerThread * 4;
  TraceBuffer buffer(opts);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer, t] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        const TraceContext ctx =
            MakeTraceContext(&buffer, static_cast<uint64_t>(t + 1));
        Span child(ctx, SpanKind::kExecute, ctx.root_span_id);
        child.SetAttrs(i);
        child.End();
        const int64_t now = buffer.NowMicros();
        RecordSpan(ctx, SpanKind::kGroup, ctx.root_span_id,
                   /*parent_span_id=*/0, now - 5, now);
      }
    });
  }
  for (auto& t : threads) t.join();

  const TraceBufferStats stats = buffer.Stats();
  EXPECT_EQ(stats.recorded, kThreads * kTracesPerThread * 2);
  EXPECT_EQ(stats.dropped, 0);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(),
            static_cast<size_t>(kThreads * kTracesPerThread * 2));
  std::set<uint64_t> ids;
  std::map<uint64_t, std::set<uint64_t>> trace_span_ids;
  std::map<uint64_t, uint64_t> trace_session;
  for (const SpanRecord& s : spans) {
    EXPECT_TRUE(ids.insert(s.span_id).second) << "duplicate span id";
    EXPECT_GE(s.end_us, s.start_us);
    trace_span_ids[s.trace_id].insert(s.span_id);
    auto [it, inserted] = trace_session.emplace(s.trace_id, s.session_id);
    EXPECT_EQ(it->second, s.session_id) << "trace spans two sessions";
  }
  EXPECT_EQ(trace_span_ids.size(),
            static_cast<size_t>(kThreads * kTracesPerThread));
  for (const SpanRecord& s : spans) {
    if (s.parent_span_id == 0) continue;
    EXPECT_TRUE(trace_span_ids[s.trace_id].count(s.parent_span_id))
        << "parent outside the span's own trace";
  }
  // Snapshot is ordered for the exporter: starts are non-decreasing.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_us, spans[i - 1].start_us);
  }
}

TEST(ChromeTraceTest, RendersEnvelopeTracksAndArgs) {
  std::vector<SpanRecord> spans;
  SpanRecord root;
  root.trace_id = 9;
  root.span_id = 1;
  root.session_id = 4;
  root.kind = SpanKind::kGroup;
  root.detail = static_cast<uint32_t>(GroupTerminal::kExecuted) |
                kGroupLcvBit;
  root.start_us = 100;
  root.end_us = 900;
  root.attr0 = 2;  // ok
  spans.push_back(root);
  SpanRecord shard;
  shard.trace_id = 9;
  shard.span_id = 2;
  shard.parent_span_id = 1;
  shard.session_id = 4;
  shard.kind = SpanKind::kShardExec;
  shard.detail = 3;  // Lane.
  shard.start_us = 200;
  shard.end_us = 400;
  spans.push_back(shard);

  const std::string json = ChromeTraceJson(spans);
  // Envelope + the two complete events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"group\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_exec\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Sessions are processes; shard partials go on per-lane tracks.
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":103"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Kind-specific args: the root names its terminal and LCV flag.
  EXPECT_NE(json.find("\"terminal\":\"executed\""), std::string::npos);
  EXPECT_NE(json.find("\"lcv\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":9"), std::string::npos);
}

TEST(ChromeTraceTest, ExportWritesFileAndFailsOnBadPath) {
  TraceBuffer buffer(TraceOptions{});
  const TraceContext ctx = MakeTraceContext(&buffer, 1);
  { Span s(ctx, SpanKind::kExecute, ctx.root_span_id); }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(buffer.ExportChromeTrace(path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char head[16] = {0};
  const size_t n = std::fread(head, 1, sizeof(head) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(n, 0u);
  EXPECT_EQ(head[0], '{');
  EXPECT_FALSE(
      buffer.ExportChromeTrace("/nonexistent-dir-xyz/trace.json").ok());
}

TEST(SlowQueryLogTest, ThresholdAndLcvFiltering) {
  SlowQueryLogOptions opts;
  opts.threshold = Duration::Millis(100);
  SlowQueryLog log(opts);

  SlowQueryRecord fast;
  fast.latency_ms = 10.0;
  EXPECT_FALSE(log.MaybeRecord(fast));  // Under threshold, no LCV.

  SlowQueryRecord slow;
  slow.latency_ms = 150.0;
  EXPECT_TRUE(log.MaybeRecord(slow));  // Over threshold.

  SlowQueryRecord lcv;
  lcv.latency_ms = 1.0;
  lcv.lcv = true;
  EXPECT_TRUE(log.MaybeRecord(lcv));  // Fast but late-contradicting.

  EXPECT_EQ(log.logged(), 2);
  EXPECT_EQ(log.evicted(), 0);

  // With always_log_lcv off, only the threshold admits.
  SlowQueryLogOptions strict = opts;
  strict.always_log_lcv = false;
  SlowQueryLog strict_log(strict);
  EXPECT_FALSE(strict_log.MaybeRecord(lcv));
}

TEST(SlowQueryLogTest, BoundedEvictsOldest) {
  SlowQueryLogOptions opts;
  opts.threshold = Duration::Millis(0);
  opts.capacity = 4;
  SlowQueryLog log(opts);
  for (int i = 0; i < 10; ++i) {
    SlowQueryRecord r;
    r.seq = static_cast<uint64_t>(i);
    r.latency_ms = 1.0;
    EXPECT_TRUE(log.MaybeRecord(r));
  }
  EXPECT_EQ(log.logged(), 10);
  EXPECT_EQ(log.evicted(), 6);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  // Newest-N: seqs 6..9 survive, oldest first.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 6 + i);
  }
}

TEST(SlowQueryLogTest, ToTextRendersTable) {
  SlowQueryLogOptions opts;
  opts.threshold = Duration::Millis(0);
  SlowQueryLog log(opts);
  SlowQueryRecord r;
  r.trace_id = 0;  // Tracing off: renders as "-".
  r.session_id = 5;
  r.seq = 2;
  r.queue_ms = 1.5;
  r.service_ms = 2.5;
  r.latency_ms = 4.0;
  r.queries_ok = 3;
  r.lcv = true;
  ASSERT_TRUE(log.MaybeRecord(r));
  const std::string text = log.ToText();
  EXPECT_NE(text.find("latency (ms)"), std::string::npos);
  EXPECT_NE(text.find("LCV"), std::string::npos);
  EXPECT_NE(text.find("yes"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);
}

TEST(MetricsRegistryTest, RegisterFindAndTypeConflicts) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("m_total", "A counter.");
  ASSERT_NE(c, nullptr);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);

  // Same name + same type: the same handle, already-recorded state kept.
  EXPECT_EQ(registry.RegisterCounter("m_total", "ignored"), c);
  // Same name + different type: a conflict, not a silent shadow.
  EXPECT_EQ(registry.RegisterGauge("m_total", "A gauge."), nullptr);
  EXPECT_EQ(registry.RegisterHistogram("m_total", "A histogram."), nullptr);

  Gauge* g = registry.RegisterGauge("m_gauge", "A gauge.");
  ASSERT_NE(g, nullptr);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), -1.0);

  EXPECT_EQ(registry.FindCounter("m_total"), c);
  EXPECT_EQ(registry.FindGauge("m_gauge"), g);
  EXPECT_EQ(registry.FindGauge("m_total"), nullptr);  // Wrong type.
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindHistogram("m_gauge"), nullptr);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.num_bounds = 3;  // Bounds 1, 2, 4 + the +Inf overflow bucket.
  Histogram h("edges_ms", opts);
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));

  h.Record(-3.0);  // Underflow still lands in the first bucket.
  h.Record(0.5);
  h.Record(1.0);  // `le` semantics: a value ON the bound belongs to it.
  h.Record(1.0001);
  h.Record(2.0);
  h.Record(4.0);
  h.Record(4.0001);  // Past the last bound: +Inf.
  h.Record(1e9);

  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 3);  // <= 1
  EXPECT_EQ(counts[1], 2);  // (1, 2]
  EXPECT_EQ(counts[2], 1);  // (2, 4]
  EXPECT_EQ(counts[3], 2);  // +Inf
  EXPECT_EQ(h.count(), 8);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 +
                                4.0001 + 1e9);
}

TEST(MetricsRegistryTest, ExpositionTextGolden) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("aaa_total", "A counter.");
  Gauge* g = registry.RegisterGauge("bbb_gauge", "A gauge.");
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.num_bounds = 2;
  Histogram* h = registry.RegisterHistogram("ccc_ms", "A histogram.", opts);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  c->Increment(3);
  g->Set(2.5);
  h->Record(0.5);
  h->Record(1.0);
  h->Record(1.5);
  h->Record(100.0);

  // Version 0.0.4 text exposition, sorted by metric name, cumulative
  // `le` buckets. This is the scrape contract — byte-for-byte.
  EXPECT_EQ(registry.ExpositionText(),
            "# HELP aaa_total A counter.\n"
            "# TYPE aaa_total counter\n"
            "aaa_total 3\n"
            "# HELP bbb_gauge A gauge.\n"
            "# TYPE bbb_gauge gauge\n"
            "bbb_gauge 2.5\n"
            "# HELP ccc_ms A histogram.\n"
            "# TYPE ccc_ms histogram\n"
            "ccc_ms_bucket{le=\"1\"} 2\n"
            "ccc_ms_bucket{le=\"2\"} 3\n"
            "ccc_ms_bucket{le=\"+Inf\"} 4\n"
            "ccc_ms_sum 103\n"
            "ccc_ms_count 4\n");

  const std::string json = registry.ExpositionJson();
  EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  EXPECT_NE(json.find("{\"name\":\"aaa_total\",\"type\":\"counter\","
                      "\"help\":\"A counter.\",\"value\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bbb_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[2,1,1]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  // Relaxed atomics must still lose nothing: N threads x M increments
  // and observations reconcile exactly afterwards.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("hot_total", "Hot counter.");
  Histogram* h = registry.RegisterHistogram("hot_ms", "Hot histogram.");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<double>(t + 1));  // Integers: exact in double.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * kPerThread;
  EXPECT_DOUBLE_EQ(h->sum(), expected_sum);
  int64_t bucket_total = 0;
  for (int64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count());
}

TEST(TimeSeriesRingTest, WrapsKeepingNewestOldestFirst) {
  TimeSeriesRing ring(4);
  EXPECT_EQ(ring.capacity(), 4);
  EXPECT_TRUE(ring.Snapshot().empty());
  for (int i = 0; i < 10; ++i) {
    StatsSample s;
    s.t_s = static_cast<double>(i);
    s.queue_depth = i;
    ring.Push(s);
  }
  EXPECT_EQ(ring.pushed(), 10);
  const std::vector<StatsSample> samples = ring.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].t_s, 6.0 + static_cast<double>(i));
    EXPECT_EQ(samples[i].queue_depth, 6 + static_cast<int64_t>(i));
  }
  const std::string json = ring.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"t_s\":6"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":9"), std::string::npos);
  EXPECT_EQ(json.find("\"t_s\":5"), std::string::npos);  // Overwritten.
}

TEST(StatsPollerTest, PollsPeriodicallyAndStopsCleanly) {
  TimeSeriesRing ring(64);
  std::atomic<int64_t> calls{0};
  StatsPoller poller(
      Duration::Millis(1),
      [&calls] {
        StatsSample s;
        s.t_s = static_cast<double>(calls.fetch_add(1) + 1);
        return s;
      },
      &ring);
  EXPECT_FALSE(poller.running());
  poller.Start();
  poller.Start();  // Idempotent: no second thread, no crash.
  EXPECT_TRUE(poller.running());
  for (int spin = 0; spin < 2000 && ring.pushed() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ring.pushed(), 3);
  poller.Stop();
  EXPECT_FALSE(poller.running());
  // After Stop returns, the callback never runs again.
  const int64_t after_stop = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(calls.load(), after_stop);
  EXPECT_EQ(poller.polls(), ring.pushed());
  poller.Stop();  // Idempotent.

  // Restartable: a stopped poller can Start again.
  poller.Start();
  for (int spin = 0; spin < 2000 && poller.polls() <= after_stop; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(poller.polls(), after_stop);
  poller.Stop();
}

TEST(StatsPollerTest, LifecycleHammeringStaysSane) {
  // Many threads racing Start/Stop must never double-start, leak a
  // thread, or crash; the lifecycle mutex serializes the join.
  TimeSeriesRing ring(16);
  StatsPoller poller(
      Duration::Millis(1), [] { return StatsSample{}; }, &ring);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&poller, t] {
      for (int i = 0; i < 50; ++i) {
        if ((i + t) % 2 == 0) {
          poller.Start();
        } else {
          poller.Stop();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  poller.Stop();
  EXPECT_FALSE(poller.running());
  EXPECT_EQ(poller.polls(), ring.pushed());
}

}  // namespace
}  // namespace ideval
