#include <set>

#include <gtest/gtest.h>

#include "guidelines/advisor.h"
#include "guidelines/bias_catalog.h"
#include "guidelines/metric_catalog.h"
#include "guidelines/plan_validator.h"

namespace ideval {
namespace {

// ------------------------------ Metric catalog ------------------------------

TEST(MetricCatalogTest, AllSixteenMetricsDocumented) {
  EXPECT_EQ(AllMetricInfo().size(), 16u);
  std::set<Metric> seen;
  for (const auto& info : AllMetricInfo()) {
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(info.when_to_use.empty());
    EXPECT_TRUE(seen.insert(info.metric).second) << "duplicate entry";
  }
}

TEST(MetricCatalogTest, NovelMetricsAreFrontend) {
  EXPECT_EQ(InfoFor(Metric::kLatencyConstraintViolation).category,
            MetricCategory::kSystemFrontend);
  EXPECT_EQ(InfoFor(Metric::kQueryIssuingFrequency).category,
            MetricCategory::kSystemFrontend);
  EXPECT_EQ(InfoFor(Metric::kLatency).category,
            MetricCategory::kSystemBackend);
  EXPECT_EQ(InfoFor(Metric::kUserFeedback).category,
            MetricCategory::kHumanQualitative);
}

TEST(MetricCatalogTest, SurveyTablesPopulated) {
  EXPECT_GE(SurveyTable1().size(), 30u);  // Table 1 has 31 rows.
  EXPECT_GE(SurveyTable2().size(), 33u);  // Table 2 has 34 rows.
  for (const auto* table : {&SurveyTable1(), &SurveyTable2()}) {
    for (const auto& sys : *table) {
      EXPECT_FALSE(sys.name.empty());
      EXPECT_FALSE(sys.metrics.empty()) << sys.name;
    }
  }
}

TEST(MetricCatalogTest, UsageCountsMatchKnownEntries) {
  // GestureDB reports learnability and discoverability; they are rare.
  EXPECT_GE(SurveyUsageCount(Metric::kLearnability), 1);
  EXPECT_GE(SurveyUsageCount(Metric::kDiscoverability), 1);
  // User feedback and latency are the workhorses of both eras.
  EXPECT_GT(SurveyUsageCount(Metric::kUserFeedback), 15);
  EXPECT_GT(SurveyUsageCount(Metric::kLatency), 10);
  // Nothing in the surveyed literature reports the two novel metrics —
  // that gap is the paper's motivation.
  EXPECT_EQ(SurveyUsageCount(Metric::kLatencyConstraintViolation), 0);
  EXPECT_EQ(SurveyUsageCount(Metric::kQueryIssuingFrequency), 0);
}

// -------------------------------- Advisor --------------------------------

std::set<Metric> Recommended(const SystemProfile& p) {
  std::set<Metric> out;
  for (const auto& r : RecommendMetrics(p)) out.insert(r.metric);
  return out;
}

TEST(AdvisorTest, AlwaysRecommendsFeedbackAndLatency) {
  const auto recs = Recommended(SystemProfile{});
  EXPECT_TRUE(recs.count(Metric::kUserFeedback));
  EXPECT_TRUE(recs.count(Metric::kLatency));
  // Best practice 1: at least one human and one system factor — satisfied
  // by the two always-on metrics.
}

TEST(AdvisorTest, Table3RulesFire) {
  SystemProfile p;
  p.exploratory = true;
  p.approximate = true;
  p.distributed = true;
  p.large_data = true;
  p.task_based = true;
  p.reduces_user_effort = true;
  p.targets_experts = true;
  p.targets_novices = true;
  p.domain_specific = true;
  p.speculative_prefetching = true;
  p.high_frame_rate_device = true;
  p.consecutive_query_bursts = true;
  const auto recs = Recommended(p);
  // Every metric in the taxonomy applies to this kitchen-sink system.
  EXPECT_EQ(recs.size(), AllMetricInfo().size());
}

TEST(AdvisorTest, FrontendMetricsOnlyForBurstyOrHighFrameRate) {
  SystemProfile p;
  auto recs = Recommended(p);
  EXPECT_FALSE(recs.count(Metric::kLatencyConstraintViolation));
  EXPECT_FALSE(recs.count(Metric::kQueryIssuingFrequency));
  p.consecutive_query_bursts = true;
  recs = Recommended(p);
  EXPECT_TRUE(recs.count(Metric::kLatencyConstraintViolation));
  EXPECT_FALSE(recs.count(Metric::kQueryIssuingFrequency));
  p.high_frame_rate_device = true;
  recs = Recommended(p);
  EXPECT_TRUE(recs.count(Metric::kQueryIssuingFrequency));
}

TEST(AdvisorTest, EveryRecommendationHasAReason) {
  SystemProfile p;
  p.exploratory = true;
  p.speculative_prefetching = true;
  for (const auto& r : RecommendMetrics(p)) {
    EXPECT_FALSE(r.reason.empty()) << MetricToString(r.metric);
  }
}

TEST(AdvisorTest, BestPracticesAndPrinciplesComplete) {
  EXPECT_EQ(MetricSelectionBestPractices().size(), 8u);
  EXPECT_EQ(EvaluationPrinciples().size(), 8u);
}

// ----------------------------- Study designer -----------------------------

TEST(StudyDesignTest, Fig4DecisionTree) {
  StudySettingInputs i;
  EXPECT_EQ(RecommendStudySetting(i).setting, StudySetting::kRemote);
  i.think_aloud_protocol = true;
  EXPECT_EQ(RecommendStudySetting(i).setting, StudySetting::kInPerson);
  i = StudySettingInputs{};
  i.device_dependent = true;
  EXPECT_EQ(RecommendStudySetting(i).setting, StudySetting::kInPerson);
  i = StudySettingInputs{};
  i.comparison_against_control = true;
  EXPECT_EQ(RecommendStudySetting(i).setting, StudySetting::kInPerson);
}

TEST(StudyDesignTest, Fig5DecisionTree) {
  StudyStructureInputs i;
  EXPECT_EQ(RecommendStudyStructure(i).structure,
            StudyStructure::kBetweenSubject);
  i.task_depends_on_inherent_ability = true;
  auto within = RecommendStudyStructure(i);
  EXPECT_EQ(within.structure, StudyStructure::kWithinSubject);
  EXPECT_FALSE(within.cautions.empty());  // Randomize, fatigue, ...
  i = StudyStructureInputs{};
  i.interactions_definitive = true;
  i.all_navigation_patterns_testable = true;
  EXPECT_EQ(RecommendStudyStructure(i).structure,
            StudyStructure::kSimulation);
  // Simulation needs BOTH conditions.
  i.all_navigation_patterns_testable = false;
  EXPECT_EQ(RecommendStudyStructure(i).structure,
            StudyStructure::kBetweenSubject);
}

TEST(StudyDesignTest, MinParticipants) {
  EXPECT_EQ(kRecommendedMinParticipants, 10);
}

// ------------------------------ Bias catalog ------------------------------

TEST(BiasCatalogTest, AllSevenBiasesDocumented) {
  EXPECT_EQ(AllBiases().size(), 7u);
  int participant = 0, experimenter = 0;
  for (const auto& b : AllBiases()) {
    EXPECT_FALSE(b.description.empty());
    EXPECT_FALSE(b.mitigation.empty());
    (b.side == BiasSide::kParticipant ? participant : experimenter)++;
  }
  // Table 4: four participant biases, three experimenter biases.
  EXPECT_EQ(participant, 4);
  EXPECT_EQ(experimenter, 3);
}

TEST(BiasCatalogTest, LookupBySide) {
  EXPECT_EQ(InfoFor(CognitiveBias::kFraming).side, BiasSide::kExperimenter);
  EXPECT_EQ(InfoFor(CognitiveBias::kAnchoring).side, BiasSide::kParticipant);
}

TEST(BiasCatalogTest, ValidityThreatsAndChecklist) {
  EXPECT_EQ(ExternalValidityThreats().size(), 3u);
  const auto checklist = StudyProcedureChecklist();
  // 7 biases + 3 threats + 2 design lines.
  EXPECT_EQ(checklist.size(), 12u);
  for (const auto& line : checklist) EXPECT_FALSE(line.empty());
}

// ----------------------------- Plan validator -----------------------------

EvaluationPlan SoundPlan() {
  EvaluationPlan plan;
  plan.profile.exploratory = true;
  plan.profile.high_frame_rate_device = true;
  plan.metrics = {Metric::kUserFeedback, Metric::kLatency,
                  Metric::kQueryIssuingFrequency,
                  Metric::kLatencyConstraintViolation,
                  Metric::kNumInsights};
  plan.structure = StudyStructure::kWithinSubject;
  plan.participants = 12;
  plan.randomized_or_counterbalanced = true;
  plan.breaks_between_tasks = true;
  plan.tasks_externally_reviewed = true;
  plan.uses_real_datasets = true;
  return plan;
}

TEST(PlanValidatorTest, SoundPlanPasses) {
  const auto issues = ValidateEvaluationPlan(SoundPlan());
  for (const auto& i : issues) {
    ADD_FAILURE() << SeverityToString(i.severity) << " [" << i.guideline
                  << "] " << i.message;
  }
  EXPECT_TRUE(issues.empty());
}

TEST(PlanValidatorTest, MissingHumanFactorIsError) {
  EvaluationPlan plan = SoundPlan();
  plan.metrics = {Metric::kLatency, Metric::kThroughput};
  const auto issues = ValidateEvaluationPlan(plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().severity, PlanIssue::Severity::kError);
  EXPECT_EQ(issues.front().guideline, "best practice 1");
}

TEST(PlanValidatorTest, WithinSubjectNeedsCounterbalancing) {
  EvaluationPlan plan = SoundPlan();
  plan.randomized_or_counterbalanced = false;
  const auto issues = ValidateEvaluationPlan(plan);
  bool found = false;
  for (const auto& i : issues) {
    found |= (i.severity == PlanIssue::Severity::kError &&
              i.guideline.find("learning") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidatorTest, DisclosedHypothesisIsError) {
  EvaluationPlan plan = SoundPlan();
  plan.hypothesis_disclosed_to_participants = true;
  const auto issues = ValidateEvaluationPlan(plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().severity, PlanIssue::Severity::kError);
}

TEST(PlanValidatorTest, ProfileConditionalWarnings) {
  EvaluationPlan plan = SoundPlan();
  plan.profile.approximate = true;
  plan.profile.distributed = true;
  auto issues = ValidateEvaluationPlan(plan);
  int warnings = 0;
  for (const auto& i : issues) {
    warnings += (i.severity == PlanIssue::Severity::kWarning);
  }
  EXPECT_GE(warnings, 2);  // Missing accuracy and throughput.
}

TEST(PlanValidatorTest, LearnabilityDiscoverabilityUserOverlap) {
  EvaluationPlan plan = SoundPlan();
  plan.metrics.push_back(Metric::kLearnability);
  plan.metrics.push_back(Metric::kDiscoverability);
  plan.same_users_for_learnability_and_discoverability = true;
  const auto issues = ValidateEvaluationPlan(plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().severity, PlanIssue::Severity::kError);
}

TEST(PlanValidatorTest, SimulationSkipsHumanChecks) {
  EvaluationPlan plan = SoundPlan();
  plan.structure = StudyStructure::kSimulation;
  plan.participants = 0;
  plan.tasks_externally_reviewed = false;
  plan.breaks_between_tasks = false;
  plan.uses_real_datasets = false;
  plan.randomized_or_counterbalanced = false;
  EXPECT_TRUE(ValidateEvaluationPlan(plan).empty());
}

TEST(PlanValidatorTest, ErrorsSortBeforeWarnings) {
  EvaluationPlan plan = SoundPlan();
  plan.metrics = {Metric::kLatency};  // No human factor (error) + missing
                                      // feedback / QIF / LCV (warnings).
  const auto issues = ValidateEvaluationPlan(plan);
  ASSERT_GE(issues.size(), 2u);
  for (size_t i = 1; i < issues.size(); ++i) {
    EXPECT_LE(static_cast<int>(issues[i - 1].severity),
              static_cast<int>(issues[i].severity));
  }
}

// --------------------------- Counterbalancing ---------------------------

TEST(CounterbalanceTest, RejectsBadInputs) {
  EXPECT_FALSE(CounterbalancedOrders(0, 5).ok());
  EXPECT_FALSE(CounterbalancedOrders(3, 0).ok());
}

TEST(CounterbalanceTest, EvenSquareIsBalanced) {
  const int n = 4;
  auto orders = CounterbalancedOrders(n, n);
  ASSERT_TRUE(orders.ok());
  ASSERT_EQ(orders->size(), 4u);
  // Each row is a permutation.
  for (const auto& row : *orders) {
    std::set<int> seen(row.begin(), row.end());
    EXPECT_EQ(seen.size(), static_cast<size_t>(n));
  }
  // Position balance: every condition appears once per position.
  for (int pos = 0; pos < n; ++pos) {
    std::set<int> at_pos;
    for (const auto& row : *orders) at_pos.insert(row[static_cast<size_t>(pos)]);
    EXPECT_EQ(at_pos.size(), static_cast<size_t>(n)) << "position " << pos;
  }
  // First-order carryover balance: each ordered adjacency appears once.
  std::map<std::pair<int, int>, int> adjacency;
  for (const auto& row : *orders) {
    for (size_t i = 1; i < row.size(); ++i) {
      ++adjacency[{row[i - 1], row[i]}];
    }
  }
  for (const auto& [pair, count] : adjacency) {
    EXPECT_EQ(count, 1) << pair.first << "->" << pair.second;
  }
}

TEST(CounterbalanceTest, OddSquareUsesReversedRows) {
  auto orders = CounterbalancedOrders(3, 6);
  ASSERT_TRUE(orders.ok());
  ASSERT_EQ(orders->size(), 6u);
  for (const auto& row : *orders) {
    std::set<int> seen(row.begin(), row.end());
    EXPECT_EQ(seen.size(), 3u);
  }
  // Over the full 2n rows, carryover is balanced: each ordered pair twice.
  std::map<std::pair<int, int>, int> adjacency;
  for (const auto& row : *orders) {
    for (size_t i = 1; i < row.size(); ++i) {
      ++adjacency[{row[i - 1], row[i]}];
    }
  }
  for (const auto& [pair, count] : adjacency) {
    EXPECT_EQ(count, 2) << pair.first << "->" << pair.second;
  }
}

TEST(CounterbalanceTest, CyclesRowsAcrossParticipants) {
  auto orders = CounterbalancedOrders(4, 10);
  ASSERT_TRUE(orders.ok());
  ASSERT_EQ(orders->size(), 10u);
  EXPECT_EQ((*orders)[0], (*orders)[4]);  // Row cycle of length 4.
  EXPECT_EQ((*orders)[1], (*orders)[5]);
}

TEST(CounterbalanceTest, SingleCondition) {
  auto orders = CounterbalancedOrders(1, 3);
  ASSERT_TRUE(orders.ok());
  for (const auto& row : *orders) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0], 0);
  }
}

}  // namespace
}  // namespace ideval
