/// End-to-end pipeline tests: behaviour model -> widget -> optimizer ->
/// scheduler -> engine -> metrics, asserting the qualitative shapes the
/// paper reports for the crossfilter case study (§7) at reduced scale.

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "metrics/frontend_metrics.h"
#include "opt/kl_filter.h"
#include "opt/throttle.h"
#include "sim/query_scheduler.h"
#include "widget/crossfilter.h"
#include "workload/crossfilter_task.h"

namespace ideval {
namespace {

class CrossfilterPipelineTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 60000;  // Scaled-down road network.

  void SetUp() override {
    RoadNetworkOptions opts;
    opts.num_rows = kRows;
    road_ = MakeRoadNetworkTable(opts).ValueOrDie();
  }

  std::vector<QueryGroup> MakeSession(DeviceType device, uint64_t seed) {
    auto view = CrossfilterView::Make(road_, {"x", "y", "z"}).ValueOrDie();
    CrossfilterUserParams p;
    p.device = device;
    p.num_moves = 12;
    p.seed = seed;
    auto trace = GenerateCrossfilterTrace(p, &view);
    EXPECT_TRUE(trace.ok());
    auto replay = CrossfilterView::Make(road_, {"x", "y", "z"}).ValueOrDie();
    auto groups = BuildQueryGroups(&replay, trace->events);
    EXPECT_TRUE(groups.ok());
    return *groups;
  }

  SessionExecution RunOn(EngineProfile profile,
                         const std::vector<QueryGroup>& groups,
                         SchedulingPolicy policy = SchedulingPolicy::kFifo) {
    EngineOptions eopts;
    eopts.profile = profile;
    Engine engine(eopts);
    EXPECT_TRUE(engine.RegisterTable(road_).ok());
    SchedulerOptions sopts;
    sopts.policy = policy;
    sopts.num_connections = 2;
    QueryScheduler scheduler(&engine, sopts);
    auto run = scheduler.Run(groups);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return *run;
  }

  TablePtr road_;
};

TEST_F(CrossfilterPipelineTest, MemoryEngineStaysInteractiveRaw) {
  auto groups = MakeSession(DeviceType::kMouse, 301);
  ASSERT_GT(groups.size(), 100u);
  auto run = RunOn(EngineProfile::kInMemoryColumnStore, groups);
  Summary latency = PerceivedLatencySummary(run.timelines);
  // §7.2: MemSQL maintains 10–50 ms even on raw workloads (scaled table
  // keeps the same order of magnitude).
  EXPECT_LT(latency.median(), 60.0);
  EXPECT_LT(latency.Quantile(0.9), 250.0);
}

TEST_F(CrossfilterPipelineTest, DiskEngineCascadesRaw) {
  auto groups = MakeSession(DeviceType::kMouse, 301);
  auto run = RunOn(EngineProfile::kDiskRowStore, groups);
  Summary latency = PerceivedLatencySummary(run.timelines);
  // §7.2: PostgreSQL's raw latencies cascade well beyond interactive; at
  // this reduced scale (60k rows vs 434k) the queue still tops 1 s, and
  // the full-scale bench (bench_fig13) shows the paper's >10 s regime.
  EXPECT_GT(latency.max(), 1000.0);
  // And violations dominate.
  LcvStats lcv = ComputeCrossfilterLcv(run.timelines);
  EXPECT_GT(lcv.ViolationFraction(), 0.8);
}

TEST_F(CrossfilterPipelineTest, KlFilterRestoresSubSecondOnDisk) {
  auto groups = MakeSession(DeviceType::kMouse, 301);
  auto filter = KlQueryFilter::Make(road_, 0.2).ValueOrDie();
  int64_t suppressed = 0;
  auto filtered = FilterQueryGroups(&filter, groups, &suppressed);
  ASSERT_TRUE(filtered.ok());
  EXPECT_GT(suppressed, static_cast<int64_t>(groups.size() / 2));

  auto raw = RunOn(EngineProfile::kDiskRowStore, groups);
  auto opt = RunOn(EngineProfile::kDiskRowStore, *filtered);
  Summary raw_lat = PerceivedLatencySummary(raw.timelines);
  Summary opt_lat = PerceivedLatencySummary(opt.timelines);
  // §7.2: with KL>0.2 the disk engine keeps sub-second latency.
  EXPECT_LT(opt_lat.Quantile(0.9), 1000.0);
  EXPECT_LT(opt_lat.median(), raw_lat.median());

  LcvStats raw_lcv = ComputeCrossfilterLcv(raw.timelines);
  LcvStats opt_lcv = ComputeCrossfilterLcv(opt.timelines);
  EXPECT_LT(opt_lcv.ViolationFraction(), raw_lcv.ViolationFraction());
}

TEST_F(CrossfilterPipelineTest, SkipPolicyBoundsBacklogOnDisk) {
  auto groups = MakeSession(DeviceType::kMouse, 301);
  auto run = RunOn(EngineProfile::kDiskRowStore, groups,
                   SchedulingPolicy::kSkipStale);
  EXPECT_GT(run.groups_skipped, 0);
  // Executed queries never wait on a long queue.
  for (const auto& t : run.timelines) {
    if (t.skipped) continue;
    EXPECT_LT(t.scheduling_latency, Duration::Seconds(1.0));
  }
}

TEST_F(CrossfilterPipelineTest, LeapMotionWorkloadDenser) {
  auto mouse = MakeSession(DeviceType::kMouse, 301);
  auto leap = MakeSession(DeviceType::kLeapMotion, 302);
  auto mouse_qif = ComputeQif([&] {
    std::vector<SimTime> ts;
    for (const auto& g : mouse) ts.push_back(g.issue_time);
    return ts;
  }());
  auto leap_qif = ComputeQif([&] {
    std::vector<SimTime> ts;
    for (const auto& g : leap) ts.push_back(g.issue_time);
    return ts;
  }());
  ASSERT_TRUE(mouse_qif.ok());
  ASSERT_TRUE(leap_qif.ok());
  // Fig. 14: the gestural device floods the backend.
  EXPECT_GT(leap_qif->qif, mouse_qif->qif * 1.5);
  EXPECT_GT(leap.size(), mouse.size() * 2);
}

TEST_F(CrossfilterPipelineTest, ThrottlingTamesDiskBackend) {
  auto groups = MakeSession(DeviceType::kLeapMotion, 303);
  QifThrottler throttler(Duration::Millis(400));
  auto throttled = ThrottleQueryGroups(&throttler, groups);
  ASSERT_LT(throttled.size(), groups.size() / 4);
  auto run = RunOn(EngineProfile::kDiskRowStore, throttled);
  Summary latency = PerceivedLatencySummary(run.timelines);
  // Matching QIF to backend capacity keeps the system responsive (Fig. 3).
  EXPECT_LT(latency.Quantile(0.9), 1500.0);
}

TEST_F(CrossfilterPipelineTest, ResultsIdenticalAcrossEngines) {
  // The two engine profiles differ in modelled time, never in answers.
  auto groups = MakeSession(DeviceType::kMouse, 305);
  groups.resize(5);
  auto disk = RunOn(EngineProfile::kDiskRowStore, groups);
  auto mem = RunOn(EngineProfile::kInMemoryColumnStore, groups);
  ASSERT_EQ(disk.timelines.size(), mem.timelines.size());
  for (size_t i = 0; i < disk.timelines.size(); ++i) {
    const auto& hd = std::get<FixedHistogram>(*disk.timelines[i].data);
    const auto& hm = std::get<FixedHistogram>(*mem.timelines[i].data);
    EXPECT_EQ(hd, hm) << "query " << i;
  }
}

}  // namespace
}  // namespace ideval
