#!/usr/bin/env bash
# Runs the serve saturation bench in smoke mode with --trace_out and checks
# the exported Chrome trace-event JSON: it must parse, contain every span
# kind of the serve pipeline, and keep each query group's spans under one
# trace id. Usage: check_trace_json.sh <path-to-bench_serve_saturation>
set -euo pipefail

BENCH="${1:?usage: check_trace_json.sh <bench_serve_saturation>}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT
TRACE="${OUT_DIR}/trace.json"

"${BENCH}" --smoke --trace_out="${TRACE}" > "${OUT_DIR}/bench.log" 2>&1 || {
  echo "FAIL: bench exited non-zero; log tail:"
  tail -20 "${OUT_DIR}/bench.log"
  exit 1
}

[ -s "${TRACE}" ] || { echo "FAIL: ${TRACE} missing or empty"; exit 1; }

python3 - "${TRACE}" <<'EOF'
import collections
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)  # Parse failure -> traceback -> nonzero exit.

assert doc.get("displayTimeUnit") == "ms", "missing displayTimeUnit"
events = doc["traceEvents"]
slices = [e for e in events if e["ph"] == "X"]
assert slices, "no complete events"

# Perfetto-loadable essentials on every slice.
for e in slices:
    for key in ("name", "pid", "tid", "ts", "dur", "args"):
        assert key in e, f"slice missing {key}: {e}"
    assert e["dur"] >= 0, f"negative duration: {e}"
    assert e["args"]["trace_id"] > 0, f"slice without trace id: {e}"

names = collections.Counter(e["name"] for e in slices)
required = {"group", "admission", "queue_wait", "cache_lookup",
            "execute", "scatter", "shard_exec", "merge"}
missing = required - set(names)
assert not missing, f"span kinds missing from the timeline: {missing}"

# Each group's pipeline shares one trace id; at least one miss trace must
# carry the full admission -> cache -> scatter -> shard -> merge chain.
by_trace = collections.defaultdict(set)
for e in slices:
    by_trace[e["args"]["trace_id"]].add(e["name"])
full = [t for t, kinds in by_trace.items() if required <= kinds]
assert full, "no trace id carries the full pipeline span chain"

# Track metadata names the processes/threads for the Perfetto UI.
meta = [e for e in events if e["ph"] == "M"]
assert any(e["name"] == "process_name" for e in meta), "no process names"
assert any(e["name"] == "thread_name" for e in meta), "no thread names"

print(f"OK: {len(slices)} spans, {len(by_trace)} traces, "
      f"{len(full)} with the full pipeline chain")
EOF
