#!/usr/bin/env bash
# Runs both bench drivers in smoke mode with --json_out and schema-checks
# the machine-readable perf-trajectory exports: required keys, sane types,
# finite numbers, a non-empty time series, and counters that reconcile.
# The headline KEY SETS are diffed against the committed baselines
# (BENCH_serve.json / BENCH_engine.json at the repo root) so a schema
# drift fails CI; headline VALUES are machine-dependent and printed for
# information only.
# Usage: check_bench_json.sh <bench_serve_saturation> <bench_perf_engine>
#                            <source_dir>
set -euo pipefail

SERVE_BENCH="${1:?usage: check_bench_json.sh <bench_serve_saturation> <bench_perf_engine> <source_dir>}"
ENGINE_BENCH="${2:?missing <bench_perf_engine>}"
SRC_DIR="${3:?missing <source_dir>}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT
SERVE_JSON="${OUT_DIR}/BENCH_serve.json"
ENGINE_JSON="${OUT_DIR}/BENCH_engine.json"

"${SERVE_BENCH}" --smoke --json_out="${SERVE_JSON}" \
    > "${OUT_DIR}/serve.log" 2>&1 || {
  echo "FAIL: bench_serve_saturation exited non-zero; log tail:"
  tail -20 "${OUT_DIR}/serve.log"
  exit 1
}
"${ENGINE_BENCH}" --benchmark_filter=NO_BENCHMARKS_JUST_EXPORT \
    --json_reps=3 --json_out="${ENGINE_JSON}" \
    > "${OUT_DIR}/engine.log" 2>&1 || {
  echo "FAIL: bench_perf_engine exited non-zero; log tail:"
  tail -20 "${OUT_DIR}/engine.log"
  exit 1
}

[ -s "${SERVE_JSON}" ] || { echo "FAIL: ${SERVE_JSON} missing or empty"; exit 1; }
[ -s "${ENGINE_JSON}" ] || { echo "FAIL: ${ENGINE_JSON} missing or empty"; exit 1; }

python3 - "${SERVE_JSON}" "${ENGINE_JSON}" "${SRC_DIR}" <<'EOF'
import json
import math
import sys

serve_path, engine_path, src_dir = sys.argv[1:4]


def load(path):
    with open(path) as f:
        return json.load(f)  # Parse failure -> traceback -> nonzero exit.


def finite(x, what):
    assert isinstance(x, (int, float)) and math.isfinite(x), \
        f"{what} is not a finite number: {x!r}"


def check_metrics_block(doc, what):
    metrics = doc["metrics"]["metrics"]
    assert metrics, f"{what}: empty metrics exposition"
    for m in metrics:
        assert m["type"] in ("counter", "gauge", "histogram"), m
        assert m["name"] and m["help"], f"{what}: unnamed/unhelped metric {m}"
        if m["type"] == "histogram":
            assert len(m["buckets"]) == len(m["bounds"]) + 1, m
            assert sum(m["buckets"]) == m["count"], \
                f"{what}: bucket counts disagree with count: {m}"
        else:
            finite(m["value"], f"{what}:{m['name']}")
    return {m["name"] for m in metrics}


# ------------------------------- serve -------------------------------
serve = load(serve_path)
assert serve["schema"] == "ideval.bench.serve.v1", serve.get("schema")
assert serve["bench"] == "bench_serve_saturation"
for key in ("config", "overhead", "net", "headline", "series", "metrics"):
    assert key in serve, f"serve export missing {key}"
for key in ("workers", "clients", "shards", "policy", "shared_cache",
            "zone_maps", "smoke", "rows", "moves", "time_compression",
            "stats_poll_ms"):
    assert key in serve["config"], f"serve config missing {key}"
for key in ("qps_metrics_off", "qps_metrics_on", "delta_pct"):
    finite(serve["overhead"][key], f"overhead.{key}")

# The loopback run: every field finite, work actually done, and the byte
# counters from the two ends of the socket agreeing exactly (the drain
# protocol guarantees it; a mismatch means lost or double-counted bytes).
net = serve["net"]
for key in ("qps_in_process", "qps_net", "delta_pct", "qif_net_qps",
            "latency_p90_net_ms", "lcv_fraction_net", "groups_executed_net",
            "server_bytes_sent", "server_bytes_received",
            "client_bytes_sent", "client_bytes_received", "frames_sent",
            "frames_received", "connections_accepted", "write_queue_shed",
            "protocol_errors", "interactions", "bytes_per_interaction"):
    finite(net[key], f"net.{key}")
assert net["qps_net"] > 0, "net run produced zero throughput"
assert net["groups_executed_net"] > 0, "net run executed no groups"
assert net["client_bytes_sent"] == net["server_bytes_received"], \
    "client->server bytes do not reconcile"
assert net["client_bytes_received"] == net["server_bytes_sent"], \
    "server->client bytes do not reconcile"
assert net["server_bytes_sent"] > 0 and net["server_bytes_received"] > 0
assert net["protocol_errors"] == 0, "protocol errors on a clean loopback run"
assert net["interactions"] > 0 and net["bytes_per_interaction"] > 0
headline = serve["headline"]
for key, value in headline.items():
    finite(value, f"headline.{key}")
assert headline["groups_executed"] > 0, "no groups executed"
assert headline["throughput_qps"] > 0, "zero throughput"
assert headline["groups_submitted"] >= headline["groups_executed"]

series = serve["series"]
assert series["period_ms"] > 0
assert series["pushed"] >= 1, "stats poller pushed no samples"
samples = series["samples"]
assert samples, "empty time series"
sample_keys = {"t_s", "qif_qps", "throughput_window_qps", "shed_per_s",
               "reject_per_s", "queue_depth", "lcv_fraction", "load_factor",
               "load_state", "cache_hit_rate", "trace_dropped",
               "latency_p50_ms", "latency_p90_ms", "submitted", "executed",
               "shed", "rejected"}
for s in samples:
    missing = sample_keys - set(s)
    assert not missing, f"sample missing {missing}"
ts = [s["t_s"] for s in samples]
assert ts == sorted(ts), "time series not in time order"

serve_metric_names = check_metrics_block(serve, "serve")
assert "ideval_serve_groups_submitted_total" in serve_metric_names
assert "ideval_serve_group_latency_ms" in serve_metric_names

# The exposition and the headline describe the same drained run.
by_name = {m["name"]: m for m in serve["metrics"]["metrics"]}
assert by_name["ideval_serve_groups_submitted_total"]["value"] \
    == headline["groups_submitted"], "submitted: exposition != headline"
assert by_name["ideval_serve_groups_executed_total"]["value"] \
    == headline["groups_executed"], "executed: exposition != headline"
assert by_name["ideval_serve_group_latency_ms"]["count"] \
    == headline["groups_executed"], "latency count != executed"

# ------------------------------- engine -------------------------------
engine = load(engine_path)
assert engine["schema"] == "ideval.bench.engine.v1", engine.get("schema")
assert engine["bench"] == "bench_perf_engine"
assert engine["config"]["reps"] >= 1
shapes = {"crossfilter_histogram", "select_page", "join_page"}
assert set(engine["headline"]) == shapes, set(engine["headline"])
for shape, h in engine["headline"].items():
    for key in ("mean_ms", "qps", "tuples_per_query", "pruned_pct"):
        finite(h[key], f"engine {shape}.{key}")
    assert h["qps"] > 0, f"{shape}: zero qps"
check_metrics_block(engine, "engine")

# --------------------------- baseline diff ---------------------------
# Key-set comparison against the committed baselines: values drift with
# the machine, the schema must not.
import os
for name, fresh in (("BENCH_serve.json", serve), ("BENCH_engine.json",
                                                  engine)):
    base_path = os.path.join(src_dir, name)
    assert os.path.exists(base_path), f"committed baseline {name} missing"
    base = load(base_path)
    assert base["schema"] == fresh["schema"], \
        f"{name}: schema version drifted ({base['schema']})"
    base_keys, fresh_keys = set(base["headline"]), set(fresh["headline"])
    assert base_keys == fresh_keys, (
        f"{name}: headline schema drifted "
        f"(+{fresh_keys - base_keys} -{base_keys - fresh_keys})")
    for key in sorted(fresh_keys & base_keys):
        b, f_ = base["headline"].get(key), fresh["headline"].get(key)
        if isinstance(b, (int, float)) and isinstance(f_, (int, float)) \
                and b not in (0, -1.0):
            print(f"  info {name} headline.{key}: "
                  f"baseline {b} vs this run {f_}")

print(f"OK: serve export {len(samples)} samples / "
      f"{len(serve_metric_names)} metrics; engine export "
      f"{len(engine['headline'])} shapes; schemas match baselines")
EOF
