#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_writer.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/text_table.h"

namespace ideval {
namespace {

// --------------------------- Status / Result ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailingOperation() { return Status::NotFound("missing"); }

Status UsesReturnNotOk() {
  IDEVAL_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IDEVAL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

// --------------------------------- Rng ---------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, ss = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    ss += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(ss / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(17);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t r = rng.Zipf(100, 1.1);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 100);
    if (r <= 10) ++low;
    if (r > 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 10.0, 0.0, 1.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[1], counts[3] * 5);
}

TEST(RngTest, WeightedIndexDegenerate) {
  Rng rng(21);
  EXPECT_EQ(rng.WeightedIndex({}), 0u);
  EXPECT_EQ(rng.WeightedIndex({0.0, 0.0}), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------- SimTime -------------------------------

TEST(SimTimeTest, Arithmetic) {
  const SimTime t = SimTime::FromMillis(100);
  const Duration d = Duration::Millis(50);
  EXPECT_EQ((t + d).millis(), 150.0);
  EXPECT_EQ((t - d).millis(), 50.0);
  EXPECT_EQ(((t + d) - t).millis(), 50.0);
  EXPECT_LT(t, t + d);
}

TEST(DurationTest, ConversionsAndScaling) {
  const Duration d = Duration::Seconds(1.5);
  EXPECT_EQ(d.micros(), 1500000);
  EXPECT_DOUBLE_EQ(d.millis(), 1500.0);
  EXPECT_DOUBLE_EQ((d * 2.0).seconds(), 3.0);
  EXPECT_DOUBLE_EQ((d / 3).millis(), 500.0);
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Micros(500).ToString(), "500us");
  EXPECT_EQ(Duration::Millis(12).ToString(), "12.00ms");
  EXPECT_EQ(Duration::Seconds(2.5).ToString(), "2.500s");
}

// -------------------------------- Stats --------------------------------

TEST(SummaryTest, BasicStatistics) {
  Summary s({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SummaryTest, EmptySampleIsZero) {
  Summary s({});
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

TEST(SummaryTest, QuantileMonotone) {
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Gaussian(10.0, 3.0));
  Summary s(values);
  double prev = s.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SummaryTest, CdfAtEndpoints) {
  Summary s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
}

TEST(FixedHistogramTest, RejectsBadShape) {
  EXPECT_FALSE(FixedHistogram::Make(0.0, 1.0, 0).ok());
  EXPECT_FALSE(FixedHistogram::Make(1.0, 1.0, 4).ok());
  EXPECT_FALSE(FixedHistogram::Make(2.0, 1.0, 4).ok());
}

TEST(FixedHistogramTest, BinningAndClamping) {
  auto h = FixedHistogram::Make(0.0, 10.0, 5);
  ASSERT_TRUE(h.ok());
  h->Add(0.5);    // bin 0
  h->Add(9.99);   // bin 4
  h->Add(-3.0);   // clamped to bin 0
  h->Add(42.0);   // clamped to bin 4
  h->Add(5.0);    // bin 2
  EXPECT_DOUBLE_EQ(h->count(0), 2.0);
  EXPECT_DOUBLE_EQ(h->count(2), 1.0);
  EXPECT_DOUBLE_EQ(h->count(4), 2.0);
  EXPECT_DOUBLE_EQ(h->total(), 5.0);
  EXPECT_DOUBLE_EQ(h->BinLowerEdge(2), 4.0);
}

TEST(FixedHistogramTest, NormalizedSumsToOne) {
  auto h = FixedHistogram::Make(0.0, 1.0, 4);
  ASSERT_TRUE(h.ok());
  h->Add(0.1, 3.0);
  h->Add(0.9, 1.0);
  double total = 0.0;
  for (double v : h->Normalized()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FixedHistogramTest, EmptyNormalizesToUniform) {
  auto h = FixedHistogram::Make(0.0, 1.0, 4);
  ASSERT_TRUE(h.ok());
  for (double v : h->Normalized()) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(KlDivergenceTest, IdenticalIsZero) {
  std::vector<double> p = {1.0, 2.0, 3.0, 4.0};
  auto kl = KlDivergence(p, p);
  ASSERT_TRUE(kl.ok());
  EXPECT_DOUBLE_EQ(*kl, 0.0);
}

TEST(KlDivergenceTest, ErrorsOnShapeMismatch) {
  EXPECT_FALSE(KlDivergence({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(KlDivergence({}, {}).ok());
  EXPECT_FALSE(KlDivergence({-1.0, 1.0}, {1.0, 1.0}).ok());
}

TEST(KlDivergenceTest, AsymmetricAndPositive) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.1, 0.9};
  auto pq = KlDivergence(p, q);
  auto qp = KlDivergence(q, p);
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(qp.ok());
  EXPECT_GT(*pq, 0.0);
  EXPECT_GT(*qp, 0.0);
}

TEST(KlDivergenceTest, FiniteWithEmptyBins) {
  std::vector<double> p = {1.0, 0.0, 0.0};
  std::vector<double> q = {0.0, 0.0, 1.0};
  auto kl = KlDivergence(p, q);
  ASSERT_TRUE(kl.ok());
  EXPECT_TRUE(std::isfinite(*kl));
  EXPECT_GT(*kl, 1.0);  // Very different distributions diverge strongly.
}

/// Property sweep: KL is nonnegative and zero only for identical
/// distributions, across random distribution pairs.
class KlPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KlPropertyTest, NonNegativity) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  std::vector<double> p(8), q(8);
  for (auto& v : p) v = rng.Uniform(0.0, 5.0);
  for (auto& v : q) v = rng.Uniform(0.0, 5.0);
  auto kl = KlDivergence(p, q, 1e-9);
  ASSERT_TRUE(kl.ok());
  EXPECT_GE(*kl, 0.0);
  auto self = KlDivergence(p, p, 1e-9);
  ASSERT_TRUE(self.ok());
  EXPECT_NEAR(*self, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, KlPropertyTest,
                         ::testing::Range(0, 25));

TEST(EmpiricalCdfTest, FractionsReachOne) {
  auto cdf = EmpiricalCdf({5.0, 1.0, 3.0, 2.0, 4.0}, 5);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(EmpiricalCdfTest, EmptyInput) {
  EXPECT_TRUE(EmpiricalCdf({}, 5).empty());
}

// ------------------------------ TextTable ------------------------------

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.ToString());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTableTest, AddCountRowJoinsCounts) {
  TextTable t({"metric", "value"});
  t.AddCountRow("submitted / executed / shed", {20, 15, 5});
  t.AddCountRow("sessions", {1});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("20 / 15 / 5"), std::string::npos);
  // A single count renders bare, without separators.
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);

  // int64 range survives the formatting.
  TextTable big({"metric", "value"});
  big.AddCountRow("big", {int64_t{1} << 40, -7});
  EXPECT_NE(big.ToString().find("1099511627776 / -7"), std::string::npos);
}

// ------------------------------ JsonWriter ------------------------------

TEST(JsonWriterTest, NestsObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("serve");
  w.Key("qps").Double(1234.5);
  w.Key("count").Int(-3);
  w.Key("on").Bool(true);
  w.Key("off").Bool(false);
  w.Key("none").Null();
  w.Key("series").BeginArray();
  w.Int(1).Int(2);
  w.BeginObject();
  w.Key("x").Double(0.5);
  w.EndObject();
  w.EndArray();
  w.Key("nested").Raw("{\"pre\":1}");
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(),
            "{\"name\":\"serve\",\"qps\":1234.5,\"count\":-3,\"on\":true,"
            "\"off\":false,\"none\":null,\"series\":[1,2,{\"x\":0.5}],"
            "\"nested\":{\"pre\":1}}");
}

TEST(JsonWriterTest, EscapesAndNonFiniteDoubles) {
  JsonWriter w;
  w.BeginArray();
  w.String("a\"b\\c\nd\te");
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(),
            "[\"a\\\"b\\\\c\\nd\\te\",null,null]");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

TEST(AsciiBarTest, ScalesWithValue) {
  EXPECT_EQ(AsciiBar(10.0, 10.0, 10).size(), 10u);
  EXPECT_EQ(AsciiBar(5.0, 10.0, 10).size(), 5u);
  EXPECT_EQ(AsciiBar(0.0, 10.0, 10).size(), 0u);
  EXPECT_EQ(AsciiBar(20.0, 10.0, 10).size(), 10u);  // Clamped.
}

}  // namespace
}  // namespace ideval
