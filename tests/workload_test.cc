#include <map>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "workload/crossfilter_task.h"
#include "workload/explore_task.h"
#include "workload/scroll_task.h"
#include "workload/trace_io.h"

namespace ideval {
namespace {

// ------------------------------ Scroll task ------------------------------

ScrollTaskOptions DefaultScrollTask() {
  ScrollTaskOptions o;
  o.scroller.total_tuples = 4000;
  return o;
}

ScrollUserParams MedianUser() {
  ScrollUserParams p;
  p.user_id = 0;
  p.peak_velocity_px_s = 8741.0;
  p.interest_prob = 0.02;
  p.seed = 1234;
  return p;
}

TEST(ScrollTaskTest, SkimsEntireList) {
  auto trace = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->events.size(), 500u);
  // User reached the end of the 4000-tuple list.
  int64_t max_tuple = 0;
  for (const auto& e : trace->events) {
    max_tuple = std::max(max_tuple, e.top_tuple);
  }
  EXPECT_GT(max_tuple, 3900);
  // Timestamps nondecreasing.
  for (size_t i = 1; i < trace->events.size(); ++i) {
    EXPECT_GE(trace->events[i].time, trace->events[i - 1].time);
  }
}

TEST(ScrollTaskTest, SelectsAndBackscrolls) {
  auto trace = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  ASSERT_TRUE(trace.ok());
  // ~0.02 * 4000 = ~80 selections expected.
  EXPECT_GT(trace->selections.size(), 30u);
  EXPECT_LT(trace->selections.size(), 200u);
  // Momentum forces corrective backscrolls for a solid share of them.
  EXPECT_GT(trace->total_backscrolls, 0);
  int64_t with_backscroll = 0;
  for (const auto& s : trace->selections) {
    with_backscroll += (s.backscrolls > 0);
  }
  EXPECT_GT(with_backscroll, static_cast<int64_t>(
                                 trace->selections.size() / 4));
}

TEST(ScrollTaskTest, SpeedsMatchTable7Regime) {
  auto trace = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  ASSERT_TRUE(trace.ok());
  ScrollSpeeds speeds = ComputeScrollSpeeds(*trace, 157.0);
  ASSERT_FALSE(speeds.px_per_s.empty());
  Summary px(speeds.px_per_s);
  Summary tuples(speeds.tuples_per_s);
  // Median user's peak ~8741 px/s ≈ 56 tuples/s (Table 7 median of max 58).
  EXPECT_NEAR(px.max(), 8741.0, 2500.0);
  EXPECT_NEAR(tuples.max(), 8741.0 / 157.0, 16.0);
  // Average speed well below the peak (glide decay + Table 7's avg band).
  EXPECT_LT(px.mean(), px.max() / 2.0);
}

TEST(ScrollTaskTest, ValidatesParams) {
  ScrollUserParams p = MedianUser();
  p.peak_velocity_px_s = -1.0;
  EXPECT_FALSE(GenerateScrollTrace(p, DefaultScrollTask()).ok());
  p = MedianUser();
  p.interest_prob = 2.0;
  EXPECT_FALSE(GenerateScrollTrace(p, DefaultScrollTask()).ok());
}

TEST(ScrollTaskTest, PopulationSpansTable7Ranges) {
  Rng rng(61);
  auto users = SampleScrollUsers(15, &rng);
  ASSERT_EQ(users.size(), 15u);
  for (const auto& u : users) {
    EXPECT_GE(u.peak_velocity_px_s, 1824.0);
    EXPECT_LE(u.peak_velocity_px_s, 31517.0);
  }
}

TEST(ScrollTaskTest, DeterministicGivenSeed) {
  auto a = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  auto b = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->events.size(), b->events.size());
  EXPECT_EQ(a->selections.size(), b->selections.size());
  EXPECT_DOUBLE_EQ(a->events.back().scroll_top_px,
                   b->events.back().scroll_top_px);
}

// ---------------------------- Crossfilter task ----------------------------

class CrossfilterTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RoadNetworkOptions opts;
    opts.num_rows = 5000;
    road_ = MakeRoadNetworkTable(opts).ValueOrDie();
  }
  CrossfilterTrace MakeTrace(DeviceType device) {
    auto view = CrossfilterView::Make(road_, {"x", "y", "z"});
    EXPECT_TRUE(view.ok());
    CrossfilterUserParams p;
    p.device = device;
    p.num_moves = 20;
    p.seed = 77;
    auto trace = GenerateCrossfilterTrace(p, &*view);
    EXPECT_TRUE(trace.ok());
    return *trace;
  }
  TablePtr road_;
};

TEST_F(CrossfilterTaskTest, LeapGeneratesFarMoreEvents) {
  const auto mouse = MakeTrace(DeviceType::kMouse);
  const auto leap = MakeTrace(DeviceType::kLeapMotion);
  // Fig. 14: leap event counts dwarf mouse (scale 2500 vs 120): the
  // frictionless device keeps firing during dwells.
  EXPECT_GT(leap.events.size(), mouse.events.size() * 2);
  EXPECT_GT(mouse.events.size(), 100u);
}

TEST_F(CrossfilterTaskTest, EventsMonotoneAndInDomain) {
  const auto trace = MakeTrace(DeviceType::kTouchTablet);
  auto view = CrossfilterView::Make(road_, {"x", "y", "z"});
  ASSERT_TRUE(view.ok());
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_GE(trace.events[i].time, trace.events[i - 1].time);
  }
  for (const auto& e : trace.events) {
    ASSERT_GE(e.slider_index, 0);
    ASSERT_LT(e.slider_index, 3);
    const RangeSlider& s =
        view->slider(static_cast<size_t>(e.slider_index));
    EXPECT_GE(e.min_val, s.domain_lo() - 1e-9);
    EXPECT_LE(e.max_val, s.domain_hi() + 1e-9);
    EXPECT_LE(e.min_val, e.max_val + 1e-9);
  }
}

TEST_F(CrossfilterTaskTest, BuildQueryGroupsCoordinates) {
  const auto trace = MakeTrace(DeviceType::kMouse);
  auto view = CrossfilterView::Make(road_, {"x", "y", "z"});
  ASSERT_TRUE(view.ok());
  auto groups = BuildQueryGroups(&*view, trace.events);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), trace.events.size());
  for (const auto& g : *groups) {
    EXPECT_EQ(g.queries.size(), 2u);  // n-1 coordinated views.
  }
}

TEST_F(CrossfilterTaskTest, ValidatesInputs) {
  CrossfilterUserParams p;
  EXPECT_FALSE(GenerateCrossfilterTrace(p, nullptr).ok());
  auto view = CrossfilterView::Make(road_, {"x", "y"});
  ASSERT_TRUE(view.ok());
  p.num_moves = 0;
  EXPECT_FALSE(GenerateCrossfilterTrace(p, &*view).ok());
  EXPECT_FALSE(BuildQueryGroups(nullptr, {}).ok());
}

// ------------------------------ Explore task ------------------------------

CompositeInterface MakeUi() {
  CompositeInterface::Options opts;
  opts.destinations = {{"Birmingham", 33.5, -86.8, 12},
                       {"Atlanta", 33.7, -84.4, 12},
                       {"Nashville", 36.1, -86.8, 11},
                       {"Memphis", 35.1, -90.0, 12}};
  return CompositeInterface(MapWidget(32.0, -86.0, 11), std::move(opts));
}

TEST(ExploreTaskTest, SessionLastsAtLeastTwentyMinutes) {
  CompositeInterface ui = MakeUi();
  ExploreUserParams p;
  p.seed = 11;
  auto trace = GenerateExploreTrace(p, &ui);
  ASSERT_TRUE(trace.ok());
  EXPECT_GE(trace->session_duration, Duration::Seconds(20 * 60));
  EXPECT_GT(trace->phases.size(), 20u);
}

TEST(ExploreTaskTest, WidgetMixResemblesTable9) {
  // Aggregate several users so shares stabilize.
  std::map<WidgetKind, int> counts;
  int total = 0;
  Rng rng(81);
  auto users = SampleExploreUsers(8, &rng);
  for (const auto& u : users) {
    CompositeInterface ui = MakeUi();
    auto trace = GenerateExploreTrace(u, &ui);
    ASSERT_TRUE(trace.ok());
    for (const auto& phase : trace->phases) {
      ++counts[phase.request.widget];
      ++total;
    }
  }
  const double map_share =
      static_cast<double>(counts[WidgetKind::kMap]) / total;
  const double filter_share =
      static_cast<double>(counts[WidgetKind::kSlider] +
                          counts[WidgetKind::kCheckbox]) /
      total;
  // Table 9: map 62.8%, slider+checkbox 29.9%, button 3.6%, text 3.6%.
  EXPECT_NEAR(map_share, 0.628, 0.06);
  EXPECT_NEAR(filter_share, 0.299, 0.06);
  EXPECT_GT(counts[WidgetKind::kButton], 0);
  EXPECT_GT(counts[WidgetKind::kTextBox], 0);
}

TEST(ExploreTaskTest, ZoomWalkStaysNearStart) {
  Rng rng(82);
  auto users = SampleExploreUsers(6, &rng);
  int beyond_three = 0, within = 0;
  for (const auto& u : users) {
    CompositeInterface ui = MakeUi();
    auto trace = GenerateExploreTrace(u, &ui);
    ASSERT_TRUE(trace.ok());
    for (const auto& phase : trace->phases) {
      const int depth = phase.request.zoom_level - u.start_zoom;
      if (depth > 3 || depth < -1) {
        ++beyond_three;
      } else {
        ++within;
      }
      // Fig. 18's band.
      EXPECT_GE(phase.request.zoom_level, 8);
      EXPECT_LE(phase.request.zoom_level, 17);
    }
  }
  // Fig. 18: all but (rarely) one user stay within 3 levels of start.
  EXPECT_GT(within, beyond_three * 20);
}

TEST(ExploreTaskTest, TimesMatchFig21Regime) {
  CompositeInterface ui = MakeUi();
  ExploreUserParams p;
  p.seed = 13;
  auto trace = GenerateExploreTrace(p, &ui);
  ASSERT_TRUE(trace.ok());
  std::vector<double> explore_s, request_s;
  for (const auto& phase : trace->phases) {
    explore_s.push_back(phase.exploration_time.seconds());
    request_s.push_back(phase.request_time.seconds());
  }
  Summary explore(explore_s), request(request_s);
  // Fig. 21: ~80% of exploration > 1 s; ~80% of requests < 1 s.
  EXPECT_LT(explore.CdfAt(1.0), 0.35);
  EXPECT_GT(request.CdfAt(1.0), 0.6);
  EXPECT_GT(explore.mean(), request.mean() * 4.0);
}

TEST(ExploreTaskTest, ValidatesInputs) {
  ExploreUserParams p;
  EXPECT_FALSE(GenerateExploreTrace(p, nullptr).ok());
  CompositeInterface no_dest(MapWidget(0, 0, 10),
                             CompositeInterface::Options{});
  EXPECT_FALSE(GenerateExploreTrace(p, &no_dest).ok());
}

// -------------------------------- Trace IO --------------------------------

TEST(TraceIoTest, CsvHeadersAndRows) {
  auto scroll = GenerateScrollTrace(MedianUser(), DefaultScrollTask());
  ASSERT_TRUE(scroll.ok());
  const std::string csv = ScrollTraceToCsv(*scroll);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "timestamp_ms,scroll_top_px,top_tuple,delta_px");
  // One line per event plus header.
  EXPECT_EQ(static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n')),
            scroll->events.size() + 1);
}

TEST(TraceIoTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ideval_trace.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
}

TEST(TraceIoTest, WriteFileBadPathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir/zz/file.csv", "x").ok());
}

}  // namespace
}  // namespace ideval
