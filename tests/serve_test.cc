#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/load_driver.h"
#include "serve/server.h"

namespace ideval {
namespace {

TablePtr MakeServeTable(int64_t rows) {
  Schema schema({{"v", DataType::kDouble}});
  TableBuilder b("t", schema);
  for (int64_t i = 0; i < rows; ++i) {
    b.MustAppendRow({Value(static_cast<double>(i))});
  }
  return std::move(b).Finish().ValueOrDie();
}

Query HistQuery(int64_t rows, int64_t bins = 20) {
  HistogramQuery q;
  q.table = "t";
  q.bin_column = "v";
  q.bin_lo = 0.0;
  q.bin_hi = static_cast<double>(rows);
  q.bins = bins;
  return q;
}

/// Engine over a `rows`-sized table; bigger tables = slower service.
class ServeTest : public ::testing::Test {
 protected:
  void MakeEngine(int64_t rows) {
    rows_ = rows;
    engine_ = std::make_unique<Engine>(EngineOptions{});
    ASSERT_TRUE(engine_->RegisterTable(MakeServeTable(rows)).ok());
  }

  std::unique_ptr<QueryServer> MakeServer(ServerOptions opts) {
    auto server = QueryServer::Create(engine_.get(), opts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).ValueOrDie();
  }

  std::vector<Query> Group(int64_t bins = 20) {
    return {HistQuery(rows_, bins)};
  }

  int64_t rows_ = 0;
  std::unique_ptr<Engine> engine_;
};

void ExpectReconciles(const ServerStatsSnapshot& snap) {
  // Every submitted group must land in exactly one terminal bucket.
  EXPECT_EQ(snap.totals.groups_submitted,
            snap.totals.groups_executed + snap.totals.GroupsShed() +
                snap.totals.groups_rejected + snap.groups_queued);
  // The door partitions submissions: admitted past it, shed at it
  // (throttled), or rejected. Post-admission sheds (stale, coalesced)
  // must come out of the admitted count.
  EXPECT_EQ(snap.totals.groups_submitted,
            snap.totals.groups_admitted + snap.totals.groups_shed_throttled +
                snap.totals.groups_rejected);
  EXPECT_EQ(snap.totals.groups_admitted,
            snap.totals.groups_executed + snap.totals.groups_shed_stale +
                snap.totals.groups_shed_coalesced + snap.groups_queued);
  SessionCounters sum;
  int64_t queued = 0;
  for (const auto& row : snap.sessions) {
    EXPECT_EQ(row.counters.groups_submitted,
              row.counters.groups_executed + row.counters.GroupsShed() +
                  row.counters.groups_rejected + row.queued);
    EXPECT_EQ(row.counters.groups_submitted,
              row.counters.groups_admitted +
                  row.counters.groups_shed_throttled +
                  row.counters.groups_rejected);
    // A session that ever queued a group must have seen depth >= 1.
    if (row.counters.groups_admitted > 0) EXPECT_GE(row.queue_hwm, 1);
    sum += row.counters;
    queued += row.queued;
  }
  EXPECT_EQ(sum.groups_submitted, snap.totals.groups_submitted);
  EXPECT_EQ(sum.groups_executed, snap.totals.groups_executed);
  EXPECT_EQ(queued, snap.groups_queued);
}

TEST_F(ServeTest, CreateValidatesOptions) {
  MakeEngine(100);
  ServerOptions opts;
  opts.num_workers = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.num_workers = -3;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = ServerOptions{};
  opts.max_queue_per_session = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = ServerOptions{};
  opts.enable_session_cache = true;
  opts.session_cache_capacity = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryServer::Create(static_cast<const Engine*>(nullptr),
                                ServerOptions{}).status().code(),
            StatusCode::kInvalidArgument);
  // The per-session and shared caches are mutually exclusive, and the
  // shared cache's knobs must be positive.
  opts = ServerOptions{};
  opts.enable_session_cache = true;
  opts.enable_shared_cache = true;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = ServerOptions{};
  opts.enable_shared_cache = true;
  opts.shared_cache_bytes = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = ServerOptions{};
  opts.enable_shared_cache = true;
  opts.shared_cache_shards = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  // Tracing needs a positive ring capacity (only checked when enabled).
  opts = ServerOptions{};
  opts.enable_tracing = true;
  opts.trace_buffer_spans = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.enable_tracing = false;
  EXPECT_TRUE(QueryServer::Create(engine_.get(), opts).ok());
}

TEST_F(ServeTest, ExecutesRealQueriesAndCounts) {
  MakeEngine(1000);
  auto server = MakeServer(ServerOptions{});
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 5; ++i) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->disposition, SubmitDisposition::kEnqueued);
    server->Drain();
  }
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.totals.groups_submitted, 5);
  EXPECT_EQ(snap.totals.groups_executed, 5);
  EXPECT_EQ(snap.totals.queries_executed, 5);
  EXPECT_EQ(snap.totals.queries_failed, 0);
  // Draining between submissions means no interaction ever outpaced
  // execution — the zero-latency regime.
  EXPECT_EQ(snap.totals.lcv_violations, 0);
  EXPECT_GT(snap.latency_mean_ms, 0.0);
  EXPECT_GE(snap.latency_p90_ms, 0.0);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, UnknownAndClosedSessionsAreErrors) {
  MakeEngine(100);
  auto server = MakeServer(ServerOptions{});
  EXPECT_EQ(server->Submit(42, Group()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server->CloseSession(42).code(), StatusCode::kNotFound);
  const uint64_t sid = server->OpenSession();
  ASSERT_TRUE(server->CloseSession(sid).ok());
  EXPECT_EQ(server->Submit(sid, Group()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server->Submit(sid, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, FifoQueueOverflowPushesBack) {
  MakeEngine(400000);  // Slow enough that a burst outruns one worker.
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 2;
  opts.policy = AdmissionPolicy::kFifo;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  int64_t rejected = 0;
  for (int i = 0; i < 20; ++i) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok());
    rejected += out->disposition == SubmitDisposition::kRejected;
  }
  server->Drain();
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.totals.groups_submitted, 20);
  EXPECT_EQ(snap.totals.groups_rejected, rejected);
  EXPECT_GE(rejected, 1);  // Cap 2 + one in flight can't absorb 20.
  // FIFO never sheds — whatever was admitted ran.
  EXPECT_EQ(snap.totals.GroupsShed(), 0);
  EXPECT_EQ(snap.totals.groups_executed, 20 - rejected);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, SkipStaleShedsWithAccounting) {
  MakeEngine(400000);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 4;
  opts.policy = AdmissionPolicy::kSkipStale;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 20; ++i) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok());
    // Skip-stale sheds instead of pushing back; the door always admits.
    EXPECT_NE(out->disposition, SubmitDisposition::kRejected);
  }
  server->Drain();
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.totals.groups_submitted, 20);
  EXPECT_GE(snap.totals.groups_shed_stale, 1);
  EXPECT_EQ(snap.totals.groups_rejected, 0);
  EXPECT_LT(snap.totals.groups_executed, 20);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, ThrottleShedsAtTheDoor) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.policy = AdmissionPolicy::kThrottle;
  opts.throttle_min_interval = Duration::Seconds(10.0);
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  int64_t throttled = 0;
  for (int i = 0; i < 5; ++i) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok());
    throttled += out->disposition == SubmitDisposition::kThrottled;
  }
  server->Drain();
  auto snap = server->Snapshot();
  // The burst sits far inside one min_interval: first passes, rest shed.
  EXPECT_EQ(throttled, 4);
  EXPECT_EQ(snap.totals.groups_executed, 1);
  EXPECT_EQ(snap.totals.groups_shed_throttled, 4);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, DebounceCoalescesToTheNewest) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.policy = AdmissionPolicy::kDebounce;
  // Far longer than the burst below, so no group becomes runnable
  // mid-burst even on a heavily loaded machine.
  opts.debounce_quiet = Duration::Seconds(1.0);
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  int64_t coalesced = 0;
  for (int i = 0; i < 5; ++i) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok());
    coalesced += out->disposition == SubmitDisposition::kCoalesced;
  }
  server->Drain();
  auto snap = server->Snapshot();
  // Only the interaction the user settled on runs (trailing edge).
  EXPECT_EQ(snap.totals.groups_executed, 1);
  EXPECT_EQ(snap.totals.groups_shed_coalesced, 4);
  EXPECT_EQ(coalesced, 4);
  // And it ran only after the quiet period.
  EXPECT_GE(snap.latency_mean_ms, opts.debounce_quiet.millis());
  ExpectReconciles(snap);
}

TEST_F(ServeTest, SessionCacheServesRepeats) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.enable_session_cache = true;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  ASSERT_TRUE(server->Submit(sid, Group()).ok());
  server->Drain();
  ASSERT_TRUE(server->Submit(sid, Group()).ok());  // Identical query.
  server->Drain();
  ASSERT_TRUE(server->Submit(sid, Group(10)).ok());  // Different bins.
  server->Drain();
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.totals.queries_executed, 3);
  EXPECT_EQ(snap.totals.cache_hits, 1);

  // A second session has an isolated cache: the same query misses.
  const uint64_t other = server->OpenSession();
  ASSERT_TRUE(server->Submit(other, Group()).ok());
  server->Drain();
  snap = server->Snapshot();
  EXPECT_EQ(snap.totals.cache_hits, 1);
}

TEST_F(ServeTest, SharedCacheServesAcrossSessions) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.enable_shared_cache = true;
  auto server = MakeServer(opts);

  // Session A warms the cache; session B's identical query hits — the
  // cross-session sharing the per-session cache cannot provide.
  const uint64_t a = server->OpenSession();
  const uint64_t b = server->OpenSession();
  ASSERT_TRUE(server->Submit(a, Group()).ok());
  server->Drain();
  ASSERT_TRUE(server->Submit(b, Group()).ok());
  server->Drain();
  auto snap = server->Snapshot();
  EXPECT_TRUE(snap.result_cache_enabled);
  EXPECT_EQ(snap.totals.queries_executed, 2);
  EXPECT_EQ(snap.result_cache.misses, 1);
  EXPECT_EQ(snap.result_cache.hits, 1);
  EXPECT_EQ(snap.totals.cache_hits, 1);
  EXPECT_EQ(snap.result_cache.entries, 1);
  EXPECT_GT(snap.result_cache.bytes, 0);

  // Cached and uncached answers are identical.
  auto direct = engine_->Execute(Group()[0]);
  ASSERT_TRUE(direct.ok());
  auto cached = server->result_cache()->Execute(
      Group()[0], [this](const Query& q) { return engine_->Execute(q); });
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->outcome, CacheOutcome::kHit);
  EXPECT_EQ(cached->response.data, direct->data);
}

TEST_F(ServeTest, SharedCacheWorksOverShardedBackend) {
  // PR 2 restricted the session cache to single-engine servers; the
  // shared cache layers above scatter/merge, lifting that restriction.
  const int64_t rows = 5000;
  ShardedEngineOptions shopts;
  shopts.num_shards = 3;
  auto sharded = ShardedEngine::Create(shopts).ValueOrDie();
  ASSERT_TRUE(sharded->PartitionTable(MakeServeTable(rows)).ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_queue_per_session = 64;
  opts.enable_shared_cache = true;
  auto made = QueryServer::Create(sharded.get(), opts);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto server = std::move(made).ValueOrDie();

  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->Submit(sid, {HistQuery(rows)}).ok());
    server->Drain();
  }
  auto snap = server->Snapshot();
  server->Stop();
  ExpectReconciles(snap);
  EXPECT_EQ(snap.num_shards, 3);
  EXPECT_EQ(snap.totals.queries_executed, 10);
  EXPECT_EQ(snap.totals.queries_failed, 0);
  // One scatter/merge execution; nine served from the shared cache.
  EXPECT_EQ(snap.result_cache.misses, 1);
  EXPECT_EQ(snap.result_cache.hits, 9);

  // The merged-and-cached answer matches a direct sharded execution.
  auto direct = sharded->Execute(HistQuery(rows));
  ASSERT_TRUE(direct.ok());
  const auto& hist = std::get<FixedHistogram>(direct->data);
  EXPECT_DOUBLE_EQ(hist.total(), static_cast<double>(rows));
}

TEST_F(ServeTest, SharedCacheStressReconciles) {
  MakeEngine(20000);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_queue_per_session = 64;
  opts.enable_shared_cache = true;
  auto server = MakeServer(opts);

  // Many sessions hammer a small pool of distinct queries so hits,
  // misses, and single-flight coalescing all occur concurrently.
  constexpr int kClients = 8;
  constexpr int kGroupsPerClient = 30;
  std::vector<uint64_t> sids(kClients);
  for (auto& sid : sids) sid = server->OpenSession();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kGroupsPerClient; ++i) {
        auto out = server->Submit(sids[static_cast<size_t>(c)],
                                  Group(10 + (i % 3)));
        ASSERT_TRUE(out.ok());
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Drain();

  auto snap = server->Snapshot();
  ExpectReconciles(snap);
  EXPECT_EQ(snap.totals.queries_failed, 0);
  // Every executed query went through the cache and landed in exactly
  // one outcome bucket: hits + misses + coalesced == lookups == queries.
  EXPECT_EQ(snap.result_cache.Lookups(),
            snap.result_cache.hits + snap.result_cache.misses +
                snap.result_cache.coalesced);
  EXPECT_EQ(snap.result_cache.Lookups(), snap.totals.queries_executed);
  // Only three distinct canonical keys exist and nothing invalidates or
  // evicts, so single-flight guarantees exactly one backend execution
  // (miss) per key; every other lookup hit or coalesced.
  EXPECT_EQ(snap.result_cache.misses, 3);
  EXPECT_EQ(snap.result_cache.entries, 3);
  // The single-flight leader path, asserted directly: exactly one caller
  // per key installed a flight and ran the backend. Coalesced waiters
  // rode a leader's flight without ever bumping this.
  EXPECT_EQ(snap.result_cache.leader_executions, 3);
  EXPECT_EQ(snap.result_cache.leader_executions, snap.result_cache.misses);
  EXPECT_EQ(snap.totals.cache_hits,
            snap.result_cache.hits + snap.result_cache.coalesced);
  EXPECT_EQ(snap.result_cache.invalidations, 0);
  EXPECT_EQ(snap.result_cache.evictions, 0);
}

TEST_F(ServeTest, TracingRecordsFullPipelineOverShardedCache) {
  // The tentpole, end to end: shards + shared cache + tracing puts every
  // span kind on one timeline. Two sessions submit the same query, so the
  // second lookup hits; the miss trace carries the scatter/shard/merge
  // spans nested under the cache's execute span.
  const int64_t rows = 5000;
  ShardedEngineOptions shopts;
  shopts.num_shards = 2;
  auto sharded = ShardedEngine::Create(shopts).ValueOrDie();
  ASSERT_TRUE(sharded->PartitionTable(MakeServeTable(rows)).ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.enable_shared_cache = true;
  opts.enable_tracing = true;
  auto made = QueryServer::Create(sharded.get(), opts);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto server = std::move(made).ValueOrDie();

  const uint64_t a = server->OpenSession();
  const uint64_t b = server->OpenSession();
  ASSERT_TRUE(server->Submit(a, {HistQuery(rows)}).ok());
  server->Drain();
  ASSERT_TRUE(server->Submit(b, {HistQuery(rows)}).ok());
  server->Drain();

  ASSERT_NE(server->trace_buffer(), nullptr);
  const std::vector<SpanRecord> spans = server->trace_buffer()->Snapshot();
  server->Stop();

  // Group the spans by trace; both groups produced a complete trace.
  std::map<uint64_t, std::vector<SpanRecord>> traces;
  for (const SpanRecord& s : spans) {
    ASSERT_GT(s.trace_id, 0u);
    ASSERT_GT(s.span_id, 0u);
    EXPECT_GE(s.end_us, s.start_us);
    traces[s.trace_id].push_back(s);
  }
  ASSERT_EQ(traces.size(), 2u);

  int miss_traces = 0;
  int hit_traces = 0;
  for (const auto& [trace_id, trace] : traces) {
    std::multiset<SpanKind> kinds;
    std::set<uint64_t> ids;
    uint64_t root = 0;
    uint64_t session = 0;
    for (const SpanRecord& s : trace) {
      kinds.insert(s.kind);
      ids.insert(s.span_id);
      if (s.kind == SpanKind::kGroup) root = s.span_id;
      if (session == 0) session = s.session_id;
      // One trace belongs to one session.
      EXPECT_EQ(s.session_id, session);
    }
    ASSERT_EQ(ids.size(), trace.size());  // Span ids are unique.
    // The pipeline stages every admitted group passes through.
    EXPECT_EQ(kinds.count(SpanKind::kGroup), 1u);
    EXPECT_EQ(kinds.count(SpanKind::kAdmission), 1u);
    EXPECT_EQ(kinds.count(SpanKind::kQueueWait), 1u);
    EXPECT_EQ(kinds.count(SpanKind::kCacheLookup), 1u);
    // Every parent resolves to another span of the same trace (roots
    // have parent 0).
    for (const SpanRecord& s : trace) {
      if (s.parent_span_id != 0) {
        EXPECT_TRUE(ids.count(s.parent_span_id))
            << "dangling parent in trace " << trace_id;
      } else {
        EXPECT_EQ(s.kind, SpanKind::kGroup);
      }
    }
    ASSERT_NE(root, 0u);
    const SpanRecord* lookup = nullptr;
    for (const SpanRecord& s : trace) {
      if (s.kind == SpanKind::kCacheLookup) lookup = &s;
    }
    ASSERT_NE(lookup, nullptr);
    if (lookup->detail == 2) {  // Miss: the backend ran, sharded.
      ++miss_traces;
      EXPECT_EQ(kinds.count(SpanKind::kExecute), 1u);
      EXPECT_EQ(kinds.count(SpanKind::kScatter), 1u);
      EXPECT_EQ(kinds.count(SpanKind::kShardExec), 2u);  // One per shard.
      EXPECT_EQ(kinds.count(SpanKind::kMerge), 1u);
    } else if (lookup->detail == 1) {  // Hit: no backend spans at all.
      ++hit_traces;
      EXPECT_EQ(kinds.count(SpanKind::kExecute), 0u);
      EXPECT_EQ(kinds.count(SpanKind::kShardExec), 0u);
    }
  }
  EXPECT_EQ(miss_traces, 1);
  EXPECT_EQ(hit_traces, 1);
}

TEST_F(ServeTest, TracingClosesShedRootSpans) {
  // A throttled submission never reaches a worker; its root span must
  // still close, with the shed terminal in its detail.
  MakeEngine(1000);
  ServerOptions opts;
  opts.policy = AdmissionPolicy::kThrottle;
  opts.throttle_min_interval = Duration::Seconds(30);
  opts.enable_tracing = true;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  auto first = server->Submit(sid, Group());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->disposition, SubmitDisposition::kEnqueued);
  auto second = server->Submit(sid, Group());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->disposition, SubmitDisposition::kThrottled);
  server->Drain();

  int shed_roots = 0;
  for (const SpanRecord& s : server->trace_buffer()->Snapshot()) {
    if (s.kind != SpanKind::kGroup) continue;
    if ((s.detail & 0xff) ==
        static_cast<uint32_t>(GroupTerminal::kShedThrottled)) {
      ++shed_roots;
    }
  }
  EXPECT_EQ(shed_roots, 1);
  auto snap = server->Snapshot();
  EXPECT_TRUE(snap.tracing_enabled);
  EXPECT_GT(snap.trace_buffer.recorded, 0);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, SlowQueryLogCapturesSlowGroups) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.slow_query_ms = 0.0;  // Log everything.
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
    server->Drain();
  }
  ASSERT_NE(server->slow_query_log(), nullptr);
  EXPECT_EQ(server->slow_query_log()->logged(), 3);
  const auto entries = server->slow_query_log()->Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    EXPECT_EQ(e.session_id, sid);
    EXPECT_EQ(e.queries_ok, 1);
    EXPECT_GT(e.latency_ms, 0.0);
    EXPECT_NEAR(e.latency_ms, e.queue_ms + e.service_ms, 0.05);
    // Tracing is off: records still land, just without a trace id.
    EXPECT_EQ(e.trace_id, 0u);
  }
  auto snap = server->Snapshot();
  EXPECT_TRUE(snap.slow_log_enabled);
  EXPECT_EQ(snap.slow_queries_logged, 3);
  // The gauges render.
  EXPECT_NE(snap.ToText().find("slow queries logged"), std::string::npos);
  EXPECT_NE(snap.ToText().find("queue depth (now / high-water)"),
            std::string::npos);

  // Negative threshold = no log at all (the default).
  auto plain = MakeServer(ServerOptions{});
  EXPECT_EQ(plain->slow_query_log(), nullptr);
  EXPECT_EQ(plain->trace_buffer(), nullptr);
}

TEST_F(ServeTest, IssueBeforeCompleteCountsAsLcvViolation) {
  // Service time must far exceed the burst duration even if the OS
  // deschedules the submitting thread for a few quanta mid-burst (a
  // real hazard on a 1-core host, where the worker runs by preemption):
  // ~20 ms per query vs a microseconds-scale submit loop.
  MakeEngine(2000000);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 16;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
  }
  server->Drain();
  auto snap = server->Snapshot();
  ASSERT_EQ(snap.totals.groups_executed, 5);
  // Groups 0-3 completed after their successor was issued; group 4 has
  // no successor (§7.2: completion before next interaction is fine).
  EXPECT_EQ(snap.totals.lcv_violations, 4);
  EXPECT_DOUBLE_EQ(snap.lcv_fraction, 4.0 / 5.0);
}

TEST_F(ServeTest, AdaptiveAdmissionShedsUnderOverload) {
  MakeEngine(400000);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 4;
  opts.policy = AdmissionPolicy::kFifo;
  opts.adaptive_admission = true;
  opts.admission.reject_factor = 1e12;  // Shed, never hard-reject here.
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  bool saw_overload = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto out = server->Submit(sid, Group());
    ASSERT_TRUE(out.ok());
    if (out->load.state == LoadState::kOverloaded) {
      saw_overload = true;
      break;
    }
  }
  EXPECT_TRUE(saw_overload);
  auto snap = server->Snapshot();
  // The control loop flipped the effective policy to shedding.
  EXPECT_EQ(snap.effective_policy, AdmissionPolicy::kSkipStale);
  EXPECT_EQ(snap.configured_policy, AdmissionPolicy::kFifo);
  server->Drain();
  ExpectReconciles(server->Snapshot());
}

TEST_F(ServeTest, ManyClientsStressReconciles) {
  MakeEngine(50000);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_queue_per_session = 2;
  opts.policy = AdmissionPolicy::kSkipStale;
  auto server = MakeServer(opts);

  constexpr int kClients = 8;
  constexpr int kGroupsPerClient = 40;
  std::vector<uint64_t> sids(kClients);
  for (auto& sid : sids) sid = server->OpenSession();

  std::atomic<int64_t> submitted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kGroupsPerClient; ++i) {
        // Two-query coordinated groups, no think time: worst case load.
        auto out = server->Submit(sids[static_cast<size_t>(c)],
                                  {HistQuery(rows_), HistQuery(rows_, 10)});
        ASSERT_TRUE(out.ok());
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Drain();

  auto snap = server->Snapshot();
  EXPECT_EQ(submitted.load(), kClients * kGroupsPerClient);
  EXPECT_EQ(snap.totals.groups_submitted, kClients * kGroupsPerClient);
  EXPECT_EQ(snap.groups_queued, 0);
  EXPECT_EQ(static_cast<int>(snap.sessions.size()), kClients);
  EXPECT_EQ(snap.totals.queries_failed, 0);
  // Each executed group ran both of its queries.
  EXPECT_EQ(snap.totals.queries_executed,
            2 * snap.totals.groups_executed);
  ExpectReconciles(snap);
}

TEST_F(ServeTest, DrainThenStopIsClean) {
  MakeEngine(10000);
  auto server = MakeServer(ServerOptions{});
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
  }
  server->Drain();
  server->Stop();
  server->Stop();  // Idempotent.
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.totals.groups_executed, 3);
}

TEST(AdmissionControllerTest, ClassifiesQuadrants) {
  AdmissionOptions aopts;
  aopts.window = Duration::Seconds(1.0);
  AdmissionController ctl(2, aopts);

  // Nothing happened yet.
  EXPECT_EQ(ctl.Assess(SimTime::Origin()).state, LoadState::kIdle);

  // Submissions but no completions: assume the backend keeps up.
  SimTime t = SimTime::FromMillis(100);
  ctl.OnSubmit(t);
  EXPECT_EQ(ctl.Assess(t).state, LoadState::kUnderloaded);

  // 100 ms mean service over 2 workers => capacity ~20 groups/s.
  ctl.OnComplete(t, Duration::Millis(100));
  EXPECT_NEAR(ctl.MeanServiceTime().seconds(), 0.1, 1e-9);

  // 5 submissions in the window: offered 5/s << 20/s.
  for (int i = 0; i < 4; ++i) ctl.OnSubmit(t);
  auto a = ctl.Assess(t);
  EXPECT_EQ(a.state, LoadState::kUnderloaded);
  EXPECT_NEAR(a.capacity_qps, 20.0, 1e-6);

  // Flood the window: offered far above capacity.
  for (int i = 0; i < 200; ++i) ctl.OnSubmit(t);
  a = ctl.Assess(t);
  EXPECT_EQ(a.state, LoadState::kOverloaded);
  EXPECT_TRUE(a.reject);  // 205/20 > default reject_factor 8.

  // The window slides: a quiet second later the flood is forgotten.
  EXPECT_EQ(ctl.Assess(t + Duration::Seconds(2.0)).state, LoadState::kIdle);
}

// ------------------------- Sharded serving -------------------------

TEST(ShardedServeTest, CreateValidatesShardedOptions) {
  ShardedEngineOptions shopts;
  shopts.num_shards = 2;
  auto sharded = ShardedEngine::Create(shopts).ValueOrDie();
  ASSERT_TRUE(sharded->PartitionTable(MakeServeTable(100)).ok());

  EXPECT_EQ(QueryServer::Create(static_cast<const ShardedEngine*>(nullptr),
                                ServerOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ServerOptions opts;
  opts.enable_session_cache = true;  // Cache owns a single engine.
  EXPECT_EQ(QueryServer::Create(sharded.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = ServerOptions{};
  opts.shard_workers = -1;
  EXPECT_EQ(QueryServer::Create(sharded.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedServeTest, ScatterMergePipelineExecutesAndReconciles) {
  const int64_t rows = 5000;
  ShardedEngineOptions shopts;
  shopts.num_shards = 3;
  auto sharded = ShardedEngine::Create(shopts).ValueOrDie();
  ASSERT_TRUE(sharded->PartitionTable(MakeServeTable(rows)).ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_queue_per_session = 64;
  auto made = QueryServer::Create(sharded.get(), opts);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto server = std::move(made).ValueOrDie();

  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 20; ++i) {
    auto out = server->Submit(sid, {HistQuery(rows)});
    ASSERT_TRUE(out.ok());
  }
  server->Drain();
  auto snap = server->Snapshot();
  server->Stop();

  ExpectReconciles(snap);
  EXPECT_EQ(snap.num_shards, 3);
  EXPECT_EQ(snap.shard_workers, 3);  // Default: one per shard.
  EXPECT_GT(snap.totals.queries_executed, 0);
  EXPECT_EQ(snap.totals.queries_failed, 0);
  // Phase attribution: the three phases sum to (about) the service time,
  // and execution dominates for a scan-heavy workload.
  EXPECT_GT(snap.execute_mean_ms, 0.0);
  EXPECT_LE(snap.scatter_mean_ms + snap.execute_mean_ms +
                snap.merge_mean_ms,
            snap.service_mean_ms * 1.5 + 1.0);
}

TEST(ShardedServeTest, ShardWorkersOptionSizesThePool) {
  ShardedEngineOptions shopts;
  shopts.num_shards = 2;
  auto sharded = ShardedEngine::Create(shopts).ValueOrDie();
  ASSERT_TRUE(sharded->PartitionTable(MakeServeTable(200)).ok());
  ServerOptions opts;
  opts.num_workers = 1;
  opts.shard_workers = 5;
  auto server = QueryServer::Create(sharded.get(), opts).ValueOrDie();
  auto snap = server->Snapshot();
  EXPECT_EQ(snap.num_shards, 2);
  EXPECT_EQ(snap.shard_workers, 5);
  server->Stop();
}

TEST(AdmissionControllerTest, ShardAwareCapacityScalesWithShardPool) {
  AdmissionOptions aopts;
  aopts.window = Duration::Seconds(1.0);

  // 2 group workers over a 4-shard backend with 4 shard workers.
  AdmissionController ctl(2, 4, 4, aopts);
  SimTime t = SimTime::FromMillis(100);
  ctl.OnSubmit(t);
  // Group service 100 ms; partials 25 ms each; merge 1 ms.
  ctl.OnCompleteSharded(t, Duration::Millis(100), Duration::Millis(25),
                        Duration::Millis(1));
  auto a = ctl.Assess(t);
  // Group-worker bound 2/0.1 = 20 g/s binds; the shard pool sustains
  // 4 workers / (4 shards x 25 ms) = 40 g/s ("K x per-shard rate"); the
  // merge stage 2/0.001 = 2000 g/s is far from saturated.
  EXPECT_NEAR(a.capacity_qps, 20.0, 1e-6);
  EXPECT_NEAR(a.shard_exec_capacity_qps, 40.0, 1e-6);
  EXPECT_NEAR(a.merge_capacity_qps, 2000.0, 1e-6);

  // Undersized shard pool: 2 shard workers for 4 x 100 ms partials can
  // only sustain 5 g/s, so the pool (not the group workers) binds and
  // the same offered load now classifies as overloaded.
  AdmissionController slow(8, 4, 2, aopts);
  for (int i = 0; i < 10; ++i) slow.OnSubmit(t);
  slow.OnCompleteSharded(t, Duration::Millis(100), Duration::Millis(100),
                         Duration::Millis(1));
  a = slow.Assess(t);
  EXPECT_NEAR(a.shard_exec_capacity_qps, 5.0, 1e-6);
  EXPECT_NEAR(a.capacity_qps, 5.0, 1e-6);  // min(80, 5).
  EXPECT_EQ(a.state, LoadState::kOverloaded);

  // Same load with a doubled shard pool: capacity doubles and the
  // adaptive threshold moves with it (saturated, not overloaded).
  AdmissionController fast(8, 4, 4, aopts);
  for (int i = 0; i < 10; ++i) fast.OnSubmit(t);
  fast.OnCompleteSharded(t, Duration::Millis(100), Duration::Millis(100),
                         Duration::Millis(1));
  a = fast.Assess(t);
  EXPECT_NEAR(a.capacity_qps, 10.0, 1e-6);
  EXPECT_EQ(a.state, LoadState::kSaturated);
}

TEST(LoadDriverTest, ReplaysConcurrentClients) {
  auto engine = std::make_unique<Engine>(EngineOptions{});
  ASSERT_TRUE(engine->RegisterTable(MakeServeTable(1000)).ok());
  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_queue_per_session = 64;
  auto server = QueryServer::Create(engine.get(), opts);
  ASSERT_TRUE(server.ok());

  // Two clients, 10 groups each, 20 ms apart in trace time.
  std::vector<std::vector<QueryGroup>> clients(2);
  for (auto& groups : clients) {
    for (int i = 0; i < 10; ++i) {
      QueryGroup g;
      g.issue_time = SimTime::FromMillis(20.0 * i);
      g.queries.push_back(HistQuery(1000));
      groups.push_back(std::move(g));
    }
  }
  LoadDriverOptions lopts;
  lopts.time_compression = 20.0;  // 20 ms spacing -> 1 ms wall.
  auto report = RunLoadDriver(server->get(), clients, lopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->clients.size(), 2u);
  for (const auto& c : report->clients) {
    EXPECT_EQ(c.submitted, 10);
    EXPECT_EQ(c.enqueued, 10);  // Queue deep enough: nothing rejected.
  }
  EXPECT_EQ(report->snapshot.totals.groups_submitted, 20);
  EXPECT_EQ(report->snapshot.totals.groups_executed, 20);
  EXPECT_GT(report->wall_seconds, 0.0);
}

TEST(LoadDriverTest, ValidatesInput) {
  auto engine = std::make_unique<Engine>(EngineOptions{});
  ASSERT_TRUE(engine->RegisterTable(MakeServeTable(10)).ok());
  auto server = QueryServer::Create(engine.get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(RunLoadDriver(nullptr, {}, LoadDriverOptions{}).status().code(),
            StatusCode::kInvalidArgument);
  LoadDriverOptions bad;
  bad.time_compression = 0.0;
  EXPECT_EQ(RunLoadDriver(server->get(), {}, bad).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<std::vector<QueryGroup>> unsorted(1);
  QueryGroup g1;
  g1.issue_time = SimTime::FromMillis(10);
  g1.queries.push_back(HistQuery(10));
  QueryGroup g0 = g1;
  g0.issue_time = SimTime::FromMillis(5);
  unsorted[0] = {g1, g0};
  EXPECT_EQ(
      RunLoadDriver(server->get(), unsorted, LoadDriverOptions{})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, CompletionCallbackDeliversResultsExactlyOnce) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.num_workers = 1;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  std::mutex mu;
  std::vector<GroupCompletion> done;
  for (int i = 0; i < 3; ++i) {
    auto out = server->Submit(sid, Group(), [&](GroupCompletion&& c) {
      std::lock_guard<std::mutex> lock(mu);
      done.push_back(std::move(c));
    });
    ASSERT_TRUE(out.ok());
  }
  server->Drain();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(done.size(), 3u);
    std::set<uint64_t> seqs;
    for (const auto& c : done) {
      EXPECT_EQ(c.session_id, sid);
      EXPECT_EQ(c.terminal, GroupTerminal::kExecuted);
      EXPECT_EQ(c.queries_executed, 1);
      EXPECT_EQ(c.queries_failed, 0);
      // Capture is keyed off the callback: the executed group carries
      // its real result payload.
      ASSERT_EQ(c.results.size(), 1u);
      ASSERT_TRUE(c.results[0].has_value());
      EXPECT_EQ(std::get<FixedHistogram>(*c.results[0]).total(), 1000.0);
      EXPECT_GE(c.latency.micros(), c.service.micros());
      seqs.insert(c.seq);
    }
    EXPECT_EQ(seqs.size(), 3u);  // Exactly once per admitted group.
  }
  server->Stop();
}

TEST_F(ServeTest, CompletionCallbackFiresOnShedGroups) {
  // A slow table, one worker, a shallow queue, and a burst under
  // skip-stale: every *admitted* group must produce exactly one terminal
  // callback — executed or shed — and shed completions carry no results.
  MakeEngine(400000);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 4;
  opts.policy = AdmissionPolicy::kSkipStale;
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  std::mutex mu;
  std::vector<GroupCompletion> done;
  int64_t admitted = 0;
  for (int i = 0; i < 12; ++i) {
    auto out = server->Submit(sid, Group(), [&](GroupCompletion&& c) {
      std::lock_guard<std::mutex> lock(mu);
      done.push_back(std::move(c));
    });
    ASSERT_TRUE(out.ok());
    if (out->disposition == SubmitDisposition::kEnqueued ||
        out->disposition == SubmitDisposition::kCoalesced) {
      ++admitted;
    }
  }
  server->Drain();
  std::set<uint64_t> seqs;
  int64_t executed = 0;
  int64_t shed = 0;
  {
    // Shed callbacks fire inline under the server lock, so never hold
    // the capture mutex across a server call (Snapshot below) — that
    // inverts the lock order.
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(static_cast<int64_t>(done.size()), admitted);
    for (const auto& c : done) {
      seqs.insert(c.seq);
      if (c.terminal == GroupTerminal::kExecuted) {
        ++executed;
        EXPECT_EQ(c.results.size(), 1u);
      } else {
        EXPECT_EQ(c.terminal, GroupTerminal::kShedStale);
        ++shed;
        EXPECT_TRUE(c.results.empty());
        EXPECT_EQ(c.service.micros(), 0);
      }
    }
    EXPECT_EQ(seqs.size(), done.size());
  }
  EXPECT_GT(executed, 0);  // The newest of each burst survives.
  const ServerStatsSnapshot snap = server->Snapshot();
  EXPECT_EQ(snap.totals.groups_executed, executed);
  EXPECT_EQ(snap.totals.groups_shed_stale, shed);
  server->Stop();
}

TEST_F(ServeTest, DoorVerdictsProduceNoCompletion) {
  MakeEngine(100);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.policy = AdmissionPolicy::kThrottle;
  opts.throttle_min_interval = Duration::Seconds(3600.0);
  auto server = MakeServer(opts);
  const uint64_t sid = server->OpenSession();
  std::mutex mu;
  int callbacks = 0;
  auto on_complete = [&](GroupCompletion&&) {
    std::lock_guard<std::mutex> lock(mu);
    ++callbacks;
  };
  auto first = server->Submit(sid, Group(), on_complete);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->disposition, SubmitDisposition::kEnqueued);
  auto second = server->Submit(sid, Group(), on_complete);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->disposition, SubmitDisposition::kThrottled);
  server->Drain();
  server->Stop();
  // The throttled group was refused at the door (the verdict came back
  // synchronously); only the admitted group reaches a terminal state.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(callbacks, 1);
}

TEST_F(ServeTest, MetricsOptionsValidate) {
  MakeEngine(100);
  ServerOptions opts;
  opts.stats_poll_ms = 5.0;
  opts.stats_ring_samples = 0;
  EXPECT_EQ(QueryServer::Create(engine_.get(), opts).status().code(),
            StatusCode::kInvalidArgument);
  // With the poller disabled the ring size is irrelevant.
  opts.stats_poll_ms = 0.0;
  EXPECT_TRUE(QueryServer::Create(engine_.get(), opts).ok());
}

TEST_F(ServeTest, MetricsOffByDefaultAndAccessorsNull) {
  MakeEngine(100);
  auto server = MakeServer(ServerOptions{});
  EXPECT_EQ(server->metrics_registry(), nullptr);
  EXPECT_EQ(server->timeseries(), nullptr);
}

TEST_F(ServeTest, RegistryCountersReconcileWithSnapshot) {
  // The acceptance invariant: after a drain, the scrapeable counters and
  // the snapshot describe the same run — exactly, not approximately.
  // Skip-stale on a slow table plus a cache plus a burst exercises
  // executed, shed, cache-hit, and histogram paths at once.
  MakeEngine(400000);
  MetricsRegistry registry;  // Dedicated: no cross-test aggregation.
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_session = 4;
  opts.policy = AdmissionPolicy::kSkipStale;
  opts.enable_shared_cache = true;
  opts.enable_metrics = true;
  opts.metrics_registry = &registry;
  auto server = MakeServer(opts);
  EXPECT_EQ(server->metrics_registry(), &registry);
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
  }
  server->Drain();
  const auto snap = server->Snapshot();
  ExpectReconciles(snap);

  const auto counter = [&registry](const char* name) {
    Counter* c = registry.FindCounter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : -1;
  };
  EXPECT_EQ(counter("ideval_serve_groups_submitted_total"),
            snap.totals.groups_submitted);
  EXPECT_EQ(counter("ideval_serve_groups_admitted_total"),
            snap.totals.groups_admitted);
  EXPECT_EQ(counter("ideval_serve_groups_executed_total"),
            snap.totals.groups_executed);
  EXPECT_EQ(counter("ideval_serve_groups_shed_stale_total"),
            snap.totals.groups_shed_stale);
  EXPECT_EQ(counter("ideval_serve_groups_shed_coalesced_total"),
            snap.totals.groups_shed_coalesced);
  EXPECT_EQ(counter("ideval_serve_groups_shed_throttled_total"),
            snap.totals.groups_shed_throttled);
  EXPECT_EQ(counter("ideval_serve_groups_rejected_total"),
            snap.totals.groups_rejected);
  EXPECT_EQ(counter("ideval_serve_queries_executed_total"),
            snap.totals.queries_executed);
  EXPECT_EQ(counter("ideval_serve_queries_failed_total"),
            snap.totals.queries_failed);
  EXPECT_EQ(counter("ideval_serve_cache_hits_total"),
            snap.totals.cache_hits);
  EXPECT_EQ(counter("ideval_serve_lcv_violations_total"),
            snap.totals.lcv_violations);

  // One latency and one service observation per executed group.
  Histogram* latency = registry.FindHistogram("ideval_serve_group_latency_ms");
  Histogram* service = registry.FindHistogram("ideval_serve_group_service_ms");
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(latency->count(), snap.totals.groups_executed);
  EXPECT_EQ(service->count(), snap.totals.groups_executed);

  // Snapshot() refreshed the gauges on its way out.
  Gauge* sessions = registry.FindGauge("ideval_serve_sessions_open");
  ASSERT_NE(sessions, nullptr);
  EXPECT_DOUBLE_EQ(sessions->value(), 1.0);
  Gauge* hit_rate = registry.FindGauge("ideval_serve_cache_hit_rate");
  ASSERT_NE(hit_rate, nullptr);
  EXPECT_GE(hit_rate->value(), 0.0);  // Shared cache on: a real rate.

  // And the whole family appears in both exposition formats.
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE ideval_serve_groups_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ideval_serve_group_latency_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(registry.ExpositionJson().find(
                "\"name\":\"ideval_serve_qif_qps\""),
            std::string::npos);
  server->Stop();
}

TEST_F(ServeTest, WindowedThroughputAppearsAfterCompletions) {
  MakeEngine(1000);
  auto server = MakeServer(ServerOptions{});
  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
    server->Drain();
  }
  const auto snap = server->Snapshot();
  // Completions seconds old still sit inside the 10s default window, so
  // the windowed rate is positive and counts queries, not groups.
  EXPECT_GT(snap.throughput_window_qps, 0.0);
  EXPECT_EQ(snap.qif_window_truncations, 0);
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("throughput (lifetime / window)"), std::string::npos);
  EXPECT_EQ(text.find("window truncations"), std::string::npos);
}

TEST(OnlineMetricsTest, WindowCapTruncatesInsteadOfGrowing) {
  // A burst past the element cap must drop oldest entries and say so,
  // not grow the deque without bound.
  OnlineMetrics metrics(Duration::Seconds(3600.0));
  const int64_t kOver = 37;
  for (int64_t i = 0; i < OnlineMetrics::kMaxWindowEntries + kOver; ++i) {
    metrics.RecordSubmit(SimTime::FromMicros(i));
  }
  ServerStatsSnapshot snap;
  metrics.FillSnapshot(&snap, SimTime::FromMicros(1000000));
  EXPECT_EQ(snap.qif_window_truncations, kOver);
  EXPECT_GT(snap.qif_qps, 0.0);

  // Completions have the same cap; truncations accumulate across both.
  for (int64_t i = 0; i < OnlineMetrics::kMaxWindowEntries + 1; ++i) {
    metrics.RecordGroupComplete(SimTime::FromMicros(i), Duration::Millis(1),
                                Duration::Millis(1), /*queries=*/2);
  }
  metrics.FillSnapshot(&snap, SimTime::FromMicros(1000000));
  EXPECT_EQ(snap.qif_window_truncations, kOver + 1);
  EXPECT_GT(snap.throughput_window_qps, 0.0);
}

TEST_F(ServeTest, StatsPollerFillsTimeseries) {
  MakeEngine(1000);
  ServerOptions opts;
  opts.enable_metrics = true;
  MetricsRegistry registry;
  opts.metrics_registry = &registry;
  opts.stats_poll_ms = 2.0;
  opts.stats_ring_samples = 32;
  auto server = MakeServer(opts);
  const TimeSeriesRing* ring = server->timeseries();
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->capacity(), 32);

  const uint64_t sid = server->OpenSession();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->Submit(sid, Group()).ok());
    server->Drain();
  }
  // Wait for a sample taken strictly after the last drain, so the newest
  // sample is guaranteed to see all three completions.
  const int64_t drained_at = ring->pushed();
  for (int spin = 0; spin < 2000 && ring->pushed() <= drained_at; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(ring->pushed(), drained_at);
  server->Stop();
  // Stop halted the poller before teardown; the ring is now quiescent.
  const int64_t pushed = ring->pushed();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ring->pushed(), pushed);

  const auto samples = ring->Snapshot();
  ASSERT_FALSE(samples.empty());
  const StatsSample& last = samples.back();
  EXPECT_EQ(last.submitted, 3);
  EXPECT_EQ(last.executed, 3);
  EXPECT_EQ(last.cache_hit_rate, -1.0);  // No result cache configured.
  EXPECT_EQ(last.trace_dropped, 0);      // Tracing off.
  EXPECT_GE(last.t_s, 0.0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_s, samples[i - 1].t_s);
    EXPECT_GE(samples[i].submitted, samples[i - 1].submitted);
  }
}

}  // namespace
}  // namespace ideval
