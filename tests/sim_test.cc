#include <gtest/gtest.h>

#include "sim/query_scheduler.h"
#include "sim/sim_clock.h"

namespace ideval {
namespace {

TEST(SimClockTest, MonotonicAdvance) {
  SimClock clock;
  EXPECT_EQ(clock.now(), SimTime::Origin());
  EXPECT_TRUE(clock.Advance(Duration::Millis(10)).ok());
  EXPECT_EQ(clock.now().millis(), 10.0);
  EXPECT_FALSE(clock.AdvanceTo(SimTime::FromMillis(5)).ok());
  EXPECT_EQ(clock.now().millis(), 10.0);  // Unchanged after rejection.
  clock.Reset();
  EXPECT_EQ(clock.now(), SimTime::Origin());
}

TablePtr MakeTable(int64_t rows) {
  Schema schema({{"v", DataType::kDouble}});
  TableBuilder b("t", schema);
  for (int64_t i = 0; i < rows; ++i) {
    b.MustAppendRow({Value(static_cast<double>(i))});
  }
  return std::move(b).Finish().ValueOrDie();
}

Query HistQuery(int64_t rows) {
  HistogramQuery q;
  q.table = "t";
  q.bin_column = "v";
  q.bin_lo = 0.0;
  q.bin_hi = static_cast<double>(rows);
  q.bins = 20;
  return q;
}

std::vector<QueryGroup> UniformGroups(int n, Duration spacing, Query query,
                                      int queries_per_group = 1) {
  std::vector<QueryGroup> groups;
  for (int i = 0; i < n; ++i) {
    QueryGroup g;
    g.issue_time = SimTime::Origin() + spacing * static_cast<double>(i);
    for (int k = 0; k < queries_per_group; ++k) g.queries.push_back(query);
    groups.push_back(g);
  }
  return groups;
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions opts;
    opts.profile = EngineProfile::kDiskRowStore;  // Slow backend.
    engine_ = std::make_unique<Engine>(opts);
    ASSERT_TRUE(engine_->RegisterTable(MakeTable(kRows)).ok());
  }
  static constexpr int64_t kRows = 200000;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SchedulerTest, RejectsUnsortedGroups) {
  QueryScheduler sched(engine_.get(), SchedulerOptions{});
  std::vector<QueryGroup> groups = UniformGroups(2, Duration::Millis(20),
                                                 HistQuery(kRows));
  std::swap(groups[0].issue_time, groups[1].issue_time);
  EXPECT_FALSE(sched.Run(groups).ok());
}

TEST_F(SchedulerTest, FifoCascadesDelay) {
  // Queries issued every 20 ms against a backend needing ~100 ms each:
  // scheduling delay must grow monotonically (Fig. 2).
  QueryScheduler sched(engine_.get(), SchedulerOptions{});
  auto run = sched.Run(UniformGroups(10, Duration::Millis(20),
                                     HistQuery(kRows)));
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->timelines.size(), 10u);
  EXPECT_EQ(run->groups_executed, 10);
  EXPECT_EQ(run->groups_skipped, 0);
  Duration prev_sched = run->timelines[0].scheduling_latency;
  for (size_t i = 1; i < run->timelines.size(); ++i) {
    EXPECT_GE(run->timelines[i].scheduling_latency, prev_sched);
    prev_sched = run->timelines[i].scheduling_latency;
  }
  // Later queries perceive far more latency than the first.
  EXPECT_GT(run->timelines.back().PerceivedLatency(),
            run->timelines.front().PerceivedLatency() * 3.0);
}

TEST_F(SchedulerTest, SkipStaleShedsBacklog) {
  SchedulerOptions opts;
  opts.policy = SchedulingPolicy::kSkipStale;
  QueryScheduler sched(engine_.get(), opts);
  auto run = sched.Run(UniformGroups(50, Duration::Millis(10),
                                     HistQuery(kRows)));
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->groups_skipped, 10);
  EXPECT_EQ(run->groups_executed + run->groups_skipped, 50);
  // Executed queries keep bounded scheduling delay: the backend always
  // jumps to the freshest pending group.
  for (const auto& t : run->timelines) {
    if (t.skipped) {
      EXPECT_FALSE(t.data.has_value());
      continue;
    }
    EXPECT_LT(t.scheduling_latency, Duration::Millis(200));
  }
}

TEST_F(SchedulerTest, GroupQueriesRunConcurrently) {
  SchedulerOptions opts;
  opts.num_connections = 2;
  QueryScheduler sched(engine_.get(), opts);
  auto run2 =
      sched.Run(UniformGroups(1, Duration::Millis(20), HistQuery(kRows), 2));
  ASSERT_TRUE(run2.ok());
  ASSERT_EQ(run2->timelines.size(), 2u);
  // Both queries of the group start together on separate connections.
  EXPECT_EQ(run2->timelines[0].exec_start, run2->timelines[1].exec_start);

  opts.num_connections = 1;
  QueryScheduler serial(engine_.get(), opts);
  auto run1 =
      serial.Run(UniformGroups(1, Duration::Millis(20), HistQuery(kRows), 2));
  ASSERT_TRUE(run1.ok());
  EXPECT_GT(run1->timelines[1].exec_start, run1->timelines[0].exec_start);
}

TEST_F(SchedulerTest, TimelineComponentsAddUp) {
  QueryScheduler sched(engine_.get(), SchedulerOptions{});
  auto run = sched.Run(UniformGroups(1, Duration::Millis(20),
                                     HistQuery(kRows)));
  ASSERT_TRUE(run.ok());
  const QueryTimeline& t = run->timelines[0];
  EXPECT_EQ(t.backend_arrival - t.issue_time +
                (t.client_receive - t.exec_end),
            t.network_latency);
  EXPECT_EQ(t.exec_start - t.backend_arrival, t.scheduling_latency);
  EXPECT_EQ(t.exec_end - t.exec_start,
            t.execution_latency + t.post_aggregation_latency);
  EXPECT_EQ(t.render_end - t.client_receive, t.rendering_latency);
  EXPECT_EQ(t.PerceivedLatency(), t.render_end - t.issue_time);
  ASSERT_TRUE(t.data.has_value());
}

TEST_F(SchedulerTest, NoEngineFails) {
  QueryScheduler sched(nullptr, SchedulerOptions{});
  EXPECT_FALSE(sched.Run({}).ok());
}

TEST_F(SchedulerTest, EmptySessionSucceeds) {
  QueryScheduler sched(engine_.get(), SchedulerOptions{});
  auto run = sched.Run({});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->timelines.empty());
  EXPECT_EQ(run->groups_submitted, 0);
}

TEST(MergeSessionsTest, ProducesSortedStableMerge) {
  auto group_at = [](double ms) {
    QueryGroup g;
    g.issue_time = SimTime::FromMillis(ms);
    return g;
  };
  std::vector<std::vector<QueryGroup>> sessions = {
      {group_at(0), group_at(50), group_at(100)},
      {group_at(25), group_at(50), group_at(75)},
  };
  auto merged = MergeSessions(sessions);
  ASSERT_EQ(merged.size(), 6u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].issue_time, merged[i - 1].issue_time);
  }
  // Stability: user 0's 50 ms group precedes user 1's.
  EXPECT_EQ(merged[2].issue_time.millis(), 50.0);
  EXPECT_EQ(merged[3].issue_time.millis(), 50.0);
  EXPECT_TRUE(MergeSessions({}).empty());
  EXPECT_EQ(MergeSessions({{group_at(5)}}).size(), 1u);
}

}  // namespace
}  // namespace ideval
